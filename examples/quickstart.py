"""Quickstart: answer the paper's author/title pair query on a small bibliography.

This is the example from the introduction of the paper: select all
(author, title) node pairs that belong to the same book, using a pair of free
variables instead of nested for-loops.

Everything goes through the :mod:`repro.api` facade: a :class:`Document`
owning the per-document state, a compiled :class:`Query`, and the engine
registry for cross-checking backends.

Run with::

    python examples/quickstart.py
"""

from repro import Document, Node, Tree, is_ppl
from repro.api import available_engines, compile_query, get_engine


def build_document() -> Document:
    """A tiny bib.xml with two books (one of them with two authors)."""
    return Document(
        Tree(
            Node(
                "bib",
                Node("book", Node("author"), Node("title"), Node("year")),
                Node("book", Node("author"), Node("author"), Node("title")),
            )
        )
    )


def main() -> None:
    document = build_document()
    query = compile_query(
        "descendant::book[ child::author[. is $y] and child::title[. is $z] ]",
        ["y", "z"],
    )

    print("document size:", document.size, "nodes")
    print("query:", query)
    print("is a PPL expression:", is_ppl(query.source))
    print("compiled arity:", query.arity, "| HCL size:", query.hcl.size)

    answers = document.answer(query)  # the polynomial engine is the default

    print(f"\n{len(answers)} (author, title) pairs:")
    for author, title in sorted(answers):
        print(
            f"  author node {author} ({document.labels[author]})"
            f"  <->  title node {title} ({document.labels[title]})"
        )

    # The same compiled query, answered by every registered backend whose
    # capabilities cover it — they must all agree.
    print("\ncross-checking backends:", ", ".join(available_engines()))
    for name in ("naive", "yannakakis"):
        assert document.answer(query, engine=name) == answers, name
        print(f"  {name}: agrees with the polynomial engine")

    # Variable-free binary queries dispatch to the backends' pairs path; the
    # set-based Core XPath 1.0 evaluator handles complement-free ones.
    binary = document.compile("descendant::book/child::author")
    assert document.pairs(binary) == document.pairs(binary, engine="corexpath1")
    print("  corexpath1: agrees on the variable-free binary query")
    print("monadic via corexpath1:", sorted(get_engine("corexpath1").monadic(document, binary)))


if __name__ == "__main__":
    main()
