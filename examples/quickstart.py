"""Quickstart: answer the paper's author/title pair query on a small bibliography.

This is the example from the introduction of the paper: select all
(author, title) node pairs that belong to the same book, using a pair of free
variables instead of nested for-loops.

Everything goes through one :class:`repro.session.Session` — the execution
context that owns the document store, the compiled-plan memo and the engine
configuration (PR 5's consolidation of the earlier Document/executor/server
front doors).

Run with::

    python examples/quickstart.py
"""

from repro import Node, Tree, is_ppl
from repro.api import available_engines, get_engine
from repro.session import Session

PAIR_QUERY = "descendant::book[ child::author[. is $y] and child::title[. is $z] ]"


def build_tree() -> Tree:
    """A tiny bib.xml with two books (one of them with two authors)."""
    return Tree(
        Node(
            "bib",
            Node("book", Node("author"), Node("title"), Node("year")),
            Node("book", Node("author"), Node("author"), Node("title")),
        )
    )


def main() -> None:
    with Session() as session:
        session.add_tree("bib", build_tree())
        document = session.document("bib")
        query = session.compile(PAIR_QUERY, ["y", "z"])

        print("document size:", document.size, "nodes")
        print("query:", query)
        print("is a PPL expression:", is_ppl(query.source))
        print("compiled arity:", query.arity, "| HCL size:", query.hcl.size)

        answers = session.query("bib", query)  # the polynomial engine is the default

        print(f"\n{len(answers)} (author, title) pairs:")
        for author, title in sorted(answers):
            print(
                f"  author node {author} ({document.labels[author]})"
                f"  <->  title node {title} ({document.labels[title]})"
            )

        # The same compiled query, answered by every registered backend whose
        # capabilities cover it — they must all agree.
        print("\ncross-checking backends:", ", ".join(available_engines()))
        for name in ("naive", "yannakakis"):
            assert session.query("bib", query, engine=name) == answers, name
            print(f"  {name}: agrees with the polynomial engine")

        # Variable-free binary queries dispatch to the backends' pairs path;
        # the set-based Core XPath 1.0 evaluator handles complement-free ones.
        binary = session.compile("descendant::book/child::author")
        assert document.pairs(binary) == document.pairs(binary, engine="corexpath1")
        print("  corexpath1: agrees on the variable-free binary query")
        print(
            "monadic via corexpath1:",
            sorted(get_engine("corexpath1").monadic(document, binary)),
        )


if __name__ == "__main__":
    main()
