"""Quickstart: answer the paper's author/title pair query on a small bibliography.

This is the example from the introduction of the paper: select all
(author, title) node pairs that belong to the same book, using a pair of free
variables instead of nested for-loops.

Run with::

    python examples/quickstart.py
"""

from repro import Node, Tree, PPLEngine, is_ppl


def build_document() -> Tree:
    """A tiny bib.xml with two books (one of them with two authors)."""
    return Tree(
        Node(
            "bib",
            Node("book", Node("author"), Node("title"), Node("year")),
            Node("book", Node("author"), Node("author"), Node("title")),
        )
    )


def main() -> None:
    document = build_document()
    query = (
        "descendant::book[ child::author[. is $y] and child::title[. is $z] ]"
    )

    print("document size:", document.size, "nodes")
    print("query:", query)
    print("is a PPL expression:", is_ppl(query))

    engine = PPLEngine(document)
    answers = engine.answer(query, ["y", "z"])

    print(f"\n{len(answers)} (author, title) pairs:")
    for author, title in sorted(answers):
        print(
            f"  author node {author} ({document.labels[author]})"
            f"  <->  title node {title} ({document.labels[title]})"
        )

    # The same answer set, computed by the exponential naive engine, for
    # illustration that both agree on small documents.
    from repro import NaiveEngine

    assert NaiveEngine(document).answer(query, ["y", "z"]) == answers
    print("\nnaive Core XPath 2.0 engine agrees with the polynomial engine")


if __name__ == "__main__":
    main()
