"""FO expressiveness: translate a first-order query into XPath and answer it.

Proposition 1 of the paper shows that Core XPath 2.0 captures exactly the
n-ary FO queries via a linear-time translation (Lemma 1).  This example:

1. writes an FO query with two free variables — "x is a book containing a
   price element, and y is an author inside x" — in the FO syntax of
   Section 2;
2. translates it to Core XPath 2.0 with `fo_to_core_xpath` (the translation
   introduces a for-loop for the existential quantifier, so the result is
   *not* PPL);
3. answers it with the naive engine and compares against direct FO
   evaluation;
4. rewrites the same query by hand as a PPL expression and shows the
   polynomial engine returns the same answers.

Run with::

    python examples/fo_completeness.py
"""

from repro import is_ppl
from repro.session import Session
from repro.fo import parse_fo, fo_answer, fo_to_core_xpath
from repro.workloads import generate_bibliography


def main() -> None:
    session = Session()
    session.add_tree(
        "bib",
        generate_bibliography(
            num_books=4, authors_per_book=2, titles_per_book=1, decoys_per_book=2, seed=3
        ),
    )
    document = session.document("bib")

    # FO: x is a book with some price child, y is an author below x.
    phi = parse_fo(
        "lab[book](x) and (exists p. ch(x,p) and lab[price](p)) "
        "and ch(x,y) and lab[author](y)"
    )
    print("FO query:", phi)
    fo_result = fo_answer(document.tree, phi, ["x", "y"])
    print("FO semantics answers:", sorted(fo_result))

    translated = fo_to_core_xpath(phi)
    print("\nLemma 1 translation (Core XPath 2.0, size", translated.size, "):")
    print(" ", translated.unparse())
    print("translation is PPL:", is_ppl(translated), "(for-loop from the quantifier)")

    # The translation contains a for-loop, so only the "naive" backend's
    # capabilities cover it — the registry dispatches accordingly.
    naive_result = session.query("bib", translated, ["x", "y"], engine="naive")
    assert naive_result == fo_result
    print("naive Core XPath 2.0 engine agrees with FO semantics")

    # The same query written directly as a PPL expression (no quantifier
    # needed: the price test is variable free, so it may sit under a filter).
    ppl_query = (
        "descendant::book[. is $x][ child::price ]/child::author[. is $y]"
    )
    assert is_ppl(ppl_query)
    ppl_result = session.query("bib", ppl_query, ["x", "y"])
    assert ppl_result == fo_result
    print("hand-written PPL formulation agrees as well:", len(ppl_result), "answers")
    session.close()


if __name__ == "__main__":
    main()
