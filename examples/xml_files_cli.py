"""Querying real XML files: library usage mirroring the `repro-xpath` CLI.

Shows the end-to-end workflow a downstream user would follow: serialise a
document to XML, load it back with the XML importer, compile a query once
with `compile_query`, and run it against several documents.

Run with::

    python examples/xml_files_cli.py
"""

import os
import tempfile

from repro import compile_query, tree_from_xml, tree_to_xml
from repro.trees.xml_io import tree_from_xml_file
from repro.workloads import generate_bibliography


def main() -> None:
    # Write two bibliographies of different sizes to disk as XML.
    paths = []
    tmpdir = tempfile.mkdtemp(prefix="repro-example-")
    for index, books in enumerate((3, 8)):
        document = generate_bibliography(books, authors_per_book=2, seed=index)
        path = os.path.join(tmpdir, f"bib{index}.xml")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(tree_to_xml(document, indent=True))
        paths.append(path)
    print("wrote sample documents:", *paths, sep="\n  ")

    # Compile the pair query once; the Definition 1 check and the Fig. 7
    # translation happen here, not at every execution.
    compiled = compile_query(
        "descendant::book[ child::author[. is $y] and child::title[. is $z] ]",
        ["y", "z"],
    )
    print(f"\ncompiled query of arity {compiled.arity}")

    for path in paths:
        document = tree_from_xml_file(path)
        answers = compiled.run(document)
        print(f"{os.path.basename(path)}: {document.size} nodes, {len(answers)} pairs")

    # Round-trip sanity check: serialise + reparse preserves the document.
    original = generate_bibliography(2, seed=42)
    assert tree_from_xml(tree_to_xml(original)) == original
    print("\nXML round-trip preserves the document structure")
    print("equivalent CLI invocation:")
    print(
        f"  repro-xpath --xml {paths[0]} --vars y,z --labels \\\n"
        "      --query \"descendant::book[child::author[. is $y] and "
        "child::title[. is $z]]\""
    )


if __name__ == "__main__":
    main()
