"""Querying real XML files: library usage mirroring the `repro-xpath` CLI.

Shows the end-to-end workflow a downstream user would follow: serialise
documents to XML, register them on a :class:`repro.session.Session`, compile
a query once with :meth:`Session.compile`, and stream it across the corpus
with :meth:`Session.query_corpus` (the Session replacement for the old
``answer_batch`` loop).

Run with::

    python examples/xml_files_cli.py
"""

import os
import tempfile

from repro import tree_from_xml, tree_to_xml
from repro.session import Session
from repro.workloads import generate_bibliography


def main() -> None:
    # Write two bibliographies of different sizes to disk as XML.
    paths = []
    tmpdir = tempfile.mkdtemp(prefix="repro-example-")
    for index, books in enumerate((3, 8)):
        document = generate_bibliography(books, authors_per_book=2, seed=index)
        path = os.path.join(tmpdir, f"bib{index}.xml")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(tree_to_xml(document, indent=True))
        paths.append(path)
    print("wrote sample documents:", *paths, sep="\n  ")

    with Session() as session:
        for path in paths:
            session.add_file(path)

        # Compile the pair query once; the Definition 1 check and the Fig. 7
        # translation happen here, not at every execution — and the session
        # memoises the plan, so repeated query_corpus calls reuse it.
        query = session.compile(
            "descendant::book[ child::author[. is $y] and child::title[. is $z] ]",
            ["y", "z"],
        )
        print(f"\ncompiled query of arity {query.arity}")

        for result in session.query_corpus(query):
            print(
                f"{result.doc_name}.xml: {result.report.tree_size} nodes, "
                f"{len(result.answers)} pairs"
            )

    # Round-trip sanity check: serialise + reparse preserves the document.
    original = generate_bibliography(2, seed=42)
    assert tree_from_xml(tree_to_xml(original)) == original
    print("\nXML round-trip preserves the document structure")
    print("equivalent CLI invocation:")
    print(
        f"  repro-xpath answer --xml {paths[0]} --vars y,z --labels \\\n"
        "      --query \"descendant::book[child::author[. is $y] and "
        "child::title[. is $z]]\""
    )


if __name__ == "__main__":
    main()
