"""Querying real XML files: library usage mirroring the `repro-xpath` CLI.

Shows the end-to-end workflow a downstream user would follow: serialise
documents to XML, load them back as :class:`repro.api.Document` objects,
compile a query once with :func:`repro.api.compile_query`, and run it
against all of them with :func:`repro.api.answer_batch`.

Run with::

    python examples/xml_files_cli.py
"""

import os
import tempfile

from repro import tree_from_xml, tree_to_xml
from repro.api import Document, answer_batch, compile_query
from repro.workloads import generate_bibliography


def main() -> None:
    # Write two bibliographies of different sizes to disk as XML.
    paths = []
    tmpdir = tempfile.mkdtemp(prefix="repro-example-")
    for index, books in enumerate((3, 8)):
        document = generate_bibliography(books, authors_per_book=2, seed=index)
        path = os.path.join(tmpdir, f"bib{index}.xml")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(tree_to_xml(document, indent=True))
        paths.append(path)
    print("wrote sample documents:", *paths, sep="\n  ")

    # Compile the pair query once; the Definition 1 check and the Fig. 7
    # translation happen here, not at every execution.
    query = compile_query(
        "descendant::book[ child::author[. is $y] and child::title[. is $z] ]",
        ["y", "z"],
    )
    print(f"\ncompiled query of arity {query.arity}")

    documents = [Document.from_file(path) for path in paths]
    for path, document, answers in zip(paths, documents, answer_batch(documents, query)):
        print(f"{os.path.basename(path)}: {document.size} nodes, {len(answers)} pairs")

    # Round-trip sanity check: serialise + reparse preserves the document.
    original = generate_bibliography(2, seed=42)
    assert tree_from_xml(tree_to_xml(original)) == original
    print("\nXML round-trip preserves the document structure")
    print("equivalent CLI invocation:")
    print(
        f"  repro-xpath answer --xml {paths[0]} --vars y,z --labels \\\n"
        "      --query \"descendant::book[child::author[. is $y] and "
        "child::title[. is $z]]\""
    )


if __name__ == "__main__":
    main()
