"""Acyclic conjunctive queries over XPath axes, answered four ways.

Section 6 of the paper identifies the union-free fragment of HCL⁻ with
acyclic conjunctive queries over binary relations, answerable with
Yannakakis' algorithm (Proposition 7).  This example builds the ACQ

    book(b): b is a book element
    author(b, y): y is an author child of b
    title(b, z):  z is a title child of b

as atoms over PPLbin binary queries, and answers the (y, z) projection with:

1. Yannakakis' semi-join algorithm on the materialised relations;
2. the Fig. 8 HCL⁻ answering algorithm on the Proposition 8 translation;
3. the end-to-end ``"polynomial"`` engine on the equivalent XPath
   expression, via the :mod:`repro.api` facade;
4. the registered ``"yannakakis"`` backend on the *same* XPath expression —
   the registry derives the conjunctive form automatically.

All four produce the same answer set.

Run with::

    python examples/acq_yannakakis.py
"""

from repro.hcl import Atom, ConjunctiveQuery, yannakakis_answer
from repro.hcl.acq import acq_to_hcl
from repro.pplbin import parse_pplbin, binary_intersect
from repro.pplbin.corexpath1 import invert
from repro.session import Session
from repro.workloads import generate_bibliography


def main() -> None:
    session = Session()
    session.add_tree(
        "bib",
        generate_bibliography(num_books=5, authors_per_book=2, titles_per_book=1, seed=5),
    )
    document = session.document("bib")
    oracle = document.oracle  # the shared per-document PPLbin oracle

    # Binary queries of L = PPLbin used as ACQ relations.
    author_child = parse_pplbin("[self::book]/child::author")
    title_child = parse_pplbin("[self::book]/child::title")
    reach_all = parse_pplbin("(ancestor::* union self)/(descendant::* union self)")

    query = ConjunctiveQuery(
        atoms=(
            Atom(author_child, "b", "y"),
            Atom(title_child, "b", "z"),
        ),
        output=("y", "z"),
    )

    relations = {
        author_child: oracle.pairs(author_child),
        title_child: oracle.pairs(title_child),
    }
    yannakakis = yannakakis_answer(query, relations, list(document.tree.nodes()))
    print("Yannakakis:", len(yannakakis), "answers")

    hcl_formula = acq_to_hcl(
        query, chstar=reach_all, invert=invert, intersect=binary_intersect
    )
    fig8 = document.answerer.answer(hcl_formula, ["y", "z"])
    print("Fig. 8 on the Proposition 8 translation:", len(fig8), "answers")

    xpath = "descendant::book[ child::author[. is $y] and child::title[. is $z] ]"
    compiled = session.compile(xpath, ["y", "z"])
    ppl = session.query("bib", compiled)
    print("polynomial engine on the XPath formulation:", len(ppl), "answers")

    via_registry = session.query("bib", compiled, engine="yannakakis")
    print("registered 'yannakakis' backend on the same query:", len(via_registry), "answers")

    assert yannakakis == fig8 == ppl == via_registry
    print("\nall four answering paths agree:", sorted(ppl)[:5], "...")
    session.close()


if __name__ == "__main__":
    main()
