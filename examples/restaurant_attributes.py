"""Wide-tuple querying: the restaurant scenario from the paper's introduction.

The paper motivates n-ary queries with tuple widths of 10 or more ("name,
address, phone number, fax number, street, ..."), and stresses that answering
time should be polynomial in the size of the *answer set* rather than in the
number of candidate tuples |t|^n.  This example builds a restaurant guide,
runs the 10-attribute query with the polynomial engine and shows how the
naive engine's candidate space explodes while the answer set stays small.

Run with::

    python examples/restaurant_attributes.py
"""

import time

from repro.session import Session
from repro.workloads import generate_restaurants, restaurant_query


def main() -> None:
    num_attributes = 10
    tree = generate_restaurants(
        num_restaurants=12,
        num_attributes=num_attributes,
        missing_probability=0.25,
        decoys_per_restaurant=2,
        seed=7,
    )
    session = Session()
    session.add_tree("guide", tree)
    document = session.document("guide")
    query, variables = restaurant_query(num_attributes)

    print(f"document: {document.size} nodes, tuple width n = {len(variables)}")
    print(
        "naive candidate space |t|^n =",
        f"{document.size ** len(variables):.3e}",
        "tuples (infeasible to enumerate)",
    )

    start = time.perf_counter()
    answers = session.query("guide", query, variables)
    elapsed = time.perf_counter() - start

    print(f"polynomial engine: {len(answers)} answer tuples in {elapsed * 1000:.1f} ms")
    for answer_tuple in sorted(answers)[:3]:
        labels = [document.labels[node] for node in answer_tuple]
        print("  sample tuple:", list(zip(answer_tuple, labels)))
    if len(answers) > 3:
        print(f"  ... and {len(answers) - 3} more")

    # Only restaurants with all attributes present contribute a tuple.
    report = session.report("guide", query, variables)
    session.close()
    print(
        f"\nquery size |P| = {report.expression_size}, translated HCL size = "
        f"{report.hcl_size}, distinct PPLbin leaves = {report.distinct_leaves}"
    )


if __name__ == "__main__":
    main()
