"""Why variable sharing is forbidden: the Proposition 3 SAT reduction.

PPL forbids sharing variables across compositions (NVS(/)) because allowing
it makes query non-emptiness NP-complete.  This example reduces a small CNF
formula to a Core XPath 2.0 query with shared variables, shows that the PPL
checker pinpoints exactly the violated conditions, and verifies that query
non-emptiness coincides with satisfiability (decided independently by DPLL).

Run with::

    python examples/sat_hardness.py
"""

from repro.core import ppl_violations
from repro.hardness import CNF, dpll_satisfiable, reduce_sat_to_xpath, random_3cnf


def demonstrate(name: str, formula: CNF) -> None:
    reduction = reduce_sat_to_xpath(formula)
    print(f"--- {name}: {formula.num_variables} variables, {formula.num_clauses} clauses")
    print("document nodes:", reduction.tree.size, " query size:", reduction.query.size)

    violations = ppl_violations(reduction.query)
    conditions = sorted({violation.condition for violation in violations})
    print("PPL conditions violated by the reduction query:", conditions)

    sat = dpll_satisfiable(formula) is not None
    nonempty = reduction.nonempty_naive()
    print(f"DPLL satisfiable: {sat}   query non-empty: {nonempty}")
    assert sat == nonempty, "the reduction must preserve satisfiability"
    print()


def main() -> None:
    # A satisfiable hand-written instance: (x1 or x2) and (not x1 or x2).
    demonstrate("satisfiable", CNF.from_lists([[1, 2], [-1, 2]]))

    # An unsatisfiable instance: all four sign patterns over two variables.
    demonstrate("unsatisfiable", CNF.from_lists([[1, 2], [1, -2], [-1, 2], [-1, -2]]))

    # A random 3-CNF near the phase transition (small, so the naive engine
    # can still decide it).
    demonstrate("random 3-CNF", random_3cnf(num_variables=4, num_clauses=9, seed=11))


if __name__ == "__main__":
    main()
