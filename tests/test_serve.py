"""Tests for the serving subsystem: plan cache, async server, NDJSON protocol.

Covers the satellite checklist of the serving PR: concurrent submission
ordering, backpressure, queue-full rejection, cancellation mid-stream,
graceful drain, plan-cache warm-start answer equality, corrupted-cache-file
recovery — plus the Query pickling regression (round-tripping every engine),
the corpus-wide answer-cache byte budget and the executor's targeted shard
refresh that live serving relies on.

The async tests run through plain ``asyncio.run`` (no pytest-asyncio in the
environment); each owns its loop, so server fixtures are built inside the
coroutine under test.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import copy
import json
import os
import pickle
import sys

import pytest

from repro.api import Document, available_engines, compile_query
from repro.api.query import Query
from repro.corpus import (
    AnswerCache,
    CorpusError,
    CorpusExecutor,
    DocumentStore,
    estimate_answer_bytes,
)
from repro.serve import (
    CorpusServer,
    PlanCache,
    ProtocolServer,
    ServerClosedError,
    ServerOverloadedError,
    request_lines,
)
from repro.trees.xml_io import tree_to_xml
from repro.workloads.bibliography import generate_bibliography

PAIR_QUERY = "descendant::book[child::author[. is $y] and child::title[. is $z]]"
PAIR_VARS = ("y", "z")
BOOLEAN_QUERY = "descendant::book[child::author and child::title]"


def run(coroutine):
    """Run one async test body on a fresh event loop."""
    return asyncio.run(coroutine)


def make_store(documents: int = 6, *, seed: int = 0, **kwargs) -> DocumentStore:
    store = DocumentStore(**kwargs)
    for index in range(documents):
        tree = generate_bibliography(2 + index % 3, seed=seed + index)
        store.add_xml(f"doc{index:03d}", tree_to_xml(tree))
    return store


def batch_answers(store: DocumentStore, queries, engine="polynomial") -> dict:
    """Reference output: the plain CorpusExecutor batch results."""
    with CorpusExecutor(store, strategy="serial", engine=engine) as executor:
        return {
            (result.doc_name, result.query): result.answers
            for result in executor.run(queries)
        }


# =====================================================================
# Query pickling (regression: plan persistence needs robust round-trips)
# =====================================================================
class TestQueryPickle:
    def test_roundtrip_equality(self):
        query = compile_query(PAIR_QUERY, PAIR_VARS)
        clone = pickle.loads(pickle.dumps(query))
        assert clone == query
        assert clone.text == query.text
        assert clone.hcl == query.hcl
        assert clone.variables == query.variables

    @pytest.mark.parametrize("engine", sorted(available_engines()))
    def test_roundtrip_answers_every_engine(self, engine):
        from repro.api import get_engine

        # Engines that cannot evaluate free variables get the variable-free
        # form; what matters is that the *pickled* plan answers identically.
        text, variables = (PAIR_QUERY, PAIR_VARS)
        if not get_engine(engine).capabilities.supports_variables:
            text, variables = (BOOLEAN_QUERY, ())
        document = Document.from_xml(tree_to_xml(generate_bibliography(3, seed=4)))
        query = compile_query(text, variables, require_ppl=False)
        expected = document.answer(query, engine=engine)
        clone = pickle.loads(pickle.dumps(query))
        fresh = Document.from_xml(tree_to_xml(generate_bibliography(3, seed=4)))
        assert fresh.answer(clone, engine=engine) == expected

    def test_deep_query_pickle(self):
        # Deep ASTs used to blow the recursion limit under the default
        # structural pickle; plan_size-scaled headroom fixes that.
        text = "/".join(["child::a"] * 400)
        query = compile_query(text, (), require_ppl=False)
        clone = pickle.loads(pickle.dumps(query))
        assert clone.plan_size() == query.plan_size()
        assert clone.unparse() == query.unparse()

    def test_deep_query_deepcopy(self):
        text = "/".join(["child::a"] * 400)
        query = compile_query(text, (), require_ppl=False)
        clone = copy.deepcopy(query)
        assert clone.unparse() == query.unparse()

    def test_pickle_inside_containers(self):
        queries = [
            compile_query(PAIR_QUERY, PAIR_VARS),
            compile_query(BOOLEAN_QUERY),
        ]
        clones = pickle.loads(pickle.dumps(queries))
        assert clones == queries

    def test_pickle_preserves_violations(self):
        query = compile_query(
            "child::a[child::b[. is $x] or child::c[. is $x]]/child::d[. is $x]",
            ("x",),
            require_ppl=False,
        )
        clone = pickle.loads(pickle.dumps(query))
        assert clone.violations == query.violations
        assert clone.is_ppl == query.is_ppl

    def test_pickle_preserves_pplbin_translation(self):
        query = compile_query(BOOLEAN_QUERY)
        assert query.pplbin is not None
        clone = pickle.loads(pickle.dumps(query))
        assert clone.pplbin == query.pplbin
        assert clone.is_variable_free

    def test_pickle_strips_cached_ast_state(self):
        # Touching the lazily-cached derived attributes (size, free
        # variables) on every AST node must not bloat the pickle: plan files
        # and worker payloads should cost the same whether or not a plan was
        # used before serialisation.
        query = compile_query(PAIR_QUERY, PAIR_VARS)
        fresh_blob = pickle.dumps(query)
        for node in query.source.walk():
            assert node.size >= 1
            assert node.free_variables is not None
        assert query.hcl is not None
        for node in query.hcl.walk():
            assert node.size >= 1
        touched_blob = pickle.dumps(query)
        assert len(touched_blob) == len(fresh_blob)
        clone = pickle.loads(touched_blob)
        assert clone == query
        assert clone.source.size == query.source.size  # recomputed lazily

    def test_recursion_limit_restored(self):
        before = sys.getrecursionlimit()
        query = compile_query("/".join(["child::a"] * 200), (), require_ppl=False)
        pickle.loads(pickle.dumps(query))
        assert sys.getrecursionlimit() == before

    def test_cross_process_roundtrip(self):
        query = compile_query(PAIR_QUERY, PAIR_VARS)
        with concurrent.futures.ProcessPoolExecutor(max_workers=1) as pool:
            echoed = pool.submit(_identity, query).result()
        assert echoed == query
        assert echoed.hcl == query.hcl


def _identity(value):
    return value


# =====================================================================
# Plan cache
# =====================================================================
class TestPlanCache:
    def test_key_is_stable_and_content_addressed(self, tmp_path):
        key = PlanCache.key(PAIR_QUERY, PAIR_VARS, "polynomial")
        assert key == PlanCache.key(PAIR_QUERY, PAIR_VARS, "polynomial")
        assert len(key) == 64

    def test_key_sensitivity(self):
        base = PlanCache.key(PAIR_QUERY, PAIR_VARS, "polynomial")
        assert PlanCache.key(BOOLEAN_QUERY, PAIR_VARS, "polynomial") != base
        assert PlanCache.key(PAIR_QUERY, ("y",), "polynomial") != base
        assert PlanCache.key(PAIR_QUERY, PAIR_VARS, "naive") != base

    def test_store_load_roundtrip(self, tmp_path):
        cache = PlanCache(tmp_path)
        query = compile_query(PAIR_QUERY, PAIR_VARS)
        path = cache.store(query, expression=PAIR_QUERY)
        assert path.exists()
        loaded = cache.load(PAIR_QUERY, PAIR_VARS)
        assert loaded == query
        assert loaded.hcl == query.hcl
        assert cache.stats.hits == 1

    def test_load_miss_returns_none(self, tmp_path):
        cache = PlanCache(tmp_path)
        assert cache.load("child::a") is None
        assert cache.stats.misses == 1

    def test_get_or_compile_compiles_once(self, tmp_path):
        cache = PlanCache(tmp_path)
        first = cache.get_or_compile(PAIR_QUERY, PAIR_VARS)
        second = cache.get_or_compile(PAIR_QUERY, PAIR_VARS)
        assert first == second
        stats = cache.stats
        assert stats.stores == 1
        assert stats.hits == 1

    def test_cached_plan_answers_equal_fresh_compile(self, tmp_path):
        cache = PlanCache(tmp_path)
        cache.get_or_compile(PAIR_QUERY, PAIR_VARS)
        warm = PlanCache(tmp_path)  # fresh instance = a new process's view
        loaded = warm.get_or_compile(PAIR_QUERY, PAIR_VARS)
        assert warm.stats.hits == 1 and warm.stats.stores == 0
        document = Document.from_xml(tree_to_xml(generate_bibliography(3, seed=7)))
        assert document.answer(loaded) == document.answer(
            compile_query(PAIR_QUERY, PAIR_VARS)
        )

    def test_corrupted_file_recovers(self, tmp_path):
        cache = PlanCache(tmp_path)
        query = compile_query(PAIR_QUERY, PAIR_VARS)
        path = cache.store(query, expression=PAIR_QUERY)
        path.write_bytes(b"\x80\x05 this is not a plan")
        assert cache.load(PAIR_QUERY, PAIR_VARS) is None
        assert not path.exists()  # the bad file was dropped
        assert cache.stats.invalid == 1
        # And the next get_or_compile repopulates it.
        again = cache.get_or_compile(PAIR_QUERY, PAIR_VARS)
        assert again == query

    def test_truncated_file_recovers(self, tmp_path):
        cache = PlanCache(tmp_path)
        path = cache.store(compile_query(PAIR_QUERY, PAIR_VARS), expression=PAIR_QUERY)
        path.write_bytes(path.read_bytes()[: 10])
        assert cache.load(PAIR_QUERY, PAIR_VARS) is None
        assert cache.stats.invalid == 1

    def test_format_version_mismatch_is_a_miss(self, tmp_path):
        cache = PlanCache(tmp_path)
        query = compile_query(BOOLEAN_QUERY)
        path = cache.path_for(BOOLEAN_QUERY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(
            pickle.dumps(
                {
                    "format": -1,
                    "text": BOOLEAN_QUERY,
                    "variables": [],
                    "engine": "any",
                    "query": query,
                }
            )
        )
        assert cache.load(BOOLEAN_QUERY) is None
        assert cache.stats.invalid == 1

    def test_identity_mismatch_is_a_miss(self, tmp_path):
        cache = PlanCache(tmp_path)
        source = cache.store(compile_query(BOOLEAN_QUERY), expression=BOOLEAN_QUERY)
        # A valid payload filed under the wrong content address.
        imposter = cache.path_for(PAIR_QUERY, PAIR_VARS)
        imposter.write_bytes(source.read_bytes())
        assert cache.load(PAIR_QUERY, PAIR_VARS) is None
        assert not imposter.exists()

    def test_byte_budget_evicts_least_recently_used(self, tmp_path):
        cache = PlanCache(tmp_path)
        paths = {}
        for index, text in enumerate(["child::a", "child::b", "child::c"]):
            query = compile_query(text)
            paths[text] = cache.store(query, expression=text)
            os.utime(paths[text], (1000 + index, 1000 + index))
        size = paths["child::a"].stat().st_size
        cache.max_bytes = int(size * 2.5)  # room for two plans
        # Touch "child::a" (oldest) so "child::b" becomes the LRU victim.
        os.utime(paths["child::a"], (2000, 2000))
        cache.store(compile_query("child::d"), expression="child::d")
        remaining = {path.name for path in tmp_path.iterdir()}
        assert paths["child::b"].name not in remaining
        assert paths["child::a"].name in remaining
        assert cache.stats.evictions >= 1

    def test_clear_and_total_bytes(self, tmp_path):
        cache = PlanCache(tmp_path)
        cache.store(compile_query("child::a"), expression="child::a")
        cache.store(compile_query("child::b"), expression="child::b")
        assert cache.total_bytes() > 0
        assert len(cache) == 2
        assert cache.clear() == 2
        assert cache.total_bytes() == 0

    def test_concurrent_store_of_same_key(self, tmp_path):
        # Regression: two threads missing on the same expression store
        # simultaneously; per-thread temp files keep the atomic rename from
        # racing (a shared temp name made os.replace raise FileNotFoundError).
        cache = PlanCache(tmp_path)
        query = compile_query(PAIR_QUERY, PAIR_VARS)
        errors = []

        def hammer():
            try:
                for _ in range(50):
                    cache.store(query, expression=PAIR_QUERY)
            except Exception as error:  # pragma: no cover - the regression
                errors.append(error)

        import threading

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert cache.load(PAIR_QUERY, PAIR_VARS) is not None

    def test_deep_plan_roundtrip(self, tmp_path):
        cache = PlanCache(tmp_path)
        text = "/".join(["child::a"] * 300)
        cache.get_or_compile(text)
        loaded = PlanCache(tmp_path).load(text)
        assert loaded is not None
        assert loaded.unparse() == text


# =====================================================================
# Corpus-wide answer cache (byte budget)
# =====================================================================
class TestAnswerCache:
    def test_hit_miss_counters(self):
        cache = AnswerCache()
        key = ("owner", "query", (), "polynomial")
        assert cache.get(key) is None
        cache.put(key, frozenset({(1,)}))
        assert cache.get(key) == frozenset({(1,)})
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.insertions) == (1, 1, 1)

    def test_byte_budget_lru_eviction(self):
        answers = frozenset({(index, index) for index in range(10)})
        unit = estimate_answer_bytes(answers)
        cache = AnswerCache(max_bytes=unit * 2)
        cache.put(("a",), answers)
        cache.put(("b",), answers)
        cache.get(("a",))  # refresh "a"; "b" becomes LRU
        cache.put(("c",), answers)
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) is not None
        assert cache.stats.evictions == 1
        assert cache.stats.current_bytes <= unit * 2

    def test_oversized_entry_not_stored(self):
        cache = AnswerCache(max_bytes=8)
        cache.put(("a",), frozenset({(1, 2, 3), (4, 5, 6)}))
        assert len(cache) == 0
        assert cache.get(("a",)) is None

    def test_drop_owner_scopes_by_prefix(self):
        cache = AnswerCache()
        cache.put(("one", "q"), frozenset({(1,)}))
        cache.put(("two", "q"), frozenset({(2,)}))
        assert cache.drop_owner("one") == 1
        assert cache.get(("one", "q")) is None
        assert cache.get(("two", "q")) == frozenset({(2,)})

    def test_answers_survive_document_eviction(self):
        store = make_store(3, max_resident=1)
        first = store.get("doc000").answer(PAIR_QUERY, PAIR_VARS)
        store.get("doc001")  # evicts doc000
        assert "doc000" not in store.resident_names()
        hits_before = store.answer_cache.stats.hits
        again = store.get("doc000").answer(PAIR_QUERY, PAIR_VARS)
        assert again == first
        assert store.answer_cache.stats.hits == hits_before + 1

    def test_replacement_under_concurrent_get_never_serves_stale(self):
        # Regression: a get() racing a discard + same-name re-add must never
        # install a document parsed from the replaced source (the loader
        # re-validates the registration token before publishing).
        import threading

        store = DocumentStore()
        from repro.trees.tree import Node, Tree

        def doc_xml(label):
            return tree_to_xml(Tree(Node("bib", [Node("book", [Node(label)])])))

        store.add_xml("d", doc_xml("author"))
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                try:
                    document = store.get("d")
                except CorpusError:
                    continue
                labels = document.tree.alphabet()
                if not ({"author", "title"} & labels):
                    failures.append(labels)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for round_index in range(60):
                label = "title" if round_index % 2 else "author"
                store.discard("d")
                store.add_xml("d", doc_xml(label))
                document = store.get("d")
                current = document.tree.alphabet()
                assert label in current, (round_index, current)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert failures == []

    def test_discard_invalidates_answers(self):
        store = DocumentStore()
        store.add_xml("a", tree_to_xml(generate_bibliography(1, seed=0)))
        one = store.get("a").answer(PAIR_QUERY, PAIR_VARS)
        assert len(one) == 1
        store.discard("a")
        store.add_xml("a", tree_to_xml(generate_bibliography(3, seed=1)))
        assert len(store.get("a").answer(PAIR_QUERY, PAIR_VARS)) == 3

    def test_store_answer_cache_bounded_by_default(self):
        # Answers survive document eviction, so the shared cache must come
        # with a finite default budget — unbounded only on explicit request.
        from repro.corpus.store import DEFAULT_ANSWER_CACHE_BYTES

        store = DocumentStore()
        assert store.answer_cache is not None
        assert store.answer_cache.max_bytes == DEFAULT_ANSWER_CACHE_BYTES
        unbounded = DocumentStore(answer_cache_bytes=None)
        assert unbounded.answer_cache.max_bytes is None

    def test_store_budget_bounds_footprint(self):
        store = make_store(4, answer_cache_bytes=1)  # essentially everything evicts
        for name in store.names():
            store.get(name).answer(PAIR_QUERY, PAIR_VARS)
        stats = store.answer_cache.stats
        assert stats.current_bytes <= 1

    def test_report_carries_cache_telemetry(self):
        store = make_store(3)
        with CorpusExecutor(store) as executor:
            executor.run_report((PAIR_QUERY, list(PAIR_VARS)))
            report = executor.run_report((PAIR_QUERY, list(PAIR_VARS)))
        assert report.cache is not None
        assert report.cache["hits"] >= 3  # second round served from the memo
        assert "cache" in report.to_dict()

    def test_worker_cache_stats_aggregate(self):
        store = make_store(4)
        with CorpusExecutor(store, strategy="processes", max_workers=2) as executor:
            list(executor.run((PAIR_QUERY, list(PAIR_VARS))))
            list(executor.run((PAIR_QUERY, list(PAIR_VARS))))
            stats = executor.answer_cache_stats()
        assert stats is not None
        assert stats["hits"] >= 4  # the second sweep hit every worker memo


# =====================================================================
# Targeted shard refresh
# =====================================================================
class TestTargetedRefresh:
    def test_append_rebuilds_only_one_shard(self):
        store = make_store(6)
        with CorpusExecutor(store, strategy="processes", max_workers=2) as executor:
            baseline = {r.doc_name: r.answers for r in executor.run((PAIR_QUERY, PAIR_VARS))}
            pools_before = list(executor._pools)
            store.add_xml("extra", tree_to_xml(generate_bibliography(2, seed=99)))
            after = {r.doc_name: r.answers for r in executor.run((PAIR_QUERY, PAIR_VARS))}
            pools_after = list(executor._pools)
            kept = sum(
                1
                for before, current in zip(pools_before, pools_after)
                if before is not None and before is current
            )
            assert kept == 1  # one shard kept its live pool (and caches)
            assert executor.pools_kept == 1
            assert executor.pools_rebuilt == 1
        assert set(after) == set(baseline) | {"extra"}
        assert all(after[name] == baseline[name] for name in baseline)

    def test_discard_rebuilds_only_owning_shard(self):
        store = make_store(6)
        with CorpusExecutor(store, strategy="processes", max_workers=2) as executor:
            list(executor.run((PAIR_QUERY, PAIR_VARS)))
            victim = executor._shard_names[1][-1]
            store.discard(victim)
            results = {r.doc_name for r in executor.run((PAIR_QUERY, PAIR_VARS))}
            assert executor.pools_kept == 1
            assert executor.pools_rebuilt == 1
        assert victim not in results
        assert len(results) == 5

    def test_same_name_replacement_not_kept(self):
        store = DocumentStore()
        for index in range(4):
            store.add_xml(
                f"doc{index}", tree_to_xml(generate_bibliography(1, seed=index))
            )
        with CorpusExecutor(store, strategy="processes", max_workers=2) as executor:
            before = {r.doc_name: r.answers for r in executor.run((PAIR_QUERY, PAIR_VARS))}
            assert len(before["doc0"]) == 1
            store.discard("doc0")
            store.add_xml("doc0", tree_to_xml(generate_bibliography(3, seed=50)))
            after = {r.doc_name: r.answers for r in executor.run((PAIR_QUERY, PAIR_VARS))}
        assert len(after["doc0"]) == 3  # no stale worker answered

    def test_unchanged_store_keeps_partition(self):
        store = make_store(4)
        with CorpusExecutor(store, strategy="processes", max_workers=2) as executor:
            list(executor.run((PAIR_QUERY, PAIR_VARS)))
            pools = list(executor._pools)
            list(executor.run((PAIR_QUERY, PAIR_VARS)))
            assert executor._pools == pools
            assert executor.pools_rebuilt == 0


# =====================================================================
# Executor submission hook
# =====================================================================
class TestSubmitDocument:
    @pytest.mark.parametrize("strategy", ["serial", "threads"])
    def test_future_resolves_to_results(self, strategy):
        store = make_store(3)
        with CorpusExecutor(store, strategy=strategy) as executor:
            future = executor.submit_document("doc001", (PAIR_QUERY, list(PAIR_VARS)))
            results = future.result(timeout=30)
        assert [r.doc_name for r in results] == ["doc001"]
        assert results[0].answers == batch_answers(
            make_store(3), (PAIR_QUERY, list(PAIR_VARS))
        )[("doc001", results[0].query)]

    def test_processes_strategy_submission(self):
        store = make_store(3)
        with CorpusExecutor(store, strategy="processes", max_workers=2) as executor:
            futures = [
                executor.submit_document(name, (PAIR_QUERY, list(PAIR_VARS)))
                for name in store.names()
            ]
            collected = {
                future.result(timeout=60)[0].doc_name for future in futures
            }
        assert collected == set(store.names())

    def test_unknown_document_raises(self):
        store = make_store(2)
        with CorpusExecutor(store) as executor:
            with pytest.raises(CorpusError):
                executor.submit_document("nope", PAIR_QUERY)

    def test_processes_cancel_propagates_to_shard_queue(self):
        # Regression: cancelling the outer future must pull the queued work
        # out of the single-worker shard pool (and the completion callback
        # must tolerate the cancelled outer instead of raising
        # InvalidStateError inside the pool's callback machinery).
        store = make_store(3)
        with CorpusExecutor(store, strategy="processes", max_workers=1) as executor:
            first = executor.submit_document("doc000", (PAIR_QUERY, list(PAIR_VARS)))
            queued = executor.submit_document("doc001", (PAIR_QUERY, list(PAIR_VARS)))
            assert queued.cancel()
            assert len(first.result(timeout=60)) == 1
            assert queued.cancelled()


# =====================================================================
# CorpusServer (asyncio)
# =====================================================================
class TestCorpusServer:
    def test_ordered_submission_streams_in_store_order(self):
        async def body():
            store = make_store(6)
            async with CorpusServer(store, max_concurrent=3) as server:
                submission = await server.submit((PAIR_QUERY, list(PAIR_VARS)))
                names = [result.doc_name async for result in submission]
            assert names == list(store.names())

        run(body())

    def test_answers_match_batch_executor(self):
        async def body():
            store = make_store(6)
            reference = batch_answers(store, (PAIR_QUERY, list(PAIR_VARS)))
            async with CorpusServer(store) as server:
                results = await server.answer((PAIR_QUERY, list(PAIR_VARS)))
            assert {
                (r.doc_name, r.query): r.answers for r in results
            } == reference

        run(body())

    def test_concurrent_submissions_all_complete(self):
        async def body():
            store = make_store(5)
            async with CorpusServer(store, max_concurrent=2) as server:
                submissions = [
                    await server.submit((PAIR_QUERY, list(PAIR_VARS)))
                    for _ in range(4)
                ]
                outcomes = await asyncio.gather(
                    *(submission.results() for submission in submissions)
                )
            reference = {r.doc_name: r.answers for r in outcomes[0]}
            for outcome in outcomes[1:]:
                assert {r.doc_name: r.answers for r in outcome} == reference
            assert all(len(outcome) == 5 for outcome in outcomes)

        run(body())

    def test_unordered_yields_same_multiset(self):
        async def body():
            store = make_store(6)
            async with CorpusServer(store, max_concurrent=4) as server:
                ordered = await server.answer((PAIR_QUERY, list(PAIR_VARS)))
                unordered = await server.answer(
                    (PAIR_QUERY, list(PAIR_VARS)), ordered=False
                )
            assert {r.doc_name: r.answers for r in unordered} == {
                r.doc_name: r.answers for r in ordered
            }

        run(body())

    def test_multi_query_batches(self):
        async def body():
            store = make_store(3)
            batch = [(PAIR_QUERY, list(PAIR_VARS)), BOOLEAN_QUERY]
            reference = batch_answers(store, batch)
            async with CorpusServer(store) as server:
                results = await server.answer(batch)
            assert len(results) == 6
            assert {
                (r.doc_name, r.query): r.answers for r in results
            } == reference

        run(body())

    def test_queue_full_rejection(self):
        async def body():
            store = make_store(4)
            async with CorpusServer(store, max_queue=4) as server:
                blockers: list[concurrent.futures.Future] = []

                def stalled_submit(name, queries, *, engine=None):
                    future: concurrent.futures.Future = concurrent.futures.Future()
                    blockers.append(future)
                    return future

                server.executor.submit_document = stalled_submit
                first = await server.submit((PAIR_QUERY, list(PAIR_VARS)))
                await asyncio.sleep(0.05)
                with pytest.raises(ServerOverloadedError):
                    await server.submit((PAIR_QUERY, list(PAIR_VARS)))
                assert server.stats.rejected == 1
                for future in blockers:
                    future.set_result([])
                await first.results()
                # Slots released: a new submission is admitted again.
                second = await server.submit((PAIR_QUERY, list(PAIR_VARS)))
                await asyncio.sleep(0.05)
                for future in blockers:
                    if not future.done():
                        future.set_result([])
                await second.results()

        run(body())

    def test_oversized_submission_admitted_when_idle(self):
        # Overload must be load-dependent, never structural: a corpus
        # larger than max_queue is still servable on an idle server.
        async def body():
            store = make_store(5)
            async with CorpusServer(store, max_queue=3) as server:
                results = await server.answer((PAIR_QUERY, list(PAIR_VARS)))
                assert len(results) == 5

        run(body())

    def test_oversized_submission_rejected_when_busy(self):
        async def body():
            store = make_store(5)
            async with CorpusServer(store, max_queue=3) as server:
                blockers: list[concurrent.futures.Future] = []

                def stalled_submit(name, queries, *, engine=None):
                    future: concurrent.futures.Future = concurrent.futures.Future()
                    blockers.append(future)
                    return future

                server.executor.submit_document = stalled_submit
                first = await server.submit(
                    (PAIR_QUERY, list(PAIR_VARS)), ["doc000"]
                )
                await asyncio.sleep(0.05)
                with pytest.raises(ServerOverloadedError):
                    await server.submit((PAIR_QUERY, list(PAIR_VARS)))
                assert server.stats.rejected == 1
                for future in blockers:
                    future.set_result([])
                await first.results()

        run(body())

    def test_backpressure_bounds_result_buffer(self):
        async def body():
            store = make_store(8)
            async with CorpusServer(
                store, max_concurrent=8, stream_buffer=2
            ) as server:
                submission = await server.submit((PAIR_QUERY, list(PAIR_VARS)))
                collected = []
                async for result in submission:
                    collected.append(result)
                    await asyncio.sleep(0.02)  # a deliberately slow consumer
                    assert submission._queue.qsize() <= 2
                assert len(collected) == 8

        run(body())

    def test_cancellation_mid_stream(self):
        async def body():
            store = make_store(10)
            # stream_buffer=2 keeps the producer close behind the consumer,
            # so the cancel lands while results are still outstanding.
            async with CorpusServer(
                store, max_concurrent=1, stream_buffer=2
            ) as server:
                submission = await server.submit((PAIR_QUERY, list(PAIR_VARS)))
                received = []
                async for result in submission:
                    received.append(result)
                    if len(received) == 2:
                        submission.cancel()
                await submission.wait()
                assert submission.cancelled
                assert 2 <= len(received) < 10
                stats = server.stats
                assert stats.cancelled == 1
                assert stats.queued == 0  # admission slots fully released
                # The server is still healthy for new submissions.
                results = await server.answer((PAIR_QUERY, list(PAIR_VARS)))
                assert len(results) == 10

        run(body())

    def test_cancel_with_abandoned_consumer_does_not_wedge_drain(self):
        # Regression: a consumer that cancels and walks away (the client
        # disconnected) must not leave the producer blocked on the full
        # per-submission queue — drain()/aclose() have to finish.
        async def body():
            store = make_store(8)
            server = CorpusServer(store, max_concurrent=1, stream_buffer=1)
            submission = await server.submit((PAIR_QUERY, list(PAIR_VARS)))
            first = await submission.__anext__()
            assert first.doc_name == "doc000"
            submission.cancel()
            # No further reads: the stream is abandoned with results queued.
            await asyncio.wait_for(server.drain(), timeout=10)
            assert submission.cancelled
            await server.aclose()

        run(body())

    def test_cancel_before_producer_starts_ends_stream(self):
        # Regression: cancelling a submission before its producer task ever
        # ran executes no coroutine body (no finally, no sentinel from
        # there) — cancel() itself must close the stream or consumers hang.
        async def body():
            store = make_store(3)
            async with CorpusServer(store) as server:
                submission = await server.submit((PAIR_QUERY, list(PAIR_VARS)))
                submission.cancel()
                results = await asyncio.wait_for(submission.results(), timeout=10)
                assert submission.cancelled
                assert len(results) < 3
                assert server.stats.cancelled == 1
                assert server.stats.queued == 0

        run(body())

    def test_completed_stream_with_vanished_consumer_drains(self):
        # Regression: a submission that finishes *normally* into a full,
        # never-read queue must not block on the sentinel and wedge drain().
        async def body():
            store = make_store(2)
            server = CorpusServer(store, stream_buffer=1)
            await server.submit((PAIR_QUERY, list(PAIR_VARS)), ["doc000"])
            await asyncio.sleep(0.3)  # result fills the unread queue
            await asyncio.wait_for(server.drain(), timeout=10)
            await server.aclose()

        run(body())

    def test_cancel_with_full_queue_still_delivers_queued_results(self):
        # The docstring promise: results already queued at cancel time are
        # still delivered to a consumer that keeps reading (the sentinel
        # never displaces them).
        async def body():
            store = make_store(8)
            async with CorpusServer(
                store, max_concurrent=1, stream_buffer=2
            ) as server:
                submission = await server.submit((PAIR_QUERY, list(PAIR_VARS)))
                await asyncio.sleep(0.3)  # producer fills the stream queue
                queued = submission._queue.qsize()
                assert queued == 2
                submission.cancel()
                await submission.wait()
                received = [result async for result in submission]
                assert len(received) >= queued

        run(body())

    def test_abandoned_stream_without_cancel_still_drains(self):
        # Regression: a consumer that just stops iterating (no cancel())
        # must not wedge drain(): past abandon_grace the unread stream is
        # treated as abandoned and cancelled.
        async def body():
            store = make_store(8)
            server = CorpusServer(
                store, max_concurrent=1, stream_buffer=1, abandon_grace=0.2
            )
            submission = await server.submit((PAIR_QUERY, list(PAIR_VARS)))
            first = await submission.__anext__()
            assert first.doc_name == "doc000"
            # Walk away without cancelling.
            await asyncio.wait_for(server.drain(), timeout=10)
            assert submission.cancelled
            await server.aclose()

        run(body())

    def test_failed_submission_with_abandoned_consumer_drains(self):
        # Same guarantee on the error path: a worker failure with nobody
        # reading the stream must not block shutdown.
        async def body():
            store = make_store(3)
            server = CorpusServer(store, max_concurrent=1, stream_buffer=1)
            submission = await server.submit((PAIR_QUERY, list(PAIR_VARS)))
            submission.cancel()
            await asyncio.wait_for(server.drain(), timeout=10)
            await server.aclose()

        run(body())

    def test_plan_cache_shared_across_engines(self, tmp_path):
        # Regression: plans carry every translation, so a cache warmed
        # ahead of time must hit regardless of the engine the server runs
        # with — the key uses the shared ANY_ENGINE label, not self.engine.
        async def body():
            cache = PlanCache(tmp_path)
            cache.get_or_compile(PAIR_QUERY, PAIR_VARS)  # warm (ANY_ENGINE)
            store = make_store(2)
            async with CorpusServer(
                store, plan_cache=cache, engine="naive"
            ) as server:
                results = await server.answer((PAIR_QUERY, list(PAIR_VARS)))
            assert len(results) == 2
            assert cache.stats.hits == 1
            assert cache.stats.stores == 1  # only the warm-up compile stored

        run(body())

    def test_graceful_drain_finishes_in_flight(self):
        async def body():
            store = make_store(5)
            server = CorpusServer(store, max_concurrent=2)
            submission = await server.submit((PAIR_QUERY, list(PAIR_VARS)))
            collector = asyncio.create_task(submission.results())
            await server.drain()
            with pytest.raises(ServerClosedError):
                await server.submit(BOOLEAN_QUERY)
            results = await collector
            assert len(results) == 5
            await server.aclose()
            assert server.stats.queued == 0
            assert server.stats.in_flight == 0

        run(body())

    def test_submit_after_close_raises(self):
        async def body():
            store = make_store(2)
            server = CorpusServer(store)
            await server.aclose()
            with pytest.raises(ServerClosedError):
                await server.submit(BOOLEAN_QUERY)

        run(body())

    def test_worker_error_propagates_to_consumer(self):
        async def body():
            store = make_store(3)
            async with CorpusServer(store) as server:
                submission = await server.submit(
                    (PAIR_QUERY, list(PAIR_VARS)), engine="no-such-engine"
                )
                with pytest.raises(Exception) as excinfo:
                    await submission.results()
                assert "no-such-engine" in str(excinfo.value)
                assert server.stats.failed == 1

        run(body())

    def test_unknown_document_rejected_before_scheduling(self):
        async def body():
            store = make_store(2)
            async with CorpusServer(store) as server:
                with pytest.raises(CorpusError):
                    await server.submit(BOOLEAN_QUERY, ["missing"])
                assert server.stats.submitted == 0

        run(body())

    def test_stats_latency_percentiles(self):
        async def body():
            store = make_store(4)
            async with CorpusServer(store) as server:
                await server.answer((PAIR_QUERY, list(PAIR_VARS)))
                stats = server.stats
                assert stats.completed == 4
                assert stats.p50_latency is not None
                assert stats.p95_latency >= stats.p50_latency
                payload = stats.to_dict()
                assert payload["completed"] == 4
                json.dumps(payload)  # JSON-serialisable end to end

        run(body())

    def test_plan_cache_wired_into_submission(self, tmp_path):
        async def body():
            store = make_store(3)
            cache = PlanCache(tmp_path)
            async with CorpusServer(store, plan_cache=cache) as server:
                await server.answer((PAIR_QUERY, list(PAIR_VARS)))
                await server.answer((PAIR_QUERY, list(PAIR_VARS)))
            stats = cache.stats
            assert stats.stores == 1
            assert stats.hits >= 1

        run(body())

    def test_warm_start_equality_across_servers(self, tmp_path):
        async def body():
            cold_store = make_store(4)
            cache = PlanCache(tmp_path)
            async with CorpusServer(cold_store, plan_cache=cache) as server:
                cold = await server.answer((PAIR_QUERY, list(PAIR_VARS)))
            warm_store = make_store(4)
            warm_cache = PlanCache(tmp_path)
            async with CorpusServer(warm_store, plan_cache=warm_cache) as server:
                warm = await server.answer((PAIR_QUERY, list(PAIR_VARS)))
            assert warm_cache.stats.hits == 1 and warm_cache.stats.stores == 0
            assert {r.doc_name: r.answers for r in warm} == {
                r.doc_name: r.answers for r in cold
            }

        run(body())

    def test_processes_strategy_serving(self):
        async def body():
            store = make_store(4)
            reference = batch_answers(store, (PAIR_QUERY, list(PAIR_VARS)))
            async with CorpusServer(
                store, strategy="processes", max_workers=2
            ) as server:
                results = await server.answer((PAIR_QUERY, list(PAIR_VARS)))
            assert {
                (r.doc_name, r.query): r.answers for r in results
            } == reference

        run(body())

    def test_compiled_query_objects_accepted(self):
        async def body():
            store = make_store(2)
            query = compile_query(PAIR_QUERY, PAIR_VARS)
            async with CorpusServer(store) as server:
                results = await server.answer(query)
            assert len(results) == 2

        run(body())

    def test_document_subset(self):
        async def body():
            store = make_store(5)
            async with CorpusServer(store) as server:
                results = await server.answer(
                    (PAIR_QUERY, list(PAIR_VARS)), ["doc004", "doc001"]
                )
            assert [r.doc_name for r in results] == ["doc004", "doc001"]

        run(body())

    def test_invalid_configuration_rejected(self):
        from repro.serve import ServeError

        store = make_store(1)
        with pytest.raises(ServeError):
            CorpusServer(store, max_concurrent=0)
        with pytest.raises(ServeError):
            CorpusServer(store, max_queue=0)
        with pytest.raises(ServeError):
            CorpusServer(store, stream_buffer=0)


# =====================================================================
# NDJSON protocol
# =====================================================================
async def _tcp_fixture(store, **server_kwargs):
    """Start a CorpusServer + TCP endpoint; return (server, tcp, port)."""
    server = CorpusServer(store, **server_kwargs)
    tcp = await ProtocolServer(server).serve_tcp("127.0.0.1", 0)
    port = tcp.sockets[0].getsockname()[1]
    return server, tcp, port


async def _teardown(server, tcp):
    tcp.close()
    await tcp.wait_closed()
    await server.aclose()


class TestProtocol:
    def test_submit_round_trip(self):
        async def body():
            store = make_store(4)
            reference = batch_answers(store, (PAIR_QUERY, list(PAIR_VARS)))
            server, tcp, port = await _tcp_fixture(store)
            try:
                lines = [
                    line
                    async for line in request_lines(
                        "127.0.0.1",
                        port,
                        {"op": "submit", "id": 9, "query": PAIR_QUERY,
                         "vars": list(PAIR_VARS)},
                    )
                ]
            finally:
                await _teardown(server, tcp)
            assert lines[-1] == {
                "id": 9, "type": "done", "results": 4, "cancelled": False,
            }
            for line in lines[:-1]:
                assert line["type"] == "result"
                expected = reference[(line["doc"], line["query"])]
                assert line["answers"] == sorted(list(a) for a in expected)
                assert line["count"] == len(expected)

        run(body())

    def test_multi_query_submission(self):
        async def body():
            store = make_store(2)
            server, tcp, port = await _tcp_fixture(store)
            try:
                lines = [
                    line
                    async for line in request_lines(
                        "127.0.0.1",
                        port,
                        {
                            "op": "submit",
                            "id": 1,
                            "queries": [
                                [PAIR_QUERY, list(PAIR_VARS)],
                                [BOOLEAN_QUERY, []],
                            ],
                        },
                    )
                ]
            finally:
                await _teardown(server, tcp)
            assert lines[-1]["results"] == 4  # 2 docs x 2 queries

        run(body())

    def test_stats_and_ping_ops(self):
        async def body():
            store = make_store(2)
            server, tcp, port = await _tcp_fixture(store)
            try:
                pong = [
                    line
                    async for line in request_lines(
                        "127.0.0.1", port, {"op": "ping", "id": 3}
                    )
                ]
                stats = [
                    line
                    async for line in request_lines(
                        "127.0.0.1", port, {"op": "stats", "id": 4}
                    )
                ]
            finally:
                await _teardown(server, tcp)
            assert pong == [{"id": 3, "type": "pong"}]
            assert stats[0]["type"] == "stats"
            assert "submitted" in stats[0]["stats"]

        run(body())

    def test_bad_requests_get_typed_errors(self):
        async def body():
            store = make_store(1)
            server, tcp, port = await _tcp_fixture(store)
            try:
                missing = [
                    line
                    async for line in request_lines(
                        "127.0.0.1", port, {"op": "submit", "id": 1}
                    )
                ]
                unknown_op = [
                    line
                    async for line in request_lines(
                        "127.0.0.1", port, {"op": "destroy", "id": 2}
                    )
                ]
                unknown_doc = [
                    line
                    async for line in request_lines(
                        "127.0.0.1",
                        port,
                        {"op": "submit", "id": 3, "query": BOOLEAN_QUERY,
                         "docs": ["ghost"]},
                    )
                ]
            finally:
                await _teardown(server, tcp)
            assert missing[0]["type"] == "error"
            assert missing[0]["kind"] == "bad-request"
            assert unknown_op[0]["kind"] == "bad-request"
            assert unknown_doc[0]["kind"] == "bad-request"
            assert "ghost" in unknown_doc[0]["error"]

        run(body())

    def test_overload_error_kind(self):
        async def body():
            store = make_store(4)
            server, tcp, port = await _tcp_fixture(store, max_queue=2)
            blockers: list[concurrent.futures.Future] = []

            def stalled_submit(name, queries, *, engine=None):
                future: concurrent.futures.Future = concurrent.futures.Future()
                blockers.append(future)
                return future

            server.executor.submit_document = stalled_submit
            try:
                first = await server.submit(BOOLEAN_QUERY, ["doc000"])
                await asyncio.sleep(0.05)
                lines = [
                    line
                    async for line in request_lines(
                        "127.0.0.1",
                        port,
                        {"op": "submit", "id": 1, "query": BOOLEAN_QUERY},
                    )
                ]
                for future in blockers:
                    future.set_result([])
                await first.results()
            finally:
                await _teardown(server, tcp)
            assert lines[0]["type"] == "error"
            assert lines[0]["kind"] == "overloaded"

        run(body())

    def test_pipelined_submissions_demultiplex_by_id(self):
        async def body():
            store = make_store(3)
            server, tcp, port = await _tcp_fixture(store, max_concurrent=4)
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                for request_id in (1, 2):
                    writer.write(
                        (
                            json.dumps(
                                {"op": "submit", "id": request_id,
                                 "query": BOOLEAN_QUERY}
                            )
                            + "\n"
                        ).encode()
                    )
                await writer.drain()
                done = set()
                by_id: dict[int, list[dict]] = {1: [], 2: []}
                while done != {1, 2}:
                    payload = json.loads(await reader.readline())
                    by_id[payload["id"]].append(payload)
                    if payload["type"] == "done":
                        done.add(payload["id"])
                writer.close()
                await writer.wait_closed()
            finally:
                await _teardown(server, tcp)
            for request_id in (1, 2):
                assert by_id[request_id][-1]["results"] == 3
                assert len(by_id[request_id]) == 4

        run(body())

    def test_client_disconnect_mid_stream_cancels_submission(self):
        # Regression: a client that vanishes mid-stream must not leave the
        # submission producing into a dead connection forever — the handler
        # cancels it and the server still drains cleanly.
        async def body():
            store = make_store(8)
            server, tcp, port = await _tcp_fixture(
                store, max_concurrent=1, stream_buffer=2
            )
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(
                    (
                        json.dumps(
                            {"op": "submit", "id": 1, "query": PAIR_QUERY,
                             "vars": list(PAIR_VARS)}
                        )
                        + "\n"
                    ).encode()
                )
                await writer.drain()
                line = json.loads(await reader.readline())
                assert line["type"] == "result"
                writer.close()  # abrupt disconnect, most results undelivered
                await asyncio.wait_for(server.drain(), timeout=10)
            finally:
                await _teardown(server, tcp)
            assert server.stats.active_submissions == 0

        run(body())

    def test_large_pipelined_request_line_accepted(self):
        # The reader limit must comfortably fit the documented pipelined
        # "queries": [...] form — a few hundred KB in one line (asyncio's
        # 64 KiB default used to kill the connection with no reply).
        async def body():
            store = make_store(1)
            server, tcp, port = await _tcp_fixture(store)
            queries = [[PAIR_QUERY, list(PAIR_VARS)] for _ in range(2000)]
            request = {"op": "submit", "id": 1, "queries": queries}
            assert len(json.dumps(request)) > 64 * 1024
            try:
                lines = [
                    line
                    async for line in request_lines("127.0.0.1", port, request)
                ]
            finally:
                await _teardown(server, tcp)
            assert lines[-1]["type"] == "done"
            assert lines[-1]["results"] == 2000

        run(body())

    def test_oversized_request_line_gets_typed_error(self):
        # Beyond even the raised limit, the client gets a typed error line
        # instead of a silent EOF and an unhandled-exception log.
        async def body():
            from repro.serve import protocol

            store = make_store(1)
            server, tcp, port = await _tcp_fixture(store)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port, limit=64 * 1024 * 1024
                )
                writer.write(b'{"op": "submit", "id": 1, "query": "')
                writer.write(b"x" * (protocol.READ_LIMIT + 1024))
                writer.write(b'"}\n')
                await writer.drain()
                line = json.loads(await reader.readline())
                writer.close()
            finally:
                await _teardown(server, tcp)
            assert line["type"] == "error"
            assert line["kind"] == "bad-request"

        run(body())

    def test_malformed_json_line(self):
        async def body():
            store = make_store(1)
            server, tcp, port = await _tcp_fixture(store)
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(b"this is not json\n")
                await writer.drain()
                payload = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
            finally:
                await _teardown(server, tcp)
            assert payload["type"] == "error"

        run(body())


# =====================================================================
# CLI
# =====================================================================
class TestServeCli:
    def test_parser_accepts_serve_run(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve", "run", "--dir", "corpus", "--port", "0",
                "--strategy", "threads", "--plan-cache", "plans",
                "--max-concurrent", "8", "--max-queue", "32",
            ]
        )
        assert args.command == "serve"
        assert args.serve_command == "run"
        assert args.max_concurrent == 8

    def test_serve_warm_populates_cache(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = tmp_path / "plans"
        exit_code = main(
            [
                "serve", "warm", "--plan-cache", str(cache_dir),
                "--query", PAIR_QUERY, "--vars", "y,z",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plans"][0]["cached"] is False
        assert payload["total_bytes"] > 0
        # Second warm run reports the plan as already cached.
        assert main(
            [
                "serve", "warm", "--plan-cache", str(cache_dir),
                "--query", PAIR_QUERY, "--vars", "y,z",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plans"][0]["cached"] is True
        # And the warmed plan sits under the shared engine-independent
        # label the server looks plans up with, whatever --engine it runs.
        cache = PlanCache(cache_dir)
        assert cache.load(PAIR_QUERY, ["y", "z"]) is not None

    def test_serve_warm_vars_arity_mismatch(self, tmp_path, capsys):
        from repro.cli import main

        exit_code = main(
            [
                "serve", "warm", "--plan-cache", str(tmp_path / "p"),
                "--query", PAIR_QUERY, "--query", BOOLEAN_QUERY,
                "--vars", "y,z",
            ]
        )
        assert exit_code == 1
        assert "per --query" in capsys.readouterr().err
