"""Tests for the Fig. 2 semantics and the naive engine (repro.xpath)."""

import pytest

from repro.errors import UnboundVariableError
from repro.xpath.analysis import (
    contains_for_loop,
    contains_variables,
    count_operators,
    expression_size,
    is_variable_free,
    shared_variables_in_compositions,
    variables_below_intersection,
    variables_below_negation,
)
from repro.xpath.naive import NaiveEngine, naive_answer, naive_nonempty
from repro.xpath.parser import parse_path, parse_test
from repro.xpath.semantics import evaluate_path, evaluate_test, path_nonempty


# ----------------------------------------------------------- path semantics
def test_step_semantics(tiny_tree):
    pairs = evaluate_path(tiny_tree, parse_path("child::b"))
    assert pairs == frozenset({(0, 1), (2, 4)})


def test_context_item_is_identity(tiny_tree):
    pairs = evaluate_path(tiny_tree, parse_path("."))
    assert pairs == frozenset((u, u) for u in tiny_tree.nodes())


def test_variable_reference(tiny_tree):
    pairs = evaluate_path(tiny_tree, parse_path("$x"), {"x": 3})
    assert pairs == frozenset((u, 3) for u in tiny_tree.nodes())


def test_variable_reference_requires_binding(tiny_tree):
    with pytest.raises(UnboundVariableError):
        evaluate_path(tiny_tree, parse_path("$x"))


def test_composition_semantics(tiny_tree):
    pairs = evaluate_path(tiny_tree, parse_path("child::c/child::d"))
    assert pairs == frozenset({(0, 3)})


def test_union_intersect_except(tiny_tree):
    union = evaluate_path(tiny_tree, parse_path("child::b union child::c"))
    assert union == frozenset({(0, 1), (2, 4), (0, 2)})
    intersect = evaluate_path(tiny_tree, parse_path("descendant::* intersect child::*"))
    assert intersect == evaluate_path(tiny_tree, parse_path("child::*"))
    diff = evaluate_path(tiny_tree, parse_path("descendant::* except child::*"))
    assert diff == frozenset({(0, 3), (0, 4)})


def test_filter_semantics(tiny_tree):
    pairs = evaluate_path(tiny_tree, parse_path("descendant::*[child::d]"))
    assert pairs == frozenset({(0, 2)})


def test_filter_with_variable_comparison(tiny_tree):
    pairs = evaluate_path(tiny_tree, parse_path("child::*[. is $v]"), {"v": 2})
    assert pairs == frozenset({(0, 2)})
    # node 3 is a child of node 2, so binding v to it yields exactly (2, 3)
    assert evaluate_path(tiny_tree, parse_path("child::*[. is $v]"), {"v": 3}) == frozenset(
        {(2, 3)}
    )


def test_for_loop_semantics(tiny_tree):
    # for $x in child::* return $x/child::d — non-empty exactly when some
    # child of the start node has a d child.
    pairs = evaluate_path(tiny_tree, parse_path("for $x in child::* return $x/child::d"))
    assert (0, 3) in pairs
    assert all(source == 0 for source, _ in pairs)


def test_for_loop_respects_outer_assignment(tiny_tree):
    expr = parse_path("for $x in child::* return .[$x/child::*[. is $y]]")
    assert evaluate_path(tiny_tree, expr, {"y": 3})
    assert not evaluate_path(tiny_tree, expr, {"y": 1})


def test_path_nonempty(tiny_tree):
    assert path_nonempty(tiny_tree, parse_path("descendant::d"))
    assert not path_nonempty(tiny_tree, parse_path("descendant::zzz"))


# ----------------------------------------------------------- test semantics
def test_path_test(tiny_tree):
    satisfied = evaluate_test(tiny_tree, parse_test("child::d"))
    assert satisfied == frozenset({2})


def test_comparison_tests(tiny_tree):
    assert evaluate_test(tiny_tree, parse_test(". is ."), {}) == frozenset(tiny_tree.nodes())
    assert evaluate_test(tiny_tree, parse_test(". is $x"), {"x": 4}) == frozenset({4})
    assert evaluate_test(tiny_tree, parse_test("$x is $y"), {"x": 4, "y": 4}) == frozenset({4})
    assert evaluate_test(tiny_tree, parse_test("$x is $y"), {"x": 4, "y": 3}) == frozenset()


def test_boolean_tests(tiny_tree):
    assert evaluate_test(tiny_tree, parse_test("not child::*")) == frozenset({1, 3, 4})
    assert evaluate_test(
        tiny_tree, parse_test("child::* and parent::*")
    ) == frozenset({2})
    assert evaluate_test(
        tiny_tree, parse_test("child::d or not parent::*")
    ) == frozenset({0, 2})


# --------------------------------------------------------------- naive engine
def test_naive_answer_binds_free_variables(paper_bib):
    query = "descendant::book[child::author[. is $y] and child::title[. is $z]]"
    answers = naive_answer(paper_bib, query, ["y", "z"])
    # Books: (author,title,year), (author,author,title), (title,price)
    # -> 1*1 + 2*1 + 0 = 3 pairs.
    assert len(answers) == 3
    for author, title in answers:
        assert paper_bib.labels[author] == "author"
        assert paper_bib.labels[title] == "title"
        assert paper_bib.parent[author] == paper_bib.parent[title]


def test_naive_answer_unconstrained_variable_ranges_over_all_nodes(tiny_tree):
    answers = naive_answer(tiny_tree, "child::b", ["free"])
    assert answers == frozenset((node,) for node in tiny_tree.nodes())


def test_naive_answer_empty_when_query_unsatisfiable(tiny_tree):
    assert naive_answer(tiny_tree, "child::zzz[. is $x]", ["x"]) == frozenset()


def test_naive_nonempty(tiny_tree):
    assert naive_nonempty(tiny_tree, "descendant::*[. is $x]")
    assert not naive_nonempty(tiny_tree, "child::zzz[. is $x]")


def test_naive_engine_facade(paper_bib):
    engine = NaiveEngine(paper_bib)
    query = "descendant::book[child::author[. is $y] and child::title[. is $z]]"
    assert engine.answer(query, ["y", "z"]) == naive_answer(paper_bib, query, ["y", "z"])
    assert engine.nonempty(query)
    batch = engine.answer_many([(query, ["y", "z"]), ("child::book", ["w"])])
    assert len(batch) == 2


# ------------------------------------------------------------------ analysis
def test_analysis_helpers():
    expr = parse_path("for $x in child::a return $x[. is $y]")
    assert contains_for_loop(expr)
    assert contains_variables(expr)
    assert not is_variable_free(expr)
    assert expression_size(expr) == expr.size

    shared = parse_path(".[. is $x]/.[. is $x]")
    assert shared_variables_in_compositions(shared) == frozenset({"x"})

    negated = parse_path(".[not(child::*[. is $x])]")
    assert variables_below_negation(negated) == frozenset({"x"})

    inter = parse_path("$x intersect child::a")
    assert variables_below_intersection(inter) == frozenset({"x"})

    histogram = count_operators(parse_path("child::a/child::b"))
    assert histogram["Step"] == 2
    assert histogram["PathCompose"] == 1


def test_is_variable_free_on_pure_path():
    assert is_variable_free(parse_path("descendant::a[child::b]/parent::*"))
