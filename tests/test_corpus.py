"""Tests for the corpus subsystem: store, executor, report, CLI, batch API."""

from __future__ import annotations

import json

import pytest

from repro import cli
from repro.api import Document, answer_batch, compile_query
from repro.corpus import (
    CorpusError,
    CorpusExecutor,
    CorpusReport,
    DocumentStore,
    answer_corpus,
)
from repro.trees.xml_io import tree_to_xml
from repro.workloads import corpus_scales, generate_corpus, write_corpus
from repro.workloads.bibliography import (
    bibliography_pair_query,
    generate_bibliography,
)

PAIR_QUERY, PAIR_VARS = bibliography_pair_query()
#: Variable-free Boolean query every backend (corexpath1 included) can run.
BOOLEAN_QUERY = "descendant::book[child::author]"


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    """Six small bibliography documents on disk, skewed sizes."""
    directory = tmp_path_factory.mktemp("corpus")
    corpus = generate_corpus(6, base=6, skew=0.5, seed=7, decoys_per_book=2)
    write_corpus(directory, corpus)
    return directory


@pytest.fixture()
def store(corpus_dir):
    return DocumentStore.from_directory(corpus_dir)


def expected_answers(corpus_dir, query, variables, engine="polynomial"):
    compiled = compile_query(query, variables, require_ppl=False)
    out = {}
    for path in sorted(corpus_dir.glob("*.xml")):
        out[path.stem] = Document.from_file(str(path)).answer(compiled, engine=engine)
    return out


# ----------------------------------------------------------------- the store
class TestDocumentStore:
    def test_directory_loading_is_sorted_and_named_by_stem(self, store):
        assert store.names() == tuple(f"doc{i:03d}" for i in range(6))
        assert "doc000" in store and "nope" not in store
        assert len(store) == 6

    def test_lazy_parse(self, store):
        assert store.stats.loads == 0
        store.get("doc000")
        assert store.stats.loads == 1

    def test_hits_do_not_reload(self, store):
        first = store.get("doc001")
        again = store.get("doc001")
        assert first is again
        assert store.stats.loads == 1
        assert store.stats.hits == 1

    def test_eviction_and_reload(self, corpus_dir):
        store = DocumentStore.from_directory(corpus_dir, max_resident=2)
        docs = [store.get(name) for name in store.names()]
        assert len(store.resident_names()) == 2
        stats = store.stats
        assert stats.loads == 6 and stats.evictions == 4
        # The evicted document reloads transparently — fresh object, same tree.
        reloaded = store.get("doc000")
        assert reloaded is not docs[0]
        assert reloaded.tree == docs[0].tree
        assert store.stats.loads == 7

    def test_lru_order_victims(self, corpus_dir):
        store = DocumentStore.from_directory(corpus_dir, max_resident=2)
        store.get("doc000")
        store.get("doc001")
        store.get("doc000")  # refresh doc000: doc001 is now the LRU victim
        store.get("doc002")
        assert set(store.resident_names()) == {"doc000", "doc002"}

    def test_unknown_name_and_bad_capacity(self, store, corpus_dir):
        with pytest.raises(CorpusError):
            store.get("missing")
        with pytest.raises(CorpusError):
            DocumentStore(max_resident=0)
        with pytest.raises(CorpusError):
            DocumentStore.from_directory(corpus_dir / "nothing-here")

    def test_duplicate_names_rejected(self, store):
        with pytest.raises(CorpusError):
            store.add_xml("doc000", "<bib/>")

    def test_add_xml_and_tree_sources(self):
        store = DocumentStore()
        tree = generate_bibliography(2, seed=0)
        store.add_xml("from-xml", tree_to_xml(tree))
        store.add_tree("from-tree", tree)
        assert store.get("from-xml").tree == store.get("from-tree").tree
        # Tree sources ship to workers as serialised XML.
        kind, payload = store.source_spec("from-tree")
        assert kind == "xml" and payload == tree_to_xml(tree)

    def test_resolve_name_path_and_garbage(self, store, corpus_dir):
        by_name = store.resolve("doc000")
        by_path = store.resolve(corpus_dir / "doc000.xml")
        # The path registers a second source; both parse to the same tree.
        assert by_name.tree == by_path.tree
        with pytest.raises(CorpusError):
            store.resolve("no-such-doc-or-file")

    def test_resolve_survives_stem_collisions(self, corpus_dir, tmp_path, monkeypatch):
        # A different spelling of an already-registered file must not clash
        # with its stem registration, nor must another directory's file with
        # the same stem: adopted paths are keyed by their full path string.
        store = DocumentStore.from_directory(corpus_dir)
        monkeypatch.chdir(corpus_dir)
        relative = store.resolve("doc000.xml")
        assert relative.tree == store.get("doc000").tree
        other_dir = tmp_path / "other"
        write_corpus(other_dir, {"doc000": generate_bibliography(4, seed=9)})
        elsewhere = store.resolve(other_dir / "doc000.xml")
        assert elsewhere.tree == generate_bibliography(4, seed=9)
        # Repeated resolution reuses the registration (no duplicate error).
        assert store.resolve(other_dir / "doc000.xml").tree == elsewhere.tree

    def test_store_documents_memoise_answers(self, store):
        document = store.get("doc000")
        first = document.answer(PAIR_QUERY, PAIR_VARS)
        assert document.answer(PAIR_QUERY, PAIR_VARS) is first
        # Ad-hoc documents do not memoise (two equal but distinct frozensets).
        adhoc = Document(generate_bibliography(2, seed=0))
        assert adhoc.answer(PAIR_QUERY, PAIR_VARS) is not adhoc.answer(
            PAIR_QUERY, PAIR_VARS
        )


# -------------------------------------------------------------- the executor
class TestCorpusExecutor:
    @pytest.mark.parametrize("strategy", ("serial", "threads", "processes"))
    @pytest.mark.parametrize(
        "engine,query,variables",
        [
            ("polynomial", PAIR_QUERY, PAIR_VARS),
            ("naive", PAIR_QUERY, PAIR_VARS),
            ("yannakakis", PAIR_QUERY, PAIR_VARS),
            ("corexpath1", BOOLEAN_QUERY, []),
        ],
    )
    def test_cross_strategy_agreement_all_engines(
        self, corpus_dir, strategy, engine, query, variables
    ):
        reference = expected_answers(corpus_dir, query, variables, engine)
        store = DocumentStore.from_directory(corpus_dir)
        with CorpusExecutor(store, strategy=strategy, max_workers=2) as executor:
            results = list(executor.run((query, variables), engine=engine))
        assert {r.doc_name: r.answers for r in results} == reference
        assert all(r.report.engine == engine for r in results)

    def test_deterministic_ordering(self, store):
        with CorpusExecutor(store, strategy="threads", max_workers=3) as executor:
            ordered = [r.doc_name for r in executor.run((PAIR_QUERY, PAIR_VARS))]
        assert ordered == list(store.names())

    def test_unordered_same_multiset(self, corpus_dir):
        store = DocumentStore.from_directory(corpus_dir)
        with CorpusExecutor(store, strategy="processes", max_workers=2) as executor:
            unordered = list(executor.run((PAIR_QUERY, PAIR_VARS), ordered=False))
        assert {r.doc_name: r.answers for r in unordered} == expected_answers(
            corpus_dir, PAIR_QUERY, PAIR_VARS
        )

    def test_streaming_is_lazy(self, corpus_dir):
        store = DocumentStore.from_directory(corpus_dir)
        iterator = CorpusExecutor(store).run((PAIR_QUERY, PAIR_VARS))
        assert store.stats.loads == 0
        first = next(iterator)
        assert store.stats.loads == 1
        assert first.doc_name == "doc000"

    def test_result_unpacks_to_name_and_report(self, store):
        result = next(iter(CorpusExecutor(store).run((PAIR_QUERY, PAIR_VARS))))
        doc_name, report = result
        assert doc_name == result.doc_name == "doc000"
        assert report is result.report
        assert report.answer_count == len(result.answers)
        assert report.variables == tuple(PAIR_VARS)

    def test_multiple_queries_per_document(self, store):
        queries = [(PAIR_QUERY, PAIR_VARS), BOOLEAN_QUERY]
        results = list(CorpusExecutor(store).run(queries))
        assert len(results) == 2 * len(store)
        assert {r.query for r in results} == {
            compile_query(PAIR_QUERY, PAIR_VARS).unparse(),
            compile_query(BOOLEAN_QUERY).unparse(),
        }

    def test_document_subset_and_unknown_name(self, store):
        results = list(
            CorpusExecutor(store).run((PAIR_QUERY, PAIR_VARS), ["doc002", "doc004"])
        )
        assert [r.doc_name for r in results] == ["doc002", "doc004"]
        with pytest.raises(CorpusError):
            list(CorpusExecutor(store).run((PAIR_QUERY, PAIR_VARS), ["doc999"]))

    def test_unknown_strategy(self, store):
        with pytest.raises(CorpusError):
            CorpusExecutor(store, strategy="gpu")

    def test_worker_caches_reused_across_runs(self, corpus_dir):
        store = DocumentStore.from_directory(corpus_dir, max_resident=3)
        with CorpusExecutor(store, strategy="processes", max_workers=2) as executor:
            first = {r.doc_name: r.answers for r in executor.run((PAIR_QUERY, PAIR_VARS))}
            second = {r.doc_name: r.answers for r in executor.run((PAIR_QUERY, PAIR_VARS))}
            worker_stats = executor.worker_stats()
        assert first == second
        # Work happened in the shard workers, never in the parent store —
        # and the second run hit the worker caches instead of reloading.
        assert store.stats.loads == 0
        assert worker_stats.loads == 6
        assert worker_stats.hits >= 6

    def test_processes_sees_same_name_replacement(self):
        store = DocumentStore()
        store.add_xml("a", tree_to_xml(generate_bibliography(1, seed=0)))
        with CorpusExecutor(store, strategy="processes", max_workers=2) as executor:
            before = list(executor.run((PAIR_QUERY, PAIR_VARS)))
            assert len(before[0].answers) == 1
            store.discard("a")
            store.add_xml("a", tree_to_xml(generate_bibliography(3, seed=1)))
            after = list(executor.run((PAIR_QUERY, PAIR_VARS)))
        # The shard pools were rebuilt, so the worker answered the new content.
        assert len(after[0].answers) == 3

    def test_explicit_single_worker_is_honoured(self, corpus_dir):
        store = DocumentStore.from_directory(corpus_dir)
        with CorpusExecutor(store, strategy="processes", max_workers=1) as executor:
            results = list(executor.run((PAIR_QUERY, PAIR_VARS)))
            assert executor._pools is not None and len(executor._pools) == 1
        assert {r.doc_name: r.answers for r in results} == expected_answers(
            corpus_dir, PAIR_QUERY, PAIR_VARS
        )

    def test_subset_run_spawns_only_owning_shards(self, corpus_dir):
        store = DocumentStore.from_directory(corpus_dir)
        with CorpusExecutor(store, strategy="processes", max_workers=3) as executor:
            results = list(executor.run((PAIR_QUERY, PAIR_VARS), ["doc000"]))
            spawned = [pool for pool in executor._pools if pool is not None]
            assert len(spawned) == 1
        assert [r.doc_name for r in results] == ["doc000"]

    def test_answer_corpus_helper(self, corpus_dir):
        store = DocumentStore.from_directory(corpus_dir)
        results = list(
            answer_corpus(store, (PAIR_QUERY, PAIR_VARS), strategy="threads")
        )
        assert {r.doc_name: r.answers for r in results} == expected_answers(
            corpus_dir, PAIR_QUERY, PAIR_VARS
        )


# ---------------------------------------------------------------- the report
class TestCorpusReport:
    def test_run_report_aggregates(self, store):
        report = CorpusExecutor(store).run_report([(PAIR_QUERY, PAIR_VARS), BOOLEAN_QUERY])
        assert report.strategy == "serial"
        assert report.document_count == 6
        assert report.query_count == 2
        assert len(report.entries) == 12
        assert report.wall_seconds is not None and report.wall_seconds > 0
        rollup = report.per_document()
        assert set(rollup) == set(store.names())
        assert all(entry["results"] == 2 for entry in rollup.values())

    def test_to_json_round_trip(self, store):
        report = CorpusExecutor(store).run_report((PAIR_QUERY, PAIR_VARS))
        payload = json.loads(report.to_json())
        assert payload["strategy"] == "serial"
        assert payload["documents"] == 6
        assert payload["results"] == 6
        assert len(payload["entries"]) == 6
        assert payload["entries"][0]["doc_name"] == "doc000"

    def test_from_results_without_wall(self, store):
        results = list(CorpusExecutor(store).run((PAIR_QUERY, PAIR_VARS)))
        report = CorpusReport.from_results(results, strategy="serial")
        assert report.wall_seconds is None
        assert report.total_answers == sum(len(r.answers) for r in results)


# ------------------------------------------------------------- answer_batch
class TestAnswerBatchResolution:
    def test_paths_without_store(self, corpus_dir):
        paths = sorted(corpus_dir.glob("*.xml"))
        answers = answer_batch([str(p) for p in paths], PAIR_QUERY, PAIR_VARS)
        reference = expected_answers(corpus_dir, PAIR_QUERY, PAIR_VARS)
        assert answers == [reference[p.stem] for p in paths]

    def test_names_through_store(self, corpus_dir):
        store = DocumentStore.from_directory(corpus_dir)
        answers = answer_batch(list(store.names()), PAIR_QUERY, PAIR_VARS, store=store)
        reference = expected_answers(corpus_dir, PAIR_QUERY, PAIR_VARS)
        assert answers == [reference[name] for name in store.names()]
        assert store.stats.loads == 6

    def test_mixed_items(self, corpus_dir):
        store = DocumentStore.from_directory(corpus_dir)
        tree = generate_bibliography(3, seed=1)
        answers = answer_batch(
            ["doc000", corpus_dir / "doc001.xml", tree, Document(tree)],
            PAIR_QUERY,
            PAIR_VARS,
            store=store,
        )
        reference = expected_answers(corpus_dir, PAIR_QUERY, PAIR_VARS)
        direct = Document(tree).answer(PAIR_QUERY, PAIR_VARS)
        assert answers == [reference["doc000"], reference["doc001"], direct, direct]

    def test_unresolvable_items_raise(self):
        with pytest.raises(CorpusError):
            answer_batch(["nowhere.xml"], PAIR_QUERY, PAIR_VARS)
        with pytest.raises(TypeError):
            answer_batch([42], PAIR_QUERY, PAIR_VARS)


# --------------------------------------------------------------- the CLI
class TestCorpusCli:
    def test_load_inventory(self, corpus_dir, capsys):
        assert cli.main(["corpus", "load", "--dir", str(corpus_dir)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 6
        assert [doc["name"] for doc in payload["documents"]] == list(
            f"doc{i:03d}" for i in range(6)
        )
        assert payload["stats"]["loads"] == 6

    @pytest.mark.parametrize("strategy", ("serial", "processes"))
    def test_answer_round_trip(self, corpus_dir, capsys, strategy):
        code = cli.main(
            [
                "corpus",
                "answer",
                "--dir",
                str(corpus_dir),
                "--query",
                PAIR_QUERY,
                "--vars",
                ",".join(PAIR_VARS),
                "--strategy",
                strategy,
                "--workers",
                "2",
            ]
        )
        assert code == 0
        lines = [
            line
            for line in capsys.readouterr().out.splitlines()
            if line and not line.startswith("#")
        ]
        reference = expected_answers(corpus_dir, PAIR_QUERY, PAIR_VARS)
        assert lines == [f"{name}\t{len(reference[name])}" for name in sorted(reference)]

    def test_answer_json_report(self, corpus_dir, capsys):
        code = cli.main(
            [
                "corpus",
                "answer",
                "--dir",
                str(corpus_dir),
                "--query",
                PAIR_QUERY,
                "--vars",
                "y,z",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["documents"] == 6
        reference = expected_answers(corpus_dir, PAIR_QUERY, PAIR_VARS)
        assert payload["total_answers"] == sum(len(a) for a in reference.values())

    def test_bench_agreement_and_out_file(self, corpus_dir, capsys, tmp_path):
        out = tmp_path / "corpus_bench.json"
        code = cli.main(
            [
                "corpus",
                "bench",
                "--dir",
                str(corpus_dir),
                "--query",
                PAIR_QUERY,
                "--vars",
                "y,z",
                "--strategies",
                "serial,threads",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["agreement"] is True
        assert {run["strategy"] for run in printed["strategies"]} == {"serial", "threads"}
        assert json.loads(out.read_text()) == printed

    def test_answer_rejects_empty_corpus(self, tmp_path, capsys):
        tmp_path.joinpath("empty").mkdir()
        code = cli.main(
            [
                "corpus",
                "answer",
                "--dir",
                str(tmp_path / "empty"),
                "--query",
                PAIR_QUERY,
                "--vars",
                "y,z",
            ]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err


# ------------------------------------------------------- corpus generation
class TestCorpusGeneration:
    def test_scales_monotone_and_deterministic(self):
        flat = corpus_scales(5, 10, 0.0)
        assert flat == [10] * 5
        skewed = corpus_scales(5, 10, 1.0)
        assert skewed == sorted(skewed, reverse=True)
        assert skewed[0] == 10 and skewed[-1] == 2
        with pytest.raises(ValueError):
            corpus_scales(0, 10, 1.0)

    def test_generate_corpus_kinds_and_seeding(self):
        bib = generate_corpus(3, base=4, seed=5)
        again = generate_corpus(3, base=4, seed=5)
        assert list(bib) == ["doc000", "doc001", "doc002"]
        assert all(bib[name] == again[name] for name in bib)
        restaurants = generate_corpus(2, kind="restaurants", base=3, seed=5)
        assert restaurants["doc000"].labels[0] == "guide"
        with pytest.raises(ValueError):
            generate_corpus(2, kind="newspapers")

    def test_write_corpus_round_trips_through_store(self, tmp_path):
        corpus = generate_corpus(3, base=4, skew=0.5, seed=2)
        write_corpus(tmp_path, corpus)
        store = DocumentStore.from_directory(tmp_path)
        assert store.names() == ("doc000", "doc001", "doc002")
        for name in store.names():
            assert store.get(name).tree == corpus[name]
