"""Shared fixtures for the test-suite.

The documents here are intentionally small: every polynomial algorithm is
cross-checked against a naive exponential oracle, so the fixtures must stay
within what brute-force enumeration can handle.
"""

from __future__ import annotations

import pytest

from repro.trees.tree import Node, Tree
from repro.workloads.bibliography import generate_bibliography


@pytest.fixture
def tiny_tree() -> Tree:
    """a(b, c(d, b)) — five nodes, duplicate label b."""
    return Tree(Node("a", Node("b"), Node("c", Node("d"), Node("b"))))


@pytest.fixture
def paper_bib() -> Tree:
    """A bibliography shaped like the paper's introductory example.

    bib
      book(author, title, year)
      book(author, author, title)
      book(title, price)          <- no author: contributes no pair
    """
    return Tree(
        Node(
            "bib",
            Node("book", Node("author"), Node("title"), Node("year")),
            Node("book", Node("author"), Node("author"), Node("title")),
            Node("book", Node("title"), Node("price")),
        )
    )


@pytest.fixture
def generated_bib() -> Tree:
    """A slightly larger generated bibliography (still naive-oracle friendly)."""
    return generate_bibliography(4, authors_per_book=2, titles_per_book=1, seed=2)


@pytest.fixture
def wide_tree() -> Tree:
    """A root with several leaf children of alternating labels."""
    return Tree(Node("r", *(Node("a" if i % 2 == 0 else "b") for i in range(6))))


@pytest.fixture
def deep_tree() -> Tree:
    """A chain a/b/a/b/a of depth 5."""
    leaf = Node("a")
    current = leaf
    for index in range(4):
        current = Node("b" if index % 2 == 0 else "a", current)
    return Tree(current)
