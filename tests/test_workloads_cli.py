"""Tests for the workload generators and the command-line interface."""

import os

import pytest

from repro.api import as_document
from repro.core.ppl import is_ppl
from repro.xpath.naive import NaiveEngine
from repro.xpath.analysis import contains_for_loop
from repro.trees.xml_io import tree_to_xml
from repro.workloads.bibliography import (
    bibliography_pair_query,
    bibliography_query_xquery_style,
    book_author_title_triples_query,
    generate_bibliography,
)
from repro.workloads.query_gen import (
    random_hcl_formula,
    random_ppl_expression,
    random_pplbin_expression,
)
from repro.workloads.restaurants import (
    ATTRIBUTE_LABELS,
    generate_restaurants,
    restaurant_query,
    restaurant_query_with_restaurant,
)
from repro import cli


# ------------------------------------------------------------- bibliography
def test_generate_bibliography_shape():
    document = generate_bibliography(5, authors_per_book=2, titles_per_book=1, seed=0)
    assert document.labels[0] == "bib"
    assert len(document.nodes_with_label("book")) == 5
    assert len(document.nodes_with_label("author")) == 10


def test_bibliography_answer_size_is_predictable():
    document = generate_bibliography(4, authors_per_book=3, titles_per_book=2, seed=1)
    query, variables = bibliography_pair_query()
    answers = as_document(document).answer(query, variables)
    assert len(answers) == 4 * 3 * 2


def test_bibliography_is_deterministic():
    assert generate_bibliography(3, seed=9) == generate_bibliography(3, seed=9)


def test_bibliography_pair_query_is_ppl_and_forloop_variant_is_not():
    query, variables = bibliography_pair_query()
    assert is_ppl(query)
    assert variables == ["y", "z"]
    loop_query = bibliography_query_xquery_style()
    assert contains_for_loop(__import__("repro.xpath.parser", fromlist=["parse_path"]).parse_path(loop_query))
    assert not is_ppl(loop_query)


def test_forloop_variant_selects_same_pairs():
    document = generate_bibliography(2, authors_per_book=2, seed=4)
    query, variables = bibliography_pair_query()
    naive = NaiveEngine(document)
    assert naive.answer(bibliography_query_xquery_style(), variables) == naive.answer(
        query, variables
    )


def test_triples_query(paper_bib):
    query, variables = book_author_title_triples_query()
    assert is_ppl(query)
    answers = as_document(paper_bib).answer(query, variables)
    assert len(answers) == 3
    for book, author, title in answers:
        assert paper_bib.labels[book] == "book"
        assert paper_bib.parent[author] == book
        assert paper_bib.parent[title] == book


# --------------------------------------------------------------- restaurants
def test_generate_restaurants_shape():
    document = generate_restaurants(3, num_attributes=4, seed=0)
    assert len(document.nodes_with_label("restaurant")) == 3
    assert len(document.nodes_with_label("name")) == 3
    assert document.size == 1 + 3 * 5  # root + 3 * (restaurant + 4 attributes)


def test_restaurant_query_answer_count_matches_complete_restaurants():
    document = generate_restaurants(
        6, num_attributes=3, missing_probability=0.4, seed=2
    )
    query, variables = restaurant_query(3)
    assert is_ppl(query)
    answers = as_document(document).answer(query, variables)
    complete = 0
    for restaurant in document.nodes_with_label("restaurant"):
        child_labels = {document.labels[child] for child in document.children(restaurant)}
        if set(ATTRIBUTE_LABELS[:3]) <= child_labels:
            complete += 1
    assert len(answers) == complete


def test_restaurant_query_with_restaurant_binds_element():
    document = generate_restaurants(2, num_attributes=2, seed=1)
    query, variables = restaurant_query_with_restaurant(2)
    assert variables[0] == "r"
    answers = as_document(document).answer(query, variables)
    assert all(document.labels[row[0]] == "restaurant" for row in answers)


def test_restaurant_bad_arguments():
    with pytest.raises(ValueError):
        generate_restaurants(2, num_attributes=0)
    with pytest.raises(ValueError):
        restaurant_query(len(ATTRIBUTE_LABELS) + 1)


# ---------------------------------------------------------- query generators
def test_random_pplbin_expression_is_deterministic_and_valid(tiny_tree):
    from repro.pplbin.evaluator import evaluate_pairs

    first = random_pplbin_expression(8, seed=3)
    second = random_pplbin_expression(8, seed=3)
    assert first == second
    evaluate_pairs(tiny_tree, first)  # must evaluate without error


def test_random_ppl_expression_is_ppl():
    for seed in range(8):
        expression, variables = random_ppl_expression(10, num_variables=2, seed=seed)
        assert is_ppl(expression), expression.unparse()
        assert set(variables) <= {"x1", "x2"}


def test_random_ppl_expression_matches_naive(tiny_tree):
    for seed in range(4):
        expression, variables = random_ppl_expression(6, num_variables=1, seed=seed)
        fast = as_document(tiny_tree).answer(expression, variables)
        slow = NaiveEngine(tiny_tree).answer(expression, variables)
        assert fast == slow, expression.unparse()


def test_random_hcl_formula_has_no_sharing(tiny_tree):
    from repro.hcl.answering import check_no_variable_sharing

    for seed in range(6):
        formula, variables = random_hcl_formula(8, num_variables=2, seed=seed)
        check_no_variable_sharing(formula)
        assert set(variables) == {"x1", "x2"}


# ------------------------------------------------------------------------ CLI
@pytest.fixture
def bib_xml_path(tmp_path, paper_bib):
    path = tmp_path / "bib.xml"
    path.write_text(tree_to_xml(paper_bib), encoding="utf-8")
    return str(path)


def test_cli_answers_query(capsys, bib_xml_path):
    code = cli.main(
        [
            "--xml",
            bib_xml_path,
            "--query",
            "descendant::book[child::author[. is $y] and child::title[. is $z]]",
            "--vars",
            "y,z",
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    lines = captured.out.strip().splitlines()
    assert lines[0] == "$y\t$z"
    assert len(lines) == 4  # header + 3 answers


def test_cli_labels_and_stats(capsys, bib_xml_path):
    code = cli.main(
        [
            "--xml",
            bib_xml_path,
            "--query",
            "descendant::author[. is $x]",
            "--vars",
            "x",
            "--labels",
            "--stats",
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert ":author" in captured.out
    assert "|t|=" in captured.err


def test_cli_naive_engine(capsys, bib_xml_path):
    code = cli.main(
        [
            "--xml",
            bib_xml_path,
            "--query",
            "descendant::price[. is $x]",
            "--vars",
            "x",
            "--engine",
            "naive",
        ]
    )
    assert code == 0
    assert len(capsys.readouterr().out.strip().splitlines()) == 2


def test_cli_boolean_query(capsys, bib_xml_path):
    code = cli.main(["--xml", bib_xml_path, "--query", "descendant::price", "--vars", ""])
    captured = capsys.readouterr()
    assert code == 0
    assert "non-empty" in captured.out


def test_cli_check_only_accepts_and_rejects(capsys):
    assert cli.main(["--check-only", "--query", "descendant::a[. is $x]"]) == 0
    assert "PPL" in capsys.readouterr().out
    assert cli.main(["--check-only", "--query", "for $x in child::a return ."]) == 1
    assert "N(for)" in capsys.readouterr().out


def test_cli_reports_errors(capsys, bib_xml_path):
    code = cli.main(["--xml", bib_xml_path, "--query", "child::", "--vars", "x"])
    assert code == 1
    assert "error:" in capsys.readouterr().err
    code = cli.main(["--xml", os.devnull, "--query", "child::a", "--vars", ""])
    assert code == 1


def test_cli_requires_xml_unless_check_only():
    with pytest.raises(SystemExit):
        cli.main(["--query", "child::a"])
