"""End-to-end integration tests crossing module boundaries.

These exercise the full pipelines the paper describes:

* FO  →  Core XPath 2.0  →  naive answers  vs  FO semantics (Prop. 1),
* PPL →  HCL⁻(PPLbin)  →  sharing  →  MC  →  Fig. 8 answers  vs  naive
  Core XPath 2.0 answers (Theorem 1),
* ACQ → HCL⁻ → Fig. 8 vs Yannakakis (Section 6),
* the SAT reduction evaluated by the naive engine vs DPLL (Prop. 3),
* documents travelling through XML serialisation and the binary encoding.
"""

from repro import NaiveEngine
from repro.api import answer, as_document, compile_query
from repro.fo import fo_answer, fo_to_core_xpath, parse_fo
from repro.hardness import random_3cnf, reduce_sat_to_xpath
from repro.hcl import Atom, ConjunctiveQuery, yannakakis_answer
from repro.hcl.acq import acq_to_hcl
from repro.hcl.answering import answer_hcl
from repro.hcl.binding import PPLbinOracle
from repro.pplbin import parse_pplbin
from repro.pplbin.corexpath1 import invert
from repro.trees.binary import binary_decode, binary_encode
from repro.trees.xml_io import tree_from_xml, tree_to_xml
from repro.workloads import (
    bibliography_pair_query,
    generate_bibliography,
    generate_restaurants,
    restaurant_query,
)


def test_paper_introduction_pipeline():
    """The paper's author/title example, end to end on a generated document."""
    document = generate_bibliography(5, authors_per_book=2, titles_per_book=2, seed=0)
    query, variables = bibliography_pair_query()

    polynomial = as_document(document).answer(query, variables)
    exponential = NaiveEngine(document).answer(query, variables)
    assert polynomial == exponential
    assert len(polynomial) == 5 * 2 * 2

    # The answers survive an XML round trip (node identifiers are stable
    # because serialisation preserves document order).
    reloaded = tree_from_xml(tree_to_xml(document))
    assert as_document(reloaded).answer(query, variables) == polynomial


def test_restaurant_pipeline_medium_width():
    document = generate_restaurants(5, num_attributes=4, missing_probability=0.3, seed=3)
    query, variables = restaurant_query(4)
    polynomial = as_document(document).answer(query, variables)
    # The naive engine would enumerate |t|^4 assignments here (~20k): still
    # feasible, and it must agree.
    exponential = NaiveEngine(document).answer(query, variables)
    assert polynomial == exponential


def test_fo_to_xpath_to_answers_round_trip():
    document = generate_bibliography(3, authors_per_book=1, seed=1)
    phi = parse_fo("lab[book](b) and ch(b,y) and lab[author](y)")
    via_fo = fo_answer(document, phi, ["b", "y"])
    via_xpath = NaiveEngine(document).answer(fo_to_core_xpath(phi), ["b", "y"])
    via_ppl = as_document(document).answer(
        "descendant::book[. is $b]/child::author[. is $y]", ["b", "y"]
    )
    assert via_fo == via_xpath == via_ppl


def test_acq_three_way_agreement():
    document = generate_bibliography(4, authors_per_book=2, seed=6)
    oracle = PPLbinOracle(document)
    author = parse_pplbin("[self::book]/child::author")
    title = parse_pplbin("[self::book]/child::title")
    reach = parse_pplbin("(ancestor::* union self)/(descendant::* union self)")
    acq = ConjunctiveQuery((Atom(author, "b", "y"), Atom(title, "b", "z")), ("y", "z"))

    yann = yannakakis_answer(
        acq, {author: oracle.pairs(author), title: oracle.pairs(title)}, list(document.nodes())
    )
    fig8 = answer_hcl(document, acq_to_hcl(acq, chstar=reach, invert=invert), ["y", "z"], oracle)
    ppl = as_document(document).answer(
        "descendant::book[child::author[. is $y] and child::title[. is $z]]", ["y", "z"]
    )
    assert yann == fig8 == ppl


def test_sat_reduction_agrees_with_dpll_end_to_end():
    for seed in (2, 3):
        formula = random_3cnf(3, 6, seed=seed)
        reduction = reduce_sat_to_xpath(formula)
        assert reduction.nonempty_naive() == reduction.satisfiable_dpll()


def test_binary_encoding_preserves_query_answers():
    document = generate_bibliography(2, authors_per_book=1, seed=8)
    roundtripped = binary_decode(binary_encode(document, pad=True))
    query, variables = bibliography_pair_query()
    assert as_document(roundtripped).answer(query, variables) == as_document(document).answer(
        query, variables
    )


def test_compiled_query_across_documents_matches_per_document_engines():
    compiled = compile_query(*bibliography_pair_query())
    for books in (1, 3, 6):
        document = generate_bibliography(books, authors_per_book=1, seed=books)
        assert as_document(document).answer(compiled) == answer(
            document, *bibliography_pair_query()
        )


def test_answer_sets_scale_with_answer_size_not_candidate_space():
    # Same tree size, very different |A|: the engine must return exactly the
    # expected cardinalities (paper's output-sensitivity motivation).
    narrow = generate_bibliography(8, authors_per_book=1, titles_per_book=1, decoys_per_book=3, seed=1)
    wide = generate_bibliography(8, authors_per_book=3, titles_per_book=2, decoys_per_book=0, seed=1)
    query, variables = bibliography_pair_query()
    assert len(as_document(narrow).answer(query, variables)) == 8
    assert len(as_document(wide).answer(query, variables)) == 8 * 6


def test_engine_reuse_across_many_queries():
    document = generate_bibliography(3, authors_per_book=2, seed=12)
    engine = as_document(document)
    naive = NaiveEngine(document)
    queries = [
        ("descendant::author[. is $x]", ["x"]),
        ("descendant::book[child::price][. is $x]", ["x"]),
        ("descendant::book[. is $b]/child::author[. is $x]", ["b", "x"]),
        ("child::book[not(child::price)][. is $b]", ["b"]),
        ("descendant::*[$x is $y]", ["x", "y"]),
    ]
    for text, variables in queries:
        assert engine.answer(text, variables) == naive.answer(text, variables), text
