"""Removal-timeline guard for the deprecated API tail.

The seed-era entry points (``answer``, ``compile_query``, ``PPLEngine``)
were removed in 1.5.0; the remaining deprecated surface — constructing
:class:`repro.api.Document` directly and :func:`repro.api.answer_batch` —
must keep warning (pointing at the Session replacements) until its own
removal release.  If either warning stops firing, a silent behaviour change
slipped in; if either stops *working*, the migration window closed early.
"""

from __future__ import annotations

import warnings

import pytest

from repro import Document, answer_batch
from repro.session import Session
from repro.trees.tree import Node, Tree

PAIR_QUERY = "descendant::book[child::author[. is $y] and child::title[. is $z]]"
PAIR_VARS = ("y", "z")


def bib_tree() -> Tree:
    return Tree(
        Node(
            "bib",
            Node("book", Node("author"), Node("title")),
            Node("book", Node("title"), Node("price")),
        )
    )


def test_direct_document_construction_still_warns_and_works():
    with pytest.warns(DeprecationWarning, match="constructing Document directly"):
        document = Document(bib_tree())
    # The deprecated path must stay functional until its removal release.
    assert document.answer(PAIR_QUERY, PAIR_VARS)


def test_direct_document_warning_names_the_replacement():
    with pytest.warns(DeprecationWarning, match="Session"):
        Document(bib_tree())


def test_answer_batch_still_warns_and_works():
    with warnings.catch_warnings(record=True):
        warnings.simplefilter("ignore", DeprecationWarning)
        document = Document(bib_tree())
    with pytest.warns(DeprecationWarning, match=r"answer_batch\(\.\.\.\)"):
        results = answer_batch([document], PAIR_QUERY, PAIR_VARS)
    assert results and results[0]  # one non-empty answer set per document


def test_answer_batch_warning_points_at_query_corpus():
    with warnings.catch_warnings(record=True):
        warnings.simplefilter("ignore", DeprecationWarning)
        document = Document(bib_tree())
    with pytest.warns(DeprecationWarning, match=r"Session\.query_corpus"):
        list(answer_batch([document], PAIR_QUERY, PAIR_VARS))


def test_session_paths_do_not_warn():
    """The replacement surface must stay warning-free, or the timeline
    message sends users from one deprecation into another."""
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        with Session(strategy="serial") as session:
            session.add_tree("bib", bib_tree())
            results = list(session.query_corpus([(PAIR_QUERY, PAIR_VARS)]))
    assert results and results[0].answers
