"""Tests for Definition 1 (PPL membership), the Fig. 7 translation and the engine."""

import pytest

from repro.errors import ParseError, RestrictionViolation, TranslationError
from repro.trees.generators import random_tree
from repro.api import Document, Query, answer, compile_query
from repro.core.ppl import PPL_CONDITIONS, check_ppl, is_ppl, ppl_violations
from repro.core.translate import hcl_to_ppl, ppl_to_hcl
from repro.hcl.ast import HVar, Leaf
from repro.hcl.answering import answer_hcl
from repro.hcl.binding import PPLbinOracle
from repro.xpath.naive import NaiveEngine, naive_answer
from repro.xpath.parser import parse_path


# --------------------------------------------------------- Definition 1 check
def test_paper_example_is_ppl():
    assert is_ppl(
        "descendant::book[child::author[. is $y] and child::title[. is $z]]"
    )


@pytest.mark.parametrize(
    "text,condition",
    [
        ("for $x in child::a return .", "N(for)"),
        ("$x intersect child::a", "NV(intersect)"),
        ("child::a intersect $x", "NV(intersect)"),
        ("$x except child::a", "NV(except)"),
        ("child::a except child::b[. is $x]", "NV(except)"),
        (".[not(child::a[. is $x])]", "NV(not)"),
        (".[. is $x]/.[. is $x]", "NVS(/)"),
        ("child::a[. is $x][descendant::*[. is $x]]", "NVS([])"),
        (".[child::a[. is $x] and child::b[. is $x]]", "NVS(and)"),
    ],
)
def test_each_condition_is_detected(text, condition):
    violations = ppl_violations(text)
    assert condition in {violation.condition for violation in violations}
    assert not is_ppl(text)
    with pytest.raises(RestrictionViolation):
        check_ppl(text)


def test_conditions_tuple_lists_all_seven():
    assert len(PPL_CONDITIONS) == 7


def test_sharing_in_unions_is_allowed():
    assert is_ppl(".[. is $x] union child::a[. is $x]")
    assert is_ppl(".[child::a[. is $x] or child::b[. is $x]]")


def test_distinct_variable_comparison_is_allowed():
    assert is_ppl("descendant::a[$x is $y]")


def test_variable_free_negation_is_allowed():
    assert is_ppl(".[not(child::a)]/descendant::b[. is $x]")


def test_check_ppl_accepts_ast_input():
    check_ppl(parse_path("descendant::a[. is $x]"))


# ------------------------------------------------------ Fig. 7 translation
@pytest.mark.parametrize(
    "text,variables",
    [
        ("descendant::book[child::author[. is $y] and child::title[. is $z]]", ["y", "z"]),
        ("descendant::a[. is $x]", ["x"]),
        ("$x/child::*[. is $y]", ["x", "y"]),
        ("child::a union descendant::b[. is $x]", ["x"]),
        ("descendant::*[child::a or child::b][. is $x]", ["x"]),
        (".[not(parent::*)]/descendant::*[. is $x]", ["x"]),
        ("descendant::*[$x is $y]", ["x", "y"]),
        ("descendant::a[. is $x]/following-sibling::b[. is $y]", ["x", "y"]),
        ("child::* intersect descendant::*", []),
        ("(child::a except child::b)[. is $x]", ["x"]),
        ("descendant::*[. is .]", []),
        ("descendant::*[. is $x and child::b]", ["x"]),
    ],
)
def test_fig7_translation_preserves_answers(paper_bib, text, variables):
    parsed = parse_path(text)
    formula = ppl_to_hcl(parsed)
    oracle = PPLbinOracle(paper_bib)
    assert answer_hcl(paper_bib, formula, variables, oracle) == naive_answer(
        paper_bib, parsed, variables
    )


def test_fig7_translation_is_linear_size():
    parsed = parse_path(
        "descendant::book[child::author[. is $y] and child::title[. is $z]]"
    )
    formula = ppl_to_hcl(parsed)
    assert formula.size <= 6 * parsed.size


def test_fig7_rejects_non_ppl():
    with pytest.raises(RestrictionViolation):
        ppl_to_hcl(parse_path("for $x in child::a return ."))


def test_hcl_to_ppl_roundtrip_semantics(paper_bib):
    source = parse_path("descendant::book[child::author[. is $y]]")
    formula = ppl_to_hcl(source)
    back = hcl_to_ppl(formula)
    assert is_ppl(back)
    assert naive_answer(paper_bib, back, ["y"]) == naive_answer(paper_bib, source, ["y"])


def test_hcl_to_ppl_rejects_non_pplbin_leaves():
    with pytest.raises(TranslationError):
        hcl_to_ppl(Leaf("not-a-pplbin-expression"))


def test_hcl_to_ppl_variable():
    assert hcl_to_ppl(HVar("x")).unparse() == ".[. is $x]"


# ------------------------------------------------------------ Document engine
def test_document_matches_naive_on_paper_example(paper_bib):
    query = "descendant::book[child::author[. is $y] and child::title[. is $z]]"
    document = Document(paper_bib)
    assert document.answer(query, ["y", "z"]) == NaiveEngine(paper_bib).answer(
        query, ["y", "z"]
    )


def test_document_accepts_ast_and_caches_translation(paper_bib):
    document = Document(paper_bib)
    parsed = parse_path("descendant::author[. is $x]")
    first = document.answer(parsed, ["x"])
    second = document.answer(parsed, ["x"])
    assert first == second
    assert len(document._translations) == 1


def test_document_nonempty(paper_bib):
    document = Document(paper_bib)
    assert document.nonempty("descendant::price[. is $x]")
    assert not document.nonempty("descendant::zzz[. is $x]")


def test_document_pairs_for_variable_free_query(paper_bib):
    document = Document(paper_bib)
    pairs = document.pairs("descendant::book/child::author")
    assert all(paper_bib.labels[target] == "author" for _, target in pairs)
    assert all(source == 0 for source, _ in pairs)


def test_document_report(paper_bib):
    document = Document(paper_bib)
    query = "descendant::book[child::author[. is $y] and child::title[. is $z]]"
    report = document.report(query, ["y", "z"])
    assert report.answer_count == 3
    assert report.expression_size == parse_path(query).size
    assert report.distinct_leaves >= 2
    assert report.variables == ("y", "z")


def test_document_rejects_non_ppl(paper_bib):
    with pytest.raises(RestrictionViolation):
        Document(paper_bib).answer("for $x in child::a return .", ["x"])


def test_document_parse_errors_propagate(paper_bib):
    with pytest.raises(ParseError):
        Document(paper_bib).answer("child::", ["x"])


def test_document_matches_naive_on_random_documents():
    queries = [
        ("descendant::a[. is $x]", ["x"]),
        ("descendant::*[child::a[. is $x] and child::b[. is $y]]", ["x", "y"]),
        ("child::a[. is $x] union descendant::b[. is $x]", ["x"]),
        (".[not(child::c)]/descendant::b[. is $x]", ["x"]),
    ]
    for seed in (5, 6):
        tree = random_tree(9, seed=seed)
        document = Document(tree)
        naive = NaiveEngine(tree)
        for text, variables in queries:
            assert document.answer(text, variables) == naive.answer(text, variables), (
                seed,
                text,
            )


# ---------------------------------------------------------------- public API
def test_answer_helper(paper_bib):
    query = "descendant::author[. is $x]"
    assert answer(paper_bib, query, ["x"]) == naive_answer(paper_bib, query, ["x"])


def test_compile_query_runs_on_multiple_documents(paper_bib, generated_bib):
    compiled = compile_query(
        "descendant::book[child::author[. is $y] and child::title[. is $z]]", ["y", "z"]
    )
    assert isinstance(compiled, Query)
    assert compiled.arity == 2
    for tree in (paper_bib, generated_bib):
        assert Document(tree).answer(compiled) == naive_answer(
            tree, compiled.source, ["y", "z"]
        )


def test_compile_query_rejects_non_ppl():
    with pytest.raises(RestrictionViolation):
        compile_query("for $x in child::a return .", ["x"])
