"""Property-based tests (hypothesis) on the core data structures and invariants.

Each property cross-checks a polynomial algorithm against a naive oracle on
randomly generated trees and expressions, or asserts a structural invariant
of the data model.  Sizes are kept small so the exponential oracles remain
fast; hypothesis' shrinking then produces minimal counterexamples on failure.
"""

from __future__ import annotations


from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.trees.axes import Axis, axis_matrix, axis_pairs, iter_axis
from repro.trees.binary import binary_decode, binary_encode
from repro.trees.generators import random_tree
from repro.trees.tree import Tree
from repro.trees.xml_io import tree_from_xml, tree_to_xml
from repro.pplbin.evaluator import evaluate_pairs
from repro.pplbin.translate import to_core_xpath
from repro.xpath.semantics import evaluate_path
from repro.xpath.naive import NaiveEngine
from repro.hcl.answering import answer_hcl
from repro.hcl.ast import hcl_naive_answer
from repro.hcl.binding import PPLbinOracle
from repro.hcl.sharing import normalize, shared_variables
from repro.core.engine import PPLEngine
from repro.core.ppl import is_ppl
from repro.core.translate import hcl_to_ppl, ppl_to_hcl
from repro.workloads.query_gen import (
    random_hcl_formula,
    random_ppl_expression,
    random_pplbin_expression,
)

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Strategy producing small random trees through the deterministic generator.
tree_sizes = st.integers(min_value=1, max_value=12)
seeds = st.integers(min_value=0, max_value=10_000)


def _make_tree(size: int, seed: int) -> Tree:
    return random_tree(size, alphabet=("a", "b", "c"), seed=seed)


# ----------------------------------------------------------------- data model
@_SETTINGS
@given(tree_sizes, seeds)
def test_preorder_intervals_characterise_descendants(size, seed):
    tree = _make_tree(size, seed)
    for node in tree.nodes():
        descendants = set(tree.descendants(node))
        by_parent_walk = {
            other
            for other in tree.nodes()
            if other != node and _has_ancestor(tree, other, node)
        }
        assert descendants == by_parent_walk


def _has_ancestor(tree: Tree, node: int, candidate: int) -> bool:
    current = tree.parent[node]
    while current is not None:
        if current == candidate:
            return True
        current = tree.parent[current]
    return False


@_SETTINGS
@given(tree_sizes, seeds)
def test_axis_matrix_agrees_with_iterators(size, seed):
    tree = _make_tree(size, seed)
    for axis in (Axis.CHILD, Axis.DESCENDANT, Axis.FOLLOWING, Axis.PRECEDING_SIBLING):
        matrix = axis_matrix(tree, axis)
        for node in tree.nodes():
            assert set(iter_axis(tree, axis, node)) == set(
                target for target in tree.nodes() if matrix[node, target]
            )


@_SETTINGS
@given(tree_sizes, seeds)
def test_axis_inverse_pairs(size, seed):
    tree = _make_tree(size, seed)
    assert axis_pairs(tree, Axis.ANCESTOR) == frozenset(
        (v, u) for (u, v) in axis_pairs(tree, Axis.DESCENDANT)
    )
    assert axis_pairs(tree, Axis.PRECEDING) == frozenset(
        (v, u) for (u, v) in axis_pairs(tree, Axis.FOLLOWING)
    )


@_SETTINGS
@given(tree_sizes, seeds)
def test_xml_roundtrip_property(size, seed):
    tree = _make_tree(size, seed)
    assert tree_from_xml(tree_to_xml(tree)) == tree
    assert tree_from_xml(tree_to_xml(tree, indent=True)) == tree


@_SETTINGS
@given(tree_sizes, seeds, st.booleans())
def test_binary_encoding_roundtrip_property(size, seed, pad):
    tree = _make_tree(size, seed)
    assert binary_decode(binary_encode(tree, pad=pad)) == tree


# -------------------------------------------------------------------- PPLbin
@_SETTINGS
@given(tree_sizes, seeds, st.integers(min_value=1, max_value=7), seeds)
def test_pplbin_matrix_evaluator_matches_fig2_semantics(size, tree_seed, expr_size, expr_seed):
    tree = _make_tree(size, tree_seed)
    expression = random_pplbin_expression(expr_size, alphabet=("a", "b", "c"), seed=expr_seed)
    assert evaluate_pairs(tree, expression) == evaluate_path(
        tree, to_core_xpath(expression)
    )


# --------------------------------------------------------------------- HCL⁻
@_SETTINGS
@given(
    st.integers(min_value=2, max_value=7),
    seeds,
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=2),
    seeds,
)
def test_fig8_matches_naive_hcl_answering(size, tree_seed, formula_size, num_vars, formula_seed):
    tree = _make_tree(size, tree_seed)
    formula, variables = random_hcl_formula(
        formula_size, num_variables=num_vars, seed=formula_seed
    )
    oracle = PPLbinOracle(tree)
    assert answer_hcl(tree, formula, variables, oracle) == hcl_naive_answer(
        tree, formula, variables, oracle
    )


@_SETTINGS
@given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=3), seeds)
def test_sharing_normalisation_preserves_variables_and_stays_linear(
    formula_size, num_vars, formula_seed
):
    formula, _ = random_hcl_formula(formula_size, num_variables=num_vars, seed=formula_seed)
    shared, system = normalize(formula)
    assert shared_variables(shared, system) == formula.free_variables
    assert shared.size + system.size <= 4 * formula.size + 4


# ----------------------------------------------------------------------- PPL
@_SETTINGS
@given(
    st.integers(min_value=2, max_value=8),
    seeds,
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=0, max_value=2),
    seeds,
)
def test_generated_ppl_expressions_answer_like_naive(
    size, tree_seed, expr_size, num_vars, expr_seed
):
    tree = _make_tree(size, tree_seed)
    expression, variables = random_ppl_expression(
        expr_size, num_variables=num_vars, seed=expr_seed
    )
    assert is_ppl(expression)
    fast = PPLEngine(tree).answer(expression, variables)
    slow = NaiveEngine(tree).answer(expression, variables)
    assert fast == slow


@_SETTINGS
@given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=2), seeds)
def test_fig7_roundtrip_stays_in_ppl(expr_size, num_vars, expr_seed):
    expression, _ = random_ppl_expression(expr_size, num_variables=num_vars, seed=expr_seed)
    formula = ppl_to_hcl(expression)
    back = hcl_to_ppl(formula)
    assert is_ppl(back)


@_SETTINGS
@given(
    st.integers(min_value=2, max_value=7),
    seeds,
    st.integers(min_value=2, max_value=7),
    st.integers(min_value=0, max_value=2),
    seeds,
)
def test_fig7_roundtrip_preserves_answers(size, tree_seed, expr_size, num_vars, expr_seed):
    tree = _make_tree(size, tree_seed)
    expression, variables = random_ppl_expression(
        expr_size, num_variables=num_vars, seed=expr_seed
    )
    back = hcl_to_ppl(ppl_to_hcl(expression))
    naive = NaiveEngine(tree)
    assert naive.answer(back, variables) == naive.answer(expression, variables)
