"""Property-based tests (hypothesis) on the core data structures and invariants.

Each property cross-checks a polynomial algorithm against a naive oracle on
randomly generated trees and expressions, or asserts a structural invariant
of the data model.  Sizes are kept small so the exponential oracles remain
fast; hypothesis' shrinking then produces minimal counterexamples on failure.
"""

from __future__ import annotations


import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.trees.axes import Axis, axis_matrix, axis_pairs, iter_axis
from repro.trees.binary import binary_decode, binary_encode
from repro.trees.generators import random_tree
from repro.trees.tree import Tree
from repro.trees.xml_io import tree_from_xml, tree_to_xml
from repro.pplbin.evaluator import evaluate_pairs
from repro.pplbin.translate import to_core_xpath
from repro.xpath.semantics import evaluate_path
from repro.xpath.naive import NaiveEngine
from repro.hcl.answering import answer_hcl
from repro.hcl.ast import hcl_naive_answer
from repro.hcl.binding import PPLbinOracle
from repro.hcl.sharing import normalize, shared_variables
from repro.api import as_document
from repro.core.ppl import is_ppl
from repro.core.translate import hcl_to_ppl, ppl_to_hcl
from repro.workloads.query_gen import (
    random_hcl_formula,
    random_ppl_expression,
    random_pplbin_expression,
)

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Strategy producing small random trees through the deterministic generator.
tree_sizes = st.integers(min_value=1, max_value=12)
seeds = st.integers(min_value=0, max_value=10_000)


def _make_tree(size: int, seed: int) -> Tree:
    return random_tree(size, alphabet=("a", "b", "c"), seed=seed)


# ----------------------------------------------------------------- data model
@_SETTINGS
@given(tree_sizes, seeds)
def test_preorder_intervals_characterise_descendants(size, seed):
    tree = _make_tree(size, seed)
    for node in tree.nodes():
        descendants = set(tree.descendants(node))
        by_parent_walk = {
            other
            for other in tree.nodes()
            if other != node and _has_ancestor(tree, other, node)
        }
        assert descendants == by_parent_walk


def _has_ancestor(tree: Tree, node: int, candidate: int) -> bool:
    current = tree.parent[node]
    while current is not None:
        if current == candidate:
            return True
        current = tree.parent[current]
    return False


@_SETTINGS
@given(tree_sizes, seeds)
def test_axis_matrix_agrees_with_iterators(size, seed):
    tree = _make_tree(size, seed)
    for axis in (Axis.CHILD, Axis.DESCENDANT, Axis.FOLLOWING, Axis.PRECEDING_SIBLING):
        matrix = axis_matrix(tree, axis)
        for node in tree.nodes():
            assert set(iter_axis(tree, axis, node)) == set(
                target for target in tree.nodes() if matrix[node, target]
            )


@_SETTINGS
@given(tree_sizes, seeds)
def test_axis_inverse_pairs(size, seed):
    tree = _make_tree(size, seed)
    assert axis_pairs(tree, Axis.ANCESTOR) == frozenset(
        (v, u) for (u, v) in axis_pairs(tree, Axis.DESCENDANT)
    )
    assert axis_pairs(tree, Axis.PRECEDING) == frozenset(
        (v, u) for (u, v) in axis_pairs(tree, Axis.FOLLOWING)
    )


@_SETTINGS
@given(tree_sizes, seeds)
def test_xml_roundtrip_property(size, seed):
    tree = _make_tree(size, seed)
    assert tree_from_xml(tree_to_xml(tree)) == tree
    assert tree_from_xml(tree_to_xml(tree, indent=True)) == tree


@_SETTINGS
@given(tree_sizes, seeds, st.booleans())
def test_binary_encoding_roundtrip_property(size, seed, pad):
    tree = _make_tree(size, seed)
    assert binary_decode(binary_encode(tree, pad=pad)) == tree


# -------------------------------------------------------------------- PPLbin
@_SETTINGS
@given(tree_sizes, seeds, st.integers(min_value=1, max_value=7), seeds)
def test_pplbin_matrix_evaluator_matches_fig2_semantics(size, tree_seed, expr_size, expr_seed):
    tree = _make_tree(size, tree_seed)
    expression = random_pplbin_expression(expr_size, alphabet=("a", "b", "c"), seed=expr_seed)
    assert evaluate_pairs(tree, expression) == evaluate_path(
        tree, to_core_xpath(expression)
    )


# --------------------------------------------------------------------- HCL⁻
@_SETTINGS
@given(
    st.integers(min_value=2, max_value=7),
    seeds,
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=2),
    seeds,
)
def test_fig8_matches_naive_hcl_answering(size, tree_seed, formula_size, num_vars, formula_seed):
    tree = _make_tree(size, tree_seed)
    formula, variables = random_hcl_formula(
        formula_size, num_variables=num_vars, seed=formula_seed
    )
    oracle = PPLbinOracle(tree)
    assert answer_hcl(tree, formula, variables, oracle) == hcl_naive_answer(
        tree, formula, variables, oracle
    )


@_SETTINGS
@given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=3), seeds)
def test_sharing_normalisation_preserves_variables_and_stays_linear(
    formula_size, num_vars, formula_seed
):
    formula, _ = random_hcl_formula(formula_size, num_variables=num_vars, seed=formula_seed)
    shared, system = normalize(formula)
    assert shared_variables(shared, system) == formula.free_variables
    assert shared.size + system.size <= 4 * formula.size + 4


# ----------------------------------------------------------------------- PPL
@_SETTINGS
@given(
    st.integers(min_value=2, max_value=8),
    seeds,
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=0, max_value=2),
    seeds,
)
def test_generated_ppl_expressions_answer_like_naive(
    size, tree_seed, expr_size, num_vars, expr_seed
):
    tree = _make_tree(size, tree_seed)
    expression, variables = random_ppl_expression(
        expr_size, num_variables=num_vars, seed=expr_seed
    )
    assert is_ppl(expression)
    fast = as_document(tree).answer(expression, variables)
    slow = NaiveEngine(tree).answer(expression, variables)
    assert fast == slow


@_SETTINGS
@given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=2), seeds)
def test_fig7_roundtrip_stays_in_ppl(expr_size, num_vars, expr_seed):
    expression, _ = random_ppl_expression(expr_size, num_variables=num_vars, seed=expr_seed)
    formula = ppl_to_hcl(expression)
    back = hcl_to_ppl(formula)
    assert is_ppl(back)


@_SETTINGS
@given(
    st.integers(min_value=2, max_value=7),
    seeds,
    st.integers(min_value=2, max_value=7),
    st.integers(min_value=0, max_value=2),
    seeds,
)
def test_fig7_roundtrip_preserves_answers(size, tree_seed, expr_size, num_vars, expr_seed):
    tree = _make_tree(size, tree_seed)
    expression, variables = random_ppl_expression(
        expr_size, num_variables=num_vars, seed=expr_seed
    )
    back = hcl_to_ppl(ppl_to_hcl(expression))
    naive = NaiveEngine(tree)
    assert naive.answer(back, variables) == naive.answer(expression, variables)


# ----------------------------------------------------- labelled metric merging
#: A small closed vocabulary keeps label sets colliding often enough that
#: both the "same series merges" and the "disjoint series coexist" branches
#: are exercised.
label_sets = st.dictionaries(
    st.sampled_from(["engine", "strategy", "kernel", "op"]),
    st.sampled_from(["polynomial", "naive", "serial", "processes", "dense"]),
    max_size=3,
)
samples = st.lists(
    st.floats(min_value=1e-6, max_value=50.0, allow_nan=False), min_size=0, max_size=30
)


@_SETTINGS
@given(st.lists(st.tuples(label_sets, samples), min_size=1, max_size=6))
def test_merged_labelled_histograms_equal_one_histogram_per_series(shards):
    """Merging shard registries ≡ observing each series' samples in one place.

    Models the processes-strategy pool boundary: every shard worker observes
    into its own registry (several label sets per family), ships ``to_dict``
    payloads to the parent, and the merged family must be indistinguishable
    from one registry that saw every sample directly — per series, for
    counts, sums and every quantile.
    """
    from collections import defaultdict

    from repro.obs import Histogram, MetricsRegistry

    merged = MetricsRegistry()
    by_series = defaultdict(list)
    for labels, values in shards:
        worker = MetricsRegistry()
        histogram = worker.histogram("repro_eval_seconds", "Eval", labels=labels)
        for value in values:
            histogram.observe(value)
            by_series[tuple(sorted(labels.items()))].append(value)
        merged.merge(worker.to_dict())

    assert len(merged.series("repro_eval_seconds")) == len(
        {tuple(sorted(labels.items())) for labels, _ in shards}
    )
    for items, values in by_series.items():
        reference = Histogram("repro_eval_seconds")
        for value in values:
            reference.observe(value)
        series = merged.get("repro_eval_seconds", dict(items))
        assert series is not None
        assert series.count == reference.count
        assert series.counts == reference.counts
        assert series.sum == pytest.approx(reference.sum)
        if values:
            for q in (0.5, 0.9, 0.99):
                assert series.quantile(q) == reference.quantile(q)


@_SETTINGS
@given(label_sets, label_sets, samples, samples)
def test_mismatched_label_sets_merge_into_disjoint_series(
    left_labels, right_labels, left_values, right_values
):
    """A worker using label sets the parent never saw must extend, not raise."""
    from repro.obs import MetricsRegistry

    parent = MetricsRegistry()
    left = parent.histogram("repro_eval_seconds", "Eval", labels=left_labels)
    for value in left_values:
        left.observe(value)
    worker = MetricsRegistry()
    right = worker.histogram("repro_eval_seconds", "Eval", labels=right_labels)
    for value in right_values:
        right.observe(value)

    parent.merge(worker)  # never raises, whatever the label sets

    if left_labels == right_labels:
        assert len(parent.series("repro_eval_seconds")) == 1
        assert parent.get("repro_eval_seconds", left_labels).count == len(
            left_values
        ) + len(right_values)
    else:
        assert len(parent.series("repro_eval_seconds")) == 2
        assert parent.get("repro_eval_seconds", left_labels).count == len(left_values)
        assert parent.get("repro_eval_seconds", right_labels).count == len(right_values)
    # The family renders: every series line carries its own label string.
    text = parent.render()
    assert text.count("# TYPE repro_eval_seconds histogram") == 1
