"""Tests for the packed-bitset matrix kernel and its integration.

Covers the :mod:`repro.pplbin.bitmatrix` representations and kernels, the
kernel-equivalence guarantee (dense / bitset / sparse / adaptive produce
identical relations on randomized trees and generated expressions, checked
against the Fig. 2 semantics oracle), the demand-driven successor path (no
full-matrix materialisation on cold expressions), the evaluator cache-key
regression, the byte-budgeted per-tree matrix cache and its telemetry, and
the uint8 matmul overflow regression.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.api import Document
from repro.corpus.cache import AnswerCache, estimate_entry_bytes
from repro.corpus.store import DocumentStore
from repro.trees.axes import AXES, axis_matrix, axis_relation
from repro.trees.generators import chain_tree, random_tree
from repro.trees.tree import MatrixCache, Node, Tree
from repro.pplbin import bitmatrix as bx
from repro.pplbin import matrix as bm
from repro.pplbin.ast import BCompose, BExcept, BFilter, BinExpr, BStep, BUnion, SelfStep
from repro.pplbin.corexpath1 import binary_relation
from repro.pplbin.evaluator import (
    ROW_MATERIALIZE_THRESHOLD,
    PPLbinEvaluator,
    evaluate_matrix,
    evaluate_relation,
    evaluate_successors,
)
from repro.pplbin.parser import parse_pplbin
from repro.pplbin.translate import to_core_xpath
from repro.xpath.semantics import evaluate_path

KERNELS = list(bx.KERNEL_NAMES)


@pytest.fixture(autouse=True)
def _reset_kernel_state():
    yield
    bx.set_default_kernel(None)
    bx.reset_counters()


# ------------------------------------------------------------ representations
@pytest.mark.parametrize("size", [0, 1, 2, 63, 64, 65, 130])
def test_representation_round_trips(size):
    rng = np.random.default_rng(size)
    dense = rng.random((size, size)) < 0.3
    relation = bx.relation_from_matrix(dense)
    bitset = relation.to_bitset()
    sparse = relation.to_sparse()
    assert np.array_equal(bitset.to_dense(), dense)
    assert np.array_equal(sparse.to_dense(), dense)
    assert np.array_equal(sparse.to_bitset().to_dense(), dense)
    assert relation.nnz() == bitset.nnz() == sparse.nnz() == int(dense.sum())
    assert relation.pairs() == bitset.pairs() == sparse.pairs()
    for node in range(size):
        expected = np.flatnonzero(dense[node])
        for rep in (relation, bitset, sparse):
            assert np.array_equal(rep.row_indices(node), expected)
            assert rep.row_any(node) == bool(expected.size)


@pytest.mark.parametrize("kernel_name", KERNELS)
@pytest.mark.parametrize("size", [0, 1, 5, 70])
def test_kernel_algebra_matches_dense_reference(kernel_name, size):
    rng = np.random.default_rng(7 * size + 1)
    a = rng.random((size, size)) < 0.25
    b = rng.random((size, size)) < 0.25
    kernel = bx.get_kernel(kernel_name)
    # Exercise mixed-representation operands on purpose.
    ra = bx.relation_from_matrix(a).to_bitset()
    rb = bx.relation_from_matrix(b).to_sparse()
    reference = (a.astype(np.int64) @ b.astype(np.int64)) != 0
    assert np.array_equal(kernel.compose(ra, rb).to_dense(), reference)
    assert np.array_equal(kernel.union(ra, rb).to_dense(), a | b)
    assert np.array_equal(kernel.intersection(ra, rb).to_dense(), a & b)
    assert np.array_equal(kernel.difference(ra, rb).to_dense(), a & ~b)
    assert np.array_equal(kernel.complement(ra).to_dense(), ~a)
    diagonal = np.zeros_like(a)
    np.fill_diagonal(diagonal, a.any(axis=1))
    assert np.array_equal(kernel.filter_diagonal(ra).to_dense(), diagonal)
    assert np.array_equal(kernel.identity(size).to_dense(), np.eye(size, dtype=bool))


def test_union_rows_is_single_row_product():
    rng = np.random.default_rng(3)
    dense = rng.random((90, 90)) < 0.2
    sources = np.flatnonzero(rng.random(90) < 0.3).astype(np.int64)
    expected = np.flatnonzero(dense[sources].any(axis=0))
    for relation in (
        bx.relation_from_matrix(dense),
        bx.relation_from_matrix(dense).to_bitset(),
        bx.relation_from_matrix(dense).to_sparse(),
    ):
        assert np.array_equal(bx.union_rows(relation, sources), expected)
        assert bx.union_rows(relation, np.empty(0, dtype=np.int64)).size == 0


def test_cost_model_regimes():
    # Tiny relations stay dense; large sparse ones go sparse; large mid-density
    # ones pack into words.
    assert bx.preferred_representation(32, 200) == "dense"
    assert bx.preferred_representation(1000, 900) == "sparse"
    assert bx.preferred_representation(1000, 100_000) == "bitset"
    assert bx.choose_compose(32, 100, 100) == "dense"
    assert bx.choose_compose(2048, 2048, 2048) == "sparse"
    assert bx.choose_compose(2048, 400_000, 400_000) in ("bitset", "dense")


def test_kernel_registry_and_default():
    assert set(KERNELS) == {"dense", "bitset", "sparse", "adaptive"}
    assert bx.get_default_kernel().name == "adaptive"
    assert bx.set_default_kernel("bitset").name == "bitset"
    assert bx.get_kernel(None).name == "bitset"
    assert bx.set_default_kernel(None).name == "adaptive"
    with pytest.raises(ValueError):
        bx.get_kernel("nope")


# ------------------------------------------------- legacy dense product fixes
def test_bool_matmul_no_uint8_overflow():
    # Regression: the seed's uint8-cast product wrapped counts at 256 — an
    # all-ones 256x256 product came back all-False.
    for size in (256, 300, 511):
        ones = np.ones((size, size), dtype=bool)
        assert bm.bool_matmul(ones, ones).all()
    rng = np.random.default_rng(11)
    a = rng.random((300, 300)) < 0.95
    b = rng.random((300, 300)) < 0.95
    expected = (a.astype(np.int64) @ b.astype(np.int64)) != 0
    assert np.array_equal(bm.bool_matmul(a, b), expected)


def test_bool_matmul_sparse_zero_operands_early_exit():
    zero = np.zeros((40, 40), dtype=bool)
    some = np.zeros((40, 40), dtype=bool)
    some[3, 7] = True
    assert not bm.bool_matmul_sparse(zero, some).any()
    assert not bm.bool_matmul_sparse(some, zero).any()
    rng = np.random.default_rng(5)
    a = rng.random((40, 40)) < 0.1
    b = rng.random((40, 40)) < 0.1
    expected = (a.astype(np.int64) @ b.astype(np.int64)) != 0
    assert np.array_equal(bm.bool_matmul_sparse(a, b), expected)


# -------------------------------------------------------- kernel equivalence
_GEN_AXES = [axis for axis in AXES]
_GEN_LABELS = ["a", "b", "c", "d", None, "zz-absent"]


def _random_expression(rng: random.Random, depth: int) -> BinExpr:
    """A random PPLbin AST drawing from every axis and operator."""
    if depth <= 0 or rng.random() < 0.3:
        if rng.random() < 0.1:
            return SelfStep()
        return BStep(rng.choice(_GEN_AXES), rng.choice(_GEN_LABELS))
    operator = rng.random()
    if operator < 0.35:
        return BCompose(
            _random_expression(rng, depth - 1), _random_expression(rng, depth - 1)
        )
    if operator < 0.6:
        return BUnion(
            _random_expression(rng, depth - 1), _random_expression(rng, depth - 1)
        )
    if operator < 0.8:
        return BExcept(_random_expression(rng, depth - 1))
    return BFilter(_random_expression(rng, depth - 1))


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_kernels_agree_on_random_trees_and_expressions(seed):
    rng = random.Random(seed)
    tree = random_tree(10 + 7 * seed, seed=seed)
    for _ in range(12):
        expression = _random_expression(rng, 3)
        relations = {
            name: evaluate_relation(tree, expression, kernel=name, use_cache=False)
            for name in KERNELS
        }
        reference = relations["dense"].pairs()
        for name, relation in relations.items():
            assert relation.pairs() == reference, (name, expression.unparse())
        # The Fig. 2 semantics oracle cross-checks the dense reference.
        assert reference == evaluate_path(tree, to_core_xpath(expression))


@pytest.mark.parametrize("kernel_name", KERNELS)
def test_kernels_on_one_node_and_chain_trees(kernel_name):
    one = Tree(Node("a"))
    for text in ["descendant::*", "except self", "[child::a]", "self/self"]:
        relation = evaluate_relation(one, text, kernel=kernel_name)
        assert relation.pairs() == evaluate_path(one, to_core_xpath(parse_pplbin(text)))
    chain = chain_tree(2)
    for text in ["child::a", "except child::a", "descendant::a/ancestor::a"]:
        relation = evaluate_relation(chain, text, kernel=kernel_name, use_cache=False)
        assert relation.pairs() == evaluate_path(chain, to_core_xpath(parse_pplbin(text)))


@pytest.mark.parametrize("kernel_name", KERNELS)
def test_except_dense_expressions_across_kernels(kernel_name):
    tree = random_tree(60, seed=21)
    for text in [
        "(except child::a)/(except descendant::b)",
        "except (descendant::*/parent::*)",
        "(except (child::* union parent::*))/(except self)",
    ]:
        got = evaluate_relation(tree, text, kernel=kernel_name, use_cache=False)
        want = evaluate_relation(tree, text, kernel="dense", use_cache=False)
        assert got.pairs() == want.pairs()


def test_corexpath1_produces_relation_values():
    tree = random_tree(25, seed=4)
    text = "child::a/descendant::*[child::b]"
    relation = binary_relation(tree, text)
    assert isinstance(relation, bx.SparseRelation)
    assert relation.pairs() == evaluate_relation(tree, text).pairs()


@pytest.mark.parametrize("kernel_name", KERNELS)
def test_axis_relations_match_axis_matrices(kernel_name):
    tree = random_tree(30, seed=9)
    for axis in AXES:
        relation = axis_relation(tree, axis, kernel_name)
        assert np.array_equal(relation.to_dense(), axis_matrix(tree, axis)), axis


# ----------------------------------------------------- demand-driven successors
def test_cold_successors_do_not_materialize(tiny_tree):
    expression = parse_pplbin("child::*/descendant::b")
    bx.reset_counters()
    evaluator = PPLbinEvaluator(tiny_tree)
    got = evaluator.successors(expression, 0)
    assert evaluator.has_successor(expression, 0) == bool(got)
    after = bx.counters()
    assert after["full_compose"] == 0
    assert after["relations_built"] == 0
    # Correctness against the full evaluation (on a separate tree object so
    # the instrumented one stays cold).
    other = Tree(tiny_tree.to_node())
    assert got == np.flatnonzero(evaluate_matrix(other, expression)[0]).tolist()


@pytest.mark.parametrize(
    "text",
    [
        "child::b",
        "except child::b",
        "[descendant::d]",
        "child::*/descendant::*",
        "(ancestor::* union self)/(descendant::* union self)",
        "except (descendant::b/parent::c)",
    ],
)
def test_demand_driven_rows_match_full_matrix(text):
    tree = random_tree(35, seed=17)
    reference = Tree(tree.to_node())
    matrix = evaluate_matrix(reference, text)
    for node in tree.nodes():
        row = evaluate_successors(tree, text, node)
        assert np.array_equal(row, np.flatnonzero(matrix[node])), (text, node)


def test_nonempty_demand_driven(tiny_tree):
    bx.reset_counters()
    evaluator = PPLbinEvaluator(tiny_tree)
    assert evaluator.nonempty("descendant::d")
    assert bx.counters()["full_compose"] == 0
    assert not evaluator.nonempty("child::zz-absent")


def test_row_queries_materialize_after_threshold():
    tree = random_tree(64, seed=23)
    evaluator = PPLbinEvaluator(tree)
    expression = parse_pplbin("child::a/descendant::*")
    for node in range(ROW_MATERIALIZE_THRESHOLD + 2):
        demand = evaluator.successors(expression, node)
        assert demand == np.flatnonzero(evaluate_matrix(
            Tree(tree.to_node()), expression
        )[node]).tolist()
    # The full relation is now cached and serves subsequent rows.
    assert evaluator._cached_relation(expression) is not None


# ------------------------------------------------------- cache-key regression
def test_custom_matmuls_do_not_share_cache_entries(tiny_tree):
    # Regression: the seed keyed the evaluator cache on `matmul is
    # bool_matmul`, mapping *all* custom products onto one entry.
    calls = {"first": 0, "second": 0}

    def first_matmul(a, b):
        calls["first"] += 1
        return bm.bool_matmul(a, b)

    def second_matmul(a, b):
        calls["second"] += 1
        return bm.bool_matmul(a, b)

    expression = parse_pplbin("child::*/child::*")
    evaluate_matrix(tiny_tree, expression, matmul=first_matmul)
    assert calls == {"first": 1, "second": 0}
    evaluate_matrix(tiny_tree, expression, matmul=second_matmul)
    assert calls == {"first": 1, "second": 1}, "second matmul must not reuse first's cache"
    # Repeats hit their own cache entries: no further product calls.
    evaluate_matrix(tiny_tree, expression, matmul=first_matmul)
    evaluate_matrix(tiny_tree, expression, matmul=second_matmul)
    assert calls == {"first": 1, "second": 1}


def test_kernels_have_distinct_cache_namespaces(tiny_tree):
    dense = evaluate_matrix(tiny_tree, "child::*", kernel="dense")
    bitset = evaluate_relation(tiny_tree, "child::*", kernel="bitset")
    assert isinstance(bitset, bx.BitsetRelation)
    assert np.array_equal(bitset.to_dense(), dense)


def test_evaluate_matrix_still_caches_identically(tiny_tree):
    first = evaluate_matrix(tiny_tree, "descendant::*[child::d]")
    second = evaluate_matrix(tiny_tree, "descendant::*[child::d]")
    assert first is second
    assert not first.flags.writeable


# -------------------------------------------------------- bounded matrix cache
def test_matrix_cache_budget_and_stats():
    cache = MatrixCache(max_bytes=3000)
    big = np.zeros((10, 10), dtype=np.float64)  # 800 bytes + overhead
    for index in range(5):
        cache[("entry", index)] = big
    stats = cache.stats
    assert stats.evictions >= 2
    assert stats.current_bytes <= 3000
    assert stats.insertions == 5
    assert len(cache) == stats.entries
    assert cache.get(("entry", 4)) is big
    assert cache.get(("missing",)) is None
    stats = cache.stats
    assert stats.hits == 1 and stats.misses >= 1
    # An entry larger than the whole budget is not stored.
    cache[("huge",)] = np.zeros(10_000, dtype=np.float64)
    assert ("huge",) not in cache


def test_matrix_cache_unbounded_and_lru_order():
    cache = MatrixCache(max_bytes=None)
    for index in range(100):
        cache[index] = np.zeros(64, dtype=np.uint8)
    assert len(cache) == 100
    assert cache.stats.evictions == 0

    bounded = MatrixCache(max_bytes=1000)
    a, b = np.zeros(300, dtype=np.uint8), np.zeros(300, dtype=np.uint8)
    bounded["a"] = a
    bounded["b"] = b
    assert bounded.get("a") is a  # bump recency: "b" is now LRU
    bounded["c"] = np.zeros(300, dtype=np.uint8)
    assert "b" not in bounded and "a" in bounded


def test_tree_cache_budget_constructor_and_eviction_safety():
    tree = Tree(Node("a", Node("b"), Node("c")), matrix_cache_bytes=1)
    # Every relation overflows the 1-byte budget: nothing caches, everything
    # still evaluates correctly.
    first = evaluate_matrix(tree, "child::*")
    second = evaluate_matrix(tree, "child::*")
    assert np.array_equal(first, second)
    assert len(tree.matrix_cache()) == 0
    unbounded = Tree(Node("a", Node("b")), matrix_cache_bytes=None)
    assert unbounded.matrix_cache().max_bytes is None


def test_query_report_exposes_matrix_cache_and_kernel(paper_bib):
    document = Document(paper_bib)
    report = document.report(
        "descendant::book[child::author[. is $y] and child::title[. is $z]]",
        ["y", "z"],
    )
    assert report.kernel == "adaptive"
    assert report.matrix_cache is not None
    assert report.matrix_cache["insertions"] > 0
    data = report.to_dict()
    assert data["matrix_cache"]["hits"] >= 0
    assert data["kernel"] == "adaptive"


def test_store_aggregates_matrix_cache_stats(tmp_path):
    from repro.workloads import generate_corpus, write_corpus

    write_corpus(tmp_path, generate_corpus(3, base=4, seed=1))
    store = DocumentStore.from_directory(tmp_path)
    for name in store.names():
        store.get(name).answer("descendant::a", [])
    aggregated = store.matrix_cache_stats()
    assert aggregated.insertions > 0
    assert aggregated.current_bytes > 0
    assert aggregated.to_dict()["entries"] == aggregated.entries


# ------------------------------------------------- answer-cache byte accounting
def test_answer_cache_accounts_packed_matrices():
    relation = bx.relation_from_matrix(np.ones((64, 64), dtype=bool)).to_bitset()
    cost = estimate_entry_bytes(relation)
    assert cost >= relation.nbytes  # 64x64 bits = 512 bytes of words
    assert estimate_entry_bytes(np.zeros(100, dtype=np.uint8)) >= 100
    answers = frozenset({(1, 2), (3, 4)})
    assert estimate_entry_bytes(answers) > 0
    cache = AnswerCache(max_bytes=10_000)
    cache.put(("owner", "rel"), relation)
    assert cache.get(("owner", "rel")) is relation
    assert cache.stats.current_bytes >= relation.nbytes


# ----------------------------------------------------------------- CLI knob
def test_cli_bench_kernel_knob(tmp_path, capsys):
    import json

    from repro.cli import main

    xml = tmp_path / "doc.xml"
    xml.write_text("<a><b/><c><d/><b/></c></a>", encoding="utf-8")
    code = main(
        [
            "bench",
            "--xml",
            str(xml),
            "--query",
            "descendant::b",
            "--engines",
            "polynomial",
            "--repeat",
            "1",
            "--kernel",
            "bitset",
        ]
    )
    assert code == 0
    results = json.loads(capsys.readouterr().out)
    assert results[0]["kernel"] == "bitset"
    assert bx.get_default_kernel().name == "bitset"  # reset by the fixture


def test_document_kernel_override(paper_bib):
    document = Document(paper_bib, kernel="sparse")
    assert document.oracle.kernel.name == "sparse"
    answers = document.answer("descendant::author", ["x"])
    baseline = Document(Tree(paper_bib.to_node())).answer("descendant::author", ["x"])
    assert answers == baseline
