"""Tests for the Session layer: policies, precedence, lifecycle, protocol ops.

Covers PR 5's tentpole and satellites:

* ExecutionPolicy / ServingPolicy immutability and the documented
  precedence chain *explicit > policy > env > default* — including the
  regression for the worker-subprocess bug (an explicit ``kernel=`` used to
  lose to ``REPRO_KERNEL`` inside process-strategy shard workers, which
  re-read the environment on spawn);
* Session lifecycle: double-close, typed ``SessionClosedError`` after
  close, context managers, teardown under in-flight async streams;
* the shared compiled-plan memo (sync plan is the object the server
  streams from) and plan-cache persistence through sessions;
* the NDJSON protocol's new ``cancel`` op, auth tokens and per-client
  submission quotas;
* ``repro-xpath engines`` listing kernels from the same registry the
  Session consults;
* the deprecation shims on the pre-Session entry points (silent inside the
  session, warning on direct use).

Async tests run through plain ``asyncio.run`` (no pytest-asyncio here),
matching ``tests/test_serve.py``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import warnings

import pytest

from repro.api import Document, answer_batch
from repro.corpus import CorpusExecutor, DocumentStore
from repro.errors import SessionClosedError
from repro.pplbin import bitmatrix
from repro.serve import CorpusServer
from repro.session import (
    CancellationToken,
    ExecutionPolicy,
    Resolved,
    ServingPolicy,
    Session,
    UNSET,
)
from repro.trees.tree import Node, Tree
from repro.trees.xml_io import tree_to_xml
from repro.workloads.bibliography import generate_bibliography

PAIR_QUERY = "descendant::book[child::author[. is $y] and child::title[. is $z]]"
PAIR_VARS = ("y", "z")
MONADIC_QUERY = "descendant::author[. is $x]"


def run(coroutine):
    """Run one async test body on a fresh event loop."""
    return asyncio.run(coroutine)


def fill_session(session: Session, documents: int = 4, *, seed: int = 0) -> list[str]:
    names = []
    for index in range(documents):
        tree = generate_bibliography(2 + index % 3, seed=seed + index)
        names.append(session.add_xml(f"doc{index:03d}", tree_to_xml(tree)))
    return names


# =====================================================================
# Policies: immutability and the precedence chain
# =====================================================================
class TestPolicies:
    def test_execution_policy_is_immutable(self):
        policy = ExecutionPolicy(engine="naive")
        with pytest.raises(dataclasses.FrozenInstanceError):
            policy.engine = "polynomial"
        with pytest.raises(dataclasses.FrozenInstanceError):
            del policy.engine

    def test_serving_policy_is_immutable(self):
        policy = ServingPolicy(max_concurrent=2)
        with pytest.raises(dataclasses.FrozenInstanceError):
            policy.max_concurrent = 8

    def test_override_returns_new_object_and_skips_unspecified(self):
        policy = ExecutionPolicy(engine="naive")
        overridden = policy.override(engine=None, strategy="threads")
        assert overridden is not policy
        assert overridden.engine == "naive"  # None = unspecified, not cleared
        assert overridden.strategy == "threads"
        assert policy.strategy is UNSET  # original untouched

    def test_session_policy_attribute_is_immutable(self):
        with Session(engine="naive") as session:
            with pytest.raises(dataclasses.FrozenInstanceError):
                session.execution.engine = "polynomial"

    def test_default_layer(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        resolved = ExecutionPolicy().resolve("engine")
        assert resolved == Resolved("polynomial", "default")

    def test_env_layer(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "naive")
        assert ExecutionPolicy().resolve("engine") == Resolved("naive", "env")

    def test_policy_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "yannakakis")
        policy = ExecutionPolicy(engine="naive")
        assert policy.resolve("engine") == Resolved("naive", "policy")

    def test_explicit_beats_policy_and_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "yannakakis")
        policy = ExecutionPolicy(engine="naive")
        assert policy.resolve("engine", "corexpath1") == Resolved(
            "corexpath1", "explicit"
        )

    def test_int_env_coercion(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "3")
        assert ExecutionPolicy().resolve("max_workers") == Resolved(3, "env")
        monkeypatch.setenv("REPRO_MAX_WORKERS", "0")
        assert ExecutionPolicy().resolve("max_workers") == Resolved(None, "env")

    def test_float_env_coercion(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIMEOUT", "2.5")
        assert ExecutionPolicy().resolve("timeout") == Resolved(2.5, "env")

    def test_explain_covers_every_field(self):
        table = ExecutionPolicy(strategy="threads").explain()
        assert table["strategy"] == Resolved("threads", "policy")
        for field in (
            "engine",
            "kernel",
            "strategy",
            "max_workers",
            "max_resident",
            "cache_answers",
            "answer_cache_bytes",
            "matrix_cache_bytes",
            "plan_cache_dir",
            "plan_cache_bytes",
            "timeout",
        ):
            assert field in table

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            ExecutionPolicy().resolve("no_such_knob")

    def test_session_folds_explicit_args_over_policy(self):
        policy = ExecutionPolicy(engine="naive", strategy="threads")
        with Session(execution=policy, engine="polynomial") as session:
            assert session.execution.resolve("engine").value == "polynomial"
            assert session.execution.resolve("strategy").value == "threads"


# =====================================================================
# Kernel precedence, including the worker-subprocess regression
# =====================================================================
class TestKernelPrecedence:
    def test_explicit_kernel_wins_in_serial_session(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "dense")
        with Session(kernel="sparse") as session:
            fill_session(session, 1)
            report = session.report("doc000", PAIR_QUERY, PAIR_VARS)
            assert report.kernel == "sparse"

    def test_explicit_kernel_wins_in_worker_subprocesses(self, monkeypatch):
        # Regression: shard workers used to re-read REPRO_KERNEL on spawn,
        # so the environment beat an explicit kernel argument inside the
        # process strategy.  The resolved kernel now ships with the worker
        # store config.
        monkeypatch.setenv("REPRO_KERNEL", "dense")
        with Session(kernel="bitset", strategy="processes", max_workers=2) as session:
            fill_session(session, 4)
            reports = [
                result.report for result in session.query_corpus((PAIR_QUERY, PAIR_VARS))
            ]
        assert len(reports) == 4
        assert {report.kernel for report in reports} == {"bitset"}

    def test_executor_kernel_argument_reaches_workers(self, monkeypatch):
        # The same guarantee for direct CorpusExecutor users.
        monkeypatch.setenv("REPRO_KERNEL", "dense")
        store = DocumentStore()
        for index in range(3):
            store.add_xml(
                f"doc{index}", tree_to_xml(generate_bibliography(2, seed=index))
            )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with CorpusExecutor(
                store, strategy="processes", max_workers=2, kernel="bitset"
            ) as executor:
                kernels = {
                    result.report.kernel
                    for result in executor.run((PAIR_QUERY, list(PAIR_VARS)))
                }
        assert kernels == {"bitset"}

    def test_policy_kernel_applies_to_store_documents(self):
        policy = ExecutionPolicy(kernel="sparse")
        with Session(execution=policy) as session:
            fill_session(session, 1)
            assert session.document("doc000").oracle.kernel.name == "sparse"

    def test_matrix_cache_budget_from_policy(self):
        with Session(matrix_cache_bytes=123456) as session:
            fill_session(session, 1)
            assert session.document("doc000").tree.matrix_cache().max_bytes == 123456


# =====================================================================
# Session lifecycle
# =====================================================================
class TestSessionLifecycle:
    def test_double_close_is_idempotent(self):
        session = Session()
        session.close()
        session.close()  # must not raise
        assert session.closed

    def test_context_manager_closes(self):
        with Session() as session:
            assert not session.closed
        assert session.closed

    def test_query_after_close_raises_typed_error(self):
        session = Session()
        fill_session(session, 1)
        session.close()
        with pytest.raises(SessionClosedError):
            session.query("doc000", MONADIC_QUERY, ["x"])
        with pytest.raises(SessionClosedError):
            session.compile(MONADIC_QUERY, ["x"])
        with pytest.raises(SessionClosedError):
            session.add_xml("extra", "<a/>")
        with pytest.raises(SessionClosedError):
            list(session.query_corpus((MONADIC_QUERY, ["x"])))
        with pytest.raises(SessionClosedError):
            session.stats()
        with pytest.raises(SessionClosedError):
            session.cancellation_token()

    def test_astream_after_close_raises(self):
        async def body():
            session = Session()
            fill_session(session, 1)
            await session.aclose()
            with pytest.raises(SessionClosedError):
                await session.astream((MONADIC_QUERY, ["x"]))

        run(body())

    def test_closed_error_is_catchable_as_repro_error(self):
        from repro.errors import ReproError

        session = Session()
        session.close()
        with pytest.raises(ReproError):
            session.document("nope")

    def test_pool_teardown_under_in_flight_streams(self):
        # aclose() with a stream mid-flight: the stream is cancelled, the
        # server drains, the executor pools close — and nothing hangs.
        async def body():
            session = Session(
                strategy="threads", serving=ServingPolicy(max_concurrent=1)
            )
            fill_session(session, 6)
            stream = await session.astream((PAIR_QUERY, PAIR_VARS))
            first = await stream.__anext__()
            assert first.doc_name == "doc000"
            await session.aclose()
            assert session.closed
            # The stream terminates (cancelled or already finished) rather
            # than deadlocking on torn-down pools.
            remaining = [result async for result in stream]
            assert len(remaining) <= 5

        run(body())

    def test_aclose_is_idempotent(self):
        async def body():
            session = Session()
            await session.aclose()
            await session.aclose()
            assert session.closed

        run(body())

    def test_async_context_manager(self):
        async def body():
            async with Session() as session:
                fill_session(session, 2)
                results = await session.aquery((MONADIC_QUERY, ["x"]))
                assert len(results) == 2
            assert session.closed

        run(body())


# =====================================================================
# Shared plans and correctness of the surfaces
# =====================================================================
class TestSharedPlans:
    def test_sync_and_async_share_the_same_plan_object(self):
        async def body():
            async with Session() as session:
                fill_session(session, 2)
                sync_plan = session.compile(PAIR_QUERY, PAIR_VARS)
                assert session.compile(PAIR_QUERY, PAIR_VARS) is sync_plan
                assert session.server().compile(PAIR_QUERY, PAIR_VARS) is sync_plan

        run(body())

    def test_sync_async_and_corpus_answers_agree(self):
        async def body():
            async with Session() as session:
                names = fill_session(session, 3)
                sync_answers = {
                    name: session.query(name, PAIR_QUERY, PAIR_VARS) for name in names
                }
                corpus_answers = {
                    result.doc_name: result.answers
                    for result in session.query_corpus((PAIR_QUERY, PAIR_VARS))
                }
                async_answers = {
                    result.doc_name: result.answers
                    for result in await session.aquery((PAIR_QUERY, PAIR_VARS))
                }
                assert sync_answers == corpus_answers == async_answers

        run(body())

    def test_engine_override_per_call(self):
        with Session(engine="naive") as session:
            fill_session(session, 1)
            naive = session.query("doc000", PAIR_QUERY, PAIR_VARS)
            poly = session.query("doc000", PAIR_QUERY, PAIR_VARS, engine="polynomial")
            assert naive == poly

    def test_plan_cache_persists_across_sessions(self, tmp_path):
        cache_dir = tmp_path / "plans"
        with Session(plan_cache=cache_dir) as first:
            first.compile(PAIR_QUERY, PAIR_VARS)
            assert first.plan_cache.stats.misses >= 1
        with Session(plan_cache=cache_dir) as second:
            query = second.compile(PAIR_QUERY, PAIR_VARS)
            assert second.plan_cache.stats.hits >= 1
            assert query.variables == PAIR_VARS

    def test_plan_cache_dir_from_env(self, tmp_path, monkeypatch):
        cache_dir = tmp_path / "env-plans"
        monkeypatch.setenv("REPRO_PLAN_CACHE", str(cache_dir))
        with Session() as session:
            assert session.plan_cache is not None
            session.compile(MONADIC_QUERY, ["x"])
        assert any(cache_dir.iterdir())

    def test_query_accepts_trees_and_documents(self):
        tree = Tree(Node("bib", Node("book", Node("author"), Node("title"))))
        with Session() as session:
            from_tree = session.query(tree, PAIR_QUERY, PAIR_VARS)
            assert len(from_tree) == 1

    def test_cancellation_token_cancels_stream(self):
        async def body():
            async with Session(serving=ServingPolicy(max_concurrent=1)) as session:
                fill_session(session, 6)
                token = session.cancellation_token()
                stream = await session.astream((PAIR_QUERY, PAIR_VARS), token=token)
                assert token.cancel()
                assert not token.cancel()  # one-shot
                await stream.results()
                assert stream.cancelled

        run(body())

    def test_token_registered_after_cancel_fires_immediately(self):
        token = CancellationToken()
        token.cancel("early")
        fired = []
        token.on_cancel(lambda: fired.append(True))
        assert fired == [True]
        assert token.reason == "early"


# =====================================================================
# NDJSON protocol: cancel op, auth, per-client quotas
# =====================================================================
async def _open_client(tcp_server):
    port = tcp_server.sockets[0].getsockname()[1]
    return await asyncio.open_connection("127.0.0.1", port)


async def _send_line(writer, payload: dict) -> None:
    writer.write(json.dumps(payload).encode() + b"\n")
    await writer.drain()


async def _read_response(reader) -> dict:
    line = await asyncio.wait_for(reader.readline(), timeout=30)
    assert line, "connection closed unexpectedly"
    return json.loads(line)


class TestProtocolHardening:
    def test_cancel_op_aborts_stream_mid_flight(self):
        async def body():
            async with Session(serving=ServingPolicy(max_concurrent=1)) as session:
                fill_session(session, 8)
                tcp = await session.protocol().serve_tcp(port=0)
                async with tcp:
                    reader, writer = await _open_client(tcp)
                    await _send_line(
                        writer,
                        {"op": "submit", "id": 7, "query": PAIR_QUERY,
                         "vars": list(PAIR_VARS)},
                    )
                    await _send_line(writer, {"op": "cancel", "id": 8, "target": 7})
                    saw_cancelled_ack = False
                    done = None
                    while done is None:
                        response = await _read_response(reader)
                        if response["type"] == "cancelled":
                            assert response["id"] == 8
                            assert response["target"] == 7
                            assert response["found"] is True
                            saw_cancelled_ack = True
                        elif response["type"] == "done":
                            done = response
                    assert saw_cancelled_ack
                    assert done["id"] == 7
                    assert done["cancelled"] is True
                    assert done["results"] < 8
                    writer.close()

        run(body())

    def test_cancel_unknown_target_reports_not_found(self):
        async def body():
            async with Session() as session:
                fill_session(session, 1)
                tcp = await session.protocol().serve_tcp(port=0)
                async with tcp:
                    reader, writer = await _open_client(tcp)
                    await _send_line(writer, {"op": "cancel", "id": 1, "target": 99})
                    response = await _read_response(reader)
                    assert response["type"] == "cancelled"
                    assert response["found"] is False
                    writer.close()

        run(body())

    def test_duplicate_submission_id_is_rejected(self):
        # A reused live id would overwrite the cancel token and corrupt the
        # per-client quota bookkeeping — it must be a typed bad-request.
        async def body():
            serving = ServingPolicy(max_concurrent=1, stream_buffer=1)
            async with Session(serving=serving) as session:
                fill_session(session, 8)
                tcp = await session.protocol().serve_tcp(port=0)
                async with tcp:
                    reader, writer = await _open_client(tcp)
                    submit = {"op": "submit", "id": 1, "query": PAIR_QUERY,
                              "vars": list(PAIR_VARS)}
                    await _send_line(writer, submit)
                    await _send_line(writer, submit)  # same id, still live
                    rejected = None
                    while rejected is None:
                        response = await _read_response(reader)
                        if response["type"] == "error":
                            rejected = response
                        assert response["type"] != "done" or rejected
                    assert rejected["kind"] == "bad-request"
                    assert "already in use" in rejected["error"]
                    await _send_line(writer, {"op": "cancel", "id": 2, "target": 1})
                    while True:
                        response = await _read_response(reader)
                        if response.get("type") == "done":
                            break
                    writer.close()

        run(body())

    def test_auth_token_required_when_policy_sets_one(self):
        async def body():
            serving = ServingPolicy(auth_token="sesame")
            async with Session(serving=serving) as session:
                fill_session(session, 1)
                tcp = await session.protocol().serve_tcp(port=0)
                async with tcp:
                    reader, writer = await _open_client(tcp)
                    await _send_line(writer, {"op": "ping", "id": 1})
                    refused = await _read_response(reader)
                    assert refused["type"] == "error"
                    assert refused["kind"] == "unauthorized"
                    await _send_line(writer, {"op": "ping", "id": 2, "auth": "wrong"})
                    wrong = await _read_response(reader)
                    assert wrong["kind"] == "unauthorized"
                    await _send_line(writer, {"op": "ping", "id": 3, "auth": "sesame"})
                    accepted = await _read_response(reader)
                    assert accepted["type"] == "pong"
                    writer.close()

        run(body())

    def test_per_client_submission_quota(self):
        async def body():
            serving = ServingPolicy(
                max_concurrent=1, max_submissions_per_client=1, stream_buffer=1
            )
            async with Session(serving=serving) as session:
                fill_session(session, 8)
                tcp = await session.protocol().serve_tcp(port=0)
                async with tcp:
                    reader, writer = await _open_client(tcp)
                    await _send_line(
                        writer,
                        {"op": "submit", "id": 1, "query": PAIR_QUERY,
                         "vars": list(PAIR_VARS)},
                    )
                    await _send_line(
                        writer,
                        {"op": "submit", "id": 2, "query": PAIR_QUERY,
                         "vars": list(PAIR_VARS)},
                    )
                    # The second submission must be rejected with a typed
                    # overloaded error while the first still streams.
                    rejected = None
                    while rejected is None:
                        response = await _read_response(reader)
                        if response.get("id") == 2:
                            rejected = response
                    assert rejected["type"] == "error"
                    assert rejected["kind"] == "overloaded"
                    # Cancel the first and drain the connection cleanly.
                    await _send_line(writer, {"op": "cancel", "id": 3, "target": 1})
                    while True:
                        response = await _read_response(reader)
                        if response.get("type") == "done":
                            break
                    writer.close()

        run(body())


# =====================================================================
# CLI: engines lists kernels from the Session's registry
# =====================================================================
class TestEnginesKernelListing:
    def test_engines_subcommand_lists_kernels(self, capsys):
        from repro import cli

        assert cli.main(["engines"]) == 0
        out = capsys.readouterr().out
        assert "kernels" in out
        for name in bitmatrix.KERNEL_NAMES:
            assert name in out
        assert "[default]" in out
        # The capability/cost summaries come from the registry itself.
        for description in bitmatrix.kernel_descriptions().values():
            assert description["storage"] in out
            assert description["compose"] in out

    def test_kernel_descriptions_cover_registry(self):
        descriptions = bitmatrix.kernel_descriptions()
        assert set(descriptions) == set(bitmatrix.KERNEL_NAMES)
        for name, description in descriptions.items():
            assert description["name"] == name
            assert description["storage"]
            assert description["compose"]
            assert description["best_for"]


# =====================================================================
# Deprecation shims: silent inside the session, warning outside
# =====================================================================
class TestDeprecationShims:
    def test_direct_document_construction_warns(self, paper_bib):
        with pytest.warns(DeprecationWarning, match="Session"):
            Document(paper_bib)

    def test_answer_batch_warns(self, paper_bib):
        with pytest.warns(DeprecationWarning, match="query_corpus"):
            answer_batch([Tree(Node("a"))], MONADIC_QUERY, ["x"])

    def test_corpus_executor_construction_is_silent(self):
        # 1.5.0 dropped the construction warning: building an executor
        # directly is a supported embedding, not a legacy path.
        store = DocumentStore()
        store.add_xml("d", "<a/>")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            executor = CorpusExecutor(store)
        executor.close()

    def test_corpus_server_construction_is_silent(self):
        store = DocumentStore()
        store.add_xml("d", "<a/>")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            CorpusServer(store, strategy="serial")

    def test_seed_era_entry_points_removed(self):
        import repro

        for name in ("answer", "compile_query", "PPLEngine"):
            assert not hasattr(repro, name)

    def test_session_paths_do_not_warn(self):
        async def body():
            with warnings.catch_warnings():
                warnings.simplefilter("error", DeprecationWarning)
                async with Session() as session:
                    fill_session(session, 2)
                    session.query("doc000", PAIR_QUERY, PAIR_VARS)
                    list(session.query_corpus((MONADIC_QUERY, ["x"])))
                    await session.aquery((MONADIC_QUERY, ["x"]))
                    session.stats()

        run(body())

    def test_deprecated_entry_points_still_work(self, paper_bib):
        # The shims must stay functional, not just noisy.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            direct = Document(paper_bib).answer(PAIR_QUERY, PAIR_VARS)
        with Session() as session:
            via_session = session.query(paper_bib, PAIR_QUERY, PAIR_VARS)
        assert direct == via_session
