"""Tests for the repro.api facade: Document/Query, registry, dispatch, batch, CLI."""

import gc
import json

import pytest

from repro.errors import (
    EngineCapabilityError,
    ReproError,
    RestrictionViolation,
    UnknownEngineError,
)
from repro.trees.tree import Node, Tree
from repro.trees.xml_io import tree_to_xml
from repro.xpath.parser import parse_path
from repro.xpath.semantics import evaluate_path
from repro.api import (
    Document,
    EngineCapabilities,
    Query,
    answer_batch,
    as_document,
    available_engines,
    compile_query,
    get_engine,
    register_engine,
)
from repro.api.document import _documents
from repro.workloads.bibliography import (
    bibliography_pair_query,
    book_author_title_triples_query,
    generate_bibliography,
)
from repro import cli

PAIR_QUERY, PAIR_VARS = bibliography_pair_query()
TRIPLE_QUERY, TRIPLE_VARS = book_author_title_triples_query()

#: Backends whose capabilities cover n-ary queries with variables.
NARY_ENGINES = ("naive", "yannakakis")
#: Backends exposing a binary path for variable-free queries.
BINARY_ENGINES = ("polynomial", "naive", "corexpath1")


# -------------------------------------------------------------------- registry
def test_all_builtin_engines_are_registered():
    assert set(available_engines()) == {"polynomial", "naive", "corexpath1", "yannakakis"}


def test_unknown_engine_raises_typed_error(paper_bib):
    with pytest.raises(UnknownEngineError) as excinfo:
        get_engine("no-such-engine")
    assert isinstance(excinfo.value, ReproError)
    assert "no-such-engine" in str(excinfo.value)
    assert "polynomial" in str(excinfo.value)  # the message lists alternatives
    with pytest.raises(UnknownEngineError):
        Document(paper_bib).answer(PAIR_QUERY, PAIR_VARS, engine="no-such-engine")


def test_ppl_alias_resolves_to_polynomial():
    assert get_engine("ppl") is get_engine("polynomial")


def test_register_engine_rejects_duplicates_and_non_engines():
    with pytest.raises(ValueError):
        register_engine(get_engine("naive"))  # name already taken
    with pytest.raises(ValueError):
        # "ppl" is an alias of "polynomial"; aliases win in get_engine, so an
        # engine registered under that name would be silently unreachable.
        register_engine(get_engine("naive"), name="ppl")
    with pytest.raises(TypeError):
        register_engine(object())  # no name/capabilities/answer


def test_register_custom_engine(paper_bib):
    class ConstantEngine:
        name = "constant-for-test"
        capabilities = EngineCapabilities()

        def answer(self, document, query):
            return frozenset({(0,) * query.arity})

    register_engine(ConstantEngine())
    try:
        result = Document(paper_bib).answer(PAIR_QUERY, PAIR_VARS, engine="constant-for-test")
        assert result == frozenset({(0, 0)})
    finally:
        from repro.api.registry import _REGISTRY

        del _REGISTRY["constant-for-test"]


# ------------------------------------------------------- cross-engine agreement
@pytest.mark.parametrize("engine", NARY_ENGINES)
@pytest.mark.parametrize(
    "text,variables",
    [(PAIR_QUERY, PAIR_VARS), (TRIPLE_QUERY, TRIPLE_VARS)],
    ids=["pair", "triples"],
)
def test_backends_agree_with_polynomial_on_quickstart_queries(
    paper_bib, engine, text, variables
):
    document = Document(paper_bib)
    query = document.compile(text, variables)
    assert document.answer(query, engine=engine) == document.answer(query)


@pytest.mark.parametrize("engine", NARY_ENGINES)
def test_backends_agree_on_generated_bibliography(engine):
    document = Document(generate_bibliography(3, authors_per_book=2, seed=11))
    query = document.compile(PAIR_QUERY, PAIR_VARS)
    assert document.answer(query, engine=engine) == document.answer(query)


@pytest.mark.parametrize("engine", BINARY_ENGINES)
def test_binary_backends_agree_on_variable_free_query(paper_bib, engine):
    document = Document(paper_bib)
    expected = evaluate_path(paper_bib, parse_path("descendant::book/child::author"), {})
    assert document.pairs("descendant::book/child::author", engine=engine) == expected


@pytest.mark.parametrize("engine", ("polynomial", "naive", "corexpath1"))
def test_boolean_queries_across_engines(paper_bib, engine):
    document = Document(paper_bib)
    assert document.answer("descendant::price", engine=engine) == frozenset({()})
    assert document.answer("descendant::zzz", engine=engine) == frozenset()
    assert document.nonempty("descendant::price", engine=engine)
    assert not document.nonempty("descendant::zzz", engine=engine)


def test_naive_pairs_covers_expressions_without_pplbin_form(paper_bib):
    # A for-loop has no Fig. 4 PPLbin form but is still variable free in the
    # Fig. 2 sense; the naive backend's binary path must accept it.
    text = "for $x in child::book return $x/child::author"
    expected = evaluate_path(paper_bib, parse_path(text), {})
    assert Document(paper_bib).pairs(text, engine="naive") == expected


def test_corexpath1_monadic_matches_matrix_row(paper_bib):
    document = Document(paper_bib)
    query = document.compile("descendant::book/child::author")
    monadic = get_engine("corexpath1").monadic(document, query)
    expected = {target for source, target in document.pairs(query) if source == 0}
    assert set(monadic) == expected


# -------------------------------------------------------- capability violations
def test_nary_query_on_corexpath1_raises_before_evaluation(paper_bib):
    document = Document(paper_bib)
    with pytest.raises(EngineCapabilityError) as excinfo:
        document.answer(PAIR_QUERY, PAIR_VARS, engine="corexpath1")
    assert excinfo.value.engine == "corexpath1"
    assert isinstance(excinfo.value, ReproError)


def test_complement_on_corexpath1_raises(paper_bib):
    # `intersect` compiles to PPLbin complements (De Morgan), which the
    # set-based evaluator cannot run.
    document = Document(paper_bib)
    with pytest.raises(EngineCapabilityError) as excinfo:
        document.answer("child::* intersect descendant::*", engine="corexpath1")
    assert excinfo.value.capability == "supports_complement"


def test_union_on_yannakakis_raises(paper_bib):
    document = Document(paper_bib)
    with pytest.raises(EngineCapabilityError) as excinfo:
        document.answer(
            "child::author[. is $x] union descendant::title[. is $x]",
            ["x"],
            engine="yannakakis",
        )
    assert excinfo.value.capability == "supports_union"


def test_non_ppl_on_polynomial_raises_restriction_violation(paper_bib):
    document = Document(paper_bib)
    with pytest.raises(RestrictionViolation):
        document.answer("for $x in child::a return .", ["x"])
    # ... while the naive backend answers non-PPL expressions via the same
    # facade (NV(not) violation: a variable below a negation).
    from repro.xpath.naive import naive_answer

    non_ppl = ".[not(child::author[. is $x])]"
    answers = document.answer(non_ppl, ["x"], engine="naive")
    assert answers == naive_answer(paper_bib, non_ppl, ["x"])


# ----------------------------------------------------------- Document and Query
def test_compile_query_carries_translations():
    query = compile_query(PAIR_QUERY, PAIR_VARS)
    assert isinstance(query, Query)
    assert query.is_ppl and query.violations == ()
    assert query.hcl is not None
    assert query.pplbin is None  # the expression uses variables
    assert query.arity == 2

    binary = compile_query("descendant::book/child::author")
    assert binary.pplbin is not None and binary.is_variable_free


def test_compile_query_strict_and_lenient():
    with pytest.raises(RestrictionViolation):
        compile_query("for $x in child::a return .", ["x"])
    lenient = compile_query("for $x in child::a return .", ["x"], require_ppl=False)
    assert not lenient.is_ppl
    assert lenient.hcl is None
    assert {v.condition for v in lenient.violations} == {"N(for)"}


def test_document_compile_caches_queries_and_translations(paper_bib):
    document = Document(paper_bib)
    parsed = parse_path("descendant::author[. is $x]")
    first = document.compile(parsed, ["x"])
    second = document.compile(parsed, ["x"])
    assert first is second
    other_vars = document.compile(parsed, ["x", "q"])
    assert other_vars is not first
    assert len(document._translations) == 1  # HCL translated once


def test_document_answer_rejects_variable_override(paper_bib):
    document = Document(paper_bib)
    query = document.compile(PAIR_QUERY, PAIR_VARS)
    with pytest.raises(ValueError):
        document.answer(query, ["y"])


def test_document_from_xml_roundtrip(paper_bib):
    document = Document.from_xml(tree_to_xml(paper_bib))
    assert document.tree == paper_bib
    assert document.answer(PAIR_QUERY, PAIR_VARS) == Document(paper_bib).answer(
        PAIR_QUERY, PAIR_VARS
    )


def test_answer_many_mixes_item_forms(paper_bib):
    document = Document(paper_bib)
    compiled = document.compile(PAIR_QUERY, PAIR_VARS)
    results = document.answer_many(
        [compiled, (TRIPLE_QUERY, TRIPLE_VARS), "descendant::price"]
    )
    assert results[0] == document.answer(compiled)
    assert results[1] == document.answer(TRIPLE_QUERY, TRIPLE_VARS)
    assert results[2] == frozenset({()})


def test_answer_batch_compiles_once(paper_bib, generated_bib):
    expected = [
        Document(paper_bib).answer(PAIR_QUERY, PAIR_VARS),
        Document(generated_bib).answer(PAIR_QUERY, PAIR_VARS),
    ]
    assert answer_batch([paper_bib, generated_bib], PAIR_QUERY, PAIR_VARS) == expected
    query = compile_query(PAIR_QUERY, PAIR_VARS)
    assert answer_batch([paper_bib, generated_bib], query) == expected


# --------------------------------------------------------- weak document registry
def test_as_document_reuses_live_trees(paper_bib):
    first = as_document(paper_bib)
    second = as_document(paper_bib)
    assert first is second


def test_as_document_survives_id_reuse(paper_bib, tiny_tree):
    # Simulate an id() collision: a stale entry under this tree's id must be
    # ignored because the registry re-checks tree identity.
    stale = Document(tiny_tree)
    _documents[id(paper_bib)] = stale
    adopted = as_document(paper_bib)
    assert adopted is not stale
    assert adopted.tree is paper_bib


def test_as_document_registry_does_not_pin_documents():
    tree = Tree(Node("a", Node("b")))
    key = id(tree)
    as_document(tree)
    gc.collect()
    # Nothing else references the document, so the weak entry is collectable;
    # at the very least it must not outlive the tree.
    del tree
    gc.collect()
    assert _documents.get(key) is None or _documents.get(key).tree is not None


# ------------------------------------------------------------ QueryReport JSON
def test_query_report_to_dict_and_json(paper_bib):
    document = Document(paper_bib)
    report = document.report(PAIR_QUERY, PAIR_VARS)
    data = report.to_dict()
    assert data["answer_count"] == 3
    assert data["arity"] == 2
    assert data["variables"] == ["y", "z"]
    assert data["tree_size"] == paper_bib.size
    assert data["engine"] == "polynomial"
    assert json.loads(report.to_json()) == data


# ------------------------------------------------- Document.pairs regression
def test_document_pairs_goes_through_registry(paper_bib):
    """Regression: variable-free binary queries answer like the semantics."""
    for text in (
        "descendant::book/child::author",
        "child::book[child::price]",
        "descendant::*[not(child::*)]",
    ):
        expected = evaluate_path(paper_bib, parse_path(text), {})
        assert Document(paper_bib).pairs(text) == expected


def test_document_pairs_rejects_variables(paper_bib):
    with pytest.raises(EngineCapabilityError):
        Document(paper_bib).pairs("descendant::author[. is $x]")


def test_seed_era_entry_points_are_gone():
    """The 1.5.0 removal: no PPLEngine, no repro.core.api, no repro.answer."""
    import repro
    import repro.core.engine

    assert not hasattr(repro, "answer")
    assert not hasattr(repro, "compile_query")
    assert not hasattr(repro, "PPLEngine")
    assert not hasattr(repro.core.engine, "PPLEngine")
    with pytest.raises(ImportError):
        import repro.core.api  # noqa: F401


# ------------------------------------------------------------------------- CLI
@pytest.fixture
def bib_xml_path(tmp_path, paper_bib):
    path = tmp_path / "bib.xml"
    path.write_text(tree_to_xml(paper_bib), encoding="utf-8")
    return str(path)


def test_cli_answer_subcommand_with_corexpath1(capsys, bib_xml_path):
    code = cli.main(
        [
            "answer",
            "--xml",
            bib_xml_path,
            "--query",
            "descendant::book/child::author",
            "--engine",
            "corexpath1",
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert captured.out.strip().splitlines() == ["(boolean)", "non-empty"]


def test_cli_answer_subcommand_engines_agree(capsys, bib_xml_path):
    outputs = []
    for engine in ("polynomial", "naive", "yannakakis"):
        code = cli.main(
            [
                "answer",
                "--xml",
                bib_xml_path,
                "--query",
                PAIR_QUERY,
                "--vars",
                "y,z",
                "--engine",
                engine,
            ]
        )
        assert code == 0
        outputs.append(capsys.readouterr().out)
    assert outputs[0] == outputs[1] == outputs[2]
    assert len(outputs[0].strip().splitlines()) == 4  # header + 3 answers


def test_cli_answer_unknown_engine_fails_loudly(capsys, bib_xml_path):
    code = cli.main(
        ["answer", "--xml", bib_xml_path, "--query", "child::book", "--engine", "nope"]
    )
    captured = capsys.readouterr()
    assert code == 1
    assert "unknown engine" in captured.err


def test_cli_answer_capability_error(capsys, bib_xml_path):
    code = cli.main(
        [
            "answer",
            "--xml",
            bib_xml_path,
            "--query",
            PAIR_QUERY,
            "--vars",
            "y,z",
            "--engine",
            "corexpath1",
        ]
    )
    captured = capsys.readouterr()
    assert code == 1
    assert "corexpath1" in captured.err


def test_cli_stats_emits_json(capsys, bib_xml_path):
    code = cli.main(
        [
            "answer",
            "--xml",
            bib_xml_path,
            "--query",
            "descendant::author[. is $x]",
            "--vars",
            "x",
            "--stats",
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    json_lines = [line for line in captured.err.splitlines() if line.startswith("{")]
    assert json_lines, captured.err
    data = json.loads(json_lines[0])
    assert data["answer_count"] == 3
    assert data["engine"] == "polynomial"


def test_cli_check_subcommand(capsys):
    assert cli.main(["check", "--query", "descendant::a[. is $x]"]) == 0
    assert "PPL" in capsys.readouterr().out
    assert cli.main(["check", "--query", "for $x in child::a return ."]) == 1
    assert "N(for)" in capsys.readouterr().out


def test_cli_translate_subcommand(capsys):
    assert cli.main(["translate", "--query", "descendant::a[. is $x]"]) == 0
    out = capsys.readouterr().out
    assert "hcl:" in out
    assert cli.main(["translate", "--query", "for $x in child::a return ."]) == 1


def test_cli_top_level_help_shows_subcommands(capsys):
    with pytest.raises(SystemExit) as excinfo:
        cli.main(["--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    for name in ("answer", "check", "translate", "bench", "engines"):
        assert name in out


def test_cli_bare_invocation_shows_subcommand_usage(capsys):
    with pytest.raises(SystemExit) as excinfo:
        cli.main([])
    assert excinfo.value.code == 2
    assert "command" in capsys.readouterr().err


def test_cli_engines_subcommand(capsys):
    assert cli.main(["engines"]) == 0
    out = capsys.readouterr().out
    for name in available_engines():
        assert name in out


def test_cli_bench_subcommand_emits_json(capsys, bib_xml_path):
    code = cli.main(
        [
            "bench",
            "--xml",
            bib_xml_path,
            "--query",
            PAIR_QUERY,
            "--vars",
            "y,z",
            "--engines",
            "polynomial,naive",
            "--repeat",
            "1",
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    results = json.loads(captured.out)
    assert [entry["engine"] for entry in results] == ["polynomial", "naive"]
    assert all(entry["answer_count"] == 3 for entry in results)
    assert all(entry["seconds"] >= 0 for entry in results)
