"""Tests for HCL(L): AST/semantics, oracles, sharing, MC table, Fig. 8 algorithm."""

import pytest

from repro.errors import EvaluationError, RestrictionViolation
from repro.trees.axes import Axis
from repro.trees.generators import random_tree
from repro.pplbin.ast import BStep, SelfStep
from repro.pplbin.parser import parse_pplbin
from repro.hcl.answering import HclAnswerer, answer_hcl, check_no_variable_sharing
from repro.hcl.ast import (
    HCompose,
    HFilter,
    HUnion,
    HVar,
    Leaf,
    compose,
    evaluate_hcl,
    hcl_naive_answer,
    union,
)
from repro.hcl.binding import AxisOracle, ExplicitRelationOracle, PPLbinOracle
from repro.hcl.mc import MCTable
from repro.hcl.sharing import (
    SELF_QUERY,
    SharedCompose,
    SharedUnion,
    expand,
    normalize,
    shared_variables,
)


# ---------------------------------------------------------------- AST basics
def test_hcl_free_variables_and_size():
    formula = HCompose(Leaf(BStep(Axis.CHILD, "a")), HVar("x"))
    assert formula.free_variables == frozenset({"x"})
    assert formula.size == 3
    assert len(list(formula.leaves())) == 1


def test_compose_and_union_builders():
    parts = [Leaf(SelfStep()), HVar("x"), Leaf(SelfStep())]
    assert compose(*parts).size == 5
    assert union(Leaf(SelfStep()), HVar("y")).free_variables == frozenset({"y"})
    with pytest.raises(ValueError):
        compose()


# ------------------------------------------------------------------ oracles
def test_pplbin_oracle(tiny_tree):
    oracle = PPLbinOracle(tiny_tree)
    assert oracle.successors(BStep(Axis.CHILD, None), 2) == [3, 4]
    assert (0, 1) in oracle.pairs(BStep(Axis.CHILD, "b"))


def test_axis_oracle(tiny_tree):
    oracle = AxisOracle(tiny_tree)
    assert oracle.successors(Axis.CHILD, 0) == [1, 2]
    assert oracle.successors((Axis.CHILD, "b"), 0) == [1]
    with pytest.raises(EvaluationError):
        oracle.successors("child", 0)


def test_explicit_relation_oracle():
    oracle = ExplicitRelationOracle({"r": [(0, 1), (0, 2)]})
    assert oracle.successors("r", 0) == [1, 2]
    assert oracle.pairs("r") == frozenset({(0, 1), (0, 2)})
    oracle.add("s", [(1, 1)])
    assert oracle.successors("s", 1) == [1]
    with pytest.raises(EvaluationError):
        oracle.pairs("missing")


# ----------------------------------------------------------- naive semantics
def test_evaluate_hcl_matches_manual(tiny_tree):
    oracle = PPLbinOracle(tiny_tree)
    formula = HCompose(Leaf(parse_pplbin("child::*")), HVar("x"))
    pairs = evaluate_hcl(tiny_tree, formula, {"x": 2}, oracle)
    assert pairs == frozenset({(0, 2)})
    filtered = HFilter(formula)
    assert evaluate_hcl(tiny_tree, filtered, {"x": 2}, oracle) == frozenset({(0, 0)})


def test_evaluate_hcl_union(tiny_tree):
    oracle = PPLbinOracle(tiny_tree)
    formula = HUnion(HVar("x"), HVar("y"))
    pairs = evaluate_hcl(tiny_tree, formula, {"x": 1, "y": 3}, oracle)
    assert pairs == frozenset({(1, 1), (3, 3)})


# ------------------------------------------------------------------- sharing
def test_normalize_simple_composition():
    formula = HCompose(Leaf("b1"), HVar("x"))
    shared, system = normalize(formula)
    assert isinstance(shared, SharedCompose)
    assert len(system) == 0


def test_normalize_union_left_of_composition_introduces_parameter():
    big_tail = HCompose(Leaf("tail1"), Leaf("tail2"))
    formula = HCompose(HUnion(Leaf("l"), Leaf("r")), big_tail)
    shared, system = normalize(formula)
    assert isinstance(shared, SharedUnion)
    assert len(system) == 1


def test_normalize_is_linear_not_exponential():
    # ((a ∪ b)/(a ∪ b)/... k times) would explode under naive distribution.
    formula = HUnion(Leaf("a"), Leaf("b"))
    for _ in range(12):
        formula = HCompose(HUnion(Leaf("a"), Leaf("b")), formula)
    shared, system = normalize(formula)
    total = shared.size + system.size
    assert total < 10 * formula.size


def test_expand_inverts_normalize_semantically(tiny_tree):
    oracle = ExplicitRelationOracle(
        {
            "child": [(0, 1), (0, 2), (2, 3), (2, 4)],
            SELF_QUERY: [(u, u) for u in tiny_tree.nodes()],
        }
    )
    formula = HCompose(HUnion(Leaf("child"), HVar("x")), HFilter(Leaf("child")))
    shared, system = normalize(formula)
    expanded = expand(shared, system)
    for x_value in tiny_tree.nodes():
        original = evaluate_hcl(tiny_tree, formula, {"x": x_value}, oracle)
        roundtrip = evaluate_hcl(tiny_tree, expanded, {"x": x_value}, oracle)
        assert original == roundtrip


def test_shared_variables_follow_parameters():
    formula = HCompose(HUnion(HVar("x"), Leaf("b")), HCompose(Leaf("b"), HVar("y")))
    shared, system = normalize(formula)
    assert shared_variables(shared, system) == frozenset({"x", "y"})


# ------------------------------------------------------------------ MC table
def test_mc_table_matches_satisfiability(tiny_tree):
    oracle = PPLbinOracle(tiny_tree)
    # child::d / self  — navigable exactly from node 2.
    formula = HCompose(Leaf(parse_pplbin("child::d")), Leaf(SelfStep()))
    shared, system = normalize(formula)
    table = MCTable(tiny_tree, shared, system, oracle)
    values = {node: table.value(shared, node) for node in tiny_tree.nodes()}
    assert values == {0: False, 1: False, 2: True, 3: False, 4: False}
    assert table.entries_computed() > 0
    assert table.table_size() >= 2


def test_mc_table_variable_heads_are_always_navigable(tiny_tree):
    oracle = PPLbinOracle(tiny_tree)
    shared, system = normalize(HVar("x"))
    table = MCTable(tiny_tree, shared, system, oracle)
    assert all(table.value(shared, node) for node in tiny_tree.nodes())


def test_mc_table_precompute(tiny_tree):
    oracle = PPLbinOracle(tiny_tree)
    shared, system = normalize(HUnion(Leaf(parse_pplbin("child::d")), HVar("x")))
    table = MCTable(tiny_tree, shared, system, oracle)
    table.precompute()
    assert table.entries_computed() >= tiny_tree.size


# --------------------------------------------------------- Fig. 8 answering
def _oracle(tree):
    return PPLbinOracle(tree)


def test_answering_single_variable(tiny_tree):
    # child::* / x : x ranges over nodes that are children of something.
    formula = HCompose(Leaf(parse_pplbin("child::*")), HVar("x"))
    answers = answer_hcl(tiny_tree, formula, ["x"], _oracle(tiny_tree))
    assert answers == hcl_naive_answer(tiny_tree, formula, ["x"], _oracle(tiny_tree))
    assert answers == frozenset({(1,), (2,), (3,), (4,)})


def test_answering_two_variables_author_title_pattern(paper_bib):
    oracle = _oracle(paper_bib)
    book = Leaf(parse_pplbin("descendant::book"))
    author = HCompose(Leaf(parse_pplbin("child::author")), HVar("y"))
    title = HCompose(Leaf(parse_pplbin("child::title")), HVar("z"))
    formula = HCompose(book, HCompose(HFilter(author), HFilter(title)))
    fast = answer_hcl(paper_bib, formula, ["y", "z"], oracle)
    slow = hcl_naive_answer(paper_bib, formula, ["y", "z"], oracle)
    assert fast == slow
    assert len(fast) == 3


def test_answering_union_extends_missing_variables(tiny_tree):
    oracle = _oracle(tiny_tree)
    formula = HUnion(HVar("x"), HVar("y"))
    fast = answer_hcl(tiny_tree, formula, ["x", "y"], oracle)
    slow = hcl_naive_answer(tiny_tree, formula, ["x", "y"], oracle)
    assert fast == slow
    # Either x is witnessed (y arbitrary) or y is witnessed (x arbitrary):
    # the answer is the full cross product.
    assert len(fast) == tiny_tree.size ** 2


def test_answering_output_variable_not_in_formula(tiny_tree):
    oracle = _oracle(tiny_tree)
    formula = HCompose(Leaf(parse_pplbin("child::d")), HVar("x"))
    fast = answer_hcl(tiny_tree, formula, ["x", "unused"], oracle)
    slow = hcl_naive_answer(tiny_tree, formula, ["x", "unused"], oracle)
    assert fast == slow
    assert len(fast) == tiny_tree.size  # one witness for x, free choice for unused


def test_answering_unsatisfiable_formula(tiny_tree):
    oracle = _oracle(tiny_tree)
    formula = HCompose(Leaf(parse_pplbin("child::zzz")), HVar("x"))
    assert answer_hcl(tiny_tree, formula, ["x"], oracle) == frozenset()


def test_answering_existential_variable_not_in_output(tiny_tree):
    oracle = _oracle(tiny_tree)
    # [child::* / y] / child::d / x : y is existential, x must be the d node
    # reachable from a node that also has some child.
    formula = HCompose(
        HFilter(HCompose(Leaf(parse_pplbin("child::*")), HVar("y"))),
        HCompose(Leaf(parse_pplbin("child::d")), HVar("x")),
    )
    fast = answer_hcl(tiny_tree, formula, ["x"], oracle)
    slow = hcl_naive_answer(tiny_tree, formula, ["x"], oracle)
    assert fast == slow == frozenset({(3,)})


def test_answering_rejects_variable_sharing(tiny_tree):
    formula = HCompose(HVar("x"), HVar("x"))
    with pytest.raises(RestrictionViolation):
        answer_hcl(tiny_tree, formula, ["x"], _oracle(tiny_tree))
    with pytest.raises(RestrictionViolation):
        check_no_variable_sharing(HCompose(HFilter(HVar("x")), HVar("x")))


def test_check_no_variable_sharing_accepts_unions(tiny_tree):
    check_no_variable_sharing(HUnion(HVar("x"), HVar("x")))


def test_answerer_nonempty(paper_bib):
    answerer = HclAnswerer(paper_bib, _oracle(paper_bib))
    assert answerer.nonempty(HCompose(Leaf(parse_pplbin("descendant::price")), HVar("x")))
    assert not answerer.nonempty(HCompose(Leaf(parse_pplbin("descendant::zzz")), HVar("x")))


def test_answering_against_naive_on_random_trees():
    oracle_queries = [
        HCompose(Leaf(parse_pplbin("descendant::a")), HVar("x")),
        HCompose(
            Leaf(parse_pplbin("descendant::*")),
            HCompose(
                HFilter(HCompose(Leaf(parse_pplbin("child::a")), HVar("x"))),
                HCompose(Leaf(parse_pplbin("child::b")), HVar("y")),
            ),
        ),
        HUnion(
            HCompose(Leaf(parse_pplbin("child::a")), HVar("x")),
            HCompose(Leaf(parse_pplbin("descendant::b")), HVar("x")),
        ),
    ]
    for seed in (1, 2):
        tree = random_tree(9, seed=seed)
        oracle = PPLbinOracle(tree)
        for formula in oracle_queries:
            variables = sorted(formula.free_variables)
            assert answer_hcl(tree, formula, variables, oracle) == hcl_naive_answer(
                tree, formula, variables, oracle
            )


def test_answer_shared_direct_entry(tiny_tree):
    oracle = _oracle(tiny_tree)
    formula = HCompose(Leaf(parse_pplbin("child::*")), HVar("x"))
    shared, system = normalize(formula)
    answerer = HclAnswerer(tiny_tree, oracle)
    assert answerer.answer_shared(shared, system, ["x"]) == answerer.answer(formula, ["x"])
