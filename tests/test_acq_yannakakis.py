"""Tests for acyclic conjunctive queries and Yannakakis' algorithm (Section 6)."""

import pytest

from repro.errors import NotAcyclicError
from repro.trees.generators import random_tree
from repro.pplbin.corexpath1 import invert
from repro.pplbin.parser import parse_pplbin
from repro.pplbin.ast import binary_intersect
from repro.hcl.acq import (
    Atom,
    ConjunctiveQuery,
    UnionOfACQs,
    acq_to_hcl,
    hcl_to_acq,
    is_acyclic,
    naive_acq_answer,
    union_to_hcl,
)
from repro.hcl.answering import answer_hcl
from repro.hcl.ast import HCompose, HUnion, HVar, Leaf
from repro.hcl.binding import PPLbinOracle
from repro.hcl.yannakakis import yannakakis_answer


CHILD = parse_pplbin("child::*")
CHILD_A = parse_pplbin("child::a")
CHILD_B = parse_pplbin("child::b")
DESC = parse_pplbin("descendant::*")
REACH_ALL = parse_pplbin("(ancestor::* union self)/(descendant::* union self)")


def _relations(tree, *queries):
    oracle = PPLbinOracle(tree)
    return {query: oracle.pairs(query) for query in queries}


# --------------------------------------------------------------- acyclicity
def test_path_query_is_acyclic():
    query = ConjunctiveQuery(
        (Atom("r", "x", "y"), Atom("r", "y", "z")), ("x", "z")
    )
    assert is_acyclic(query)


def test_cycle_is_detected():
    query = ConjunctiveQuery(
        (Atom("r", "x", "y"), Atom("r", "y", "z"), Atom("r", "z", "x")), ("x",)
    )
    assert not is_acyclic(query)


def test_parallel_edges_and_self_loops_are_cyclic():
    assert not is_acyclic(
        ConjunctiveQuery((Atom("r", "x", "y"), Atom("s", "x", "y")), ("x",))
    )
    assert not is_acyclic(ConjunctiveQuery((Atom("r", "x", "x"),), ("x",)))


def test_star_query_is_acyclic():
    query = ConjunctiveQuery(
        (Atom("r", "b", "y"), Atom("s", "b", "z"), Atom("t", "b", "w")),
        ("y", "z", "w"),
    )
    assert is_acyclic(query)


def test_variables_property():
    query = ConjunctiveQuery((Atom("r", "x", "y"),), ("x", "q"))
    assert query.variables == frozenset({"x", "y", "q"})
    assert query.edges() == [("x", "y", "r")]


# -------------------------------------------------------------- Yannakakis
def test_yannakakis_matches_naive_on_path_query(tiny_tree):
    query = ConjunctiveQuery(
        (Atom(CHILD, "x", "y"), Atom(CHILD, "y", "z")), ("x", "z")
    )
    relations = _relations(tiny_tree, CHILD)
    nodes = list(tiny_tree.nodes())
    assert yannakakis_answer(query, relations, nodes) == naive_acq_answer(
        query, relations, nodes
    )


def test_yannakakis_matches_naive_on_star_query(paper_bib):
    author = parse_pplbin("child::author")
    title = parse_pplbin("child::title")
    query = ConjunctiveQuery(
        (Atom(author, "b", "y"), Atom(title, "b", "z")), ("y", "z")
    )
    relations = _relations(paper_bib, author, title)
    nodes = list(paper_bib.nodes())
    fast = yannakakis_answer(query, relations, nodes)
    assert fast == naive_acq_answer(query, relations, nodes)
    assert len(fast) == 3


def test_yannakakis_projection_drops_join_variable(paper_bib):
    author = parse_pplbin("child::author")
    query = ConjunctiveQuery((Atom(author, "b", "y"),), ("y",))
    relations = _relations(paper_bib, author)
    answers = yannakakis_answer(query, relations, list(paper_bib.nodes()))
    assert answers == frozenset(
        (node,) for node in paper_bib.nodes() if paper_bib.labels[node] == "author"
    )


def test_yannakakis_empty_result(tiny_tree):
    missing = parse_pplbin("child::zzz")
    query = ConjunctiveQuery((Atom(missing, "x", "y"),), ("x", "y"))
    relations = _relations(tiny_tree, missing)
    assert yannakakis_answer(query, relations, list(tiny_tree.nodes())) == frozenset()


def test_yannakakis_unconstrained_output_variable(tiny_tree):
    query = ConjunctiveQuery((Atom(CHILD, "x", "y"),), ("x", "free"))
    relations = _relations(tiny_tree, CHILD)
    nodes = list(tiny_tree.nodes())
    assert yannakakis_answer(query, relations, nodes) == naive_acq_answer(
        query, relations, nodes
    )


def test_yannakakis_disconnected_components(tiny_tree):
    query = ConjunctiveQuery(
        (Atom(CHILD_A, "x", "y"), Atom(CHILD_B, "u", "v")), ("y", "v")
    )
    relations = _relations(tiny_tree, CHILD_A, CHILD_B)
    nodes = list(tiny_tree.nodes())
    assert yannakakis_answer(query, relations, nodes) == naive_acq_answer(
        query, relations, nodes
    )


def test_yannakakis_rejects_cycles_and_equalities(tiny_tree):
    relations = _relations(tiny_tree, CHILD)
    cyclic = ConjunctiveQuery(
        (Atom(CHILD, "x", "y"), Atom(CHILD, "y", "x")), ("x",)
    )
    with pytest.raises(NotAcyclicError):
        yannakakis_answer(cyclic, relations, list(tiny_tree.nodes()))
    with_equality = ConjunctiveQuery(
        (Atom(CHILD, "x", "y"),), ("x",), equalities=(("x", "y"),)
    )
    with pytest.raises(NotAcyclicError):
        yannakakis_answer(with_equality, relations, list(tiny_tree.nodes()))


def test_yannakakis_on_random_trees_matches_naive():
    for seed in (3, 4):
        tree = random_tree(10, seed=seed)
        query = ConjunctiveQuery(
            (Atom(DESC, "x", "y"), Atom(CHILD_A, "y", "z")), ("x", "z")
        )
        relations = _relations(tree, DESC, CHILD_A)
        nodes = list(tree.nodes())
        assert yannakakis_answer(query, relations, nodes) == naive_acq_answer(
            query, relations, nodes
        )


# ----------------------------------------------------- ACQ <-> HCL translations
def test_acq_to_hcl_matches_yannakakis(paper_bib):
    author = parse_pplbin("[self::book]/child::author")
    title = parse_pplbin("[self::book]/child::title")
    query = ConjunctiveQuery(
        (Atom(author, "b", "y"), Atom(title, "b", "z")), ("y", "z")
    )
    oracle = PPLbinOracle(paper_bib)
    relations = {author: oracle.pairs(author), title: oracle.pairs(title)}
    nodes = list(paper_bib.nodes())
    expected = yannakakis_answer(query, relations, nodes)

    formula = acq_to_hcl(query, chstar=REACH_ALL, invert=invert, intersect=binary_intersect)
    assert answer_hcl(paper_bib, formula, ["y", "z"], oracle) == expected


def test_acq_to_hcl_handles_inverted_edges(tiny_tree):
    # Atom pointing "towards the root" of the chosen orientation requires the
    # inverse operation on L.
    query = ConjunctiveQuery(
        (Atom(CHILD_A, "x", "y"), Atom(CHILD_B, "z", "x")), ("y", "z")
    )
    oracle = PPLbinOracle(tiny_tree)
    relations = _relations(tiny_tree, CHILD_A, CHILD_B)
    nodes = list(tiny_tree.nodes())
    expected = naive_acq_answer(query, relations, nodes)
    formula = acq_to_hcl(query, chstar=REACH_ALL, invert=invert)
    assert answer_hcl(tiny_tree, formula, ["y", "z"], oracle) == expected


def test_acq_to_hcl_rejects_cyclic_queries():
    cyclic = ConjunctiveQuery(
        (Atom(CHILD, "x", "y"), Atom(CHILD, "y", "x")), ("x",)
    )
    with pytest.raises(NotAcyclicError):
        acq_to_hcl(cyclic, chstar=REACH_ALL, invert=invert)


def test_union_of_acqs_requires_same_output():
    first = ConjunctiveQuery((Atom(CHILD_A, "x", "y"),), ("y",))
    second = ConjunctiveQuery((Atom(CHILD_B, "x", "y"),), ("y",))
    union = UnionOfACQs((first, second))
    assert union.output == ("y",)
    with pytest.raises(Exception):
        UnionOfACQs((first, ConjunctiveQuery((Atom(CHILD_A, "x", "y"),), ("x",))))


def test_union_to_hcl_answers_union(tiny_tree):
    first = ConjunctiveQuery((Atom(CHILD_A, "x", "y"),), ("y",))
    second = ConjunctiveQuery((Atom(CHILD_B, "x", "y"),), ("y",))
    oracle = PPLbinOracle(tiny_tree)
    formula = union_to_hcl(UnionOfACQs((first, second)), chstar=REACH_ALL, invert=invert)
    answers = answer_hcl(tiny_tree, formula, ["y"], oracle)
    relations = _relations(tiny_tree, CHILD_A, CHILD_B)
    nodes = list(tiny_tree.nodes())
    expected = naive_acq_answer(first, relations, nodes) | naive_acq_answer(
        second, relations, nodes
    )
    assert answers == expected


def test_hcl_to_acq_produces_atoms():
    formula = HCompose(Leaf(CHILD_A), HCompose(HVar("x"), Leaf(CHILD_B)))
    query = hcl_to_acq(formula)
    assert len(query.atoms) == 2
    assert query.output == ("x",)


def test_hcl_to_acq_rejects_unions():
    with pytest.raises(NotAcyclicError):
        hcl_to_acq(HUnion(Leaf(CHILD_A), Leaf(CHILD_B)))
