"""Tests for PPLbin: parser, matrix algebra, Theorem 2 evaluator, translations."""

import numpy as np
import pytest

from repro.errors import EvaluationError, ParseError, TranslationError
from repro.trees.axes import Axis
from repro.trees.generators import random_tree
from repro.pplbin import matrix as bm
from repro.pplbin.ast import (
    BCompose,
    BExcept,
    BFilter,
    BStep,
    SelfStep,
    binary_compose,
    binary_except,
    binary_intersect,
    binary_union,
    complement_filter,
    nodes_query,
)
from repro.pplbin.corexpath1 import (
    axis_successor_set,
    binary_answer,
    monadic_answer,
    satisfying_nodes,
    successor_set,
)
from repro.pplbin.evaluator import PPLbinEvaluator, evaluate_matrix, evaluate_pairs
from repro.pplbin.parser import parse_pplbin
from repro.pplbin.translate import ROOT, from_core_xpath, to_core_xpath
from repro.xpath.parser import parse_path
from repro.xpath.semantics import evaluate_path


# -------------------------------------------------------------------- parser
def test_parse_step_and_compose():
    assert parse_pplbin("child::a/descendant::b") == BCompose(
        BStep(Axis.CHILD, "a"), BStep(Axis.DESCENDANT, "b")
    )


def test_parse_self_forms():
    assert parse_pplbin("self") == SelfStep()
    assert parse_pplbin(".") == SelfStep()
    assert parse_pplbin("self::a") == BStep(Axis.SELF, "a")


def test_parse_unary_except_and_filter():
    assert parse_pplbin("except child::a") == BExcept(BStep(Axis.CHILD, "a"))
    assert parse_pplbin("[child::a]") == BFilter(BStep(Axis.CHILD, "a"))


def test_parse_binary_sugar_expands():
    intersect = parse_pplbin("child::a intersect child::b")
    assert intersect == binary_intersect(BStep(Axis.CHILD, "a"), BStep(Axis.CHILD, "b"))
    difference = parse_pplbin("child::a except child::b")
    assert difference == binary_except(BStep(Axis.CHILD, "a"), BStep(Axis.CHILD, "b"))


def test_parse_postfix_filter_is_composition():
    parsed = parse_pplbin("child::a[child::b]")
    assert parsed == BCompose(BStep(Axis.CHILD, "a"), BFilter(BStep(Axis.CHILD, "b")))


def test_parse_errors():
    with pytest.raises(ParseError):
        parse_pplbin("child::")
    with pytest.raises(ParseError):
        parse_pplbin("child::a extra::b junk]")


def test_unparse_roundtrip():
    for text in [
        "child::a/descendant::*",
        "except (child::a union [parent::b])",
        "(ancestor::* union self)/(descendant::* union self)",
        "self::a[following-sibling::b]",
    ]:
        parsed = parse_pplbin(text)
        assert parse_pplbin(parsed.unparse()) == parsed


def test_builders_and_size():
    expr = binary_compose(BStep(Axis.CHILD, None), SelfStep(), BStep(Axis.PARENT, None))
    assert expr.size == 5
    assert binary_union(SelfStep()).size == 1
    assert nodes_query().uses_complement() is False
    assert BExcept(SelfStep()).uses_complement()
    with pytest.raises(ValueError):
        binary_compose()


# ------------------------------------------------------------- matrix algebra
def test_bool_matmul_implementations_agree():
    rng = np.random.default_rng(0)
    for _ in range(5):
        a = rng.random((7, 7)) < 0.3
        b = rng.random((7, 7)) < 0.3
        expected = bm.bool_matmul(a, b)
        assert np.array_equal(expected, bm.bool_matmul_python(a, b))
        assert np.array_equal(expected, bm.bool_matmul_sparse(a, b))


def test_matrix_helpers():
    identity = bm.identity_matrix(3)
    assert bm.pairs_from_matrix(identity) == frozenset({(0, 0), (1, 1), (2, 2)})
    assert bm.bool_complement(bm.empty_matrix(2)).all()
    assert not bm.bool_difference(bm.full_matrix(2), bm.full_matrix(2)).any()
    filtered = bm.filter_diagonal(bm.matrix_from_pairs(3, [(0, 2), (2, 1)]))
    assert bm.pairs_from_matrix(filtered) == frozenset({(0, 0), (2, 2)})
    rebuilt = bm.matrix_from_pairs(3, [(1, 2)])
    assert rebuilt[1, 2] and rebuilt.sum() == 1


# ------------------------------------------------- Theorem 2 matrix evaluator
def _reference_pairs(tree, expression):
    """Oracle: embed into Core XPath 2.0 and use the Fig. 2 semantics."""
    return evaluate_path(tree, to_core_xpath(expression))


@pytest.mark.parametrize(
    "text",
    [
        "child::b",
        "descendant::*",
        "child::c/child::d",
        "child::b union child::c",
        "except child::b",
        "[child::d]",
        "descendant::*[child::d]",
        "child::* except child::b",
        "child::* intersect descendant::b",
        "(ancestor::* union self)/(descendant::* union self)",
        "except (descendant::b/parent::c)",
        "[except child::*]",
    ],
)
def test_matrix_evaluator_matches_semantics(tiny_tree, text):
    expression = parse_pplbin(text)
    assert evaluate_pairs(tiny_tree, expression) == _reference_pairs(tiny_tree, expression)


def test_matrix_evaluator_on_larger_random_tree():
    tree = random_tree(30, seed=13)
    for text in ["descendant::a[child::b]", "except (child::a union parent::b)"]:
        expression = parse_pplbin(text)
        assert evaluate_pairs(tree, expression) == _reference_pairs(tree, expression)


def test_matrix_evaluator_caches_per_tree(tiny_tree):
    expression = parse_pplbin("descendant::*[child::d]")
    first = evaluate_matrix(tiny_tree, expression)
    second = evaluate_matrix(tiny_tree, expression)
    assert first is second


def test_evaluator_facade(tiny_tree):
    evaluator = PPLbinEvaluator(tiny_tree)
    assert evaluator.successors("child::*", 2) == [3, 4]
    assert evaluator.has_successor("child::*", 2)
    assert not evaluator.has_successor("child::*", 1)
    assert evaluator.nonempty("descendant::d")
    assert evaluator.pairs("child::d") == frozenset({(2, 3)})


def test_nodes_query_is_universal(tiny_tree):
    matrix = evaluate_matrix(tiny_tree, nodes_query())
    assert matrix.all()


def test_root_query_selects_root(tiny_tree):
    assert evaluate_pairs(tiny_tree, ROOT) == frozenset({(0, 0)})


def test_complement_filter_is_correct_negation(tiny_tree):
    # complement_filter(P) must hold exactly at nodes with NO P-successor,
    # unlike the literal Fig. 4 reading [except P] which holds at nodes with
    # SOME non-successor (here: every node, since the tree has > 1 node).
    probe = BStep(Axis.CHILD, None)
    correct = evaluate_pairs(tiny_tree, complement_filter(probe))
    assert correct == frozenset({(1, 1), (3, 3), (4, 4)})
    literal_fig4 = evaluate_pairs(tiny_tree, BFilter(BExcept(probe)))
    assert literal_fig4 == frozenset((u, u) for u in tiny_tree.nodes())
    assert correct != literal_fig4


# ------------------------------------------------------- Fig. 4 translation
@pytest.mark.parametrize(
    "text",
    [
        ".",
        "child::a",
        "child::c/child::d",
        "child::a union descendant::b",
        "child::* intersect descendant::b",
        "descendant::* except child::*",
        "descendant::*[child::d]",
        "descendant::*[not child::*]",
        "descendant::*[child::d and parent::a]",
        "descendant::*[child::d or self::b]",
        "descendant::*[not (child::d or self::b)]",
        "descendant::*[not not child::d]",
        "descendant::*[. is .]",
        ".[not(. is .)]",
    ],
)
def test_fig4_translation_preserves_semantics(tiny_tree, text):
    core = parse_path(text)
    translated = from_core_xpath(core)
    assert evaluate_pairs(tiny_tree, translated) == evaluate_path(tiny_tree, core)


def test_fig4_rejects_variables_and_for_loops():
    with pytest.raises(TranslationError):
        from_core_xpath(parse_path("$x/child::a"))
    with pytest.raises(TranslationError):
        from_core_xpath(parse_path("for $x in child::a return ."))
    with pytest.raises(TranslationError):
        from_core_xpath(parse_path("child::a[. is $y]"))


def test_to_core_xpath_embedding_is_variable_free(tiny_tree):
    expression = parse_pplbin("except (child::a[descendant::b])")
    embedded = to_core_xpath(expression)
    assert embedded.free_variables == frozenset()


# ----------------------------------------------- Core XPath 1.0 set evaluator
def test_axis_successor_sets_match_matrices(tiny_tree):
    from repro.trees.axes import axis_matrix

    for axis in (
        Axis.CHILD,
        Axis.PARENT,
        Axis.DESCENDANT,
        Axis.ANCESTOR,
        Axis.DESCENDANT_OR_SELF,
        Axis.ANCESTOR_OR_SELF,
        Axis.FOLLOWING_SIBLING,
        Axis.PRECEDING_SIBLING,
        Axis.FOLLOWING,
        Axis.PRECEDING,
        Axis.SELF,
    ):
        matrix = axis_matrix(tiny_tree, axis)
        for start in tiny_tree.nodes():
            expected = frozenset(np.flatnonzero(matrix[start]).tolist())
            assert axis_successor_set(tiny_tree, axis, [start]) == expected


def test_successor_set_matches_matrix_evaluator(tiny_tree):
    for text in [
        "child::b",
        "descendant::*[child::d]",
        "child::c/child::*",
        "child::b union descendant::d",
    ]:
        expression = parse_pplbin(text)
        matrix = evaluate_matrix(tiny_tree, expression)
        for start in tiny_tree.nodes():
            expected = frozenset(np.flatnonzero(matrix[start]).tolist())
            assert successor_set(tiny_tree, expression, [start]) == expected


def test_satisfying_nodes_matches_filter(tiny_tree):
    expression = parse_pplbin("child::d")
    expected = frozenset(
        node for node in tiny_tree.nodes()
        if evaluate_matrix(tiny_tree, expression)[node].any()
    )
    assert satisfying_nodes(tiny_tree, expression) == expected


def test_set_evaluator_rejects_complement(tiny_tree):
    with pytest.raises(EvaluationError):
        successor_set(tiny_tree, "except child::a", [0])


def test_monadic_and_binary_answers(tiny_tree):
    assert monadic_answer(tiny_tree, "child::*/child::*") == frozenset({3, 4})
    assert binary_answer(tiny_tree, "child::b") == evaluate_pairs(tiny_tree, "child::b")
