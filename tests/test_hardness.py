"""Tests for the hardness substrate: DPLL, the Prop. 3 reduction, alternation."""

import pytest

from repro.hardness.alternation import (
    alternation_document,
    alternation_formula,
    alternation_query,
)
from repro.hardness.dpll import CNF, Clause, dpll_satisfiable, random_3cnf
from repro.hardness.sat_reduction import build_sat_document, reduce_sat_to_xpath
from repro.core.ppl import is_ppl, ppl_violations
from repro.fo.semantics import fo_nonempty
from repro.xpath.naive import naive_nonempty
from repro.xpath.analysis import contains_for_loop, variables_below_negation


# --------------------------------------------------------------------- DPLL
def test_clause_and_cnf_basics():
    clause = Clause((1, -2))
    assert clause.variables() == frozenset({1, 2})
    assert clause.is_satisfied({1: True, 2: True})
    assert not clause.is_satisfied({1: False, 2: True})
    formula = CNF.from_lists([[1, -2], [2]])
    assert formula.num_variables == 2
    assert formula.num_clauses == 2
    assert formula.is_satisfied({1: True, 2: True})
    with pytest.raises(ValueError):
        Clause((0,))


def test_dpll_satisfiable_instances():
    formula = CNF.from_lists([[1, 2], [-1, 2], [1, -2]])
    model = dpll_satisfiable(formula)
    assert model is not None
    assert formula.is_satisfied(model)


def test_dpll_unsatisfiable_instances():
    formula = CNF.from_lists([[1, 2], [1, -2], [-1, 2], [-1, -2]])
    assert dpll_satisfiable(formula) is None
    single = CNF.from_lists([[1], [-1]])
    assert dpll_satisfiable(single) is None


def test_dpll_unit_propagation_and_pure_literals():
    formula = CNF.from_lists([[1], [-1, 2], [-2, 3], [3, 4]])
    model = dpll_satisfiable(formula)
    assert model is not None and model[1] and model[2] and model[3]


def test_dpll_agrees_with_brute_force_on_random_instances():
    import itertools

    for seed in range(6):
        formula = random_3cnf(4, 8, seed=seed)
        variables = sorted(formula.variables())
        brute = any(
            formula.is_satisfied(dict(zip(variables, values)))
            for values in itertools.product([False, True], repeat=len(variables))
        )
        assert (dpll_satisfiable(formula) is not None) == brute


def test_random_3cnf_shape():
    formula = random_3cnf(5, 7, seed=1)
    assert formula.num_clauses == 7
    assert all(len(clause.literals) == 3 for clause in formula.clauses)
    with pytest.raises(ValueError):
        random_3cnf(2, 3)


# ------------------------------------------------------ Proposition 3 reduction
def test_reduction_document_shape():
    formula = CNF.from_lists([[1, -2], [2, 3]])
    tree = build_sat_document(formula)
    assert tree.labels[0] == "formula"
    assert tree.size == 1 + 3 * formula.num_variables


def test_reduction_query_violates_only_sharing_conditions():
    formula = CNF.from_lists([[1, 2], [-1, 2]])
    reduction = reduce_sat_to_xpath(formula)
    conditions = {violation.condition for violation in ppl_violations(reduction.query)}
    assert conditions  # not PPL
    assert conditions <= {"NVS(/)", "NVS(and)", "NVS([])"}
    assert not is_ppl(reduction.query)
    # Prop. 3 also requires: no for-loops and no variables below negation.
    assert not contains_for_loop(reduction.query)
    assert variables_below_negation(reduction.query) == frozenset()


def test_reduction_linear_size():
    formula = random_3cnf(5, 10, seed=2)
    reduction = reduce_sat_to_xpath(formula)
    literal_count = sum(len(clause.literals) for clause in formula.clauses)
    assert reduction.query.size <= 12 * literal_count + 10
    assert reduction.tree.size == 1 + 3 * formula.num_variables


@pytest.mark.parametrize(
    "clauses,expected",
    [
        ([[1, 2], [-1, 2]], True),
        ([[1], [-1]], False),
        ([[1, 2], [1, -2], [-1, 2], [-1, -2]], False),
        ([[1, 2, 3]], True),
        ([[1], [2], [-1, -2]], False),
    ],
)
def test_reduction_preserves_satisfiability(clauses, expected):
    formula = CNF.from_lists(clauses)
    reduction = reduce_sat_to_xpath(formula)
    assert reduction.satisfiable_dpll() == expected
    assert reduction.nonempty_naive() == expected


def test_reduction_on_random_instances_matches_dpll():
    for seed in (0, 1):
        formula = random_3cnf(3, 5, seed=seed)
        reduction = reduce_sat_to_xpath(formula)
        assert reduction.nonempty_naive() == reduction.satisfiable_dpll()


# ------------------------------------------------------------ alternation
def test_alternation_formula_shape():
    formula = alternation_formula(3)
    assert formula.quantifier_rank == 3
    assert formula.free_variables == frozenset()
    with pytest.raises(ValueError):
        alternation_formula(0)


def test_alternation_query_uses_for_loops_and_is_rejected_by_ppl():
    query = alternation_query(2)
    assert contains_for_loop(query)
    assert not is_ppl(query)


def test_alternation_semantics_on_small_documents():
    document = alternation_document(2)
    # depth-1 sentence: exists x1. lab_a(x1) — true because levels alternate
    # through the default alphabet starting at 'a'.
    assert fo_nonempty(document, alternation_formula(1))
    translated = alternation_query(1)
    assert naive_nonempty(document, translated)
    # A label that does not occur makes the sentence false.
    assert not fo_nonempty(document, alternation_formula(1, label="zzz"))
    assert not naive_nonempty(document, alternation_query(1, label="zzz"))
