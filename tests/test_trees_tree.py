"""Unit tests for the tree data model (repro.trees.tree)."""

import pytest

from repro.errors import TreeError
from repro.trees.tree import Node, Tree, tree_from_tuple, validate_parent_child_consistency


def test_node_counts_subtree():
    node = Node("a", Node("b", Node("c")), Node("d"))
    assert node.count() == 4


def test_node_children_from_iterable():
    node = Node("a", [Node("b"), Node("c")])
    assert [child.label for child in node.children] == ["b", "c"]


def test_node_add_returns_child():
    root = Node("a")
    child = root.add(Node("b"))
    assert child.label == "b"
    assert root.children == [child]


def test_tree_preorder_ids_are_document_order(tiny_tree):
    # a(b, c(d, b)) -> preorder: a=0, b=1, c=2, d=3, b=4
    assert tiny_tree.labels == ["a", "b", "c", "d", "b"]


def test_tree_parent_and_children(tiny_tree):
    assert tiny_tree.parent[0] is None
    assert tiny_tree.children(0) == (1, 2)
    assert tiny_tree.children(2) == (3, 4)
    assert tiny_tree.parent[4] == 2


def test_tree_sibling_links(tiny_tree):
    assert tiny_tree.next_sibling[1] == 2
    assert tiny_tree.prev_sibling[2] == 1
    assert tiny_tree.next_sibling[4] is None
    assert tiny_tree.prev_sibling[3] is None


def test_tree_depths(tiny_tree):
    assert tiny_tree.depth == [0, 1, 1, 2, 2]


def test_tree_size_and_len(tiny_tree):
    assert tiny_tree.size == 5
    assert len(tiny_tree) == 5


def test_is_ancestor(tiny_tree):
    assert tiny_tree.is_ancestor(0, 3)
    assert tiny_tree.is_ancestor(2, 4)
    assert not tiny_tree.is_ancestor(1, 3)
    assert not tiny_tree.is_ancestor(3, 3)
    assert tiny_tree.is_ancestor_or_self(3, 3)


def test_descendants_and_ancestors(tiny_tree):
    assert list(tiny_tree.descendants(2)) == [3, 4]
    assert list(tiny_tree.ancestors(4)) == [2, 0]
    assert list(tiny_tree.descendants(1)) == []


def test_least_common_ancestor(tiny_tree):
    assert tiny_tree.least_common_ancestor(3, 4) == 2
    assert tiny_tree.least_common_ancestor(1, 4) == 0
    assert tiny_tree.least_common_ancestor(3, 3) == 3
    assert tiny_tree.least_common_ancestor(0, 4) == 0


def test_nodes_with_label(tiny_tree):
    assert tiny_tree.nodes_with_label("b") == (1, 4)
    assert tiny_tree.nodes_with_label("missing") == ()
    assert tiny_tree.alphabet() == frozenset({"a", "b", "c", "d"})


def test_document_order(tiny_tree):
    assert tiny_tree.document_order(1, 3) == -1
    assert tiny_tree.document_order(3, 1) == 1
    assert tiny_tree.document_order(2, 2) == 0


def test_subtree_extraction(tiny_tree):
    sub = tiny_tree.subtree(2)
    assert sub.labels == ["c", "d", "b"]
    mapping = tiny_tree.subtree_node_map(2)
    assert mapping == {2: 0, 3: 1, 4: 2}


def test_to_node_roundtrip(tiny_tree):
    rebuilt = Tree(tiny_tree.to_node())
    assert rebuilt == tiny_tree


def test_to_tuple(tiny_tree):
    assert tiny_tree.to_tuple() == ("a", (("b", ()), ("c", (("d", ()), ("b", ())))))


def test_tree_from_tuple_roundtrip(tiny_tree):
    assert tree_from_tuple(tiny_tree.to_tuple()) == tiny_tree


def test_tree_from_tuple_accepts_bare_strings():
    tree = tree_from_tuple(("a", ("b", "c")))
    assert tree.labels == ["a", "b", "c"]


def test_tree_equality_and_hash(tiny_tree):
    other = Tree(Node("a", Node("b"), Node("c", Node("d"), Node("b"))))
    assert other == tiny_tree
    assert hash(other) == hash(tiny_tree)
    different = Tree(Node("a", Node("b")))
    assert different != tiny_tree


def test_invalid_node_ids_raise(tiny_tree):
    with pytest.raises(TreeError):
        tiny_tree.label(99)
    with pytest.raises(TreeError):
        tiny_tree.children(-1)
    with pytest.raises(TreeError):
        tiny_tree.label(True)  # booleans are not node identifiers


def test_tree_requires_node_root():
    with pytest.raises(TreeError):
        Tree("not a node")


def test_root_and_leaves(tiny_tree):
    assert tiny_tree.root() == 0
    assert tiny_tree.is_leaf(1)
    assert not tiny_tree.is_leaf(2)


def test_internal_consistency(tiny_tree, deep_tree, wide_tree):
    for tree in (tiny_tree, deep_tree, wide_tree):
        validate_parent_child_consistency(tree)


def test_deep_tree_construction_is_iterative():
    # Depth far beyond Python's default recursion limit must still work.
    current = Node("a")
    for _ in range(5000):
        current = Node("a", current)
    tree = Tree(current)
    assert tree.size == 5001
    assert tree.depth[tree.size - 1] == 5000
    assert tree.to_tuple()[0] == "a"


def test_subtree_end_intervals(tiny_tree):
    assert tiny_tree.subtree_end[0] == 4
    assert tiny_tree.subtree_end[1] == 1
    assert tiny_tree.subtree_end[2] == 4
