"""Tests for FO logic: AST, parser, semantics, Lemma 1 translation, EF games."""

import pytest

from repro.errors import ParseError, TranslationError, UnboundVariableError
from repro.fo.ast import (
    And,
    ChStar,
    Exists,
    Forall,
    Lab,
    Not,
    Or,
    conjunction,
    disjunction,
    equality,
    exists_many,
)
from repro.fo.ef import atomic_equivalent, check_decomposition_lemma, ef_equivalent
from repro.fo.parser import parse_fo
from repro.fo.semantics import binary_fo_relation, fo_answer, fo_check, fo_nonempty
from repro.fo.translate import fo_to_core_xpath, quantifier_free_to_core_xpath
from repro.trees.binary import binary_encode, binary_to_unranked_tree
from repro.trees.tree import Node, Tree
from repro.xpath.naive import naive_answer, naive_nonempty
from repro.core.ppl import is_ppl


# --------------------------------------------------------------------- AST
def test_free_variables_and_quantifier_rank():
    phi = Exists("z", And(ChStar("x", "z"), Lab("a", "z")))
    assert phi.free_variables == frozenset({"x"})
    assert phi.quantifier_rank == 1
    assert not phi.is_quantifier_free()
    assert And(Lab("a", "x"), Lab("b", "y")).is_quantifier_free()


def test_nested_quantifier_rank():
    phi = Exists("x", Forall("y", Exists("z", Lab("a", "z"))))
    assert phi.quantifier_rank == 3


def test_builders():
    assert conjunction(Lab("a", "x")).unparse() == "lab[a](x)"
    assert isinstance(disjunction(Lab("a", "x"), Lab("b", "x")), Or)
    phi = exists_many(["x", "y"], Lab("a", "y"))
    assert phi == Exists("x", Exists("y", Lab("a", "y")))
    with pytest.raises(ValueError):
        conjunction()


def test_size():
    assert And(Lab("a", "x"), Not(Lab("b", "y"))).size == 4


# ------------------------------------------------------------------- parser
def test_parse_fo_roundtrip():
    texts = [
        "lab[book](x) and ch*(x,y)",
        "exists z. ch(x,z) and lab[price](z)",
        "forall y. not ch*(x,y) or lab[a](y)",
        "ns*(x,y) and ns(y,z)",
        "ch1(x,y) and ch2(x,z)",
    ]
    for text in texts:
        parsed = parse_fo(text)
        assert parse_fo(parsed.unparse()) == parsed


def test_parse_equality_sugar():
    assert parse_fo("x = y") == equality("x", "y")


def test_parse_fo_errors():
    with pytest.raises(ParseError):
        parse_fo("lab[](x)")
    with pytest.raises(ParseError):
        parse_fo("ch*(x,y) extra")


# ---------------------------------------------------------------- semantics
def test_fo_atoms(tiny_tree):
    assert fo_check(tiny_tree, parse_fo("lab[d](x)"), {"x": 3})
    assert not fo_check(tiny_tree, parse_fo("lab[d](x)"), {"x": 1})
    assert fo_check(tiny_tree, parse_fo("ch*(x,y)"), {"x": 0, "y": 4})
    assert fo_check(tiny_tree, parse_fo("ch*(x,y)"), {"x": 2, "y": 2})
    assert not fo_check(tiny_tree, parse_fo("ch*(x,y)"), {"x": 1, "y": 3})
    assert fo_check(tiny_tree, parse_fo("ns*(x,y)"), {"x": 1, "y": 2})
    assert not fo_check(tiny_tree, parse_fo("ns*(x,y)"), {"x": 2, "y": 1})
    assert fo_check(tiny_tree, parse_fo("ch(x,y)"), {"x": 2, "y": 4})
    assert fo_check(tiny_tree, parse_fo("ns(x,y)"), {"x": 3, "y": 4})
    assert fo_check(tiny_tree, parse_fo("ch1(x,y)"), {"x": 2, "y": 3})
    assert fo_check(tiny_tree, parse_fo("ch2(x,y)"), {"x": 2, "y": 4})


def test_fo_connectives_and_quantifiers(tiny_tree):
    assert fo_check(tiny_tree, parse_fo("exists z. lab[d](z)"), {})
    assert not fo_check(tiny_tree, parse_fo("exists z. lab[zzz](z)"), {})
    assert fo_check(tiny_tree, parse_fo("forall z. ch*(x,z)"), {"x": 0})
    assert not fo_check(tiny_tree, parse_fo("forall z. ch*(x,z)"), {"x": 2})
    assert fo_check(tiny_tree, parse_fo("not lab[a](x)"), {"x": 1})


def test_fo_unbound_variable(tiny_tree):
    with pytest.raises(UnboundVariableError):
        fo_check(tiny_tree, parse_fo("lab[a](x)"), {})


def test_fo_answer_and_nonempty(tiny_tree):
    labels_b = fo_answer(tiny_tree, parse_fo("lab[b](x)"), ["x"])
    assert labels_b == frozenset({(1,), (4,)})
    assert fo_nonempty(tiny_tree, parse_fo("lab[d](x)"))
    assert not fo_nonempty(tiny_tree, parse_fo("lab[zzz](x)"))


def test_fo_equality(tiny_tree):
    assert fo_check(tiny_tree, equality("x", "y"), {"x": 3, "y": 3})
    assert not fo_check(tiny_tree, equality("x", "y"), {"x": 3, "y": 4})


def test_binary_fo_relation(tiny_tree):
    relation = binary_fo_relation(tiny_tree, parse_fo("ch(x,y)"), "x", "y")
    assert relation == frozenset({(0, 1), (0, 2), (2, 3), (2, 4)})


# --------------------------------------------------- Lemma 1 translation
@pytest.mark.parametrize(
    "text,variables",
    [
        ("lab[b](x)", ["x"]),
        ("ch*(x,y)", ["x", "y"]),
        ("ns*(x,y)", ["x", "y"]),
        ("ch(x,y) and lab[d](y)", ["x", "y"]),
        ("lab[b](x) or lab[d](x)", ["x"]),
        ("not lab[b](x)", ["x"]),
        ("exists z. ch(x,z) and lab[d](z)", ["x"]),
        ("forall z. not ch(x,z) or lab[d](z)", ["x"]),
        ("ch1(x,y)", ["x", "y"]),
        ("ch2(x,y)", ["x", "y"]),
        ("ns(x,y)", ["x", "y"]),
    ],
)
def test_lemma1_translation_preserves_queries(tiny_tree, text, variables):
    phi = parse_fo(text)
    translated = fo_to_core_xpath(phi)
    assert naive_answer(tiny_tree, translated, variables) == fo_answer(
        tiny_tree, phi, variables
    )


def test_lemma1_translation_is_linear_size():
    phi = parse_fo("exists z. ch*(x,z) and (lab[a](z) or lab[b](z))")
    translated = fo_to_core_xpath(phi)
    assert translated.size <= 12 * phi.size


def test_lemma1_sentence_nonemptiness(tiny_tree):
    sentence = parse_fo("exists x. exists y. ch(x,y) and lab[d](y)")
    assert naive_nonempty(tiny_tree, fo_to_core_xpath(sentence)) == fo_nonempty(
        tiny_tree, sentence
    )
    false_sentence = parse_fo("exists x. lab[zzz](x)")
    assert not naive_nonempty(tiny_tree, fo_to_core_xpath(false_sentence))


def test_quantifier_free_translation_has_no_for_loop():
    phi = parse_fo("ch*(x,y) and not lab[a](y)")
    translated = quantifier_free_to_core_xpath(phi)
    from repro.xpath.analysis import contains_for_loop

    assert not contains_for_loop(translated)
    with pytest.raises(TranslationError):
        quantifier_free_to_core_xpath(parse_fo("exists z. lab[a](z)"))


def test_quantified_translation_is_not_ppl():
    translated = fo_to_core_xpath(parse_fo("exists z. ch*(x,z) and lab[a](z)"))
    assert not is_ppl(translated)


# ------------------------------------------------------------------ EF games
def _binary(tree: Tree) -> Tree:
    return binary_to_unranked_tree(binary_encode(tree))


def test_atomic_equivalence_on_identical_trees(tiny_tree):
    binary = _binary(tiny_tree)
    assert atomic_equivalent(binary, [0, 1], binary, [0, 1])
    assert not atomic_equivalent(binary, [0, 1], binary, [1, 0])


def test_ef_equivalence_distinguishes_labels():
    tree_a = _binary(Tree(Node("a", Node("b"))))
    tree_b = _binary(Tree(Node("a", Node("c"))))
    assert not ef_equivalent(tree_a, [], tree_b, [], 1)


def test_ef_equivalence_identical_structures():
    tree = _binary(Tree(Node("a", Node("b"), Node("b"))))
    assert ef_equivalent(tree, [], tree, [], 2)


def test_ef_rank_separation_chain_length():
    # Chains of length 2 and 3 are distinguishable with enough rounds but not
    # with rank 0 when no constants are distinguished.
    chain2 = _binary(Tree(Node("a", Node("a"))))
    chain3 = _binary(Tree(Node("a", Node("a", Node("a")))))
    assert ef_equivalent(chain2, [], chain3, [], 0)
    assert not ef_equivalent(chain2, [], chain3, [], 2)


def test_decomposition_lemma_holds_on_small_instances():
    tree = _binary(Tree(Node("a", Node("b", Node("c")), Node("b", Node("d")))))
    other = _binary(Tree(Node("a", Node("b", Node("c")), Node("b", Node("d")))))
    for tuple_a in [(1, 2), (2, 4), (1, 4)]:
        nodes_a = [min(n, tree.size - 1) for n in tuple_a]
        assert check_decomposition_lemma(tree, nodes_a, other, nodes_a, 1)
