"""Tests for the shared-nothing serving cluster (`repro.cluster`).

Unit layers first — cost model, LPT/round-robin partitioning, bounded-move
rebalancing, histogram-window quantiles, the AIMD controller, the tolerant
cross-process metrics merge, and the member-local routing table — then
process-spawning integration tests: a two-member cluster whose answers are
byte-identical to a serial single-process baseline, a member hard-killed
mid-run with zero lost accepted queries, and the single-listener fallback
(``reuseport=False``) serving correctly behind its logged warning.

The async client calls run through plain ``asyncio.run`` (no pytest-asyncio
in the environment).  Integration tests use short control intervals and
generous deadlines so they stay robust on loaded CI machines.
"""

from __future__ import annotations

import asyncio
import logging
import time

import pytest

from repro.cluster import (
    AIMDController,
    ClusterMember,
    ClusterSupervisor,
    CostModel,
    HistogramWindow,
    MemberConfig,
    UNREACHABLE_METRIC,
    WindowStats,
    greedy_partition,
    member_main,
    merge_member_metrics,
    queue_wait_histogram,
    rebalance,
    result_key,
    round_robin_partition,
    submit_retry,
)
from repro.cluster.client import ClusterClientError
from repro.corpus import CorpusExecutor, DocumentStore
from repro.obs.metrics import MetricsRegistry
from repro.serve.protocol import request_lines
from repro.trees.xml_io import tree_to_xml
from repro.workloads.bibliography import generate_bibliography

BOOLEAN_QUERY = "descendant::book[child::author and child::title]"
PAIR_QUERY = "descendant::book[child::author[. is $y] and child::title[. is $z]]"
PAIR_VARS = ("y", "z")


def run(coroutine):
    """Run one async test body on a fresh event loop."""
    return asyncio.run(coroutine)


@pytest.fixture()
def corpus_dir(tmp_path):
    """Six small bibliography documents on disk, ``doc000.xml``..."""
    for index in range(6):
        tree = generate_bibliography(2 + index % 3, seed=index)
        (tmp_path / f"doc{index:03d}.xml").write_text(tree_to_xml(tree))
    return tmp_path


def serial_baseline(corpus_dir, query, variables=(), engine="polynomial"):
    """Reference answers from the plain single-process serial executor."""
    store = DocumentStore()
    store.add_directory(str(corpus_dir), "*.xml")
    with CorpusExecutor(store, strategy="serial", engine=engine) as executor:
        return {
            (result.doc_name, result.query): sorted(
                list(answer) for answer in result.answers
            )
            for result in executor.run((query, tuple(variables)))
        }


# =====================================================================
# Cost model
# =====================================================================


class TestCostModel:
    def test_size_prior_before_any_observation(self):
        model = CostModel()
        model.set_size("a", 1000.0)
        model.set_size("b", 4000.0)
        assert model.cost("b") == pytest.approx(4.0 * model.cost("a"))

    def test_observation_replaces_prior_and_ewma_smooths(self):
        model = CostModel(alpha=0.5)
        model.set_size("a", 1000.0)
        model.observe("a", 0.10)
        assert model.cost("a") == pytest.approx(0.10)
        model.observe("a", 0.20)
        assert model.cost("a") == pytest.approx(0.15)  # 0.5*0.2 + 0.5*0.1

    def test_observed_rate_rescales_cold_priors(self):
        # One measured document teaches the model seconds-per-byte; the
        # unmeasured document's estimate moves onto the same scale.
        model = CostModel()
        model.set_size("hot", 1000.0)
        model.set_size("cold", 2000.0)
        model.observe("hot", 0.5)  # 5e-4 s/byte
        assert model.cost("cold") == pytest.approx(2000.0 * 5e-4)

    def test_malformed_member_report_is_ignored(self):
        model = CostModel()
        model.set_size("a", 100.0)
        model.observe_report(
            {
                "a": {"mean_seconds": 0.25},
                "b": {"mean_seconds": "not a number"},
                "c": "garbage",
                "d": {},
            }
        )
        assert model.observed_count() == 1
        assert model.cost("a") == pytest.approx(0.25)

    def test_forget_drops_both_tables(self):
        model = CostModel()
        model.set_size("a", 100.0)
        model.observe("a", 0.5)
        model.forget("a")
        assert model.observed_count() == 0
        assert model.cost("a") == 1.0  # back to the unknown-document floor

    def test_nonpositive_observation_ignored(self):
        model = CostModel()
        model.observe("a", 0.0)
        model.observe("a", -1.0)
        assert model.observed_count() == 0


# =====================================================================
# Partitioning and rebalancing
# =====================================================================


class TestPartitioning:
    def test_lpt_balances_skewed_costs(self):
        costs = {"big": 10.0, "mid": 6.0, "small1": 3.0, "small2": 3.0, "small3": 4.0}
        plan = greedy_partition(costs, ["m0", "m1"])
        loads = plan.loads(costs)
        assert set(plan.owner_of()) == set(costs)
        assert abs(loads["m0"] - loads["m1"]) <= 4.0  # LPT: near-balanced

    def test_equal_costs_are_deterministic(self):
        costs = {f"doc{i}": 1.0 for i in range(7)}
        first = greedy_partition(costs, ["m0", "m1", "m2"])
        second = greedy_partition(costs, ["m0", "m1", "m2"])
        assert first.assignments == second.assignments

    def test_round_robin_stripes_sorted_names(self):
        plan = round_robin_partition(["c", "a", "b", "d"], ["m0", "m1"])
        assert plan.assignments == {"m0": ("a", "c"), "m1": ("b", "d")}

    def test_zero_members_rejected(self):
        with pytest.raises(ValueError):
            greedy_partition({"a": 1.0}, [])
        with pytest.raises(ValueError):
            round_robin_partition(["a"], [])


class TestRebalance:
    COSTS = {f"doc{i}": float(1 + i) for i in range(6)}

    def test_stable_cluster_converges_to_zero_moves(self):
        plan = greedy_partition(self.COSTS, ["m0", "m1"])
        again = rebalance(plan.assignments, self.COSTS, ["m0", "m1"])
        assert again.moves == ()
        assert again.assignments == plan.assignments

    def test_orphans_from_vanished_member_rehomed_for_free(self):
        plan = greedy_partition(self.COSTS, ["m0", "m1", "m2"])
        # m2 vanished entirely; its documents must all land somewhere even
        # with a zero move budget (orphan re-homing is never budgeted).
        after = rebalance(
            plan.assignments, self.COSTS, ["m0", "m1"], move_budget=0
        )
        assert set(after.owner_of()) == set(self.COSTS)
        orphan_moves = [move for move in after.moves if move[1] is None]
        assert len(orphan_moves) == len(plan.assignments["m2"])

    def test_new_documents_are_placed(self):
        plan = greedy_partition(self.COSTS, ["m0", "m1"])
        grown = dict(self.COSTS, extra=9.0)
        after = rebalance(plan.assignments, grown, ["m0", "m1"], move_budget=0)
        assert "extra" in after.owner_of()

    def test_discarded_documents_are_dropped(self):
        plan = greedy_partition(self.COSTS, ["m0", "m1"])
        shrunk = {k: v for k, v in self.COSTS.items() if k != "doc5"}
        after = rebalance(plan.assignments, shrunk, ["m0", "m1"])
        assert "doc5" not in after.owner_of()

    def test_drain_bleeds_under_budget_and_defers_the_rest(self):
        plan = greedy_partition(self.COSTS, ["m0", "m1"])
        drained_docs = plan.assignments["m1"]
        after = rebalance(
            plan.assignments,
            self.COSTS,
            ["m0", "m1"],
            move_budget=1,
            drain=["m1"],
        )
        bled = [move for move in after.moves if move[1] == "m1"]
        assert len(bled) == 1
        assert after.deferred == len(drained_docs) - 1
        # The costliest drained document goes first.
        costliest = max(drained_docs, key=lambda n: self.COSTS[n])
        assert bled[0][0] == costliest

    def test_load_smoothing_is_budget_bounded(self):
        lopsided = {"m0": tuple(self.COSTS), "m1": ()}
        after = rebalance(lopsided, self.COSTS, ["m0", "m1"], move_budget=2)
        smoothing = [move for move in after.moves if move[1] == "m0"]
        assert 0 < len(smoothing) <= 2
        loads = after.loads(self.COSTS)
        assert loads["m1"] > 0  # the spread strictly improved


# =====================================================================
# Histogram windows and the AIMD controller
# =====================================================================


def histogram_payload(bounds, counts):
    return {"bounds": list(bounds), "counts": list(counts)}


class TestHistogramWindow:
    BOUNDS = (0.01, 0.05, 0.25)

    def test_first_feed_yields_no_window(self):
        window = HistogramWindow()
        assert window.update(histogram_payload(self.BOUNDS, [1, 0, 0, 0])) is None

    def test_delta_between_snapshots(self):
        window = HistogramWindow()
        window.update(histogram_payload(self.BOUNDS, [1, 2, 0, 0]))
        stats = window.update(histogram_payload(self.BOUNDS, [4, 2, 1, 0]))
        assert stats is not None
        assert stats.counts == (3, 0, 1, 0)
        assert stats.count == 4

    def test_counter_regression_resyncs_baseline(self):
        # The member restarted: its histogram reset to zero.  The window
        # must not produce negative counts — and the reset snapshot becomes
        # the new baseline so the next delta is valid again.
        window = HistogramWindow()
        window.update(histogram_payload(self.BOUNDS, [5, 5, 0, 0]))
        assert window.update(histogram_payload(self.BOUNDS, [1, 0, 0, 0])) is None
        stats = window.update(histogram_payload(self.BOUNDS, [2, 1, 0, 0]))
        assert stats is not None
        assert stats.counts == (1, 1, 0, 0)

    def test_malformed_and_mismatched_payloads(self):
        window = HistogramWindow()
        assert window.update({}) is None
        assert window.update({"bounds": [0.1], "counts": "nope"}) is None
        assert window.update(histogram_payload((0.1,), [1, 0])) is None
        # Bounds changed mid-flight: no window, new baseline.
        assert window.update(histogram_payload((0.5,), [1, 0])) is None

    def test_quantiles(self):
        stats = WindowStats(bounds=self.BOUNDS, counts=(90, 5, 4, 1))
        assert stats.quantile(0.5) == pytest.approx(0.01)
        assert stats.quantile(0.95) == pytest.approx(0.05)
        # Overflow bucket reports the largest finite bound.
        top = WindowStats(bounds=self.BOUNDS, counts=(0, 0, 0, 10))
        assert top.quantile(0.95) == pytest.approx(0.25)
        empty = WindowStats(bounds=self.BOUNDS, counts=(0, 0, 0, 0))
        assert empty.quantile(0.95) is None


class TestAIMDController:
    BOUNDS = (0.01, 0.05, 0.25)

    def make(self, **kwargs):
        kwargs.setdefault("target_p95", 0.05)
        kwargs.setdefault("max_concurrent", 16)
        return AIMDController(**kwargs)

    def feed(self, controller, member, counts, *, current, depth=0):
        """Baseline-then-delta: two snapshots so the second is a window."""
        controller.decide(
            member,
            current=current,
            queue_wait=histogram_payload(self.BOUNDS, [0] * 4),
            queue_depth=0,
        )
        return controller.decide(
            member,
            current=current,
            queue_wait=histogram_payload(self.BOUNDS, counts),
            queue_depth=depth,
        )

    def test_unreachable_member_holds(self):
        decision = self.make().decide("m", current=4, queue_wait=None, queue_depth=3)
        assert decision.reason == "hold"
        assert not decision.changed

    def test_backoff_on_high_p95_is_multiplicative(self):
        # 20 observations all in the overflow bucket: p95 far over target.
        decision = self.feed(self.make(), "m", [0, 0, 0, 20], current=8)
        assert decision.reason == "backoff"
        assert decision.new_value == 4

    def test_backoff_clamps_at_floor(self):
        decision = self.feed(self.make(), "m", [0, 0, 0, 20], current=1)
        assert decision.new_value == 1

    def test_probe_when_queued_and_under_target(self):
        decision = self.feed(self.make(), "m", [20, 0, 0, 0], current=4, depth=2)
        assert decision.reason == "probe"
        assert decision.new_value == 5

    def test_probe_clamps_at_ceiling(self):
        controller = self.make(max_concurrent=4)
        decision = self.feed(controller, "m", [20, 0, 0, 0], current=4, depth=2)
        assert decision.new_value == 4

    def test_steady_when_under_target_and_no_queue(self):
        decision = self.feed(self.make(), "m", [20, 0, 0, 0], current=4, depth=0)
        assert decision.reason == "steady"
        assert not decision.changed

    def test_thin_window_makes_no_decision_unless_queued(self):
        quiet = self.feed(self.make(), "m", [2, 0, 0, 0], current=4, depth=0)
        assert quiet.reason == "quiet"
        assert not quiet.changed
        nudged = self.feed(self.make(), "m2", [2, 0, 0, 0], current=4, depth=3)
        assert nudged.reason == "queued-idle"
        assert nudged.new_value == 5

    def test_forget_resets_the_window(self):
        controller = self.make()
        self.feed(controller, "m", [0, 0, 0, 20], current=8)
        controller.forget("m")
        first = controller.decide(
            "m",
            current=8,
            queue_wait=histogram_payload(self.BOUNDS, [0, 0, 0, 25]),
            queue_depth=0,
        )
        assert first.reason == "no-window"

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            AIMDController(min_concurrent=0)
        with pytest.raises(ValueError):
            AIMDController(min_concurrent=4, max_concurrent=2)
        with pytest.raises(ValueError):
            AIMDController(decrease=1.5)


# =====================================================================
# Tolerant cross-process metrics merge (satellite: dead member mid-scrape)
# =====================================================================


class TestMergeMemberMetrics:
    def good_payload(self, value):
        registry = MetricsRegistry()
        registry.counter("repro_server_submissions_total", "submissions").inc(value)
        return {"metrics": registry.to_dict()}

    def test_merges_healthy_members(self):
        merged, unreachable = merge_member_metrics(
            {"member-0": self.good_payload(3), "member-1": self.good_payload(4)}
        )
        assert unreachable == 0
        assert merged.get("repro_server_submissions_total").value == 7

    def test_dead_member_counts_unreachable_not_crash(self):
        merged, unreachable = merge_member_metrics(
            {"member-0": self.good_payload(3), "member-1": None}
        )
        assert unreachable == 1
        assert merged.get("repro_server_submissions_total").value == 3

    def test_partial_and_garbage_payloads_are_tolerated(self):
        # Everything a member dying mid-write can produce: a non-dict, a
        # payload without metrics, metric values of the wrong shape, and
        # histogram bounds that no longer match a sibling's.
        registry = MetricsRegistry()
        registry.histogram("repro_wait", "w", bounds=[0.1, 0.5]).observe(0.2)
        mismatched = MetricsRegistry()
        mismatched.histogram("repro_wait", "w", bounds=[9.0]).observe(0.2)
        merged, unreachable = merge_member_metrics(
            {
                "member-0": {"metrics": registry.to_dict()},
                "member-1": "not even a dict",
                "member-2": {"stats": {}},
                "member-3": {"metrics": {"repro_wait": 42}},
                "member-4": {"metrics": mismatched.to_dict()},
            }
        )
        assert unreachable == 4
        assert merged.get("repro_wait").count == 1

    def test_empty_scrape(self):
        merged, unreachable = merge_member_metrics({})
        assert unreachable == 0
        assert merged.to_dict() == {}

    def test_half_mergeable_payload_contributes_nothing(self):
        # A payload whose counter family merges fine but whose histogram
        # then mismatches must be dropped *atomically*: the already-merged
        # counter may not pollute the result while the member also counts
        # as unreachable.
        good = MetricsRegistry()
        good.counter("repro_subs_total", "s").inc(3)
        good.histogram("repro_wait", "w", bounds=[0.1, 0.5]).observe(0.2)
        poisoned = MetricsRegistry()
        poisoned.counter("repro_subs_total", "s").inc(5)  # would merge fine
        poisoned.histogram("repro_wait", "w", bounds=[9.0]).observe(0.2)
        merged, unreachable = merge_member_metrics(
            {
                "member-0": {"metrics": good.to_dict()},
                "member-1": {"metrics": poisoned.to_dict()},
            }
        )
        assert unreachable == 1
        assert merged.get("repro_subs_total").value == 3  # not 3 + 5
        assert merged.get("repro_wait").count == 1


class TestQueueWaitHistogramExtraction:
    HIST = {"bounds": [0.1, 0.5], "counts": [1, 0, 0], "sum": 0.05, "count": 1}

    def test_prefers_dedicated_field(self):
        assert queue_wait_histogram({"queue_wait_hist": self.HIST}) is self.HIST

    def test_falls_back_to_metrics_series(self):
        payload = {
            "queue_wait_hist": None,
            "metrics": {"repro_request_queue_wait_seconds": self.HIST},
        }
        assert queue_wait_histogram(payload) is self.HIST

    def test_quantile_summary_is_not_a_window_source(self):
        # The stats.queue_wait summary (count/sum/p50..p99) has no bucket
        # counts; it must never be mistaken for a window payload.
        payload = {"stats": {"queue_wait": {"count": 9, "p95": 0.2}}}
        assert queue_wait_histogram(payload) is None
        assert queue_wait_histogram(None) is None
        assert queue_wait_histogram({}) is None


# =====================================================================
# Member routing table
# =====================================================================


class TestClusterMember:
    def make_member(self, member_id="member-0"):
        return ClusterMember(
            MemberConfig(member_id=member_id, incarnation=0, corpus_dir=".")
        )

    def placement(self):
        return {
            "member-0": {"addr": ["127.0.0.1", 9001], "documents": ["a", "b"]},
            "member-1": {"addr": ["127.0.0.1", 9002], "documents": ["c"]},
        }

    def test_apply_placement(self):
        member = self.make_member()
        owned = member.apply_placement(self.placement(), version=3)
        assert owned == 2
        assert member.owned() == ["a", "b"]
        assert member.owner_of["c"] == "member-1"
        assert member.routing["member-1"] == ("127.0.0.1", 9002)
        assert member.placement_version == 3
        assert member.has_placement()

    def test_placement_is_replaced_wholesale(self):
        member = self.make_member()
        member.apply_placement(self.placement(), version=1)
        member.apply_placement(
            {"member-0": {"addr": ["127.0.0.1", 9001], "documents": ["z"]}},
            version=2,
        )
        assert member.owned() == ["z"]
        assert "c" not in member.owner_of
        assert "member-1" not in member.routing

    def test_fallback_accounting(self):
        member = self.make_member()
        member.note_fallback("member-1")
        member.note_fallback("member-1")
        assert member.fallbacks == {"member-1": 2}


# =====================================================================
# Client-side retry accounting
# =====================================================================


class TestResultKey:
    def test_key_shape(self):
        line = {"doc": "d", "query": "q", "variables": ["x"], "answers": []}
        assert result_key(line) == ("d", "q", ("x",))
        assert result_key({"doc": "d", "query": "q"}) == ("d", "q", ())


# =====================================================================
# Integration: real clusters over real processes
# =====================================================================


def wait_until(predicate, *, timeout=30.0, interval=0.1, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


def cluster_submit(supervisor, request, **kwargs):
    return run(
        submit_retry("127.0.0.1", supervisor.port, dict(request), **kwargs)
    )


class TestClusterIntegration:
    def test_answers_match_serial_baseline(self, corpus_dir):
        baseline = serial_baseline(corpus_dir, BOOLEAN_QUERY)
        with ClusterSupervisor(
            corpus_dir, members=2, control_interval=0.25
        ) as supervisor:
            reply = cluster_submit(
                supervisor, {"query": BOOLEAN_QUERY, "engine": "polynomial"}
            )
            status = supervisor.status()

        assert reply["retries"] == 0
        got = {
            (key[0], key[1]): line["answers"]
            for key, line in reply["results"].items()
        }
        assert got == baseline  # byte-identical answers, all six documents

        # Both members own a disjoint, complete share of the corpus.
        assignments = status["placement"]["assignments"]
        assert set(assignments) == {"member-0", "member-1"}
        owned = [name for names in assignments.values() for name in names]
        assert sorted(owned) == sorted({key[0] for key in baseline})
        served_by = {line["member"] for line in reply["results"].values()}
        assert served_by  # every line is attributed to a member

        # The status payload carries the documented surfaces.
        assert status["documents"] == 6
        assert status["placement"]["strategy"] == "cost"
        assert status["autotune"]["enabled"] is True
        assert isinstance(status["members_unreachable_total"], int)
        assert status["health"]["status"] in ("ok", "degraded")
        assert "quarantined" in status["health"]

    def test_variable_queries_scatter_identically(self, corpus_dir):
        baseline = serial_baseline(corpus_dir, PAIR_QUERY, PAIR_VARS)
        with ClusterSupervisor(
            corpus_dir, members=2, control_interval=0.25
        ) as supervisor:
            reply = cluster_submit(
                supervisor,
                {
                    "query": PAIR_QUERY,
                    "vars": list(PAIR_VARS),
                    "engine": "polynomial",
                },
            )
        got = {
            (key[0], key[1]): line["answers"]
            for key, line in reply["results"].items()
        }
        assert got == baseline

    def test_health_op_reports_quarantined_document_list(self, corpus_dir):
        # Satellite: the NDJSON health op (like /healthz) must always carry
        # the per-shard quarantined-document list, not just a count.
        with ClusterSupervisor(
            corpus_dir, members=1, control_interval=0.5
        ) as supervisor:

            async def probe():
                async for line in request_lines(
                    "127.0.0.1", supervisor.port, {"op": "health", "id": 1}
                ):
                    return line

            payload = run(probe())
        assert payload["type"] == "health"
        assert payload["status"] == "ok"
        assert payload["quarantined"] == {}

    def test_metrics_text_merges_members_and_supervisor_counters(self, corpus_dir):
        with ClusterSupervisor(
            corpus_dir, members=2, control_interval=0.2
        ) as supervisor:
            cluster_submit(supervisor, {"query": BOOLEAN_QUERY})
            wait_until(
                lambda: "repro_server_submitted_total" in supervisor.metrics_text(),
                timeout=15.0,
                message="a member scrape to land",
            )
            text = supervisor.metrics_text()
        assert UNREACHABLE_METRIC in text
        assert "repro_cluster_members 2" in text
        assert "repro_cluster_members_alive 2" in text

    def test_member_kill_recovers_with_zero_lost_queries(self, corpus_dir):
        baseline = serial_baseline(corpus_dir, BOOLEAN_QUERY)
        expected_keys = {(doc, query, ()) for doc, query in baseline}
        with ClusterSupervisor(
            corpus_dir, members=2, control_interval=0.2
        ) as supervisor:
            request = {"query": BOOLEAN_QUERY, "engine": "polynomial"}
            assert set(cluster_submit(supervisor, request)["results"]) == expected_keys

            assert supervisor.kill_member("member-1")
            # Submissions during the outage window must still return every
            # document: the coordinator falls back locally for the dead
            # peer's share, and a killed coordinator is retried client-side.
            for _ in range(6):
                reply = cluster_submit(supervisor, request, attempts=8)
                assert set(reply["results"]) == expected_keys

            wait_until(
                lambda: supervisor.status()["members"]["member-1"]["alive"],
                message="member-1 to respawn",
            )
            status = supervisor.status()
            assert status["members"]["member-1"]["incarnation"] >= 1
            assert status["members"]["member-1"]["restarts"] >= 1
            # And the reborn member serves again.
            assert set(cluster_submit(supervisor, request)["results"]) == expected_keys

    def test_describe_payload_drives_a_real_autotune_window(self, corpus_dir):
        # Regression: stats.queue_wait is a quantile *summary* (no
        # bounds/counts), so feeding it to HistogramWindow returned None on
        # every scrape and autotune never made a decision.  A live member's
        # describe payload must yield a usable window through the same
        # extraction the supervisor's autotune tick uses.
        with ClusterSupervisor(
            corpus_dir, members=1, control_interval=30.0
        ) as supervisor:
            request = {"query": BOOLEAN_QUERY, "engine": "polynomial"}
            cluster_submit(supervisor, request)
            first = queue_wait_histogram(supervisor._scrape()["member-0"])
            assert isinstance(first, dict)
            assert first["count"] >= 1  # real queue-wait observations
            window = HistogramWindow()
            assert window.update(first) is None  # baseline feed
            cluster_submit(supervisor, request)
            second = queue_wait_histogram(supervisor._scrape()["member-0"])
            stats = window.update(second)
            assert stats is not None
            assert stats.count >= 1  # the second submit's waits, windowed

    def test_same_query_distinct_variables_survive_member_death(self, corpus_dir):
        # Regression: the relay-fallback de-dup key must be the documented
        # result identity (doc, query, variables) — keying on (doc, query)
        # alone silently dropped the second variable tuple's lines for a
        # document when a peer died and its group was re-evaluated locally.
        docs = [f"doc{i:03d}" for i in range(6)]
        variable_orders = (("y", "z"), ("z", "y"))
        expected = {
            (doc, PAIR_QUERY, variables)
            for doc in docs
            for variables in variable_orders
        }
        request = {
            "queries": [[PAIR_QUERY, list(variables)] for variables in variable_orders],
            "engine": "polynomial",
        }
        with ClusterSupervisor(
            corpus_dir, members=2, control_interval=0.2
        ) as supervisor:
            assert set(cluster_submit(supervisor, request)["results"]) == expected
            assert supervisor.kill_member("member-1")
            # During the outage the coordinator falls back locally for the
            # dead peer's share; every (doc, query, variables) line must
            # still arrive exactly once.
            for _ in range(4):
                reply = cluster_submit(supervisor, request, attempts=8)
                assert set(reply["results"]) == expected

    def test_failed_startup_terminates_spawned_members(self, corpus_dir, monkeypatch):
        # Regression: a member dying before the ready handshake made
        # start() raise without terminating already-spawned members or
        # closing the listeners — __exit__ never runs when __enter__
        # raises, so the processes and the port leaked.
        import repro.cluster.supervisor as supervisor_mod
        from repro.cluster import ClusterError

        def doomed(config, sock, ready_conn):
            if config.member_id == "member-1":
                raise SystemExit(1)  # dies without reporting ready
            member_main(config, sock, ready_conn)

        monkeypatch.setattr(supervisor_mod, "member_main", doomed)
        supervisor = ClusterSupervisor(corpus_dir, members=2, control_interval=0.5)
        with pytest.raises(ClusterError, match="died during startup"):
            supervisor.start()
        # The healthy member-0 was spawned first; it must not outlive the
        # failed start, and the public port must be released.
        assert all(not handle.alive for handle in supervisor._members.values())
        import socket as socket_mod

        probe = socket_mod.socket(socket_mod.AF_INET, socket_mod.SOCK_STREAM)
        try:
            probe.setsockopt(socket_mod.SOL_SOCKET, socket_mod.SO_REUSEADDR, 1)
            probe.bind(("127.0.0.1", supervisor.port))
        finally:
            probe.close()

    def test_single_listener_fallback_warns_and_serves(self, corpus_dir, caplog):
        # Satellite: platforms without SO_REUSEPORT degrade to one shared
        # listener with a logged warning — never a bind error.
        baseline = serial_baseline(corpus_dir, BOOLEAN_QUERY)
        with caplog.at_level(logging.WARNING, logger="repro.cluster"):
            supervisor = ClusterSupervisor(
                corpus_dir, members=2, reuseport=False, control_interval=0.5
            )
            supervisor.start()
        try:
            assert supervisor.reuseport_active is False
            assert any(
                "single shared listener" in record.getMessage()
                for record in caplog.records
            )
            reply = cluster_submit(
                supervisor, {"query": BOOLEAN_QUERY, "engine": "polynomial"}
            )
            got = {
                (key[0], key[1]): line["answers"]
                for key, line in reply["results"].items()
            }
            assert got == baseline
        finally:
            supervisor.stop()

    def test_cluster_knob_env_precedence(self, corpus_dir, monkeypatch):
        monkeypatch.setenv("REPRO_CLUSTER_MEMBERS", "3")
        monkeypatch.setenv("REPRO_CLUSTER_PLACEMENT", "round_robin")
        monkeypatch.setenv("REPRO_CLUSTER_AUTOTUNE", "0")
        from_env = ClusterSupervisor(corpus_dir)
        assert from_env.member_count == 3
        assert from_env.placement_strategy == "round_robin"
        assert from_env.autotune_enabled is False
        # Explicit arguments beat the environment.
        explicit = ClusterSupervisor(
            corpus_dir, members=1, placement="cost", autotune=True
        )
        assert explicit.member_count == 1
        assert explicit.placement_strategy == "cost"
        assert explicit.autotune_enabled is True

    def test_bogus_configuration_rejected(self, tmp_path):
        from repro.cluster import ClusterError

        with pytest.raises(ClusterError):
            ClusterSupervisor(tmp_path, members=0)
        with pytest.raises(ClusterError):
            ClusterSupervisor(tmp_path, placement="alphabetical")
        with pytest.raises(ClusterError):
            ClusterSupervisor(tmp_path, members=1).start()  # empty corpus

    def test_retry_budget_exhaustion_raises(self):
        # Nothing listens on this port: every attempt fails, and the error
        # names the budget instead of dumping a raw socket traceback.
        with pytest.raises(ClusterClientError, match="after 2 attempts"):
            run(
                submit_retry(
                    "127.0.0.1",
                    1,  # reserved port, connection refused
                    {"query": BOOLEAN_QUERY},
                    attempts=2,
                    backoff=0.01,
                )
            )
