"""Tests for the Core XPath 2.0 parser and AST (repro.xpath.parser / ast)."""

import pytest

from repro.errors import ParseError
from repro.trees.axes import Axis
from repro.xpath.ast import (
    CONTEXT,
    AndTest,
    CompTest,
    ContextItem,
    Filter,
    ForLoop,
    NotTest,
    OrTest,
    PathCompose,
    PathExcept,
    PathIntersect,
    PathTest,
    PathUnion,
    Step,
    VarRef,
    nodes_expression,
    root_anchor,
    steps,
    union_all,
)
from repro.xpath.parser import parse_path, parse_test


def test_parse_simple_step():
    assert parse_path("child::book") == Step(Axis.CHILD, "book")
    assert parse_path("descendant::*") == Step(Axis.DESCENDANT, None)


def test_parse_axis_spellings():
    assert parse_path("following_sibling::a") == Step(Axis.FOLLOWING_SIBLING, "a")
    assert parse_path("following-sibling::a") == Step(Axis.FOLLOWING_SIBLING, "a")


def test_parse_context_and_variable():
    assert parse_path(".") == ContextItem()
    assert parse_path("$x") == VarRef("x")


def test_parse_composition_left_associative():
    parsed = parse_path("child::a/child::b/child::c")
    assert parsed == PathCompose(
        PathCompose(Step(Axis.CHILD, "a"), Step(Axis.CHILD, "b")), Step(Axis.CHILD, "c")
    )


def test_parse_union_precedence_below_slash():
    parsed = parse_path("child::a/child::b union child::c")
    assert isinstance(parsed, PathUnion)
    assert isinstance(parsed.left, PathCompose)


def test_parse_intersect_and_except():
    parsed = parse_path("child::a intersect child::b")
    assert parsed == PathIntersect(Step(Axis.CHILD, "a"), Step(Axis.CHILD, "b"))
    parsed = parse_path("child::a except child::b except child::c")
    assert parsed == PathExcept(
        PathExcept(Step(Axis.CHILD, "a"), Step(Axis.CHILD, "b")), Step(Axis.CHILD, "c")
    )


def test_intersect_binds_tighter_than_union():
    parsed = parse_path("child::a union child::b intersect child::c")
    assert isinstance(parsed, PathUnion)
    assert isinstance(parsed.right, PathIntersect)


def test_parse_filter_with_comparison():
    parsed = parse_path("child::author[. is $y]")
    assert parsed == Filter(Step(Axis.CHILD, "author"), CompTest(CONTEXT, "y"))


def test_parse_nested_filters_and_and():
    parsed = parse_path(
        "descendant::book[child::author[. is $y] and child::title[. is $z]]"
    )
    assert isinstance(parsed, Filter)
    assert isinstance(parsed.test, AndTest)
    assert parsed.free_variables == frozenset({"y", "z"})


def test_parse_for_loop():
    parsed = parse_path("for $x in child::a return $x/child::b")
    assert isinstance(parsed, ForLoop)
    assert parsed.variable == "x"
    assert parsed.free_variables == frozenset()


def test_for_loop_free_variables_exclude_bound():
    parsed = parse_path("for $x in child::a return $x/.[. is $y]")
    assert parsed.free_variables == frozenset({"y"})


def test_parse_not_both_spellings():
    assert parse_test("not child::a") == NotTest(PathTest(Step(Axis.CHILD, "a")))
    assert parse_test("not(child::a)") == NotTest(PathTest(Step(Axis.CHILD, "a")))


def test_parse_test_or_and_precedence():
    parsed = parse_test("child::a or child::b and child::c")
    assert isinstance(parsed, OrTest)
    assert isinstance(parsed.right, AndTest)


def test_parse_parenthesised_test():
    parsed = parse_test("(child::a or child::b) and child::c")
    assert isinstance(parsed, AndTest)
    assert isinstance(parsed.left, OrTest)


def test_parse_comparison_variants():
    assert parse_test(". is .") == CompTest(CONTEXT, CONTEXT)
    assert parse_test("$x is $y") == CompTest("x", "y")
    assert parse_test("$x is .") == CompTest("x", CONTEXT)


def test_parse_parenthesised_path_continues_with_slash():
    parsed = parse_path("(child::a union child::b)/child::c")
    assert isinstance(parsed, PathCompose)
    assert isinstance(parsed.left, PathUnion)


def test_parse_requires_explicit_axes():
    with pytest.raises(ParseError):
        parse_path("book/title")  # abbreviated syntax is not Core XPath


def test_parse_errors_report_position():
    with pytest.raises(ParseError) as excinfo:
        parse_path("child::a union")
    assert excinfo.value.position is not None


def test_parse_rejects_trailing_garbage():
    with pytest.raises(ParseError):
        parse_path("child::a )")


def test_parse_rejects_unknown_axis():
    with pytest.raises(ParseError):
        parse_path("sideways::a")


def test_unparse_roundtrip():
    expressions = [
        "descendant::book[child::author[. is $y] and child::title[. is $z]]",
        "(child::a union child::b)/child::c",
        "child::a intersect (child::b except child::c)",
        "for $x in descendant::* return .[. is $x]",
        ".[not(parent::*)]/descendant::a",
        "self::a/following-sibling::b[. is $w or child::c]",
    ]
    for text in expressions:
        parsed = parse_path(text)
        assert parse_path(parsed.unparse()) == parsed


def test_size_counts_ast_nodes():
    parsed = parse_path("child::a/child::b")
    assert parsed.size == 3
    assert parse_path("$x").size == 1


def test_builders():
    composed = steps(Step(Axis.CHILD, "a"), Step(Axis.CHILD, "b"))
    assert composed == parse_path("child::a/child::b")
    unioned = union_all(Step(Axis.CHILD, "a"), Step(Axis.CHILD, "b"))
    assert unioned == parse_path("child::a union child::b")
    assert nodes_expression().free_variables == frozenset()
    assert root_anchor("x").free_variables == frozenset({"x"})
    with pytest.raises(ValueError):
        steps()


def test_walk_visits_all_subexpressions():
    parsed = parse_path("child::a[child::b]/child::c")
    kinds = {type(sub).__name__ for sub in parsed.walk()}
    assert {"PathCompose", "Filter", "Step", "PathTest"} <= kinds
