"""Chaos suite for the fault-tolerant execution tier.

Exercises the deterministic fault harness (:mod:`repro.faults`) end to end:
spec/schedule parsing and replayability, the named fault points in the
storage layers (plan cache, snapshot store), the supervised shard pools
(worker kill mid-stream, quarantine after repeated crashes, circuit-breaker
degradation to in-process evaluation), the retry budget, the
``on_error="record"|"skip"`` policies — plus the satellites: the typed
``ObsPortInUseError`` bind failure, the ``serve run`` SIGTERM graceful
drain, and the health surfaces reporting ``degraded``.

Every chaos scenario asserts *answer equality with a fault-free serial
baseline* where answers survive: recovery must never change results, only
latency.
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket
import subprocess
import sys
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import faults
from repro.api import compile_query
from repro.corpus import CorpusError, CorpusExecutor, DocumentStore
from repro.errors import (
    DocumentQuarantinedError,
    FaultInjectedError,
    ObsPortInUseError,
    WorkerCrashError,
)
from repro.faults import FaultPlanError, FaultSpec, parse_plan, parse_spec
from repro.obs.http import ObsHTTPServer
from repro.serve import CorpusServer, PlanCache, request_lines
from repro.session import ExecutionPolicy, Session
from repro.snapshot import SnapshotStore
from repro.workloads import generate_corpus, write_corpus
from repro.workloads.bibliography import bibliography_pair_query

PAIR_QUERY, PAIR_VARS = bibliography_pair_query()


@pytest.fixture(autouse=True)
def clean_faults():
    """Every test starts and ends disarmed, with env state forgotten."""
    faults.reset()
    yield
    faults.reset()


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("faults-corpus")
    corpus = generate_corpus(6, base=5, skew=0.4, seed=11, decoys_per_book=2)
    write_corpus(directory, corpus)
    return directory


@pytest.fixture(scope="module")
def serial_baseline(corpus_dir):
    """Fault-free answers, the ground truth every chaos run must match."""
    store = DocumentStore.from_directory(corpus_dir)
    with CorpusExecutor(store, strategy="serial") as executor:
        return {
            (r.doc_name, r.query): r.answers
            for r in executor.run([(PAIR_QUERY, PAIR_VARS)])
        }


def run_processes(corpus_dir, **kwargs):
    """One processes-strategy sweep; returns (results, fault_stats)."""
    store = DocumentStore.from_directory(corpus_dir)
    with CorpusExecutor(
        store, strategy="processes", max_workers=2, **kwargs
    ) as executor:
        results = list(executor.run([(PAIR_QUERY, PAIR_VARS)]))
        stats = executor.fault_stats()
    return results, stats


# ------------------------------------------------------------ spec parsing
class TestFaultPlanParsing:
    def test_spec_defaults(self):
        spec = parse_spec("worker_crash")
        assert spec == FaultSpec(point="worker_crash")
        assert spec.match == "*" and spec.site == "*"
        assert spec.times is None and spec.rate == 1.0 and spec.epoch is None

    def test_spec_fields(self):
        spec = parse_spec(
            "slow_query,match=doc0*,site=worker,times=3,rate=0.5,seed=7,delay=0.01,epoch=1"
        )
        assert spec.match == "doc0*" and spec.site == "worker"
        assert spec.times == 3 and spec.rate == 0.5 and spec.seed == 7
        assert spec.delay == 0.01 and spec.epoch == 1

    def test_multi_spec_schedule(self):
        plan = parse_plan("worker_crash,match=doc003 ; slow_query,rate=0.25,seed=3")
        assert [spec.point for spec in plan] == ["worker_crash", "slow_query"]

    @pytest.mark.parametrize(
        "bad",
        [
            "explode",  # unknown point
            "worker_crash,bogus=1",  # unknown field
            "worker_crash,times=lots",  # unparseable value
            "worker_crash,rate=1.5",  # out-of-range rate
        ],
    )
    def test_bad_schedules_raise_typed_error(self, bad):
        with pytest.raises(FaultPlanError):
            parse_plan(bad)

    def test_rate_decisions_replay_deterministically(self):
        def firing_pattern():
            plan = faults.FaultPlan(parse_plan("corrupt_read,rate=0.3,seed=42"))
            return [
                plan.decide("corrupt_read", f"k{i}", "snapshot", 0) is not None
                for i in range(64)
            ]

        first, second = firing_pattern(), firing_pattern()
        assert first == second
        assert any(first) and not all(first)  # a real 0.3-rate mix


# ------------------------------------------------------------- trip points
class TestTrip:
    def test_disarmed_trip_is_a_no_op(self):
        faults.clear()
        faults.trip("worker_crash", key="anything", site="worker")
        assert not faults.active()

    def test_worker_crash_in_parent_raises(self):
        faults.install("worker_crash,match=doc003")
        with pytest.raises(WorkerCrashError):
            faults.trip("worker_crash", key="doc003", site="serial")
        faults.trip("worker_crash", key="doc001", site="serial")  # no match

    def test_corrupt_read_and_pickle_error_raise_typed(self):
        faults.install("corrupt_read;pickle_error")
        with pytest.raises(FaultInjectedError):
            faults.trip("corrupt_read", key="x", site="snapshot")
        with pytest.raises(FaultInjectedError):
            faults.trip("pickle_error", key="x", site="worker")

    def test_slow_query_sleeps_for_delay(self):
        faults.install("slow_query,delay=0.05")
        started = time.perf_counter()
        faults.trip("slow_query", site="compose")
        assert time.perf_counter() - started >= 0.04

    def test_times_budget_caps_firings(self):
        faults.install("corrupt_read,times=2")
        fired = 0
        for _ in range(5):
            try:
                faults.trip("corrupt_read", site="snapshot")
            except FaultInjectedError:
                fired += 1
        assert fired == 2
        assert faults.plan_stats()["total_fired"] == 2

    def test_epoch_filter(self):
        faults.install("worker_crash,epoch=1")
        faults.trip("worker_crash", site="serial")  # epoch 0: silent
        faults.mark_worker(epoch=1)
        faults._IN_WORKER = False  # keep the raise path, not os._exit
        with pytest.raises(WorkerCrashError):
            faults.trip("worker_crash", site="worker")

    def test_env_arming(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "slow_query,delay=0.001")
        faults.reset()
        assert faults.active()
        monkeypatch.delenv(faults.FAULTS_ENV)
        faults.reset()
        assert not faults.active()


# ------------------------------------------------------- storage fallbacks
class TestStorageFaultPoints:
    def test_plan_cache_injected_corruption_misses_without_unlink(self, tmp_path):
        cache = PlanCache(tmp_path)
        query = compile_query(PAIR_QUERY, PAIR_VARS, require_ppl=False)
        cache.store(query, expression=PAIR_QUERY)
        faults.install("corrupt_read,site=plan_cache")
        assert cache.load(PAIR_QUERY, PAIR_VARS) is None
        assert len(cache) == 1  # the healthy file survives
        assert cache.stats.misses == 1 and cache.stats.invalid == 0
        faults.clear()
        reloaded = cache.load(PAIR_QUERY, PAIR_VARS)
        assert reloaded is not None and reloaded.unparse() == query.unparse()

    def test_snapshot_injected_corruption_misses_without_unlink(self, tmp_path, paper_bib):
        store = SnapshotStore(tmp_path)
        digest = store.digest_bytes(b"payload")
        store.store_tree(paper_bib, digest)
        faults.install("corrupt_read,site=snapshot")
        assert store.load_tree(digest) is None
        assert store.has_tree(digest)  # still on disk
        assert store.stats.invalid == 0
        faults.clear()
        assert store.load_tree(digest) is not None


# ---------------------------------------------------------- chaos: recovery
class TestSupervisedPools:
    def test_worker_kill_mid_stream_recovers_byte_identical(
        self, corpus_dir, serial_baseline
    ):
        # Crash only the first incarnation of whichever worker owns doc003:
        # the supervisor respawns the pool and re-dispatches, so the stream
        # completes with exactly the fault-free answers.
        faults.install("worker_crash,match=doc003,site=worker,epoch=0")
        results, stats = run_processes(corpus_dir)
        answers = {(r.doc_name, r.query): r.answers for r in results}
        assert answers == serial_baseline
        assert stats["worker_restarts"] >= 1
        assert stats["quarantined"] == []
        assert stats["recoveries"], "recovery latency must be logged"
        for entry in stats["recoveries"]:
            assert entry["resumed"] >= entry["detected"]

    def test_restart_metric_is_labelled_by_strategy(self, corpus_dir):
        faults.install("worker_crash,match=doc003,site=worker,epoch=0")
        store = DocumentStore.from_directory(corpus_dir)
        with CorpusExecutor(store, strategy="processes", max_workers=2) as executor:
            list(executor.run([(PAIR_QUERY, PAIR_VARS)]))
            rendered = executor.metrics_registry.render()
        assert 'repro_worker_restarts_total{strategy="processes"}' in rendered
        assert "repro_quarantined_total" in rendered

    def test_repeated_crasher_is_quarantined_not_fatal(
        self, corpus_dir, serial_baseline
    ):
        # doc003 kills its worker on *every* incarnation: after two kills
        # the supervisor quarantines it — one typed error record per query,
        # stream completes, every other answer still byte-identical.
        faults.install("worker_crash,match=doc003,site=worker")
        results, stats = run_processes(corpus_dir)
        assert "doc003" in stats["quarantined"]
        errors = [r for r in results if r.error is not None]
        assert [r.doc_name for r in errors] == ["doc003"]
        assert errors[0].error_kind == "DocumentQuarantinedError"
        assert not errors[0].ok and errors[0].answers == frozenset()
        survivors = {
            (r.doc_name, r.query): r.answers for r in results if r.error is None
        }
        expected = {
            key: value for key, value in serial_baseline.items() if key[0] != "doc003"
        }
        assert survivors == expected

    def test_quarantined_document_rejects_resubmission(self, corpus_dir):
        faults.install("worker_crash,match=doc003,site=worker")
        store = DocumentStore.from_directory(corpus_dir)
        query = compile_query(PAIR_QUERY, PAIR_VARS, require_ppl=False)
        with CorpusExecutor(store, strategy="processes", max_workers=2) as executor:
            list(executor.run([(PAIR_QUERY, PAIR_VARS)]))
            assert "doc003" in executor.quarantined
            future = executor.submit_document("doc003", [query])
            results = future.result(timeout=30)
            assert all(r.error_kind == "DocumentQuarantinedError" for r in results)

    def test_breaker_degrades_to_in_process_evaluation(
        self, corpus_dir, serial_baseline
    ):
        # Every worker incarnation dies instantly; with a zero restart
        # budget the breaker trips on the first crash (before any document
        # reaches the quarantine threshold) and the shards fall back to
        # in-parent serial evaluation (site="degraded", where the schedule
        # does not fire).
        faults.install("worker_crash,site=worker")
        results, stats = run_processes(
            corpus_dir, max_worker_restarts=0, restart_backoff=0.01
        )
        assert stats["degraded_shards"], "breaker must have tripped"
        answers = {(r.doc_name, r.query): r.answers for r in results}
        assert answers == serial_baseline

    def test_degraded_executor_reports_through_session_stats(self, corpus_dir):
        faults.install("worker_crash,site=worker")
        with Session(
            store=DocumentStore.from_directory(corpus_dir),
            strategy="processes",
            max_workers=2,
            max_worker_restarts=0,
            restart_backoff=0.01,
        ) as session:
            list(session.query_corpus([(PAIR_QUERY, PAIR_VARS)]))
            payload = session.stats()
        assert payload["faults"]["degraded_shards"]
        assert payload["faults"]["worker_restarts"] == 0


# ----------------------------------------------------------- retry policy
class TestRetryPolicy:
    def test_transient_failure_retries_within_budget(self, corpus_dir, serial_baseline):
        # One injected marshalling failure: with max_retries=1 the second
        # attempt succeeds and the caller never sees the fault.
        faults.install("pickle_error,match=doc002,site=serial,times=1")
        store = DocumentStore.from_directory(corpus_dir)
        with CorpusExecutor(
            store, strategy="serial", max_retries=1, retry_backoff=0.001
        ) as executor:
            results = list(executor.run([(PAIR_QUERY, PAIR_VARS)]))
            stats = executor.fault_stats()
        answers = {(r.doc_name, r.query): r.answers for r in results}
        assert answers == serial_baseline
        assert stats["retries"] == 1

    def test_retry_metric_carries_reason_label(self, corpus_dir):
        faults.install("pickle_error,match=doc002,site=serial,times=1")
        store = DocumentStore.from_directory(corpus_dir)
        with CorpusExecutor(
            store, strategy="serial", max_retries=1, retry_backoff=0.001
        ) as executor:
            list(executor.run([(PAIR_QUERY, PAIR_VARS)]))
            rendered = executor.metrics_registry.render()
        assert 'repro_retries_total{reason="FaultInjectedError"}' in rendered

    def test_exhausted_budget_raises_by_default(self, corpus_dir):
        faults.install("pickle_error,match=doc002,site=serial")
        store = DocumentStore.from_directory(corpus_dir)
        with CorpusExecutor(
            store, strategy="serial", max_retries=1, retry_backoff=0.001
        ) as executor:
            with pytest.raises(FaultInjectedError):
                list(executor.run([(PAIR_QUERY, PAIR_VARS)]))

    def test_invalid_on_error_mode_is_typed(self, corpus_dir):
        store = DocumentStore.from_directory(corpus_dir)
        with pytest.raises(CorpusError):
            CorpusExecutor(store, strategy="serial", on_error="explode")


# ------------------------------------------------------- on_error policies
class TestOnErrorPolicies:
    def test_record_turns_final_failures_into_error_records(
        self, corpus_dir, serial_baseline
    ):
        faults.install("pickle_error,match=doc002,site=serial")
        store = DocumentStore.from_directory(corpus_dir)
        with CorpusExecutor(store, strategy="serial", on_error="record") as executor:
            results = list(executor.run([(PAIR_QUERY, PAIR_VARS)]))
        by_doc = {r.doc_name: r for r in results}
        assert by_doc["doc002"].error_kind == "FaultInjectedError"
        assert {
            (r.doc_name, r.query): r.answers for r in results if r.error is None
        } == {k: v for k, v in serial_baseline.items() if k[0] != "doc002"}

    def test_skip_drops_the_document_silently(self, corpus_dir):
        faults.install("pickle_error,match=doc002,site=serial")
        store = DocumentStore.from_directory(corpus_dir)
        with CorpusExecutor(store, strategy="serial", on_error="skip") as executor:
            results = list(executor.run([(PAIR_QUERY, PAIR_VARS)]))
            rendered = executor.metrics_registry.render()
        assert sorted(r.doc_name for r in results) == [
            f"doc{i:03d}" for i in range(6) if i != 2
        ]
        assert 'repro_documents_skipped_total{kind="FaultInjectedError"}' in rendered

    def test_error_records_fold_into_corpus_report(self, corpus_dir):
        faults.install("pickle_error,match=doc002,site=serial")
        store = DocumentStore.from_directory(corpus_dir)
        with CorpusExecutor(store, strategy="serial", on_error="record") as executor:
            report = executor.run_report([(PAIR_QUERY, PAIR_VARS)])
        assert report.error_count == 1
        payload = report.to_dict()
        assert payload["errors"] == 1
        flagged = [e for e in payload["entries"] if "error" in e]
        assert flagged and flagged[0]["error_kind"] == "FaultInjectedError"

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        crashers=st.sets(st.integers(min_value=0, max_value=5), max_size=4),
        rate_seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_record_never_drops_or_duplicates_a_document(
        self, corpus_dir, crashers, rate_seed
    ):
        """Under any injected-failure pattern, ``on_error="record"`` yields
        exactly one result per (document, query) — failed ones as typed
        error records, never missing, never doubled."""
        faults.reset()
        schedule = ";".join(
            f"pickle_error,match=doc{i:03d},site=serial" for i in sorted(crashers)
        )
        schedule = ";".join(
            part
            for part in (schedule, f"slow_query,rate=0.2,seed={rate_seed},delay=0.001")
            if part
        )
        faults.install(schedule)
        store = DocumentStore.from_directory(corpus_dir)
        with CorpusExecutor(
            store, strategy="serial", on_error="record", max_retries=0
        ) as executor:
            results = list(executor.run([(PAIR_QUERY, PAIR_VARS)]))
        names = sorted(r.doc_name for r in results)
        assert names == [f"doc{i:03d}" for i in range(6)]
        failed = {r.doc_name for r in results if r.error is not None}
        assert failed == {f"doc{i:03d}" for i in crashers}
        faults.reset()


# -------------------------------------------------------- policy precedence
class TestPolicyKnobs:
    def test_env_resolution_and_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "4")
        monkeypatch.setenv("REPRO_ON_ERROR", "record")
        monkeypatch.setenv("REPRO_MAX_WORKER_RESTARTS", "0")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.25")
        policy = ExecutionPolicy()
        assert policy.resolved("max_retries") == 4
        assert policy.resolved("on_error") == "record"
        # "0" means a literal zero restart budget, not "unset".
        assert policy.resolved("max_worker_restarts") == 0
        assert policy.resolved("retry_backoff") == 0.25
        explicit = ExecutionPolicy(max_retries=1, on_error="skip")
        assert explicit.resolved("max_retries") == 1
        assert explicit.resolved("on_error") == "skip"

    def test_defaults(self):
        policy = ExecutionPolicy()
        assert policy.resolved("max_retries") == 0
        assert policy.resolved("retry_backoff") == 0.05
        assert policy.resolved("on_error") == "raise"
        assert policy.resolved("max_worker_restarts") == 3
        assert policy.resolved("restart_backoff") == 0.1

    def test_session_threads_knobs_into_executor(self, corpus_dir):
        with Session(
            store=DocumentStore.from_directory(corpus_dir),
            strategy="serial",
            max_retries=2,
            on_error="record",
            retry_backoff=0.01,
        ) as session:
            executor = session._executor_instance()
            assert executor.max_retries == 2
            assert executor.on_error == "record"
            assert executor.retry_backoff == 0.01


# ------------------------------------------------------------ health & obs
class TestHealthSurfaces:
    def test_healthz_reports_degraded(self, corpus_dir):
        faults.install("worker_crash,site=worker")

        async def scenario():
            store = DocumentStore.from_directory(corpus_dir)
            executor = CorpusExecutor(
                store,
                strategy="processes",
                max_workers=2,
                max_worker_restarts=0,
                restart_backoff=0.01,
            )
            server = CorpusServer(store, executor=executor)
            try:
                assert server._health_payload()["status"] == "ok"
                query = compile_query(PAIR_QUERY, PAIR_VARS, require_ppl=False)
                submission = await server.submit([query])
                async for _ in submission:
                    pass
                payload = server._health_payload()
                assert payload["status"] == "degraded"
                assert payload["faults"]["degraded_shards"]
            finally:
                await server.aclose()
            stats = server.stats.to_dict()
            assert stats["faults"]["degraded_shards"]

        asyncio.run(scenario())

    def test_protocol_health_op(self, corpus_dir):
        async def scenario():
            store = DocumentStore.from_directory(corpus_dir)
            async with Session(store=store, strategy="serial") as session:
                tcp = await session.protocol().serve_tcp("127.0.0.1", 0)
                port = tcp.sockets[0].getsockname()[1]
                lines = [
                    line
                    async for line in request_lines(
                        "127.0.0.1", port, {"op": "health", "id": 9}
                    )
                ]
                tcp.close()
                await tcp.wait_closed()
            assert lines[-1]["type"] == "health"
            assert lines[-1]["status"] == "ok"
            assert lines[-1]["id"] == 9

        asyncio.run(scenario())

    def test_obs_port_in_use_is_typed_with_port_number(self):
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            server = ObsHTTPServer(lambda: "", port=port)
            with pytest.raises(ObsPortInUseError) as caught:
                server.start()
            assert caught.value.port == port
            assert str(port) in str(caught.value)
            assert "obs_port=0" in str(caught.value)
        finally:
            blocker.close()

    def test_obs_port_zero_still_binds(self):
        with ObsHTTPServer(lambda: "ok") as server:
            assert server.port > 0


# -------------------------------------------------------- signal-drain CLI
class TestServeRunSignals:
    @pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
    def test_signal_triggers_graceful_drain(self, corpus_dir, signum, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        env.pop("REPRO_FAULTS", None)
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "run",
                "--dir",
                str(corpus_dir),
                "--port",
                "0",
            ],
            cwd="/root/repo",
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = process.stderr.readline()
            assert "serving 6 documents" in banner
            process.send_signal(signum)
            process.wait(timeout=30)
            remainder = process.stderr.read()
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        assert process.returncode == 0
        assert f"received {signal.Signals(signum).name}" in remainder
        assert "drained" in remainder and "shutting down" in remainder
