"""Unit tests for the axis relations (repro.trees.axes)."""

import numpy as np
import pytest

from repro.errors import TreeError
from repro.trees.axes import (
    AXES,
    CORE_AXES,
    INVERSE_AXIS,
    Axis,
    axis_matrix,
    axis_nodes,
    axis_pairs,
    iter_axis,
    label_vector,
    parse_axis,
    successors,
)


def test_parse_axis_accepts_both_spellings():
    assert parse_axis("following-sibling") is Axis.FOLLOWING_SIBLING
    assert parse_axis("following_sibling") is Axis.FOLLOWING_SIBLING
    assert parse_axis("  CHILD ") is Axis.CHILD


def test_parse_axis_rejects_unknown():
    with pytest.raises(TreeError):
        parse_axis("sideways")


def test_self_axis(tiny_tree):
    assert list(iter_axis(tiny_tree, Axis.SELF, 3)) == [3]


def test_child_and_parent(tiny_tree):
    assert list(iter_axis(tiny_tree, Axis.CHILD, 2)) == [3, 4]
    assert list(iter_axis(tiny_tree, Axis.PARENT, 3)) == [2]
    assert list(iter_axis(tiny_tree, Axis.PARENT, 0)) == []


def test_descendant_and_ancestor(tiny_tree):
    assert list(iter_axis(tiny_tree, Axis.DESCENDANT, 0)) == [1, 2, 3, 4]
    assert list(iter_axis(tiny_tree, Axis.ANCESTOR, 4)) == [2, 0]
    assert list(iter_axis(tiny_tree, Axis.DESCENDANT_OR_SELF, 2)) == [2, 3, 4]
    assert list(iter_axis(tiny_tree, Axis.ANCESTOR_OR_SELF, 4)) == [4, 2, 0]


def test_sibling_axes(tiny_tree):
    assert list(iter_axis(tiny_tree, Axis.FOLLOWING_SIBLING, 1)) == [2]
    assert list(iter_axis(tiny_tree, Axis.PRECEDING_SIBLING, 2)) == [1]
    assert list(iter_axis(tiny_tree, Axis.NEXT_SIBLING, 3)) == [4]
    assert list(iter_axis(tiny_tree, Axis.PREVIOUS_SIBLING, 4)) == [3]
    assert list(iter_axis(tiny_tree, Axis.FIRST_CHILD, 2)) == [3]
    assert list(iter_axis(tiny_tree, Axis.FIRST_CHILD, 1)) == []


def test_following_and_preceding(tiny_tree):
    # following(1) = everything after node 1 in document order, minus ancestors/descendants.
    assert list(iter_axis(tiny_tree, Axis.FOLLOWING, 1)) == [2, 3, 4]
    assert list(iter_axis(tiny_tree, Axis.PRECEDING, 3)) == [1]
    assert list(iter_axis(tiny_tree, Axis.PRECEDING, 4)) == [3, 1]
    assert list(iter_axis(tiny_tree, Axis.FOLLOWING, 0)) == []


def test_axis_nodes_returns_frozenset(tiny_tree):
    assert axis_nodes(tiny_tree, Axis.CHILD, 0) == frozenset({1, 2})


def test_axis_pairs_match_iteration(tiny_tree):
    for axis in AXES:
        pairs = axis_pairs(tiny_tree, axis)
        rebuilt = {
            (node, target)
            for node in tiny_tree.nodes()
            for target in iter_axis(tiny_tree, axis, node)
        }
        assert pairs == rebuilt


def test_axis_matrix_matches_pairs(tiny_tree):
    for axis in AXES:
        matrix = axis_matrix(tiny_tree, axis)
        pairs = axis_pairs(tiny_tree, axis)
        for u in tiny_tree.nodes():
            for v in tiny_tree.nodes():
                assert matrix[u, v] == ((u, v) in pairs)


def test_axis_matrix_is_cached_and_readonly(tiny_tree):
    first = axis_matrix(tiny_tree, Axis.CHILD)
    second = axis_matrix(tiny_tree, Axis.CHILD)
    assert first is second
    with pytest.raises(ValueError):
        first[0, 0] = True


def test_inverse_axis_table(tiny_tree):
    # For the symmetric-by-inversion axes the matrices must be transposes.
    for axis in CORE_AXES:
        inverse = INVERSE_AXIS[axis]
        forward = axis_matrix(tiny_tree, axis)
        backward = axis_matrix(tiny_tree, inverse)
        assert np.array_equal(forward, backward.T)


def test_label_vector(tiny_tree):
    vector = label_vector(tiny_tree, "b")
    assert vector.tolist() == [False, True, False, False, True]
    assert label_vector(tiny_tree, None).all()


def test_successors_with_label_filter(tiny_tree):
    assert successors(tiny_tree, Axis.DESCENDANT, 0, "b") == [1, 4]
    assert successors(tiny_tree, Axis.CHILD, 2) == [3, 4]


def test_descendant_equals_transitive_child(wide_tree, deep_tree):
    for tree in (wide_tree, deep_tree):
        child = axis_matrix(tree, Axis.CHILD).astype(np.uint8)
        closure = np.zeros_like(child)
        power = child.copy()
        for _ in range(tree.size):
            closure = ((closure + power) > 0).astype(np.uint8)
            power = ((power @ child) > 0).astype(np.uint8)
        assert np.array_equal(closure.astype(bool), axis_matrix(tree, Axis.DESCENDANT))


def test_partition_self_descendant_ancestor_following_preceding(tiny_tree):
    # For any two nodes exactly one of the five relations holds (XPath's
    # document partition property).
    for u in tiny_tree.nodes():
        for v in tiny_tree.nodes():
            count = sum(
                [
                    u == v,
                    (u, v) in axis_pairs(tiny_tree, Axis.DESCENDANT),
                    (u, v) in axis_pairs(tiny_tree, Axis.ANCESTOR),
                    (u, v) in axis_pairs(tiny_tree, Axis.FOLLOWING),
                    (u, v) in axis_pairs(tiny_tree, Axis.PRECEDING),
                ]
            )
            assert count == 1
