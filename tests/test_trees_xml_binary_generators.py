"""Tests for XML I/O, the binary encoding and the tree generators."""

import pytest

from repro.errors import TreeError
from repro.trees.binary import (
    NIL_LABEL,
    BinaryNode,
    binary_decode,
    binary_encode,
    binary_to_unranked_tree,
)
from repro.trees.generators import (
    binary_random_tree,
    chain_tree,
    complete_tree,
    random_shallow_tree,
    random_tree,
    star_tree,
)
from repro.trees.xml_io import tree_from_xml, tree_to_xml


# ----------------------------------------------------------------- XML I/O
def test_xml_roundtrip(paper_bib):
    assert tree_from_xml(tree_to_xml(paper_bib)) == paper_bib


def test_xml_roundtrip_indented(paper_bib):
    assert tree_from_xml(tree_to_xml(paper_bib, indent=True)) == paper_bib


def test_xml_import_ignores_text_and_attributes():
    tree = tree_from_xml('<a x="1">hello<b/>world<c><d/></c></a>')
    assert tree.labels == ["a", "b", "c", "d"]


def test_xml_import_strips_namespaces():
    tree = tree_from_xml('<a xmlns="http://example.org/ns"><b/></a>')
    assert tree.labels == ["a", "b"]


def test_xml_invalid_document_raises():
    with pytest.raises(TreeError):
        tree_from_xml("<a><b></a>")


def test_xml_leaf_document():
    tree = tree_from_xml("<single/>")
    assert tree.size == 1
    assert tree_to_xml(tree) == "<single/>"


# ---------------------------------------------------------- binary encoding
def test_binary_encode_structure(tiny_tree):
    encoded = binary_encode(tiny_tree)
    # root a: left = first child b, no right (root has no sibling)
    assert encoded.label == "a"
    assert encoded.right is None
    assert encoded.left.label == "b"
    assert encoded.left.right.label == "c"
    assert encoded.left.right.left.label == "d"
    assert encoded.left.right.left.right.label == "b"


def test_binary_roundtrip(tiny_tree, paper_bib, wide_tree, deep_tree):
    for tree in (tiny_tree, paper_bib, wide_tree, deep_tree):
        assert binary_decode(binary_encode(tree)) == tree
        assert binary_decode(binary_encode(tree, pad=True)) == tree


def test_binary_encode_padded_is_full(tiny_tree):
    encoded = binary_encode(tiny_tree, pad=True)
    stack = [encoded]
    while stack:
        node = stack.pop()
        if node.label == NIL_LABEL:
            assert node.left is None and node.right is None
            continue
        assert node.left is not None and node.right is not None
        stack.extend([node.left, node.right])


def test_binary_decode_rejects_root_with_sibling():
    bad = BinaryNode("a", right=BinaryNode("b"))
    with pytest.raises(TreeError):
        binary_decode(bad)


def test_binary_node_size_and_tuple():
    node = BinaryNode("a", BinaryNode("b"), BinaryNode("c", BinaryNode("d")))
    assert node.size() == 4
    assert node.to_tuple() == ("a", ("b", None, None), ("c", ("d", None, None), None))


def test_binary_to_unranked_tree():
    node = BinaryNode("a", BinaryNode("b"), BinaryNode("c"))
    tree = binary_to_unranked_tree(node)
    assert tree.labels == ["a", "b", "c"]
    assert tree.children(0) == (1, 2)


def test_binary_encode_preserves_size(paper_bib):
    assert binary_encode(paper_bib).size() == paper_bib.size


# --------------------------------------------------------------- generators
def test_chain_tree_shape():
    tree = chain_tree(5)
    assert tree.size == 5
    assert tree.depth[4] == 4
    with pytest.raises(TreeError):
        chain_tree(0)


def test_star_tree_shape():
    tree = star_tree(4)
    assert tree.size == 5
    assert all(tree.parent[i] == 0 for i in range(1, 5))


def test_complete_tree_size():
    tree = complete_tree(2, 3)
    assert tree.size == 15  # 1 + 2 + 4 + 8
    assert complete_tree(3, 0).size == 1
    with pytest.raises(TreeError):
        complete_tree(0, 2)


def test_random_tree_is_deterministic():
    assert random_tree(40, seed=7) == random_tree(40, seed=7)
    assert random_tree(40, seed=7) != random_tree(40, seed=8)


def test_random_tree_size_and_alphabet():
    tree = random_tree(25, alphabet=("x", "y"), seed=3)
    assert tree.size == 25
    assert tree.alphabet() <= {"x", "y"}


def test_random_tree_respects_max_fanout():
    tree = random_tree(30, seed=5, max_fanout=2)
    assert all(len(tree.children(node)) <= 2 for node in tree.nodes())


def test_random_shallow_tree_respects_depth():
    tree = random_shallow_tree(40, depth_limit=3, seed=1)
    assert tree.size == 40
    assert max(tree.depth) <= 3


def test_binary_random_tree_has_fanout_two():
    tree = binary_random_tree(20, seed=9)
    assert all(len(tree.children(node)) <= 2 for node in tree.nodes())


def test_generators_reject_bad_arguments():
    with pytest.raises(TreeError):
        random_tree(0)
    with pytest.raises(TreeError):
        star_tree(-1)
    with pytest.raises(TreeError):
        random_shallow_tree(5, depth_limit=-1)
