"""Tests for the on-disk columnar snapshot store (PR 6).

Covers the tentpole and its satellites:

* codec round-trips: structure, labels, orders, and the packed bitset
  relations seeded straight off the memmap equal freshly built ones;
* answer equivalence: a snapshot-loaded document answers byte-identically
  to a parsed one, across engines;
* robustness: truncated files, garbage, format-version skew and stale
  source digests all fall back to parse-and-rebuild with the bad file
  deleted — never a crash, never a wrong answer;
* the answer spill: a warm store serves the first evaluation from disk;
* byte-budgeted LRU GC, with hits keeping their files alive;
* DocumentStore/Session/CorpusReport/ServerStats telemetry counters
  (``parse_count`` / ``snapshot_hits`` / ``snapshot_misses``);
* configuration precedence (explicit > policy > env > default) for
  ``snapshot_dir`` / ``snapshot_bytes``;
* the ``repro-xpath corpus snapshot build/stats/gc`` CLI group;
* the sync ``query_corpus`` timeout watchdog (CorpusTimeoutError).
"""

from __future__ import annotations

import asyncio
import json
import os
import struct
import time
import warnings

import pytest

warnings.filterwarnings("ignore", category=DeprecationWarning)

from repro.corpus.store import DocumentStore
from repro.errors import CorpusTimeoutError
from repro.session import ExecutionPolicy, Session
from repro.snapshot import (
    FORMAT_VERSION,
    MAGIC,
    SnapshotError,
    SnapshotStore,
    decode_snapshot,
    encode_snapshot,
    read_header,
)
from repro.trees import tree_to_xml
from repro.trees.axes import Axis, axis_relation
from repro.trees.tree import Node, Tree
from repro.workloads import generate_bibliography

QUERY = "descendant::book[child::author[. is $y] and child::title[. is $z]]"
VARIABLES = ["y", "z"]


def small_tree() -> Tree:
    return generate_bibliography(5, authors_per_book=2, titles_per_book=1, seed=11)


def write_small_corpus(directory, count: int = 4) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    for index in range(count):
        tree = generate_bibliography(3 + index, seed=index)
        (directory / f"doc{index:03d}.xml").write_text(tree_to_xml(tree))


# ------------------------------------------------------------------- codec
class TestCodec:
    def test_round_trip_structure(self):
        tree = small_tree()
        blob = encode_snapshot(tree, "d" * 64)
        path = None
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "snap.snap")
            with open(path, "wb") as handle:
                handle.write(blob)
            loaded = decode_snapshot(path, expected_digest="d" * 64)
            assert loaded.size == tree.size
            assert list(loaded.labels) == list(tree.labels)
            assert list(loaded.parent) == list(tree.parent)
            assert list(loaded.depth) == list(tree.depth)
            assert list(loaded.post) == list(tree.post)
            assert list(loaded.subtree_end) == list(tree.subtree_end)
            assert [list(c) for c in loaded.children_of] == [
                list(c) for c in tree.children_of
            ]

    def test_round_trip_relations_match_fresh(self, tmp_path):
        tree = small_tree()
        path = tmp_path / "snap.snap"
        path.write_bytes(encode_snapshot(tree, "e" * 64))
        loaded = decode_snapshot(path)
        for axis in (Axis.CHILD, Axis.PARENT, Axis.DESCENDANT, Axis.ANCESTOR):
            seeded = axis_relation(loaded, axis, "bitset").to_bitset()
            fresh = axis_relation(tree, axis, "bitset").to_bitset()
            assert (seeded.words == fresh.words).all(), axis

    def test_header_readable(self, tmp_path):
        tree = small_tree()
        path = tmp_path / "snap.snap"
        path.write_bytes(encode_snapshot(tree, "f" * 64))
        header = read_header(path)
        assert header["format"] == FORMAT_VERSION
        assert header["digest"] == "f" * 64
        assert header["size"] == tree.size
        assert set(header["columns"]) == {
            "label_ids",
            "parent",
            "depth",
            "post",
            "subtree_end",
        }

    def test_answers_identical_across_engines(self, tmp_path):
        from repro.api import Document
        from repro._deprecation import suppress_deprecations

        tree = small_tree()
        path = tmp_path / "snap.snap"
        path.write_bytes(encode_snapshot(tree, "a" * 64))
        loaded = decode_snapshot(path)
        for engine in ("polynomial", "naive"):
            with suppress_deprecations():
                parsed = Document(tree).answer(QUERY, VARIABLES, engine=engine)
                warm = Document(loaded).answer(QUERY, VARIABLES, engine=engine)
            assert parsed == warm, engine

    def test_stale_digest_rejected(self, tmp_path):
        path = tmp_path / "snap.snap"
        path.write_bytes(encode_snapshot(small_tree(), "0" * 64))
        with pytest.raises(SnapshotError, match="stale digest"):
            decode_snapshot(path, expected_digest="1" * 64)

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "snap.snap"
        blob = bytearray(encode_snapshot(small_tree(), "0" * 64))
        # Patch the uint16 format version in the prefix.
        blob[len(MAGIC) : len(MAGIC) + 2] = struct.pack("<H", FORMAT_VERSION + 1)
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="format version"):
            decode_snapshot(path)

    def test_truncated_and_garbage_rejected(self, tmp_path):
        blob = encode_snapshot(small_tree(), "0" * 64)
        truncated = tmp_path / "t.snap"
        truncated.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(SnapshotError):
            decode_snapshot(truncated)
        garbage = tmp_path / "g.snap"
        garbage.write_bytes(b"not a snapshot at all")
        with pytest.raises(SnapshotError):
            decode_snapshot(garbage)

    def test_corrupt_body_never_inconsistent(self, tmp_path):
        # Scribble over the parent column: validation must refuse the file
        # rather than hand back a broken tree.
        tree = small_tree()
        blob = bytearray(encode_snapshot(tree, "0" * 64))
        header = json.loads(
            bytes(blob[12 : 12 + struct.unpack("<I", blob[8:12])[0]])
        )
        offset = header["columns"]["parent"]["offset"]
        body_start = (12 + struct.unpack("<I", blob[8:12])[0] + 63) // 64 * 64
        start = body_start + offset
        blob[start : start + 8 * tree.size] = struct.pack(
            "<%dq" % tree.size, *([tree.size + 5] * tree.size)
        )
        path = tmp_path / "c.snap"
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError):
            decode_snapshot(path)


# ----------------------------------------------------------- snapshot store
class TestSnapshotStore:
    def test_tree_roundtrip_and_counters(self, tmp_path):
        store = SnapshotStore(tmp_path)
        tree = small_tree()
        digest = store.digest_bytes(b"some source")
        assert store.load_tree(digest) is None  # plain miss
        store.store_tree(tree, digest)
        loaded = store.load_tree(digest)
        assert loaded is not None and loaded.size == tree.size
        stats = store.stats
        assert stats.tree_misses == 1
        assert stats.tree_stores == 1
        assert stats.tree_hits == 1

    def test_damaged_file_is_deleted_and_missed(self, tmp_path):
        store = SnapshotStore(tmp_path)
        digest = "9" * 64
        path = store.tree_path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"garbage")
        assert store.load_tree(digest) is None
        assert not path.exists()  # bad file removed
        assert store.stats.invalid == 1

    def test_truncated_snapshot_recovers(self, tmp_path):
        store = SnapshotStore(tmp_path)
        tree = small_tree()
        digest = "8" * 64
        path = store.store_tree(tree, digest)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 50])
        assert store.load_tree(digest) is None
        assert not path.exists()
        # Rebuild path: store again, loads fine.
        store.store_tree(tree, digest)
        assert store.load_tree(digest) is not None

    def test_stale_digest_file_dropped(self, tmp_path):
        # A snapshot renamed to a different digest's address must not serve.
        store = SnapshotStore(tmp_path)
        store.store_tree(small_tree(), "2" * 64)
        os.replace(store.tree_path("2" * 64), store.tree_path("3" * 64))
        assert store.load_tree("3" * 64) is None
        assert not store.tree_path("3" * 64).exists()

    def test_answer_spill_roundtrip(self, tmp_path):
        store = SnapshotStore(tmp_path)
        answers = frozenset({(1, 2), (3, 4)})
        digest = "5" * 64
        assert store.load_answers(digest, QUERY, VARIABLES, "polynomial") is None
        store.store_answers(digest, QUERY, VARIABLES, "polynomial", answers)
        assert store.load_answers(digest, QUERY, VARIABLES, "polynomial") == answers
        # A different engine or plan is a different address.
        assert store.load_answers(digest, QUERY, VARIABLES, "naive") is None
        assert store.load_answers(digest, "child::a", (), "polynomial") is None

    def test_corrupt_answers_deleted(self, tmp_path):
        store = SnapshotStore(tmp_path)
        digest = "6" * 64
        store.store_answers(digest, QUERY, VARIABLES, "polynomial", frozenset())
        path = store.answer_path(digest, QUERY, VARIABLES, "polynomial")
        path.write_bytes(b"\x80\x04junk")
        assert store.load_answers(digest, QUERY, VARIABLES, "polynomial") is None
        assert not path.exists()

    def test_gc_lru_by_access(self, tmp_path):
        store = SnapshotStore(tmp_path)
        digests = ["%064x" % index for index in range(4)]
        tree = small_tree()
        for index, digest in enumerate(digests):
            path = store.store_tree(tree, digest)
            stamp = 1_000_000 + index
            os.utime(path, (stamp, stamp))
        # Touch the oldest so it becomes the hottest.
        os.utime(store.tree_path(digests[0]), None)
        per_file = store.tree_path(digests[0]).stat().st_size
        removed = store.gc(2 * per_file)
        assert removed == 2
        assert store.has_tree(digests[0])  # survived: recently accessed
        assert not store.has_tree(digests[1])
        assert not store.has_tree(digests[2])
        assert store.has_tree(digests[3])
        assert store.stats.evictions == 2

    def test_budget_enforced_on_store(self, tmp_path):
        store = SnapshotStore(tmp_path, max_bytes=1)
        store.store_tree(small_tree(), "7" * 64)
        assert store.total_bytes() <= 1  # everything over budget evicted
        assert len(store) == 0


# ----------------------------------------------------- document store wiring
class TestDocumentStoreSnapshots:
    def test_cold_then_warm(self, tmp_path):
        snap = tmp_path / "snaps"
        xml = tree_to_xml(small_tree())
        cold = DocumentStore(snapshot_dir=snap)
        cold.add_xml("doc", xml)
        answers_cold = cold.get("doc").answer(QUERY, VARIABLES)
        assert cold.stats.parse_count == 1
        assert cold.stats.snapshot_misses == 1
        assert cold.snapshot_stats()["tree_stores"] == 1

        warm = DocumentStore(snapshot_dir=snap)
        warm.add_xml("doc", xml)
        answers_warm = warm.get("doc").answer(QUERY, VARIABLES)
        assert answers_warm == answers_cold
        assert warm.stats.parse_count == 0
        assert warm.stats.snapshot_hits == 1
        assert warm.snapshot_stats()["answer_hits"] == 1  # spill served too

    def test_file_source_revalidates_digest(self, tmp_path):
        snap = tmp_path / "snaps"
        doc = tmp_path / "doc.xml"
        doc.write_text(tree_to_xml(small_tree()))
        first = DocumentStore(snapshot_dir=snap)
        first.add_file(doc)
        first.get("doc")
        assert first.stats.parse_count == 1

        # Edit the source: the old snapshot must not serve.
        doc.write_text(tree_to_xml(Tree(Node("r", Node("a")))))
        second = DocumentStore(snapshot_dir=snap)
        second.add_file(doc)
        document = second.get("doc")
        assert document.tree.size == 2
        assert second.stats.parse_count == 1
        assert second.stats.snapshot_hits == 0

    def test_corrupt_snapshot_falls_back_to_parse(self, tmp_path):
        snap = tmp_path / "snaps"
        xml = tree_to_xml(small_tree())
        seed = DocumentStore(snapshot_dir=snap)
        seed.add_xml("doc", xml)
        expected = seed.get("doc").answer(QUERY, VARIABLES)
        # Corrupt every snapshot file in place.
        snap_files = list(snap.glob("*.snap"))
        assert snap_files
        for path in snap_files:
            path.write_bytes(b"ruined")

        store = DocumentStore(snapshot_dir=snap)
        store.add_xml("doc", xml)
        assert store.get("doc").answer(QUERY, VARIABLES) == expected
        assert store.stats.parse_count == 1  # fell back
        assert store.snapshot_stats()["invalid"] == 1
        # The bad file was deleted and a valid one rebuilt in its place.
        for path in snap_files:
            assert decode_snapshot(path).size == seed.get("doc").tree.size

    def test_tree_sources_bypass_snapshots(self, tmp_path):
        store = DocumentStore(snapshot_dir=tmp_path / "snaps")
        store.add_tree("doc", small_tree())
        store.get("doc")
        stats = store.stats
        assert stats.snapshot_hits == 0 and stats.snapshot_misses == 0
        assert stats.parse_count == 0  # in-memory trees never parse

    def test_over_budget_store_serves_identical_answers(self, tmp_path):
        # The LRU budget is far too small for the corpus: every access
        # evicts, yet answers match an unbudgeted all-in-memory store.
        corpus = tmp_path / "corpus"
        write_small_corpus(corpus, count=4)
        plain = DocumentStore()
        plain.add_directory(corpus)
        expected = {
            name: plain.get(name).answer(QUERY, VARIABLES) for name in plain.names()
        }

        budgeted = DocumentStore(
            snapshot_dir=tmp_path / "snaps", snapshot_bytes=2048, max_resident=1
        )
        budgeted.add_directory(corpus)
        for _ in range(2):  # second pass re-materialises under eviction
            for name in budgeted.names():
                assert budgeted.get(name).answer(QUERY, VARIABLES) == expected[name]


# -------------------------------------------------------------- session layer
class TestSessionSnapshots:
    def test_warm_session_skips_parse_and_first_evaluation(self, tmp_path):
        corpus = tmp_path / "corpus"
        write_small_corpus(corpus)
        snap = tmp_path / "snaps"
        with Session(snapshot_dir=snap) as session:
            session.add_directory(corpus)
            cold = {
                (r.doc_name, r.query): r.answers
                for r in session.query_corpus((QUERY, VARIABLES))
            }
            stats = session.stats()
            assert stats["store"]["parse_count"] == 4
            assert stats["snapshot"]["tree_stores"] == 4
            assert stats["snapshot"]["answer_stores"] == 4

        with Session(snapshot_dir=snap) as session:
            session.add_directory(corpus)
            warm = {
                (r.doc_name, r.query): r.answers
                for r in session.query_corpus((QUERY, VARIABLES))
            }
            stats = session.stats()
            assert stats["store"]["parse_count"] == 0
            assert stats["store"]["snapshot_hits"] == 4
            assert stats["snapshot"]["answer_hits"] == 4
        assert cold == warm

    def test_report_and_server_stats_carry_snapshot_telemetry(self, tmp_path):
        corpus = tmp_path / "corpus"
        write_small_corpus(corpus, count=2)
        with Session(snapshot_dir=tmp_path / "snaps") as session:
            session.add_directory(corpus)
            report = session.corpus_report((QUERY, VARIABLES))
            assert report.snapshot is not None
            assert report.snapshot["tree_stores"] == 2
            assert report.to_dict()["snapshot"]["tree_stores"] == 2

            async def poke_server():
                stats = session.server().stats
                return stats.to_dict()

            payload = asyncio.run(poke_server())
            assert payload["snapshot"] is not None
            assert payload["snapshot"]["tree_stores"] == 2

    def test_processes_strategy_shares_snapshot_dir(self, tmp_path):
        corpus = tmp_path / "corpus"
        write_small_corpus(corpus, count=3)
        snap = tmp_path / "snaps"
        with Session(
            snapshot_dir=snap, strategy="processes", max_workers=2
        ) as session:
            session.add_directory(corpus)
            cold = {
                (r.doc_name, r.query): r.answers
                for r in session.query_corpus((QUERY, VARIABLES))
            }
            worker = session.worker_stats()
            assert worker.parse_count == 3
            assert worker.snapshot_misses == 3
        assert len(list(snap.glob("*.snap"))) == 3

        with Session(
            snapshot_dir=snap, strategy="processes", max_workers=2
        ) as session:
            session.add_directory(corpus)
            warm = {
                (r.doc_name, r.query): r.answers
                for r in session.query_corpus((QUERY, VARIABLES))
            }
            worker = session.worker_stats()
            assert worker.parse_count == 0
            assert worker.snapshot_hits == 3
            report = session.corpus_report((QUERY, VARIABLES))
            assert report.snapshot["trees"] == 3  # shared dir, not summed
        assert cold == warm

    def test_precedence_explicit_over_policy_over_env(self, tmp_path, monkeypatch):
        explicit_dir = tmp_path / "explicit"
        policy_dir = tmp_path / "policy"
        env_dir = tmp_path / "env"
        monkeypatch.setenv("REPRO_SNAPSHOT_DIR", str(env_dir))

        with Session() as session:
            resolved = session.execution.resolve("snapshot_dir")
            assert resolved.source == "env"
            assert resolved.value == str(env_dir)
            assert session.store.snapshot_dir == str(env_dir)

        policy = ExecutionPolicy(snapshot_dir=str(policy_dir))
        with Session(execution=policy) as session:
            assert session.execution.resolve("snapshot_dir").source == "policy"
            assert session.store.snapshot_dir == str(policy_dir)

        # An explicit constructor argument folds over the policy field
        # (explicit > policy): the resolved value is the explicit one.
        with Session(execution=policy, snapshot_dir=explicit_dir) as session:
            assert session.execution.resolved("snapshot_dir") == str(explicit_dir)
            assert session.store.snapshot_dir == str(explicit_dir)

    def test_snapshot_bytes_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SNAPSHOT_DIR", str(tmp_path / "snaps"))
        monkeypatch.setenv("REPRO_SNAPSHOT_BYTES", "4096")
        with Session() as session:
            assert session.store.snapshot_store.max_bytes == 4096

    def test_default_is_no_snapshots(self):
        with Session() as session:
            assert session.store.snapshot_store is None
            assert session.stats()["snapshot"] is None


# ------------------------------------------------------------- sync timeout
class _SlowEngine:
    """A registry engine that stalls long enough to trip any watchdog."""

    name = "slow-for-test"

    def __init__(self):
        from repro.api.registry import EngineCapabilities

        self.capabilities = EngineCapabilities()

    def answer(self, tree, query):  # pragma: no cover - interrupted mid-sleep
        time.sleep(5.0)
        return frozenset()


class TestSyncTimeout:
    def test_query_corpus_times_out_on_slow_document(self, tiny_tree):
        from repro.api.registry import _REGISTRY, register_engine

        register_engine(_SlowEngine(), replace=True)
        try:
            with Session(timeout=0.2, engine="slow-for-test") as session:
                session.add_tree("slow", tiny_tree)
                started = time.monotonic()
                with pytest.raises(CorpusTimeoutError):
                    list(session.query_corpus(("child::a", ())))
                elapsed = time.monotonic() - started
                assert elapsed < 4.0  # did not wait out the slow engine
        finally:
            _REGISTRY.pop("slow-for-test", None)

    def test_generous_timeout_streams_normally(self, tiny_tree):
        with Session(timeout=60.0) as session:
            session.add_tree("doc", tiny_tree)
            results = list(session.query_corpus(("child::b", ())))
            assert len(results) == 1

    def test_no_timeout_returns_raw_stream(self, tiny_tree):
        with Session() as session:
            session.add_tree("doc", tiny_tree)
            assert len(list(session.query_corpus(("child::b", ())))) == 1


# --------------------------------------------------------------------- CLI
class TestSnapshotCli:
    def run_cli(self, *arguments: str, capsys) -> dict:
        from repro.cli import main

        assert main(list(arguments)) == 0
        return json.loads(capsys.readouterr().out)

    def test_build_stats_gc(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        write_small_corpus(corpus, count=3)
        snap = str(tmp_path / "snaps")

        built = self.run_cli(
            "corpus", "snapshot", "build",
            "--dir", str(corpus), "--snapshot-dir", snap,
            capsys=capsys,
        )
        assert built["documents"] == 3
        assert built["snapshot"]["tree_stores"] == 3

        stats = self.run_cli(
            "corpus", "snapshot", "stats", "--snapshot-dir", snap, capsys=capsys
        )
        assert stats["files"]["trees"] == 3
        assert stats["total_bytes"] > 0

        collected = self.run_cli(
            "corpus", "snapshot", "gc",
            "--snapshot-dir", snap, "--max-bytes", "0",
            capsys=capsys,
        )
        assert collected["removed_files"] == 3
        assert collected["bytes_after"] == 0

    def test_corpus_answer_uses_snapshots(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        write_small_corpus(corpus, count=2)
        snap = str(tmp_path / "snaps")
        self.run_cli(
            "corpus", "snapshot", "build",
            "--dir", str(corpus), "--snapshot-dir", snap,
            capsys=capsys,
        )
        report = self.run_cli(
            "corpus", "answer",
            "--dir", str(corpus), "--snapshot-dir", snap,
            "--query", QUERY, "--vars", ",".join(VARIABLES), "--json",
            capsys=capsys,
        )
        assert report["snapshot"]["tree_hits"] == 2
