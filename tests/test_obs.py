"""Tests for the observability subsystem (repro.obs) and its wiring.

Covers the metrics primitives (nearest-rank quantile helper, mergeable
histograms, labelled families, Prometheus exposition with escaping), the
span tracer with probabilistic head sampling and slowlog tail capture, the
slow-query log, the ExecutionPolicy knobs, per-query resource accounting
(``QueryReport.cost`` and the labelled cost counters), the server's
histogram-backed stats with the queue-wait/execution split and per-client
cost attribution, the stdlib HTTP exposition endpoint, the NDJSON
protocol's ``metrics``/``slowlog`` ops, cross-process histogram merging
under the processes strategy, the per-query span tree on QueryReport, and
span-driven cost-model calibration.
"""

from __future__ import annotations

import asyncio
import json
import math
import pickle
import random
import time
import urllib.error
import urllib.request

import pytest

from repro.corpus import CorpusExecutor, DocumentStore
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SlowQueryLog,
    default_latency_bounds,
    quantile,
)
from repro.obs import calibrate as obs_calibrate
from repro.obs import trace as obs_trace
from repro.obs.http import ObsHTTPServer
from repro.obs.metrics import series_key
from repro.serve import CorpusServer, ProtocolServer, request_lines
from repro.session import ExecutionPolicy, ServingPolicy, Session
from repro.trees.xml_io import tree_to_xml
from repro.workloads.bibliography import generate_bibliography

PAIR_QUERY = "descendant::book[child::author[. is $y] and child::title[. is $z]]"
PAIR_VARS = ("y", "z")


def run(coroutine):
    return asyncio.run(coroutine)


def make_store(documents: int = 4, *, seed: int = 0) -> DocumentStore:
    store = DocumentStore()
    for index in range(documents):
        tree = generate_bibliography(2 + index % 3, seed=seed + index)
        store.add_xml(f"doc{index:03d}", tree_to_xml(tree))
    return store


@pytest.fixture(autouse=True)
def _tracing_off():
    """Leave the process-global tracer the way each test found it."""
    previous = obs_trace.set_tracing(False)
    previous_sample = obs_trace.set_trace_sample(0.0)
    obs_trace.take_last_trace()
    yield
    obs_trace.set_tracing(previous)
    obs_trace.set_trace_sample(previous_sample)
    obs_trace.take_last_trace()
    obs_trace.drain_finished()


# =====================================================================
# Nearest-rank quantile helper
# =====================================================================
class TestQuantile:
    def test_nearest_rank_definition(self):
        values = list(range(1, 11))  # 1..10, already sorted
        assert quantile(values, 0.50) == 5
        assert quantile(values, 0.90) == 9
        assert quantile(values, 1.00) == 10
        assert quantile(values, 0.05) == 1

    def test_size_20_p95_regression(self):
        # The old server computed window[int(0.95 * len)] which is the MAX
        # for a 20-element window (int(19.0) == 19).  Nearest rank says the
        # p95 of 20 samples is the 19th order statistic, not the 20th.
        values = list(range(1, 21))
        assert quantile(values, 0.95) == 19
        assert quantile(values, 0.95) != max(values)

    def test_single_element_and_errors(self):
        assert quantile([7.0], 0.5) == 7.0
        with pytest.raises(ValueError):
            quantile([], 0.5)
        with pytest.raises(ValueError):
            quantile([1.0], 0.0)
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)


# =====================================================================
# Histogram
# =====================================================================
class TestHistogram:
    def test_observe_tracks_count_sum_min_max(self):
        histogram = Histogram("h")
        for value in (0.001, 0.002, 0.004):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(0.007)
        assert histogram.min == 0.001
        assert histogram.max == 0.004

    def test_empty_quantile_is_none(self):
        assert Histogram("h").quantile(0.5) is None

    def test_quantile_within_one_bucket_of_exact(self):
        # The acceptance bar for the bucket layout: any quantile the
        # histogram reports is within one factor-sqrt(2) bucket of the
        # exact nearest-rank quantile of the raw samples.
        rng = random.Random(7)
        samples = sorted(rng.uniform(0.0005, 2.0) for _ in range(500))
        histogram = Histogram("h")
        for value in samples:
            histogram.observe(value)
        for q in (0.50, 0.90, 0.95, 0.99):
            exact = quantile(samples, q)
            reported = histogram.quantile(q)
            assert exact <= reported <= exact * math.sqrt(2) * (1 + 1e-9)

    def test_overflow_bucket_reports_observed_max(self):
        histogram = Histogram("h")
        histogram.observe(1e9)  # way past the last finite bound
        assert histogram.quantile(0.99) == 1e9

    def test_merge_equals_single_histogram(self):
        # Shard-worker merge correctness: observing a sample set split
        # across N histograms then merging is identical to observing it
        # all in one histogram.
        rng = random.Random(13)
        samples = [rng.uniform(1e-6, 10.0) for _ in range(300)]
        whole = Histogram("h")
        shards = [Histogram("h") for _ in range(3)]
        for index, value in enumerate(samples):
            whole.observe(value)
            shards[index % 3].observe(value)
        merged = Histogram("h")
        merged.merge(shards[0])
        merged.merge(shards[1].to_dict())  # dict form: the pool transport
        merged.merge(shards[2])
        assert merged.counts == whole.counts
        assert merged.count == whole.count
        assert merged.sum == pytest.approx(whole.sum)
        assert merged.min == whole.min
        assert merged.max == whole.max
        for q in (0.5, 0.9, 0.95, 0.99):
            assert merged.quantile(q) == whole.quantile(q)

    def test_merge_rejects_mismatched_bounds(self):
        left = Histogram("h", bounds=(1.0, 2.0))
        right = Histogram("h", bounds=(1.0, 4.0))
        with pytest.raises(ValueError):
            left.merge(right)

    def test_dict_roundtrip_is_picklable(self):
        histogram = Histogram("h")
        histogram.observe(0.25)
        data = pickle.loads(pickle.dumps(histogram.to_dict()))
        clone = Histogram.from_dict(data)
        assert clone.counts == histogram.counts
        assert clone.summary() == histogram.summary()

    def test_default_bounds_span_microseconds_to_seconds(self):
        bounds = default_latency_bounds()
        assert bounds[0] < 1e-5
        assert bounds[-1] >= 100.0
        assert list(bounds) == sorted(bounds)


# =====================================================================
# Registry and exposition
# =====================================================================
class TestRegistry:
    def test_get_or_create_and_type_conflict(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", "help")
        assert registry.counter("c") is counter
        with pytest.raises(ValueError):
            registry.gauge("c")

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_gauge_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(3)
        assert gauge.value == 4

    def test_merge_creates_unknown_metrics(self):
        source = MetricsRegistry()
        source.counter("requests").inc(3)
        source.histogram("lat").observe(0.1)
        target = MetricsRegistry()
        target.merge(source.to_dict())
        assert target.get("requests").value == 3
        assert target.get("lat").count == 1

    def test_render_prometheus_text(self):
        registry = MetricsRegistry()
        registry.counter("repro_requests_total", "Requests").inc(2)
        registry.gauge("repro_in_flight", "In flight").set(1)
        histogram = registry.histogram("repro_seconds", "Latency")
        histogram.observe(0.002)
        histogram.observe(0.004)
        text = registry.render()
        assert text.endswith("\n")
        assert "# HELP repro_requests_total Requests" in text
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 2" in text
        assert "# TYPE repro_in_flight gauge" in text
        assert "# TYPE repro_seconds histogram" in text
        assert 'repro_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_seconds_count 2" in text
        # Bucket counts must be cumulative and non-decreasing.
        cumulative = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_seconds_bucket")
        ]
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == 2


# =====================================================================
# Labelled metric families
# =====================================================================
class TestLabels:
    def test_series_key_is_canonical(self):
        assert series_key("c") == "c"
        assert (
            series_key("c", {"strategy": "serial", "engine": "polynomial"})
            == 'c{engine="polynomial",strategy="serial"}'
        )
        # Label order in the mapping does not matter: keys sort.
        assert series_key("c", {"b": "2", "a": "1"}) == series_key("c", {"a": "1", "b": "2"})

    def test_get_or_create_per_label_set(self):
        registry = MetricsRegistry()
        serial = registry.counter("ops", "Ops", labels={"strategy": "serial"})
        threads = registry.counter("ops", "Ops", labels={"strategy": "threads"})
        assert serial is not threads
        assert registry.counter("ops", labels={"strategy": "serial"}) is serial
        serial.inc(2)
        threads.inc(3)
        assert registry.get("ops", {"strategy": "serial"}).value == 2
        assert registry.get("ops", {"strategy": "threads"}).value == 3
        assert registry.get("ops") is None  # the unlabelled series was never made
        assert len(registry.series("ops")) == 2
        assert registry.names() == ["ops"]

    def test_type_conflict_across_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("m", labels={"op": "a"})
        with pytest.raises(ValueError):
            registry.gauge("m", labels={"op": "b"})
        with pytest.raises(ValueError):
            registry.histogram("m")

    def test_labels_must_be_strings(self):
        registry = MetricsRegistry()
        with pytest.raises(TypeError):
            registry.counter("m", labels={"n": 5})

    def test_merge_lines_up_identical_label_sets(self):
        worker = MetricsRegistry()
        worker.counter("ops", "Ops", labels={"engine": "polynomial"}).inc(4)
        worker.histogram("lat", "Latency", labels={"strategy": "processes"}).observe(0.1)
        parent = MetricsRegistry()
        parent.counter("ops", "Ops", labels={"engine": "polynomial"}).inc(1)
        parent.merge(worker.to_dict())
        assert parent.get("ops", {"engine": "polynomial"}).value == 5
        assert parent.get("lat", {"strategy": "processes"}).count == 1

    def test_merge_unknown_label_sets_creates_disjoint_series(self):
        worker = MetricsRegistry()
        worker.counter("ops", labels={"engine": "naive"}).inc(7)
        parent = MetricsRegistry()
        parent.counter("ops", labels={"engine": "polynomial"}).inc(2)
        parent.merge(worker)
        assert parent.get("ops", {"engine": "polynomial"}).value == 2
        assert parent.get("ops", {"engine": "naive"}).value == 7
        assert len(parent.series("ops")) == 2

    def test_merge_accepts_legacy_name_keyed_payload(self):
        # Pre-label payloads were keyed by bare name with no "name"/"labels"
        # fields; they must still merge (into the unlabelled series).
        target = MetricsRegistry()
        target.merge({"requests": {"type": "counter", "value": 3.0}})
        assert target.get("requests").value == 3

    def test_render_emits_one_family_header_and_per_series_lines(self):
        registry = MetricsRegistry()
        registry.counter("repro_ops_total", "Ops", labels={"engine": "polynomial"}).inc(2)
        registry.counter("repro_ops_total", "Ops", labels={"engine": "naive"}).inc(1)
        histogram = registry.histogram(
            "repro_lat_seconds", "Latency", labels={"strategy": "serial"}
        )
        histogram.observe(0.002)
        text = registry.render()
        assert text.count("# TYPE repro_ops_total counter") == 1
        assert text.count("# HELP repro_ops_total Ops") == 1
        assert 'repro_ops_total{engine="polynomial"} 2' in text
        assert 'repro_ops_total{engine="naive"} 1' in text
        # Histogram series merge the `le` label into the series label string.
        assert 'repro_lat_seconds_bucket{strategy="serial",le="+Inf"} 1' in text
        assert 'repro_lat_seconds_count{strategy="serial"} 1' in text
        assert 'repro_lat_seconds_sum{strategy="serial"}' in text
        # Cumulative bucket counts stay non-decreasing per series.
        cumulative = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_lat_seconds_bucket")
        ]
        assert cumulative == sorted(cumulative)


class TestExpositionEscaping:
    def test_help_escapes_backslash_and_newline(self):
        registry = MetricsRegistry()
        registry.counter("c_total", 'path C:\\dir\nsecond "line"').inc(1)
        text = registry.render()
        # Backslash doubles, newline becomes the two characters \n; double
        # quotes are legal in HELP text and pass through unescaped.
        assert '# HELP c_total path C:\\\\dir\\nsecond "line"' in text
        assert "\nsecond" not in text  # the newline never lands literally

    def test_label_values_escape_quotes_backslashes_newlines(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "C", labels={"q": 'say "hi"\\now\nplease'}).inc(1)
        text = registry.render()
        assert 'c_total{q="say \\"hi\\"\\\\now\\nplease"} 1' in text


# =====================================================================
# Span tracer
# =====================================================================
class TestTracer:
    def test_disabled_returns_shared_null_span(self):
        first = obs_trace.span("anything")
        second = obs_trace.span("else")
        assert first is second
        with first as open_span:
            open_span.set(key="value")  # no-ops, no errors
        assert obs_trace.last_trace() is None

    def test_nested_spans_build_a_tree(self):
        obs_trace.set_tracing(True)
        with obs_trace.span("root", engine="polynomial"):
            with obs_trace.span("child.a"):
                pass
            with obs_trace.span("child.b") as child:
                child.set(hit=True)
        tree = obs_trace.take_last_trace()
        assert tree["name"] == "root"
        assert tree["attrs"] == {"engine": "polynomial"}
        assert [child["name"] for child in tree["children"]] == ["child.a", "child.b"]
        assert tree["children"][1]["attrs"] == {"hit": True}
        for child in tree["children"]:
            assert child["parent_id"] == tree["span_id"]
            assert child["trace_id"] == tree["trace_id"]
        assert obs_trace.take_last_trace() is None  # take clears

    def test_exception_is_recorded_and_stack_unwinds(self):
        obs_trace.set_tracing(True)
        with pytest.raises(RuntimeError):
            with obs_trace.span("root"):
                raise RuntimeError("boom")
        tree = obs_trace.take_last_trace()
        assert tree["attrs"]["error"] == "RuntimeError"
        # The stack unwound: a new span starts a fresh trace.
        with obs_trace.span("next"):
            pass
        assert obs_trace.take_last_trace()["name"] == "next"

    def test_record_span_with_explicit_timestamps(self):
        obs_trace.set_tracing(True)
        now = time.perf_counter()
        tree = obs_trace.record_span(
            "server.request",
            now,
            now + 0.5,
            children=[
                {"name": "queue.wait", "started": now, "ended": now + 0.1},
                {"name": "execute", "started": now + 0.1, "ended": now + 0.5},
            ],
            document="doc000",
        )
        assert tree["seconds"] == pytest.approx(0.5)
        assert [child["name"] for child in tree["children"]] == ["queue.wait", "execute"]
        assert tree["children"][0]["seconds"] == pytest.approx(0.1)
        assert tree["attrs"]["document"] == "doc000"
        assert obs_trace.record_span is not None
        obs_trace.set_tracing(False)
        assert obs_trace.record_span("x", 0.0, 1.0) is None

    def test_ndjson_export_parses(self):
        obs_trace.set_tracing(True)
        with obs_trace.span("root"):
            with obs_trace.span("child"):
                pass
        tree = obs_trace.take_last_trace()
        text = obs_trace.render_events([tree])
        events = [json.loads(line) for line in text.splitlines()]
        assert [event["name"] for event in events] == ["root", "child"]
        assert events[1]["parent_id"] == events[0]["span_id"]

    def test_format_tree_is_indented(self):
        obs_trace.set_tracing(True)
        with obs_trace.span("root"):
            with obs_trace.span("child"):
                pass
        rendered = obs_trace.format_tree(obs_trace.take_last_trace())
        lines = rendered.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")

    def test_drain_finished_collects_roots(self):
        obs_trace.set_tracing(True)
        obs_trace.drain_finished()
        for _ in range(3):
            with obs_trace.span("query"):
                pass
        drained = obs_trace.drain_finished()
        assert len(drained) == 3
        assert obs_trace.drain_finished() == []


# =====================================================================
# Sampled always-on tracing
# =====================================================================
class TestSampledTracing:
    def test_sampling_activates_recording_without_full_tracing(self):
        obs_trace.set_trace_sample(0.5)
        assert obs_trace.enabled()  # spans ARE recorded
        assert not obs_trace.tracing_enabled()  # but full tracing stays off
        assert obs_trace.sample_rate() == 0.5
        obs_trace.set_trace_sample(None)
        assert not obs_trace.enabled()
        assert obs_trace.sample_rate() == 0.0

    def test_set_trace_sample_clamps_and_returns_previous(self):
        assert obs_trace.set_trace_sample(2.0) == 0.0
        assert obs_trace.sample_rate() == 1.0
        assert obs_trace.set_trace_sample(-3.0) == 1.0
        assert obs_trace.sample_rate() == 0.0

    def test_unsampled_trace_feeds_tail_capture_not_the_ring(self, monkeypatch):
        obs_trace.set_trace_sample(0.5)
        monkeypatch.setattr(obs_trace, "_random", lambda: 0.9)  # 0.9 >= 0.5: skip
        with obs_trace.span("query.answer"):
            with obs_trace.span("engine.answer"):
                pass
        # The ring stays empty, but the thread's last-trace slot still holds
        # the full tree — the slowlog's exemplar hook for unsampled queries.
        assert obs_trace.drain_finished() == []
        tree = obs_trace.take_last_trace()
        assert tree is not None
        assert tree["sampled"] is False
        assert tree["children"][0]["sampled"] is False

    def test_sampled_trace_publishes_to_the_ring(self, monkeypatch):
        obs_trace.set_trace_sample(0.5)
        monkeypatch.setattr(obs_trace, "_random", lambda: 0.1)  # 0.1 < 0.5: keep
        with obs_trace.span("query.answer"):
            pass
        drained = obs_trace.drain_finished()
        assert len(drained) == 1
        assert drained[0]["sampled"] is True
        assert obs_trace.last_trace() is not None  # tail capture sees it too

    def test_head_decision_is_made_once_per_trace(self, monkeypatch):
        # The sampling decision happens at the root; children inherit it even
        # if the RNG would flip mid-trace.
        obs_trace.set_trace_sample(0.5)
        draws = iter([0.1, 0.9, 0.9])
        monkeypatch.setattr(obs_trace, "_random", lambda: next(draws))
        with obs_trace.span("root"):
            with obs_trace.span("child.a"):
                pass
            with obs_trace.span("child.b"):
                pass
        tree = obs_trace.drain_finished()[0]
        assert all(child["sampled"] for child in tree["children"])

    def test_rate_one_publishes_every_trace(self):
        obs_trace.set_trace_sample(1.0)
        for _ in range(3):
            with obs_trace.span("query"):
                pass
        assert len(obs_trace.drain_finished()) == 3

    def test_full_tracing_wins_over_sampling(self, monkeypatch):
        obs_trace.set_tracing(True)
        obs_trace.set_trace_sample(0.5)
        monkeypatch.setattr(obs_trace, "_random", lambda: 0.99)
        with obs_trace.span("query"):
            pass
        assert len(obs_trace.drain_finished()) == 1  # trace=True: keep all

    def test_record_span_respects_sampling(self, monkeypatch):
        obs_trace.set_trace_sample(0.5)
        monkeypatch.setattr(obs_trace, "_random", lambda: 0.9)
        now = time.perf_counter()
        tree = obs_trace.record_span("server.request", now, now + 0.1)
        assert tree is not None  # still recorded for tail capture
        assert tree["sampled"] is False
        assert obs_trace.drain_finished() == []

    def test_ring_is_bounded(self):
        obs_trace.set_trace_sample(1.0)
        for _ in range(300):
            with obs_trace.span("query"):
                pass
        assert len(obs_trace.drain_finished()) == 256  # deque maxlen

    def test_finished_traces_snapshot_with_limit(self):
        obs_trace.set_trace_sample(1.0)
        for index in range(4):
            with obs_trace.span(f"q{index}"):
                pass
        snapshot = obs_trace.finished_traces(limit=2)
        assert [tree["name"] for tree in snapshot] == ["q2", "q3"]
        # Non-destructive: the ring still drains all four.
        assert len(obs_trace.drain_finished()) == 4


# =====================================================================
# Slow-query log
# =====================================================================
class TestSlowQueryLog:
    def test_disabled_without_threshold(self):
        log = SlowQueryLog(None)
        assert not log.enabled
        assert not log.should_log(1e9)
        assert log.record(1e9, query="q") is None
        assert len(log) == 0

    def test_threshold_gates_recording(self):
        log = SlowQueryLog(0.5)
        assert log.record(0.4, query="fast") is None
        entry = log.record(0.6, query="slow", document="doc", queue_wait=0.1)
        assert entry["seconds"] == 0.6
        assert entry["queue_wait"] == 0.1
        assert len(log) == 1
        assert log.entries()[0]["query"] == "slow"

    def test_ring_capacity_and_dropped(self):
        log = SlowQueryLog(0.0, capacity=2)
        for index in range(5):
            log.record(float(index), query=f"q{index}")
        assert len(log) == 2
        assert [entry["query"] for entry in log.entries()] == ["q4", "q3"]
        assert log.to_dict()["dropped"] == 3
        assert log.entries(limit=1)[0]["query"] == "q4"

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            SlowQueryLog(-1.0)


# =====================================================================
# Policy knobs
# =====================================================================
class TestPolicyKnobs:
    def test_trace_env_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert ExecutionPolicy().resolve("trace").value is False
        monkeypatch.setenv("REPRO_TRACE", "1")
        resolved = ExecutionPolicy().resolve("trace")
        assert resolved.value is True
        assert resolved.source == "env"
        monkeypatch.setenv("REPRO_TRACE", "off")
        assert ExecutionPolicy().resolve("trace").value is False
        assert ExecutionPolicy(trace=True).resolve("trace").source == "policy"

    def test_slow_query_env_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_SLOW_QUERY_SECONDS", raising=False)
        assert ExecutionPolicy().resolve("slow_query_seconds").value is None
        monkeypatch.setenv("REPRO_SLOW_QUERY_SECONDS", "0.25")
        resolved = ExecutionPolicy().resolve("slow_query_seconds")
        assert resolved.value == 0.25
        assert resolved.source == "env"
        assert ExecutionPolicy(slow_query_seconds=1.5).resolved("slow_query_seconds") == 1.5

    def test_trace_sample_env_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_SAMPLE", raising=False)
        assert ExecutionPolicy().resolve("trace_sample").value is None
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "0.25")
        resolved = ExecutionPolicy().resolve("trace_sample")
        assert resolved.value == 0.25
        assert resolved.source == "env"
        assert ExecutionPolicy(trace_sample=0.1).resolve("trace_sample").source == "policy"

    def test_session_trace_sample_policy_sets_global_rate(self):
        with Session(execution=ExecutionPolicy(trace_sample=0.25)) as session:
            assert obs_trace.sample_rate() == 0.25
            assert obs_trace.enabled()
            assert not obs_trace.tracing_enabled()
            name = session.add_tree("doc", generate_bibliography(2, seed=9))
            session.query(name, PAIR_QUERY, PAIR_VARS)
        # Like trace=True, the rate is process-wide and deliberately not
        # reset on close (the autouse fixture restores it for other tests).

    def test_serving_policy_obs_port_defaults_off(self):
        assert ServingPolicy().obs_port is None


# =====================================================================
# Server stats: histogram quantiles, queue-wait split, uptime
# =====================================================================
class TestServerObservability:
    def test_stats_quantiles_and_queue_wait_split(self):
        async def body():
            store = make_store(6)
            async with CorpusServer(store, max_concurrent=2) as server:
                await server.answer((PAIR_QUERY, list(PAIR_VARS)))
                stats = server.stats
                assert stats.completed == 6
                # Full quantile ladder, from the execution histogram.
                for name in ("p50_latency", "p90_latency", "p95_latency", "p99_latency"):
                    assert getattr(stats, name) is not None
                assert stats.p50_latency <= stats.p99_latency
                # Queue-wait recorded separately for every document.
                assert stats.queue_wait["count"] == 6
                assert stats.latency["count"] == 6
                assert stats.queue_wait_p50 is not None
                assert stats.uptime_seconds > 0
                assert stats.stats_at > 0
                payload = stats.to_dict()
                for key in (
                    "p90_latency",
                    "p99_latency",
                    "queue_wait_p50",
                    "queue_wait_p99",
                    "latency",
                    "queue_wait",
                    "uptime_seconds",
                    "stats_at",
                    "slow_queries",
                ):
                    assert key in payload
                json.dumps(payload)

        run(body())

    def test_histogram_quantiles_track_exact_latencies(self):
        async def body():
            store = make_store(8)
            async with CorpusServer(store) as server:
                await server.answer((PAIR_QUERY, list(PAIR_VARS)))
                histogram = server.metrics_registry.get(
                    "repro_request_execution_seconds"
                )
                assert histogram.count == 8
                # The histogram quantile is within one sqrt(2) bucket of
                # any possible exact value: bracketed by observed min/max.
                for q in (0.5, 0.95):
                    reported = histogram.quantile(q)
                    assert histogram.min <= reported * math.sqrt(2)
                    assert reported <= histogram.max * math.sqrt(2)

        run(body())

    def test_metrics_text_exposition(self):
        async def body():
            store = make_store(3)
            async with CorpusServer(store) as server:
                await server.answer((PAIR_QUERY, list(PAIR_VARS)))
                text = server.metrics_text()
            assert "# TYPE repro_request_execution_seconds histogram" in text
            assert "# TYPE repro_request_queue_wait_seconds histogram" in text
            assert 'repro_request_execution_seconds_bucket{le="+Inf"} 3' in text
            assert "repro_server_completed_total 3" in text
            assert "repro_server_submitted_total 1" in text
            assert "# TYPE repro_server_in_flight gauge" in text
            return None

        run(body())

    def test_server_slowlog_records_with_zero_threshold(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLOW_QUERY_SECONDS", "0")

        async def body():
            store = make_store(2)
            async with CorpusServer(store) as server:
                assert server.slowlog.enabled
                await server.answer((PAIR_QUERY, list(PAIR_VARS)))
                assert len(server.slowlog) == 2
                entry = server.slowlog.entries()[0]
                assert entry["queue_wait"] >= 0
                assert entry["document"] is not None
                assert server.stats.slow_queries == 2

        run(body())


# =====================================================================
# NDJSON protocol: metrics and slowlog ops
# =====================================================================
class TestProtocolOps:
    def test_metrics_op_returns_prometheus_text(self):
        async def body():
            store = make_store(2)
            server = CorpusServer(store)
            tcp = await ProtocolServer(server).serve_tcp("127.0.0.1", 0)
            port = tcp.sockets[0].getsockname()[1]
            try:
                await server.answer((PAIR_QUERY, list(PAIR_VARS)))
                lines = [
                    line
                    async for line in request_lines(
                        "127.0.0.1", port, {"op": "metrics", "id": 5}
                    )
                ]
            finally:
                tcp.close()
                await tcp.wait_closed()
                await server.aclose()
            assert len(lines) == 1
            reply = lines[0]
            assert reply["type"] == "metrics"
            assert reply["content_type"].startswith("text/plain")
            body_text = reply["body"]
            assert 'repro_request_execution_seconds_bucket{le="+Inf"} 2' in body_text
            assert "repro_server_completed_total 2" in body_text

        run(body())

    def test_slowlog_op(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLOW_QUERY_SECONDS", "0")

        async def body():
            store = make_store(3)
            server = CorpusServer(store)
            tcp = await ProtocolServer(server).serve_tcp("127.0.0.1", 0)
            port = tcp.sockets[0].getsockname()[1]
            try:
                await server.answer((PAIR_QUERY, list(PAIR_VARS)))
                lines = [
                    line
                    async for line in request_lines(
                        "127.0.0.1", port, {"op": "slowlog", "id": 6, "limit": 2}
                    )
                ]
            finally:
                tcp.close()
                await tcp.wait_closed()
                await server.aclose()
            reply = lines[0]
            assert reply["type"] == "slowlog"
            assert reply["threshold"] == 0.0
            assert len(reply["entries"]) == 2
            json.dumps(reply)

        run(body())


# =====================================================================
# Cross-process histogram merge (processes strategy)
# =====================================================================
class TestExecutorMetrics:
    def test_serial_metrics_count_matches_results(self):
        store = make_store(4)
        with CorpusExecutor(store, strategy="serial") as executor:
            results = list(executor.run((PAIR_QUERY, list(PAIR_VARS))))
            merged = executor.metrics()
        histogram = merged.get(
            "repro_eval_seconds", {"engine": "polynomial", "strategy": "serial"}
        )
        assert histogram.count == len(results) == 4
        assert histogram.sum > 0

    def test_processes_metrics_merge_across_shards(self):
        store = make_store(6)
        with CorpusExecutor(store, strategy="processes", max_workers=2) as executor:
            results = list(executor.run((PAIR_QUERY, list(PAIR_VARS))))
            merged = executor.metrics()
        # Worker-side histograms shipped back as dicts and merged in the
        # parent must account for every (document, query) evaluation; the
        # shard workers observe under the same label set, so the series
        # line up instead of appearing as duplicates.
        histogram = merged.get(
            "repro_eval_seconds", {"engine": "polynomial", "strategy": "processes"}
        )
        assert histogram.count == len(results) == 6
        assert histogram.quantile(0.95) is not None
        assert len(merged.series("repro_eval_seconds")) == 1


# =====================================================================
# Per-query resource accounting
# =====================================================================
class TestCostAccounting:
    def test_report_carries_cost_block(self):
        with Session() as session:
            name = session.add_tree("doc", generate_bibliography(3, seed=21))
            report = session.report(name, PAIR_QUERY, PAIR_VARS)
        cost = report.cost
        assert cost is not None
        assert cost["seconds"] > 0
        for key in (
            "compose_ops",
            "row_union_ops",
            "relations_built",
            "matrix_bytes",
            "matrix_cache_hits",
            "matrix_cache_misses",
        ):
            assert key in cost
        assert cost["relations_built"] > 0  # the pair query materialises relations
        json.dumps(cost)  # the block is plain JSON-serialisable data

    def test_corpus_results_carry_cost_blocks(self):
        store = make_store(3)
        with CorpusExecutor(store, strategy="serial") as executor:
            results = list(executor.run((PAIR_QUERY, list(PAIR_VARS))))
        for result in results:
            assert result.report.cost is not None
            assert result.report.cost["seconds"] > 0

    def test_executor_folds_costs_into_labelled_counters(self):
        store = make_store(3)
        with CorpusExecutor(store, strategy="serial") as executor:
            results = list(executor.run((PAIR_QUERY, list(PAIR_VARS))))
            merged = executor.metrics()
        labels = {"engine": "polynomial", "strategy": "serial"}
        counter = merged.get("repro_relations_built_total", labels)
        assert counter is not None
        expected = sum(result.report.cost["relations_built"] for result in results)
        assert counter.value == expected > 0

    def test_processes_strategy_ships_cost_counters_back(self):
        store = make_store(4)
        with CorpusExecutor(store, strategy="processes", max_workers=2) as executor:
            results = list(executor.run((PAIR_QUERY, list(PAIR_VARS))))
            merged = executor.metrics()
        counter = merged.get(
            "repro_relations_built_total",
            {"engine": "polynomial", "strategy": "processes"},
        )
        assert counter is not None
        expected = sum(result.report.cost["relations_built"] for result in results)
        assert counter.value == expected > 0

    def test_server_attributes_costs_per_client(self):
        async def body():
            store = make_store(3)
            async with CorpusServer(store) as server:
                await server.answer((PAIR_QUERY, list(PAIR_VARS)))
                stats = server.stats
            per_client = stats.cost_per_client
            assert per_client is not None
            totals = per_client["anonymous"]  # direct submissions have no peer
            assert totals["queries"] == 3
            assert totals["queue_wait"] >= 0
            assert totals["relations_built"] > 0
            assert totals["seconds"] > 0
            assert "cost_per_client" in stats.to_dict()
            json.dumps(stats.to_dict())

        run(body())


# =====================================================================
# Per-query span tree on QueryReport
# =====================================================================
class TestQueryTrace:
    def test_report_has_no_trace_by_default(self):
        with Session() as session:
            name = session.add_tree("doc", generate_bibliography(3, seed=1))
            report = session.report(name, PAIR_QUERY, PAIR_VARS)
        assert report.trace is None

    def test_session_trace_policy_enables_span_tree(self):
        try:
            with Session(execution=ExecutionPolicy(trace=True)) as session:
                name = session.add_tree("doc", generate_bibliography(4, seed=2))
                report = session.report(name, PAIR_QUERY, PAIR_VARS)
        finally:
            obs_trace.set_tracing(False)
        tree = report.trace
        assert tree is not None
        assert tree["name"] == "query.answer"
        names = [child["name"] for child in tree["children"]]
        assert "engine.answer" in names
        # Stage durations account for the root's wall time: the children
        # sum to within 10% of the root span (acceptance criterion).
        stage_sum = sum(child["seconds"] for child in tree["children"])
        assert abs(stage_sum - tree["seconds"]) <= 0.10 * tree["seconds"]
        # The tree is a plain dict: picklable across the pool boundary.
        pickle.loads(pickle.dumps(tree))

    def test_trace_attached_under_processes_strategy(self):
        # set_tracing (not the env) is the in-process switch; the shard
        # pool captures it at spawn time and re-enables it in each worker.
        obs_trace.set_tracing(True)
        store = make_store(2)
        with CorpusExecutor(store, strategy="processes", max_workers=2) as executor:
            results = list(executor.run((PAIR_QUERY, list(PAIR_VARS))))
        for result in results:
            assert result.report.trace is not None
            assert result.report.trace["name"] == "query.answer"


# =====================================================================
# Session stats and CLI
# =====================================================================
class TestSessionSurface:
    def test_session_stats_gain_uptime_and_slow_queries(self):
        with Session() as session:
            name = session.add_tree("doc", generate_bibliography(3, seed=3))
            session.query(name, PAIR_QUERY, PAIR_VARS)
            stats = session.stats()
        assert stats["uptime_seconds"] > 0
        assert stats["stats_at"] > 0
        assert stats["slow_queries"] == 0

    def test_session_metrics_merges_executor(self):
        with Session() as session:
            name = session.add_tree("doc", generate_bibliography(3, seed=4))
            list(session.query_corpus((PAIR_QUERY, list(PAIR_VARS)), documents=[name]))
            merged = session.metrics()
        histogram = merged.get(
            "repro_eval_seconds", {"engine": "polynomial", "strategy": "serial"}
        )
        assert histogram is not None
        assert histogram.count >= 1

    def test_cli_obs_trace(self, tmp_path, capsys):
        from repro.cli import main

        xml = tmp_path / "doc.xml"
        xml.write_text(tree_to_xml(generate_bibliography(3, seed=5)), encoding="utf-8")
        code = main(
            ["obs", "trace", "--xml", str(xml), "--query", PAIR_QUERY,
             "--vars", ",".join(PAIR_VARS)]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.startswith("query.answer")
        assert "engine.answer" in captured.out
        assert not obs_trace.enabled()  # the CLI restored the global flag

    def test_cli_obs_trace_ndjson(self, tmp_path, capsys):
        from repro.cli import main

        xml = tmp_path / "doc.xml"
        xml.write_text(tree_to_xml(generate_bibliography(2, seed=6)), encoding="utf-8")
        code = main(
            ["obs", "trace", "--xml", str(xml), "--query", PAIR_QUERY,
             "--vars", ",".join(PAIR_VARS), "--ndjson"]
        )
        captured = capsys.readouterr()
        assert code == 0
        events = [json.loads(line) for line in captured.out.splitlines()]
        assert events[0]["name"] == "query.answer"


# =====================================================================
# HTTP exposition
# =====================================================================
def _http_get(host: str, port: int, path: str):
    with urllib.request.urlopen(f"http://{host}:{port}{path}", timeout=5) as reply:
        return reply.status, reply.headers.get("Content-Type", ""), reply.read()


class TestObsHTTP:
    def test_endpoints_serve_metrics_health_slowlog_traces(self):
        registry = MetricsRegistry()
        registry.counter("repro_demo_total", "Demo", labels={"op": "x"}).inc(3)
        slowlog = SlowQueryLog(0.0)
        slowlog.record(0.2, query="slow one")
        endpoint = ObsHTTPServer(
            registry.render,
            slowlog=slowlog,
            health=lambda: {"documents": 7},
        )
        with endpoint:
            assert endpoint.port != 0  # port 0 resolves to a bound port
            status, content_type, body = _http_get(endpoint.host, endpoint.port, "/metrics")
            assert status == 200
            assert content_type.startswith("text/plain")
            assert 'repro_demo_total{op="x"} 3' in body.decode()

            status, content_type, body = _http_get(endpoint.host, endpoint.port, "/healthz")
            assert status == 200
            payload = json.loads(body)
            assert payload["status"] == "ok"
            assert payload["documents"] == 7

            status, _, body = _http_get(endpoint.host, endpoint.port, "/slowlog.json")
            assert status == 200
            payload = json.loads(body)
            assert payload["entries"][0]["query"] == "slow one"

            obs_trace.set_trace_sample(1.0)
            with obs_trace.span("query.answer"):
                pass
            status, content_type, body = _http_get(
                endpoint.host, endpoint.port, "/traces.ndjson"
            )
            assert status == 200
            assert content_type.startswith("application/x-ndjson")
            events = [json.loads(line) for line in body.decode().splitlines()]
            assert events[0]["name"] == "query.answer"
            # The scrape drained the ring: a second scrape is empty.
            _, _, body = _http_get(endpoint.host, endpoint.port, "/traces.ndjson")
            assert body == b""

    def test_unknown_path_is_404_and_scrape_errors_are_500(self):
        calls = {"n": 0}

        def broken_metrics():
            calls["n"] += 1
            raise RuntimeError("scrape bug")

        with ObsHTTPServer(broken_metrics) as endpoint:
            with pytest.raises(urllib.error.HTTPError) as info:
                _http_get(endpoint.host, endpoint.port, "/nope")
            assert info.value.code == 404
            with pytest.raises(urllib.error.HTTPError) as info:
                _http_get(endpoint.host, endpoint.port, "/metrics")
            assert info.value.code == 500
            # The serving thread survived the error: /healthz still answers.
            status, _, _ = _http_get(endpoint.host, endpoint.port, "/healthz")
            assert status == 200
        assert calls["n"] == 1

    def test_server_starts_endpoint_from_serving_policy(self):
        async def body():
            store = make_store(2)
            server = CorpusServer(store, policy=ServingPolicy(obs_port=0))
            try:
                assert server.obs_http is not None
                port = server.obs_http.port
                await server.answer((PAIR_QUERY, list(PAIR_VARS)))
                status, _, text = _http_get("127.0.0.1", port, "/metrics")
                assert status == 200
                assert "repro_server_completed_total 2" in text.decode()
                status, _, health = _http_get("127.0.0.1", port, "/healthz")
                assert json.loads(health)["documents"] == 2
            finally:
                await server.aclose()
            # aclose() stopped the endpoint: the port no longer answers.
            with pytest.raises(OSError):
                _http_get("127.0.0.1", port, "/healthz")

        run(body())

    def test_server_reads_obs_port_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_PORT", "0")

        async def body():
            store = make_store(1)
            async with CorpusServer(store) as server:
                assert server.obs_http is not None
                status, _, _ = _http_get("127.0.0.1", server.obs_http.port, "/healthz")
                assert status == 200

        run(body())

    def test_server_endpoint_off_by_default(self):
        async def body():
            store = make_store(1)
            async with CorpusServer(store) as server:
                assert server.obs_http is None

        run(body())


# =====================================================================
# Span-driven cost-model calibration
# =====================================================================
class TestCalibration:
    def test_density_bucket_is_log2_of_per_node_successors(self):
        assert obs_calibrate.density_bucket(128, 256) == 1
        assert obs_calibrate.density_bucket(128, 128 * 8) == 3
        assert obs_calibrate.density_bucket(0, 10) == 0

    def test_samples_from_traces_extracts_compose_spans(self):
        obs_trace.set_tracing(True)
        with obs_trace.span("query.answer"):
            with obs_trace.span(
                "kernel.compose", representation="dense", n=64, left_nnz=100, right_nnz=90
            ):
                pass
            with obs_trace.span("kernel.compose"):  # unattributed: skipped
                pass
        tree = obs_trace.take_last_trace()
        samples = obs_calibrate.samples_from_traces([tree, None])
        assert len(samples) == 1
        sample = samples[0]
        assert sample["representation"] == "dense"
        assert sample["n"] == 64
        assert sample["left_nnz"] == 100
        assert sample["right_nnz"] == 90
        assert sample["seconds"] >= 0

    def test_group_samples_median_reduces_per_cell(self):
        samples = [
            {"representation": "dense", "n": 64, "left_nnz": 128, "right_nnz": 128,
             "seconds": s}
            for s in (0.001, 0.002, 0.009)  # the 0.009 outlier must not win
        ]
        groups = obs_calibrate.group_samples(samples)
        assert len(groups) == 1
        assert groups[0]["samples"] == 3
        assert groups[0]["median_seconds"] == 0.002

    def test_fit_constants_recovers_synthetic_dense_constant(self):
        # Exact synthetic groups: median_seconds = c * n^3 ns with c = 0.05.
        groups = [
            {"representation": "dense", "n": n, "density_bucket": 2,
             "samples": 3, "median_seconds": 0.05 * n**3 * 1e-9,
             "left_nnz": 4 * n, "right_nnz": 4 * n}
            for n in (64, 128, 256)
        ]
        constants = obs_calibrate.fit_constants(groups)
        assert constants["BLAS_NS_PER_CELL"] == pytest.approx(0.05)

    def test_fit_constants_recovers_synthetic_sparse_constant(self):
        groups = []
        for n in (64, 128, 256):
            nnz = 4 * n
            touched = nnz + nnz * nnz / n
            groups.append(
                {"representation": "sparse", "n": n, "density_bucket": 2,
                 "samples": 3, "median_seconds": 400.0 * touched * 1e-9,
                 "left_nnz": nnz, "right_nnz": nnz}
            )
        constants = obs_calibrate.fit_constants(groups)
        assert constants["SPARSE_ELEMENT_NS"] == pytest.approx(400.0)

    def test_fit_constants_needs_enough_points(self):
        groups = [
            {"representation": "dense", "n": 64, "density_bucket": 2, "samples": 3,
             "median_seconds": 0.001, "left_nnz": 128, "right_nnz": 128}
        ]
        assert obs_calibrate.fit_constants(groups) == {}

    def test_calibrate_produces_profile_and_roundtrips(self, tmp_path):
        profile = obs_calibrate.calibrate(
            sizes=(64, 96, 128), per_node_densities=(2.0, 8.0), repeats=1, seed=0
        )
        assert profile["format"] == obs_calibrate.PROFILE_FORMAT
        assert profile["samples"] > 0
        assert profile["groups"]
        assert profile["constants"]  # the controlled grid always fits something
        for value in profile["constants"].values():
            assert value > 0
        path = str(tmp_path / "profile.json")
        assert obs_calibrate.save_profile(path, profile) == path
        loaded = obs_calibrate.load_profile(path)
        assert loaded["constants"] == profile["constants"]
        # Calibration restored the tracer state it flipped on.
        assert not obs_trace.tracing_enabled()

    def test_load_profile_rejects_non_profiles(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]\n", encoding="utf-8")
        with pytest.raises(ValueError):
            obs_calibrate.load_profile(str(path))

    def test_bitmatrix_applies_fitted_constants(self, tmp_path):
        from repro.pplbin import bitmatrix

        try:
            bitmatrix.set_cost_constants({"WORD_NS": 123.0, "bogus": 1.0, "CELL_NS": -4})
            constants = bitmatrix.cost_constants()
            assert constants["WORD_NS"] == 123.0
            assert "bogus" not in constants
            assert constants["CELL_NS"] == bitmatrix.CELL_NS  # negative ignored

            profile = {"format": 1, "constants": {"SPARSE_ELEMENT_NS": 250.0}}
            path = tmp_path / "profile.json"
            path.write_text(json.dumps(profile), encoding="utf-8")
            applied = bitmatrix.load_cost_profile(str(path))
            assert applied["SPARSE_ELEMENT_NS"] == 250.0
            # Unfitted constants fall back to the built-in defaults.
            assert applied["WORD_NS"] == bitmatrix.WORD_NS
        finally:
            bitmatrix.set_cost_constants(None)
        assert bitmatrix.cost_constants()["SPARSE_ELEMENT_NS"] == (
            bitmatrix.SPARSE_ELEMENT_NS
        )

    def test_cli_obs_calibrate(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "profile.json"
        code = main(
            ["obs", "calibrate", "--sizes", "64,96,128", "--densities", "2,8",
             "--repeats", "1", "--out", str(out)]
        )
        captured = capsys.readouterr()
        assert code == 0
        payload = json.loads(captured.out)
        assert payload["constants"]
        assert payload["path"] == str(out)
        saved = json.loads(out.read_text(encoding="utf-8"))
        assert saved["constants"] == payload["constants"]


# =====================================================================
# CLI: serve run --obs-port
# =====================================================================
class TestServeCLIObsPort:
    def test_serve_run_parser_accepts_obs_port(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "run", "--dir", "corpus/", "--obs-port", "0"]
        )
        assert args.obs_port == 0
        args = build_parser().parse_args(["serve", "run", "--dir", "corpus/"])
        assert args.obs_port is None
