"""Setuptools shim enabling legacy editable installs (`pip install -e .`).

All project metadata lives in pyproject.toml; this file exists only because
the execution environment has no `wheel` package, which PEP 517 editable
installs would require.
"""

from setuptools import setup

setup()
