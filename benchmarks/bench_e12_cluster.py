"""E12 — cluster serving: scale-out throughput, overload tails, chaos.

The scenario is the one :mod:`repro.cluster` exists for: the E11 serving
workload (distinct author/title pair-extraction queries under the
``polynomial`` engine) arrives at one public port, and the question is what
a shared-nothing member fleet buys over a single serving process.  Four
measured legs:

* **saturation throughput** — the workload submitted through concurrent
  clients against a 1-member cluster (single-process serving behind the
  same coordinator machinery) and against an N-member cluster over the
  same corpus and shared plan cache.  The headline is the scale-out
  speedup at saturation.  The ≥2.5× gate for 4 members only applies where
  the hardware can express it — on hosts with fewer usable cores than
  members the speedup is recorded and the gate reported as skipped.
* **overload tail** — the same workload at 2× the saturation client count
  against the N-member cluster; per-submission wall latencies must keep
  p99 < 5× p50 (admission queueing, not collapse).
* **answer fidelity** — every streamed per-document answer set from the
  cluster runs is compared against the serial single-process
  :class:`repro.corpus.CorpusExecutor` baseline; byte-identical required.
* **member-kill chaos** — a 2-member cluster with
  ``REPRO_FAULTS="member_crash,match=member-1,times=1,epoch=0"``: the
  fault hard-kills member-1 (``os._exit``) at its first coordinated
  submission, and every accepted submission must still deliver the full
  result set (coordinator local fallback + client-side retry), after
  which the supervisor's respawn (incarnation 1, fault epoch 1) serves
  normally.  Zero lost accepted queries, measured, not asserted from afar.

Run standalone to produce ``BENCH_cluster.json`` in the repository root::

    PYTHONPATH=src python benchmarks/bench_e12_cluster.py

Set ``REPRO_BENCH_SCALE=smoke`` for the reduced CI scale (fewer queries and
clients, same shapes, same fidelity and chaos gates).
"""

from __future__ import annotations

import asyncio
import hashlib
import os
import tempfile
import time

from repro.cluster import ClusterSupervisor, submit_retry
from repro.corpus import CorpusExecutor, DocumentStore
from repro.session import ServingPolicy
from repro.workloads import generate_corpus, write_corpus

from bench_e11_serving import pair_workload
from bench_utils import write_bench_json

SMOKE = os.environ.get("REPRO_BENCH_SCALE", "").lower() == "smoke"

SEED = 12
ENGINE = "polynomial"

if SMOKE:
    NUM_DOCUMENTS = 4
    BASE_BOOKS = 4
    SIZE_SKEW = 0.2
    NUM_QUERIES = 12
    SATURATION_CLIENTS = 6
    CLUSTER_MEMBERS = 4
    CHAOS_ROUNDS = 6
else:
    NUM_DOCUMENTS = 8
    BASE_BOOKS = 6
    SIZE_SKEW = 0.3
    NUM_QUERIES = 48
    SATURATION_CLIENTS = 16
    CLUSTER_MEMBERS = 4
    CHAOS_ROUNDS = 10

#: Scale-out gate: 4 members must beat single-process by this factor at
#: saturation — on hardware with at least that many usable cores.
MIN_SPEEDUP = 2.5

#: Overload gate: p99 submission latency stays under this multiple of p50.
MAX_P99_OVER_P50 = 5.0


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _digest(results: dict) -> str:
    blob = repr(sorted(results.items()))
    return hashlib.sha256(blob.encode()).hexdigest()


def quantile(values: list, q: float):
    """Nearest-rank quantile of raw samples (None if empty)."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, int(q * len(ordered) + 0.999999))
    return ordered[min(rank, len(ordered)) - 1]


def serial_baseline(corpus_dir: str, queries) -> dict:
    """Reference answers: the plain serial executor, sorted-list form."""
    store = DocumentStore.from_directory(corpus_dir)
    with CorpusExecutor(store, strategy="serial", engine=ENGINE) as executor:
        return {
            (result.doc_name, result.query): sorted(
                list(answer) for answer in result.answers
            )
            for result in executor.run(queries)
        }


# ----------------------------------------------------------------- load legs
async def _drive(port: int, queries, clients: int) -> dict:
    """Submit every query once, at most ``clients`` concurrently.

    One submission per query (the E11 throughput shape); each scatters
    across the whole corpus.  Returns wall seconds, per-submission
    latencies, the merged result map and the client-side retry count.
    """
    gate = asyncio.Semaphore(clients)
    results: dict = {}
    latencies: list = []
    retries = 0

    async def one_client(text, variables):
        nonlocal retries
        async with gate:
            started = time.perf_counter()
            reply = await submit_retry(
                "127.0.0.1",
                port,
                {
                    "query": text,
                    "vars": list(variables),
                    "engine": ENGINE,
                    "ordered": False,
                },
                attempts=8,
            )
            latencies.append(time.perf_counter() - started)
            retries += reply["retries"]
            for key, line in reply["results"].items():
                results[(key[0], key[1])] = line["answers"]

    started = time.perf_counter()
    await asyncio.gather(*(one_client(text, vs) for text, vs in queries))
    wall = time.perf_counter() - started
    return {
        "wall_seconds": wall,
        "latencies": latencies,
        "results": results,
        "retries": retries,
    }


def run_cluster_leg(
    corpus_dir: str,
    plan_cache_dir: str,
    queries,
    *,
    members: int,
    clients: int,
) -> dict:
    """One cluster at ``members`` size, driven at ``clients`` concurrency."""
    with ClusterSupervisor(
        corpus_dir,
        members=members,
        control_interval=0.25,
        serving=ServingPolicy(max_queue=4096),
        plan_cache_dir=plan_cache_dir,
        strategy="threads",
    ) as supervisor:
        # Warmup round: every member compiles/loads its plans before the
        # measured pass, so the legs compare serving, not cold compilation.
        asyncio.run(_drive(supervisor.port, queries[: max(1, len(queries) // 4)], clients))
        outcome = asyncio.run(_drive(supervisor.port, queries, clients))
        status = supervisor.status()
    latencies = outcome.pop("latencies")
    outcome.update(
        {
            "members": members,
            "clients": clients,
            "submissions": len(queries),
            "result_lines": len(outcome["results"]),
            "results_per_second": (
                len(outcome["results"]) / outcome["wall_seconds"]
                if outcome["wall_seconds"] > 0
                else None
            ),
            "latency_p50": quantile(latencies, 0.50),
            "latency_p99": quantile(latencies, 0.99),
            "placement_version": status["placement"]["version"],
            "autotune_recent": status["autotune"]["recent"],
            "members_unreachable_total": status["members_unreachable_total"],
        }
    )
    return outcome


def run_chaos_leg(corpus_dir: str, plan_cache_dir: str, queries) -> dict:
    """Kill member-1 mid-run via REPRO_FAULTS; count every accepted query.

    The fault schedule targets the first incarnation only (``epoch=0``), so
    the supervisor's respawn survives and finishes the run.
    """
    previous = os.environ.get("REPRO_FAULTS")
    os.environ["REPRO_FAULTS"] = "member_crash,match=member-1,times=1,epoch=0"
    try:
        with ClusterSupervisor(
            corpus_dir,
            members=2,
            control_interval=0.2,
            serving=ServingPolicy(max_queue=4096),
            plan_cache_dir=plan_cache_dir,
            strategy="threads",
        ) as supervisor:
            expected = None
            rounds = []
            total_retries = 0
            for round_index in range(CHAOS_ROUNDS):
                text, variables = queries[round_index % len(queries)]
                reply = asyncio.run(
                    submit_retry(
                        "127.0.0.1",
                        supervisor.port,
                        {
                            "query": text,
                            "vars": list(variables),
                            "engine": ENGINE,
                            "ordered": False,
                        },
                        attempts=8,
                    )
                )
                delivered = {key[0] for key in reply["results"]}
                if expected is None:
                    expected = delivered
                rounds.append(
                    {
                        "round": round_index,
                        "documents": len(delivered),
                        "complete": delivered == expected,
                        "retries": reply["retries"],
                    }
                )
                total_retries += reply["retries"]
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                status = supervisor.status()
                member = status["members"]["member-1"]
                if member["alive"] and member["incarnation"] >= 1:
                    break
                time.sleep(0.2)
            else:  # pragma: no cover - would fail the gate below
                status = supervisor.status()
    finally:
        if previous is None:
            os.environ.pop("REPRO_FAULTS", None)
        else:
            os.environ["REPRO_FAULTS"] = previous
    member = status["members"]["member-1"]
    return {
        "rounds": rounds,
        "zero_lost": all(entry["complete"] for entry in rounds),
        "client_retries": total_retries,
        "member1_respawned": bool(member["alive"]) and member["incarnation"] >= 1,
        "member1_incarnation": member["incarnation"],
        "member1_restarts": member["restarts"],
    }


# ----------------------------------------------------------------- scenario
def run_scenario() -> dict:
    cores = usable_cores()
    queries = pair_workload(NUM_QUERIES)
    with tempfile.TemporaryDirectory() as corpus_dir, tempfile.TemporaryDirectory() as cache_dir:
        corpus = generate_corpus(
            NUM_DOCUMENTS, base=BASE_BOOKS, skew=SIZE_SKEW, seed=SEED, decoys_per_book=1
        )
        write_corpus(corpus_dir, corpus)
        baseline = serial_baseline(corpus_dir, queries)

        single = run_cluster_leg(
            corpus_dir, cache_dir, queries, members=1, clients=SATURATION_CLIENTS
        )
        fleet = run_cluster_leg(
            corpus_dir,
            cache_dir,
            queries,
            members=CLUSTER_MEMBERS,
            clients=SATURATION_CLIENTS,
        )
        overload = run_cluster_leg(
            corpus_dir,
            cache_dir,
            queries,
            members=CLUSTER_MEMBERS,
            clients=SATURATION_CLIENTS * 2,
        )
        chaos = run_chaos_leg(corpus_dir, cache_dir, queries)

    agreement = {
        "single": single.pop("results") == baseline,
        "fleet": fleet.pop("results") == baseline,
        "overload": overload.pop("results") == baseline,
    }
    speedup = (
        single["wall_seconds"] / fleet["wall_seconds"]
        if fleet["wall_seconds"] > 0
        else None
    )
    speedup_gate_applies = not SMOKE and cores >= CLUSTER_MEMBERS
    tail_ratio = (
        overload["latency_p99"] / overload["latency_p50"]
        if overload["latency_p50"]
        else None
    )
    gates = {
        "answers_identical": all(agreement.values()),
        "overload_tail_ok": tail_ratio is not None and tail_ratio < MAX_P99_OVER_P50,
        "chaos_zero_lost": chaos["zero_lost"] and chaos["member1_respawned"],
        "speedup_ok": (
            speedup is not None and speedup >= MIN_SPEEDUP
            if speedup_gate_applies
            else None  # recorded, not gated: smoke scale or too few cores
        ),
    }
    return {
        "experiment": "e12_cluster",
        "scale": "smoke" if SMOKE else "full",
        "scenario": {
            "num_documents": NUM_DOCUMENTS,
            "base_books": BASE_BOOKS,
            "size_skew": SIZE_SKEW,
            "num_queries": NUM_QUERIES,
            "engine": ENGINE,
            "saturation_clients": SATURATION_CLIENTS,
            "cluster_members": CLUSTER_MEMBERS,
            "usable_cores": cores,
            "chaos_rounds": CHAOS_ROUNDS,
        },
        "single": single,
        "fleet": fleet,
        "overload": overload,
        "scaleout_speedup": speedup,
        "speedup_gate_applies": speedup_gate_applies,
        "overload_p99_over_p50": tail_ratio,
        "agreement": agreement,
        "results_digest": _digest(baseline),
        "chaos": chaos,
        "gates": gates,
    }


def main() -> int:
    payload = run_scenario()
    path = write_bench_json("cluster", payload)
    print(f"wrote {path}")
    print(
        "saturation: single=%.2fs fleet(%d members)=%.2fs speedup=%.2fx "
        "(gate %s on %d cores)"
        % (
            payload["single"]["wall_seconds"],
            payload["scenario"]["cluster_members"],
            payload["fleet"]["wall_seconds"],
            payload["scaleout_speedup"],
            "applies" if payload["speedup_gate_applies"] else "skipped",
            payload["scenario"]["usable_cores"],
        )
    )
    print(
        "overload (%d clients): p50=%.1fms p99=%.1fms ratio=%.2f (< %.1f required)"
        % (
            payload["overload"]["clients"],
            payload["overload"]["latency_p50"] * 1e3,
            payload["overload"]["latency_p99"] * 1e3,
            payload["overload_p99_over_p50"],
            MAX_P99_OVER_P50,
        )
    )
    print(
        "fidelity: answers identical to serial single-process baseline: %s"
        % payload["gates"]["answers_identical"]
    )
    chaos = payload["chaos"]
    print(
        "chaos: %d rounds through a member kill, zero lost=%s, "
        "client retries=%d, member-1 respawned as incarnation %d"
        % (
            len(chaos["rounds"]),
            chaos["zero_lost"],
            chaos["client_retries"],
            chaos["member1_incarnation"],
        )
    )
    ok = all(value is not False for value in payload["gates"].values())
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
