"""E1 — Theorem 2: PPLbin matrix evaluation scales ~|t|^3 and ~|P| (linearly).

Two series are produced, each measured with the dense, bitset and adaptive
relation kernels (the first points of the per-kernel perf trajectory):

* ``test_tree_size_scaling``: a fixed composition-heavy PPLbin query on
  random trees of growing size.  Theorem 2 predicts cubic growth in |t|
  (each composition is one Boolean matrix product; the packed kernel divides
  the constant by the word width).
* ``test_query_size_scaling``: growing chains of compositions on a fixed
  tree.  Theorem 2 predicts linear growth in |P|.

Set ``REPRO_BENCH_SCALE=smoke`` to shrink the grid for CI.
"""

from __future__ import annotations

import os

import pytest

from repro.trees.generators import random_tree
from repro.pplbin.evaluator import evaluate_relation
from repro.pplbin.parser import parse_pplbin

from bench_utils import run_once

SMOKE = os.environ.get("REPRO_BENCH_SCALE", "").lower() == "smoke"

#: A query exercising composition, union, complement and filters.
QUERY = (
    "descendant::a[child::b]/following-sibling::*"
    " union except (child::c/descendant::b)"
)

KERNELS = ["dense", "bitset", "adaptive"]
TREE_SIZES = [30, 60] if SMOKE else [50, 100, 200, 400]
QUERY_LENGTHS = [2, 4] if SMOKE else [2, 4, 8, 16]


@pytest.mark.parametrize("size", TREE_SIZES)
@pytest.mark.parametrize("kernel", KERNELS)
def test_tree_size_scaling(benchmark, kernel, size):
    tree = random_tree(size, seed=size)
    expression = parse_pplbin(QUERY)

    def evaluate():
        return evaluate_relation(tree, expression, kernel=kernel, use_cache=False)

    evaluate()  # warm the per-tree axis relations
    relation = run_once(benchmark, evaluate)
    benchmark.extra_info["tree_size"] = size
    benchmark.extra_info["query_size"] = expression.size
    benchmark.extra_info["kernel"] = kernel
    benchmark.extra_info["result_pairs"] = relation.nnz()


@pytest.mark.parametrize("length", QUERY_LENGTHS)
@pytest.mark.parametrize("kernel", KERNELS)
def test_query_size_scaling(benchmark, kernel, length):
    tree = random_tree(60 if SMOKE else 200, seed=7)
    text = "/".join(["(child::* union descendant::a)"] * length)
    expression = parse_pplbin(text)

    def evaluate():
        return evaluate_relation(tree, expression, kernel=kernel, use_cache=False)

    evaluate()  # warm the per-tree axis relations
    relation = run_once(benchmark, evaluate)
    benchmark.extra_info["tree_size"] = tree.size
    benchmark.extra_info["query_size"] = expression.size
    benchmark.extra_info["kernel"] = kernel
    benchmark.extra_info["result_pairs"] = relation.nnz()
