"""E1 — Theorem 2: PPLbin matrix evaluation scales ~|t|^3 and ~|P| (linearly).

Two series are produced:

* ``test_tree_size_scaling``: a fixed composition-heavy PPLbin query on
  random trees of growing size.  Theorem 2 predicts cubic growth in |t|
  (each composition is one Boolean matrix product).
* ``test_query_size_scaling``: growing chains of compositions on a fixed
  tree.  Theorem 2 predicts linear growth in |P|.
"""

from __future__ import annotations

import pytest

from repro.trees.generators import random_tree
from repro.pplbin.evaluator import evaluate_matrix
from repro.pplbin.parser import parse_pplbin

from bench_utils import run_once

#: A query exercising composition, union, complement and filters.
QUERY = (
    "descendant::a[child::b]/following-sibling::*"
    " union except (child::c/descendant::b)"
)

TREE_SIZES = [50, 100, 200, 400]
QUERY_LENGTHS = [2, 4, 8, 16]


@pytest.mark.parametrize("size", TREE_SIZES)
def test_tree_size_scaling(benchmark, size):
    tree = random_tree(size, seed=size)
    expression = parse_pplbin(QUERY)

    def evaluate():
        return evaluate_matrix(tree, expression, use_cache=False)

    matrix = run_once(benchmark, evaluate)
    benchmark.extra_info["tree_size"] = size
    benchmark.extra_info["query_size"] = expression.size
    benchmark.extra_info["result_pairs"] = int(matrix.sum())


@pytest.mark.parametrize("length", QUERY_LENGTHS)
def test_query_size_scaling(benchmark, length):
    tree = random_tree(200, seed=7)
    text = "/".join(["(child::* union descendant::a)"] * length)
    expression = parse_pplbin(text)

    def evaluate():
        return evaluate_matrix(tree, expression, use_cache=False)

    matrix = run_once(benchmark, evaluate)
    benchmark.extra_info["tree_size"] = tree.size
    benchmark.extra_info["query_size"] = expression.size
    benchmark.extra_info["result_pairs"] = int(matrix.sum())
