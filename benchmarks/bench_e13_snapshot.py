"""E13 — snapshot store: warm starts vs cold parses on the E10 corpus.

The scenario isolates what the :mod:`repro.snapshot` subsystem is for:
*startup latency*.  A cold corpus start pays XML parsing, tree numbering
and the first evaluation for every document; a warm start over a populated
snapshot directory memmaps the columnar snapshots (O(1), no parsing), seeds
the packed-bitset axis relations straight off the mapping, and serves the
first answer set from the on-disk spill.

Three passes over the same generated corpus (the E10 64-document corpus at
full scale):

* ``cold`` — fresh session, empty snapshot directory: parses everything,
  writes snapshots and answer spills as it goes (the populate pass);
* ``warm`` — fresh session over the now-populated directory: zero parses,
  every document memmapped, every first answer served from the spill;
* ``over_budget`` — a warm session whose snapshot byte budget is far too
  small for the corpus *and* whose resident-document budget forces constant
  eviction: correctness must hold (answers byte-identical to the all-in-
  memory baseline) even while the LRU GC is deleting behind the reader.

The headline numbers are the cold/warm startup-to-first-answer and
whole-run wall-clocks (the acceptance bar is warm first-answer >= 5x faster
than cold), plus the byte-identical agreement across every pass and engine.

Run standalone to produce ``BENCH_snapshot.json`` in the repository root::

    PYTHONPATH=src python benchmarks/bench_e13_snapshot.py

Set ``REPRO_BENCH_SCALE=smoke`` for the reduced CI scale.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import statistics
import tempfile
import time

from repro.session import Session
from repro.workloads import generate_corpus, write_corpus

from bench_utils import write_bench_json

#: Same introductory-shape selective queries as E10.
QUERIES = [
    (
        "descendant::book[ child::author[. is $y] and child::price[. is $z]"
        " and child::publisher and child::year ]",
        ("y", "z"),
    ),
    (
        "descendant::book[ child::title[. is $t] and child::year[. is $w]"
        " and child::price ]",
        ("t", "w"),
    ),
]
ENGINES = ("polynomial", "yannakakis")

SMOKE = os.environ.get("REPRO_BENCH_SCALE", "").lower() == "smoke"

#: Full scale = the E10 corpus; smoke keeps the shape at CI-friendly size.
NUM_DOCUMENTS = 8 if SMOKE else 64
BASE_BOOKS = 40 if SMOKE else 200
SIZE_SKEW = 0.15
SEED = 42
#: Over-budget scenario: snapshots capped far below the corpus footprint,
#: resident documents capped far below the corpus size.
OVER_BUDGET_SNAPSHOT_BYTES = 64 * 1024
OVER_BUDGET_MAX_RESIDENT = 2
#: First-answer latency is a few milliseconds warm, so a single sample is
#: at the mercy of scheduler noise; report the median of this many passes.
FIRST_ANSWER_SAMPLES = 3


def _digest(answers: dict) -> str:
    """Stable digest of a ``{(doc, query, engine): frozenset}`` answer map."""
    blob = repr(sorted((key, sorted(value)) for key, value in answers.items()))
    return hashlib.sha256(blob.encode()).hexdigest()


def run_pass(
    directory: str,
    label: str,
    *,
    engines: tuple[str, ...] = ENGINES,
    **session_kwargs,
) -> dict:
    """One full corpus run in a fresh session; timing from construction.

    ``first_answer_seconds`` is startup-to-first-answer: session build +
    directory registration + materialising the first document + its first
    evaluation — the latency a serving process pays before it is useful.
    """
    started = time.perf_counter()
    answers: dict = {}
    first_answer = None
    with Session(**session_kwargs) as session:
        session.add_directory(directory)
        for engine in engines:
            for result in session.query_corpus(QUERIES, engine=engine):
                if first_answer is None:
                    first_answer = time.perf_counter() - started
                answers[(result.doc_name, result.query, engine)] = result.answers
        stats = session.stats()
    wall = time.perf_counter() - started
    return {
        "label": label,
        "first_answer_seconds": first_answer,
        "wall_seconds": wall,
        "store": stats["store"],
        "snapshot": stats["snapshot"],
        "answers": answers,
    }


def run_scenario(
    *,
    num_documents: int = NUM_DOCUMENTS,
    base_books: int = BASE_BOOKS,
    skew: float = SIZE_SKEW,
    engines: tuple[str, ...] = ENGINES,
) -> dict:
    with tempfile.TemporaryDirectory() as workdir:
        corpus_dir = os.path.join(workdir, "corpus")
        snapshot_dir = os.path.join(workdir, "snapshots")
        corpus = generate_corpus(
            num_documents, base=base_books, skew=skew, seed=SEED, decoys_per_book=3
        )
        write_corpus(corpus_dir, corpus)
        total_nodes = sum(tree.size for tree in corpus.values())

        baseline = run_pass(corpus_dir, "baseline", engines=engines)

        # First-answer latency is milliseconds warm, so single samples are
        # noisy; repeat each pass and report the median.  Every cold sample
        # starts from an empty snapshot directory (the last one populates
        # the directory the warm passes then reuse).
        cold_samples: list[float] = []
        cold: dict = {}
        for index in range(FIRST_ANSWER_SAMPLES):
            last = index == FIRST_ANSWER_SAMPLES - 1
            target = (
                snapshot_dir
                if last
                else os.path.join(workdir, f"snapshots-cold-{index}")
            )
            cold = run_pass(
                corpus_dir, "cold", engines=engines, snapshot_dir=target
            )
            cold_samples.append(cold["first_answer_seconds"])
            if not last:
                shutil.rmtree(target)
        cold["first_answer_samples"] = cold_samples
        cold["first_answer_seconds"] = statistics.median(cold_samples)

        warm_samples: list[float] = []
        warm: dict = {}
        for _ in range(FIRST_ANSWER_SAMPLES):
            warm = run_pass(
                corpus_dir, "warm", engines=engines, snapshot_dir=snapshot_dir
            )
            warm_samples.append(warm["first_answer_seconds"])
        warm["first_answer_samples"] = warm_samples
        warm["first_answer_seconds"] = statistics.median(warm_samples)
        over_budget = run_pass(
            corpus_dir,
            "over_budget",
            engines=engines,
            snapshot_dir=snapshot_dir,
            snapshot_bytes=OVER_BUDGET_SNAPSHOT_BYTES,
            max_resident=OVER_BUDGET_MAX_RESIDENT,
        )

    passes = [baseline, cold, warm, over_budget]
    reference = baseline["answers"]
    agreement = all(one["answers"] == reference for one in passes[1:])
    for one in passes:
        one["results_digest"] = _digest(one.pop("answers"))
    speedup_first = (
        cold["first_answer_seconds"] / warm["first_answer_seconds"]
        if warm["first_answer_seconds"]
        else None
    )
    speedup_wall = (
        cold["wall_seconds"] / warm["wall_seconds"] if warm["wall_seconds"] else None
    )
    return {
        "experiment": "e13_snapshot",
        "scenario": {
            "num_documents": num_documents,
            "base_books": base_books,
            "size_skew": skew,
            "total_nodes": total_nodes,
            "queries": [text for text, _ in QUERIES],
            "engines": list(engines),
            "smoke": SMOKE,
            "over_budget_snapshot_bytes": OVER_BUDGET_SNAPSHOT_BYTES,
            "over_budget_max_resident": OVER_BUDGET_MAX_RESIDENT,
        },
        "passes": passes,
        "agreement": agreement,
        "warm_first_answer_speedup": speedup_first,
        "warm_wall_speedup": speedup_wall,
        "warm_parse_count": warm["store"]["parse_count"],
    }


def main() -> int:
    payload = run_scenario()
    path = write_bench_json("snapshot", payload)
    print(f"wrote {path}")
    for one in payload["passes"]:
        print(
            f"{one['label']}: first_answer={one['first_answer_seconds']:.4f}s "
            f"wall={one['wall_seconds']:.2f}s "
            f"parses={one['store']['parse_count']} "
            f"snapshot_hits={one['store']['snapshot_hits']}"
        )
    print(
        f"agreement: {payload['agreement']}  "
        f"first-answer speedup: {payload['warm_first_answer_speedup']:.1f}x  "
        f"wall speedup: {payload['warm_wall_speedup']:.2f}x"
    )
    ok = (
        payload["agreement"]
        and payload["warm_parse_count"] == 0
        and payload["warm_first_answer_speedup"] is not None
        and payload["warm_first_answer_speedup"] >= 5.0
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
