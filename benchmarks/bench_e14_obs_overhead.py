"""E14 — observability overhead: the tracer must be free when it is off.

The :mod:`repro.obs` span tracer instruments the hot path of every query
(parse, translate, axis-relation build, kernel compose, cache lookups).
Each site costs one module-global check plus a shared null context manager
when tracing is disabled, and the acceptance bar for the subsystem is that
this cost is invisible: with ``REPRO_TRACE`` unset, the E2 bibliography
pair-query workload must run within 3% of a build with the instrumentation
patched out entirely.

Three passes over the same workload (fresh :class:`repro.api.Document` per
iteration — the "combined complexity" view of E2, so translation and every
matrix evaluation sit inside the measured region):

* ``patched_out`` — ``repro.obs.trace.span`` replaced by a raw
  null-returning function: the closest stand-in for un-instrumented code;
* ``disabled`` — stock build, tracing off (the shipping default);
* ``sampled`` — ``set_trace_sample(0.01)``: always-on sampled tracing at
  the recommended production rate.  Sampling records every span (the head
  decision only gates ring publication), so this pass pays the full
  span-allocation cost; it must stay within 5% of the disabled pass;
* ``enabled`` — ``set_tracing(True)``: not gated on overhead, but the
  captured span tree's top-level stage durations must sum to within 10%
  of the root span's wall time (no unattributed gaps, no double counting).

Run standalone to produce ``BENCH_obs.json`` in the repository root::

    PYTHONPATH=src python benchmarks/bench_e14_obs_overhead.py

Set ``REPRO_BENCH_SCALE=smoke`` for the reduced CI scale.  The smoke scale
keeps the shape but relaxes nothing: the 3% gate applies at both scales,
with the repeat count raised so the medians are stable.
"""

from __future__ import annotations

import os
import statistics
import time

from repro._deprecation import suppress_deprecations
from repro.api import Document
from repro.obs import trace as obs_trace
from repro.workloads.bibliography import bibliography_pair_query, generate_bibliography

from bench_utils import write_bench_json

SMOKE = os.environ.get("REPRO_BENCH_SCALE", "").lower() == "smoke"

#: E2 shape.  Smoke shrinks the document but raises the rounds: the gate is
#: a ratio of best-of-series times, and many fast rounds give the minimum
#: more chances to land on an undisturbed slice of a shared CI machine.
BOOKS = 24 if SMOKE else 80
ROUNDS = 15 if SMOKE else 11
WARMUP_ROUNDS = 2
OVERHEAD_GATE = 0.03
SAMPLED_RATE = 0.01
SAMPLED_GATE = 0.05
STAGE_SUM_TOLERANCE = 0.10


def _workload():
    tree = generate_bibliography(
        BOOKS, authors_per_book=2, titles_per_book=1, decoys_per_book=2, seed=BOOKS
    )
    query, variables = bibliography_pair_query()
    return tree, query, variables


def _fresh_document(tree) -> Document:
    # Direct construction keeps the measured region tight (no session-layer
    # bookkeeping in the loop); the deprecation aimed at end users is noise
    # in a benchmark's stderr.
    with suppress_deprecations():
        return Document(tree)


def _measure(tree, query, variables, rounds: int) -> tuple[list[float], int]:
    """Median-friendly samples of the fresh-document answer path."""
    answer_size = None
    samples = []
    for _ in range(WARMUP_ROUNDS):
        _fresh_document(tree).answer(query, variables)
    for _ in range(rounds):
        started = time.perf_counter()
        answers = _fresh_document(tree).answer(query, variables)
        samples.append(time.perf_counter() - started)
        answer_size = len(answers)
    return samples, answer_size


def _stats(samples: list[float]) -> dict:
    return {
        "median": statistics.median(samples),
        "min": min(samples),
        "mean": statistics.mean(samples),
        "rounds": len(samples),
    }


def _null_span(name, **attrs):  # matches obs_trace.span's signature
    return obs_trace._NULL_SPAN


def run_scenario() -> dict:
    tree, query, variables = _workload()

    # Interleave the patched-out, disabled and sampled passes so slow drift
    # on the host (thermal, noisy neighbours) hits every series equally.
    patched_samples: list[float] = []
    disabled_samples: list[float] = []
    sampled_samples: list[float] = []
    previous = obs_trace.set_tracing(False)
    previous_sample = obs_trace.set_trace_sample(0.0)
    try:
        answer_size = None
        for _ in range(3):
            original = obs_trace.span
            obs_trace.span = _null_span
            try:
                samples, answer_size = _measure(tree, query, variables, ROUNDS)
                patched_samples.extend(samples)
            finally:
                obs_trace.span = original
            samples, disabled_answers = _measure(tree, query, variables, ROUNDS)
            disabled_samples.extend(samples)
            assert disabled_answers == answer_size
            obs_trace.set_trace_sample(SAMPLED_RATE)
            try:
                samples, sampled_answers = _measure(tree, query, variables, ROUNDS)
                sampled_samples.extend(samples)
            finally:
                obs_trace.set_trace_sample(0.0)
                obs_trace.take_last_trace()
                obs_trace.drain_finished()
            assert sampled_answers == answer_size

        # Enabled pass: overhead is reported but not gated; the gate here is
        # the span tree's internal consistency.
        obs_trace.set_tracing(True)
        enabled_samples, enabled_answers = _measure(tree, query, variables, ROUNDS)
        assert enabled_answers == answer_size
        report = _fresh_document(tree).report(query, variables)
        trace_tree = report.trace
    finally:
        obs_trace.set_tracing(previous)
        obs_trace.set_trace_sample(previous_sample)

    patched = _stats(patched_samples)
    disabled = _stats(disabled_samples)
    sampled = _stats(sampled_samples)
    enabled = _stats(enabled_samples)
    # Gate on the minimum, not the median: the instrumentation cost is a
    # constant additive term, while everything that separates one round from
    # another (GC, scheduler preemption, cache pollution) only ever adds
    # time.  The fastest round of each series is therefore the cleanest
    # view of the code's inherent cost; medians at millisecond scale still
    # carry several percent of ambient noise.
    disabled_overhead = disabled["min"] / patched["min"] - 1.0
    sampled_overhead = sampled["min"] / disabled["min"] - 1.0
    enabled_overhead = enabled["min"] / patched["min"] - 1.0

    assert trace_tree is not None, "tracing was on: the report must carry a trace"
    wall = trace_tree["seconds"]
    stage_sum = sum(child["seconds"] for child in trace_tree["children"])
    stage_gap = abs(stage_sum - wall) / wall if wall else 0.0

    return {
        "config": {
            "books": BOOKS,
            "rounds_per_series": ROUNDS,
            "series": 3,
            "smoke": SMOKE,
            "answer_size": answer_size,
            "overhead_gate": OVERHEAD_GATE,
            "sampled_rate": SAMPLED_RATE,
            "sampled_gate": SAMPLED_GATE,
            "stage_sum_tolerance": STAGE_SUM_TOLERANCE,
        },
        "passes": {
            "patched_out": patched,
            "disabled": disabled,
            "sampled": sampled,
            "enabled": enabled,
        },
        "disabled_overhead": disabled_overhead,
        "sampled_overhead": sampled_overhead,
        "enabled_overhead": enabled_overhead,
        "trace": {
            "wall_seconds": wall,
            "stage_sum_seconds": stage_sum,
            "stage_gap": stage_gap,
            "stages": [
                {"name": child["name"], "seconds": child["seconds"]}
                for child in trace_tree["children"]
            ],
        },
        "ok": (
            disabled_overhead < OVERHEAD_GATE
            and sampled_overhead < SAMPLED_GATE
            and stage_gap <= STAGE_SUM_TOLERANCE
        ),
    }


def main() -> int:
    payload = run_scenario()
    path = write_bench_json("obs", payload)
    print(f"wrote {path}")
    for label, stats in payload["passes"].items():
        print(f"{label}: median={stats['median'] * 1e3:.3f}ms min={stats['min'] * 1e3:.3f}ms")
    print(
        f"disabled overhead: {payload['disabled_overhead'] * 100:+.2f}% "
        f"(gate < {OVERHEAD_GATE * 100:.0f}%)  "
        f"sampled@{SAMPLED_RATE} overhead vs disabled: "
        f"{payload['sampled_overhead'] * 100:+.2f}% (gate < {SAMPLED_GATE * 100:.0f}%)  "
        f"enabled overhead: {payload['enabled_overhead'] * 100:+.2f}%"
    )
    print(
        f"trace: wall={payload['trace']['wall_seconds'] * 1e3:.3f}ms "
        f"stage_sum={payload['trace']['stage_sum_seconds'] * 1e3:.3f}ms "
        f"gap={payload['trace']['stage_gap'] * 100:.1f}% "
        f"(tolerance {STAGE_SUM_TOLERANCE * 100:.0f}%)"
    )
    return 0 if payload["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
