"""E9 — ablation: the Boolean matrix product dominates PPLbin evaluation.

Section 4 notes that the cubic bound of Theorem 2 comes from Boolean matrix
multiplication (and could in theory be lowered to O(n^2.376)).  This ablation
compares, on the same composition-heavy query, three product implementations:

* the vectorised numpy Boolean product used by default,
* a sparse per-row successor-set product (fast while the relations stay
  sparse, i.e. before any ``except`` densifies them),
* the naive Python triple loop counted by the paper's complexity analysis.

Two query families are used: a sparse one (axis compositions only) where the
sparse product is competitive, and a dense one (complement under composition)
where only the vectorised product remains practical — which is why it is the
default.  The naive loop is capped at small trees.
"""

from __future__ import annotations

import pytest

from repro.trees.generators import random_tree
from repro.pplbin import matrix as bm
from repro.pplbin.evaluator import evaluate_matrix
from repro.pplbin.parser import parse_pplbin

from bench_utils import run_once, run_single

SPARSE_QUERY = "child::*/descendant::a/child::*/ancestor::b"
DENSE_QUERY = "(except child::a)/(except descendant::b)"

PRODUCTS = {
    "numpy": bm.bool_matmul,
    "sparse-sets": bm.bool_matmul_sparse,
}

NUMPY_SIZES = [50, 100, 200, 400]
SPARSE_SIZES = [50, 100, 200]
TRIPLE_LOOP_SIZES = [30, 60]


@pytest.mark.parametrize("size", NUMPY_SIZES)
@pytest.mark.parametrize("query_kind", ["sparse", "dense"])
def test_numpy_product(benchmark, size, query_kind):
    tree = random_tree(size, seed=size)
    expression = parse_pplbin(SPARSE_QUERY if query_kind == "sparse" else DENSE_QUERY)

    def evaluate():
        return evaluate_matrix(tree, expression, matmul=bm.bool_matmul, use_cache=False)

    matrix = run_once(benchmark, evaluate)
    benchmark.extra_info["tree_size"] = size
    benchmark.extra_info["product"] = "numpy"
    benchmark.extra_info["query_kind"] = query_kind
    benchmark.extra_info["result_pairs"] = int(matrix.sum())


@pytest.mark.parametrize("size", SPARSE_SIZES)
@pytest.mark.parametrize("query_kind", ["sparse", "dense"])
def test_sparse_set_product(benchmark, size, query_kind):
    tree = random_tree(size, seed=size)
    expression = parse_pplbin(SPARSE_QUERY if query_kind == "sparse" else DENSE_QUERY)

    def evaluate():
        return evaluate_matrix(
            tree, expression, matmul=bm.bool_matmul_sparse, use_cache=False
        )

    matrix = run_single(benchmark, evaluate)
    benchmark.extra_info["tree_size"] = size
    benchmark.extra_info["product"] = "sparse-sets"
    benchmark.extra_info["query_kind"] = query_kind
    benchmark.extra_info["result_pairs"] = int(matrix.sum())


@pytest.mark.parametrize("size", TRIPLE_LOOP_SIZES)
def test_triple_loop_product(benchmark, size):
    tree = random_tree(size, seed=size)
    expression = parse_pplbin(SPARSE_QUERY)

    def evaluate():
        return evaluate_matrix(
            tree, expression, matmul=bm.bool_matmul_python, use_cache=False
        )

    matrix = run_single(benchmark, evaluate)
    benchmark.extra_info["tree_size"] = size
    benchmark.extra_info["product"] = "naive-triple-loop"
    benchmark.extra_info["result_pairs"] = int(matrix.sum())
