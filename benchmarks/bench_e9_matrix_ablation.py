"""E9 — ablation: the Boolean matrix product dominates PPLbin evaluation.

Section 4 notes that the cubic bound of Theorem 2 comes from Boolean matrix
multiplication (and could in theory be lowered to O(n^2.376)).  This ablation
compares, on the same queries, the relation kernels of
:mod:`repro.pplbin.bitmatrix`:

* ``dense`` — dense bool matrices, float32 BLAS product,
* ``bitset`` — rows packed into uint64 words, n^3/64 bit operations,
* ``sparse`` — per-row successor sets, cost follows the 1-entries touched,
* ``adaptive`` — per-sub-expression choice by the density cost model,

against the two legacy baselines kept for the trajectory:

* ``uint8-dense`` — the seed's uint8-cast numpy product (the "current dense
  product" the packed kernel is measured against),
* ``naive-triple-loop`` — the textbook O(n^3) Python loop the paper's
  complexity analysis counts (capped at small trees).

Two query families: a sparse one (axis compositions only) and a dense one
(complement under composition, which densifies every operand).  Every
measurement *asserts* that the evaluated relation matches the dense kernel's
answer, so a kernel disagreement fails the bench (and CI's smoke run).

Set ``REPRO_BENCH_SCALE=smoke`` to shrink the grid for CI.
"""

from __future__ import annotations

import os
import time
from functools import lru_cache

import pytest

from repro.obs import calibrate as obs_calibrate
from repro.trees.generators import random_tree
from repro.pplbin import bitmatrix
from repro.pplbin import matrix as bm
from repro.pplbin.bitmatrix import KERNEL_NAMES
from repro.pplbin.evaluator import MatmulKernel, evaluate_relation
from repro.pplbin.parser import parse_pplbin

from bench_utils import run_once, run_single

SMOKE = os.environ.get("REPRO_BENCH_SCALE", "").lower() == "smoke"

SPARSE_QUERY = "child::*/descendant::a/child::*/ancestor::b"
DENSE_QUERY = "(except child::a)/(except descendant::b)"
QUERIES = {"sparse": SPARSE_QUERY, "dense": DENSE_QUERY}

KERNEL_SIZES = [30, 60] if SMOKE else [64, 128, 256, 512]
UINT8_SIZES = [30, 60] if SMOKE else [64, 128, 256, 512]
TRIPLE_LOOP_SIZES = [20] if SMOKE else [30, 60]


@lru_cache(maxsize=None)
def _tree(size: int):
    return random_tree(size, seed=size)


@lru_cache(maxsize=None)
def _reference_pairs(size: int, query_kind: str):
    """The answer set every kernel must reproduce (dense kernel, uncached)."""
    expression = parse_pplbin(QUERIES[query_kind])
    return evaluate_relation(
        _tree(size), expression, kernel="dense", use_cache=False
    ).pairs()


def _record(benchmark, relation, size, query_kind, kernel):
    benchmark.extra_info["tree_size"] = size
    benchmark.extra_info["query_kind"] = query_kind
    benchmark.extra_info["kernel"] = kernel
    benchmark.extra_info["result_pairs"] = relation.nnz()
    benchmark.extra_info["density"] = relation.density()
    benchmark.extra_info["representation"] = relation.representation
    assert relation.pairs() == _reference_pairs(size, query_kind), (
        f"kernel {kernel} disagrees with the dense reference on "
        f"size={size} query={query_kind}"
    )


@pytest.mark.parametrize("size", KERNEL_SIZES)
@pytest.mark.parametrize("query_kind", ["sparse", "dense"])
@pytest.mark.parametrize("kernel", KERNEL_NAMES)
def test_kernel_products(benchmark, kernel, size, query_kind):
    tree = _tree(size)
    expression = parse_pplbin(QUERIES[query_kind])

    def evaluate():
        return evaluate_relation(tree, expression, kernel=kernel, use_cache=False)

    if SMOKE:
        rounds = 1
    elif kernel == "sparse" and query_kind == "dense":
        rounds = 2  # documented pathological regime; no need to average it
    else:
        rounds = 15 if size <= 128 else 7  # sub-ms configs need more rounds
    evaluate()  # warm the per-tree axis relations; the products stay measured
    relation = run_once(benchmark, evaluate, rounds=rounds)
    _record(benchmark, relation, size, query_kind, kernel)


@pytest.mark.parametrize("size", UINT8_SIZES)
@pytest.mark.parametrize("query_kind", ["sparse", "dense"])
def test_uint8_dense_baseline(benchmark, size, query_kind):
    """The seed's uint8-cast dense product — the bar the bitset kernel beats."""
    tree = _tree(size)
    expression = parse_pplbin(QUERIES[query_kind])
    kernel = MatmulKernel(bm.bool_matmul)

    def evaluate():
        return evaluate_relation(tree, expression, kernel=kernel, use_cache=False)

    evaluate()  # warm the per-tree axis relations; the products stay measured
    relation = run_once(benchmark, evaluate)
    _record(benchmark, relation, size, query_kind, "uint8-dense")


@pytest.mark.parametrize("size", TRIPLE_LOOP_SIZES)
def test_triple_loop_product(benchmark, size):
    tree = _tree(size)
    expression = parse_pplbin(SPARSE_QUERY)
    kernel = MatmulKernel(bm.bool_matmul_python)

    def evaluate():
        return evaluate_relation(tree, expression, kernel=kernel, use_cache=False)

    relation = run_single(benchmark, evaluate)
    _record(benchmark, relation, size, "sparse", "naive-triple-loop")


#: Calibrated-adaptive acceptance: the whole-grid adaptive time may exceed
#: the best single fixed kernel by at most this factor.
CALIBRATED_ADAPTIVE_MARGIN = 1.15
CALIBRATION_SIZES = (48, 64, 96) if SMOKE else (96, 192, 320)
CALIBRATION_DENSITIES = (2.0, 8.0) if SMOKE else (2.0, 8.0, 32.0, 128.0)
FIXED_KERNELS = ("dense", "bitset", "sparse")


def test_calibrated_adaptive_tracks_best_fixed_kernel(benchmark):
    """Acceptance: with a freshly fitted profile, adaptive stays competitive.

    Fits cost-model constants from a controlled compose workload on *this*
    machine (``repro.obs.calibrate``), applies them, then times the full
    (size, query) grid under every fixed kernel and under ``adaptive``.
    The adaptive kernel's whole-grid time must stay within 15% of the best
    fixed kernel's — the cost model, recalibrated from observed spans, must
    still be steering representation choice correctly.
    """
    profile = obs_calibrate.calibrate(
        sizes=CALIBRATION_SIZES,
        per_node_densities=CALIBRATION_DENSITIES,
        repeats=1 if SMOKE else 3,
        seed=9,
    )
    assert profile["constants"], "the controlled grid must fit at least one constant"

    cells = [(size, kind) for size in KERNEL_SIZES for kind in ("sparse", "dense")]
    rounds = 2 if SMOKE else 5

    def grid_seconds(kernel: str) -> float:
        total = 0.0
        for size, kind in cells:
            tree = _tree(size)
            expression = parse_pplbin(QUERIES[kind])
            evaluate_relation(tree, expression, kernel=kernel, use_cache=False)  # warm
            best = None
            for _ in range(rounds):
                started = time.perf_counter()
                relation = evaluate_relation(
                    tree, expression, kernel=kernel, use_cache=False
                )
                elapsed = time.perf_counter() - started
                best = elapsed if best is None else min(best, elapsed)
            assert relation.pairs() == _reference_pairs(size, kind)
            total += best
        return total

    bitmatrix.set_cost_constants(profile["constants"])
    try:
        fixed = {kernel: grid_seconds(kernel) for kernel in FIXED_KERNELS}
        adaptive_seconds = grid_seconds("adaptive")

        def evaluate():  # the recorded measurement: one calibrated adaptive pass
            for size, kind in cells:
                evaluate_relation(
                    _tree(size), parse_pplbin(QUERIES[kind]), kernel="adaptive",
                    use_cache=False,
                )

        run_once(benchmark, evaluate, rounds=1 if SMOKE else 3)
    finally:
        bitmatrix.set_cost_constants(None)

    best_kernel = min(fixed, key=fixed.get)
    ratio = adaptive_seconds / fixed[best_kernel]
    benchmark.extra_info["calibration_constants"] = profile["constants"]
    benchmark.extra_info["calibration_samples"] = profile["samples"]
    benchmark.extra_info["fixed_grid_seconds"] = fixed
    benchmark.extra_info["adaptive_grid_seconds"] = adaptive_seconds
    benchmark.extra_info["best_fixed_kernel"] = best_kernel
    benchmark.extra_info["adaptive_vs_best_fixed"] = ratio
    benchmark.extra_info["margin"] = CALIBRATED_ADAPTIVE_MARGIN
    assert ratio <= CALIBRATED_ADAPTIVE_MARGIN, (
        f"calibrated adaptive ran {ratio:.2f}x the best fixed kernel "
        f"({best_kernel}); margin is {CALIBRATED_ADAPTIVE_MARGIN}"
    )


@pytest.mark.parametrize("size", TRIPLE_LOOP_SIZES)
def test_legacy_sparse_sets_product(benchmark, size):
    """The seed's python successor-set matmul (superseded by SparseRelation)."""
    tree = _tree(size)
    expression = parse_pplbin(SPARSE_QUERY)
    kernel = MatmulKernel(bm.bool_matmul_sparse)

    def evaluate():
        return evaluate_relation(tree, expression, kernel=kernel, use_cache=False)

    relation = run_single(benchmark, evaluate)
    _record(benchmark, relation, size, "sparse", "legacy-sparse-sets")
