"""E7 — all translations are linear-time and linear-size.

For each translation claimed linear by the paper we measure the running time
on growing inputs and record the size-expansion factor in ``extra_info``:

* Lemma 1: FO → Core XPath 2.0,
* Fig. 4 / Proposition 4: variable-free Core XPath 2.0 → PPLbin,
* Fig. 7 / Proposition 5: PPL → HCL⁻(PPLbin),
* Lemma 3: HCL → sharing formula + equation system.

Expansion factors must stay (roughly) constant as the input grows — that is
the experiment's headline shape.
"""

from __future__ import annotations

import pytest

from repro.fo.ast import And, ChStar, Exists, Lab, Or
from repro.fo.translate import fo_to_core_xpath
from repro.pplbin.translate import from_core_xpath
from repro.core.translate import ppl_to_hcl
from repro.hcl.sharing import normalize
from repro.workloads.query_gen import (
    random_hcl_formula,
    random_ppl_expression,
    random_pplbin_expression,
)

from bench_utils import run_once

SIZES = [10, 20, 40, 80]


def _fo_formula(size: int):
    formula = Lab("a", "x0")
    for index in range(size):
        atom = ChStar(f"x{index}", f"x{index + 1}")
        formula = And(formula, Or(atom, Lab("b", f"x{index + 1}")))
        if index % 3 == 0:
            formula = Exists(f"x{index + 1}", formula)
    return formula


@pytest.mark.parametrize("size", SIZES)
def test_lemma1_fo_to_core_xpath(benchmark, size):
    formula = _fo_formula(size)
    translated = run_once(benchmark, fo_to_core_xpath, formula)
    benchmark.extra_info["input_size"] = formula.size
    benchmark.extra_info["output_size"] = translated.size
    benchmark.extra_info["expansion"] = round(translated.size / formula.size, 2)


@pytest.mark.parametrize("size", SIZES)
def test_fig4_corexpath_to_pplbin(benchmark, size):
    expression = random_pplbin_expression(size, seed=size)
    from repro.pplbin.translate import to_core_xpath

    core = to_core_xpath(expression)
    translated = run_once(benchmark, from_core_xpath, core)
    benchmark.extra_info["input_size"] = core.size
    benchmark.extra_info["output_size"] = translated.size
    benchmark.extra_info["expansion"] = round(translated.size / core.size, 2)


@pytest.mark.parametrize("size", SIZES)
def test_fig7_ppl_to_hcl(benchmark, size):
    expression, _ = random_ppl_expression(size, num_variables=3, seed=size)
    translated = run_once(benchmark, ppl_to_hcl, expression)
    benchmark.extra_info["input_size"] = expression.size
    benchmark.extra_info["output_size"] = translated.size
    benchmark.extra_info["expansion"] = round(translated.size / expression.size, 2)


@pytest.mark.parametrize("size", SIZES)
def test_lemma3_sharing_normalisation(benchmark, size):
    formula, _ = random_hcl_formula(size, num_variables=3, seed=size)
    shared, system = run_once(benchmark, normalize, formula)
    output_size = shared.size + system.size
    benchmark.extra_info["input_size"] = formula.size
    benchmark.extra_info["output_size"] = output_size
    benchmark.extra_info["expansion"] = round(output_size / formula.size, 2)
