"""E2 — Theorem 1: PPL n-ary answering is polynomial in |t| and output-sensitive.

The paper's bound is O(|P| |t|^3 + n |P| |t|^2 |A|).  The series here grows
the bibliography document (and with it, proportionally, the answer set of the
author/title pair query) and measures end-to-end answering time with the
polynomial engine — growth must stay polynomial, in contrast to the |t|^n
behaviour of the naive engine measured in E3.
"""

from __future__ import annotations

import pytest

from repro.core.engine import PPLEngine
from repro.workloads.bibliography import bibliography_pair_query, generate_bibliography

from bench_utils import run_once

BOOK_COUNTS = [5, 10, 20, 40, 80]


@pytest.mark.parametrize("books", BOOK_COUNTS)
def test_pair_query_scaling(benchmark, books):
    document = generate_bibliography(
        books, authors_per_book=2, titles_per_book=1, decoys_per_book=2, seed=books
    )
    query, variables = bibliography_pair_query()

    def answer():
        # A fresh engine per measurement: include translation and all matrix
        # evaluations in the measured cost (the "combined complexity" view).
        return PPLEngine(document).answer(query, variables)

    answers = run_once(benchmark, answer)
    benchmark.extra_info["tree_size"] = document.size
    benchmark.extra_info["answer_size"] = len(answers)
    benchmark.extra_info["tuple_width"] = len(variables)


@pytest.mark.parametrize("books", [10, 40])
def test_pair_query_scaling_warm_engine(benchmark, books):
    """Same series with a warm engine: leaf matrices already cached."""
    document = generate_bibliography(
        books, authors_per_book=2, titles_per_book=1, decoys_per_book=2, seed=books
    )
    query, variables = bibliography_pair_query()
    engine = PPLEngine(document)
    engine.answer(query, variables)  # warm the caches

    answers = run_once(benchmark, engine.answer, query, variables)
    benchmark.extra_info["tree_size"] = document.size
    benchmark.extra_info["answer_size"] = len(answers)
