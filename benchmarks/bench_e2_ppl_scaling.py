"""E2 — Theorem 1: PPL n-ary answering is polynomial in |t| and output-sensitive.

The paper's bound is O(|P| |t|^3 + n |P| |t|^2 |A|).  The series here grows
the bibliography document (and with it, proportionally, the answer set of the
author/title pair query) and measures end-to-end answering time with the
polynomial engine — growth must stay polynomial, in contrast to the |t|^n
behaviour of the naive engine measured in E3.

The cold series runs under both the legacy dense kernel and the adaptive
bitset/sparse kernel, recording the end-to-end wall-clock improvement of the
matrix-kernel rework (the leaf relations of the author/title query are
sparse, which is exactly the regime the adaptive kernel exploits).
"""

from __future__ import annotations

import pytest

from repro.api import Document
from repro.pplbin import matrix as bm
from repro.pplbin.evaluator import MatmulKernel
from repro.workloads.bibliography import bibliography_pair_query, generate_bibliography

from bench_utils import run_once

BOOK_COUNTS = [5, 10, 20, 40, 80]
#: ``uint8-dense`` is the seed's kernel (the pre-rework baseline); ``dense``
#: is the new BLAS product; ``adaptive`` is the default.
KERNELS = ["uint8-dense", "dense", "adaptive"]


def _kernel(name):
    return MatmulKernel(bm.bool_matmul) if name == "uint8-dense" else name


@pytest.mark.parametrize("books", BOOK_COUNTS)
@pytest.mark.parametrize("kernel", KERNELS)
def test_pair_query_scaling(benchmark, kernel, books):
    document = generate_bibliography(
        books, authors_per_book=2, titles_per_book=1, decoys_per_book=2, seed=books
    )
    query, variables = bibliography_pair_query()

    def answer():
        # A fresh document per measurement: include translation and all matrix
        # evaluations in the measured cost (the "combined complexity" view).
        return Document(document.to_node(), kernel=_kernel(kernel)).answer(
            query, variables
        )

    answers = run_once(benchmark, answer, rounds=7)
    benchmark.extra_info["tree_size"] = document.size
    benchmark.extra_info["answer_size"] = len(answers)
    benchmark.extra_info["tuple_width"] = len(variables)
    benchmark.extra_info["kernel"] = kernel


@pytest.mark.parametrize("books", [10, 40])
@pytest.mark.parametrize("kernel", KERNELS)
def test_pair_query_scaling_warm_engine(benchmark, kernel, books):
    """Same series with a warm document: leaf relations already cached."""
    tree = generate_bibliography(
        books, authors_per_book=2, titles_per_book=1, decoys_per_book=2, seed=books
    )
    query, variables = bibliography_pair_query()
    engine = Document(tree, kernel=_kernel(kernel))
    engine.answer(query, variables)  # warm the caches

    answers = run_once(benchmark, engine.answer, query, variables)
    benchmark.extra_info["tree_size"] = tree.size
    benchmark.extra_info["answer_size"] = len(answers)
    benchmark.extra_info["kernel"] = kernel
