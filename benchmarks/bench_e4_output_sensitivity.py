"""E4 — output sensitivity: at fixed |t| and |P|, time grows with |A|, not |t|^n.

All documents in this series have (almost) the same number of nodes; only the
composition of the books changes, so the answer-set size |A| of the
author/title pair query sweeps over two orders of magnitude.  Theorem 1
predicts the answering time to track |A| (the ``n |P| |t|^2 |A|`` term), not
the constant |t|^2 candidate space.
"""

from __future__ import annotations

import pytest

from repro.api import as_document
from repro.workloads.bibliography import bibliography_pair_query, generate_bibliography

from bench_utils import run_once

#: (authors_per_book, titles_per_book, decoys_per_book) — chosen so that each
#: book contributes the same number of nodes (6) but very different pair counts.
PROFILES = {
    "A=20 (1x1 pairs)": (1, 1, 4),
    "A=80 (2x2 pairs)": (2, 2, 2),
    "A=180 (3x3 pairs)": (3, 3, 0),
}

NUM_BOOKS = 20


@pytest.mark.parametrize("profile", sorted(PROFILES))
def test_answer_size_sweep(benchmark, profile):
    authors, titles, decoys = PROFILES[profile]
    document = generate_bibliography(
        NUM_BOOKS,
        authors_per_book=authors,
        titles_per_book=titles,
        decoys_per_book=decoys,
        seed=1,
    )
    query, variables = bibliography_pair_query()
    engine = as_document(document)
    engine.answer(query, variables)  # warm caches so only |A|-dependent work varies

    answers = run_once(benchmark, engine.answer, query, variables)
    benchmark.extra_info["tree_size"] = document.size
    benchmark.extra_info["answer_size"] = len(answers)
    benchmark.extra_info["candidate_space"] = document.size ** 2


@pytest.mark.parametrize("selectivity", [0.0, 0.3, 0.6, 0.9])
def test_selectivity_sweep(benchmark, selectivity):
    """Same tree size, shrinking answer set (restaurants with missing attributes)."""
    from repro.workloads.restaurants import generate_restaurants, restaurant_query

    document = generate_restaurants(
        20, num_attributes=4, missing_probability=selectivity, decoys_per_restaurant=0, seed=3
    )
    query, variables = restaurant_query(4)
    engine = as_document(document)
    engine.answer(query, variables)

    answers = run_once(benchmark, engine.answer, query, variables)
    benchmark.extra_info["tree_size"] = document.size
    benchmark.extra_info["missing_probability"] = selectivity
    benchmark.extra_info["answer_size"] = len(answers)
