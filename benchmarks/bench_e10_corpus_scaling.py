"""E10 — corpus serving: serial vs threads vs sharded processes.

The scenario is memory-bounded corpus serving, the regime the
:mod:`repro.corpus` subsystem is built for: a corpus of ``N`` documents
whose materialised form (tree + Theorem 2 oracle matrices + memoised
answers) does not fit one process's resident budget, queried by repeated
batches — ``ROUNDS`` rounds of ``QUERIES`` under each engine.

* ``serial`` and ``threads`` share one :class:`DocumentStore` bounded at
  ``MAX_RESIDENT`` documents.  A sequential sweep over ``N > MAX_RESIDENT``
  documents is the LRU worst case: every round reloads, rebuilds and
  re-answers every document.
* ``processes`` shards the corpus over ``WORKERS`` dedicated worker
  processes, each with its *own* ``MAX_RESIDENT`` budget — the scale-out
  move: total resident capacity grows with the number of shards.  Each
  shard fits its worker's budget, so after the first round every answer is
  served from the per-worker caches.

The headline numbers are the per-strategy wall-clocks and the
``processes``-vs-``serial`` speedup; the agreement section proves that all
three strategies returned byte-identical answer sets for every
(query, engine) pair.  On a single-core host the speedup comes entirely
from cache retention across rounds (cold work is paid once instead of every
round); on a multi-core host the first cold round additionally parallelises
across the shards.

Run standalone to produce ``BENCH_corpus.json`` in the repository root::

    PYTHONPATH=src python benchmarks/bench_e10_corpus_scaling.py

Under pytest the same scenario runs at a reduced scale through
pytest-benchmark, landing in ``BENCH_e10_corpus_scaling.json`` like every
other experiment.
"""

from __future__ import annotations

import hashlib
import tempfile
import time

import pytest

from repro.corpus import CorpusExecutor, DocumentStore
from repro.workloads import generate_corpus, write_corpus

from bench_utils import run_single, write_bench_json

#: Two selective author/decoy-attribute queries in the paper's introductory
#: shape; small answer sets keep Fig. 8 enumeration from drowning out the
#: per-document build work the experiment is about.
QUERIES = [
    (
        "descendant::book[ child::author[. is $y] and child::price[. is $z]"
        " and child::publisher and child::year ]",
        ("y", "z"),
    ),
    (
        "descendant::book[ child::title[. is $t] and child::year[. is $w]"
        " and child::price ]",
        ("t", "w"),
    ),
]
ENGINES = ("polynomial", "yannakakis")
STRATEGIES = ("serial", "threads", "processes")

#: Full-scale scenario (standalone run).
NUM_DOCUMENTS = 64
BASE_BOOKS = 200
SIZE_SKEW = 0.15
MAX_RESIDENT = 16
WORKERS = 4
ROUNDS = 4
SEED = 42


def _digest(answers: dict) -> str:
    """Stable digest of a ``{(doc, query, engine): frozenset}`` answer map."""
    blob = repr(sorted((key, sorted(value)) for key, value in answers.items()))
    return hashlib.sha256(blob.encode()).hexdigest()


def run_strategy(
    directory: str,
    strategy: str,
    *,
    max_resident: int = MAX_RESIDENT,
    workers: int = WORKERS,
    rounds: int = ROUNDS,
    engines: tuple[str, ...] = ENGINES,
) -> dict:
    """Run the serving scenario cold under one strategy; return metrics + answers."""
    store = DocumentStore.from_directory(directory, max_resident=max_resident)
    answers: dict = {}
    round_seconds = []
    started = time.perf_counter()
    with CorpusExecutor(store, strategy=strategy, max_workers=workers) as executor:
        for _ in range(rounds):
            round_started = time.perf_counter()
            for engine in engines:
                for result in executor.run(QUERIES, engine=engine):
                    answers[(result.doc_name, result.query, engine)] = result.answers
            round_seconds.append(time.perf_counter() - round_started)
        # Process-strategy loads happen in the shard workers, not the parent
        # store; fold both sides in so the per-strategy counters compare.
        worker_stats = executor.worker_stats()
    wall = time.perf_counter() - started
    stats = store.stats
    return {
        "strategy": strategy,
        "wall_seconds": wall,
        "round_seconds": round_seconds,
        "store_loads": stats.loads + worker_stats.loads,
        "store_evictions": stats.evictions + worker_stats.evictions,
        "answers": answers,
    }


def run_scenario(
    *,
    num_documents: int = NUM_DOCUMENTS,
    base_books: int = BASE_BOOKS,
    skew: float = SIZE_SKEW,
    max_resident: int = MAX_RESIDENT,
    workers: int = WORKERS,
    rounds: int = ROUNDS,
    engines: tuple[str, ...] = ENGINES,
    strategies: tuple[str, ...] = STRATEGIES,
) -> dict:
    """Generate a corpus, run every strategy cold, and compare."""
    with tempfile.TemporaryDirectory() as directory:
        corpus = generate_corpus(
            num_documents, base=base_books, skew=skew, seed=SEED, decoys_per_book=3
        )
        write_corpus(directory, corpus)
        total_nodes = sum(tree.size for tree in corpus.values())
        runs = [
            run_strategy(
                directory,
                strategy,
                max_resident=max_resident,
                workers=workers,
                rounds=rounds,
                engines=engines,
            )
            for strategy in strategies
        ]
    reference = runs[0]["answers"]
    agreement = all(run["answers"] == reference for run in runs[1:])
    serial_wall = next(
        (run["wall_seconds"] for run in runs if run["strategy"] == "serial"), None
    )
    for run in runs:
        run["results_digest"] = _digest(run.pop("answers"))
        if serial_wall is not None and run["wall_seconds"] > 0:
            run["speedup_vs_serial"] = serial_wall / run["wall_seconds"]
    return {
        "experiment": "e10_corpus_scaling",
        "scenario": {
            "num_documents": num_documents,
            "base_books": base_books,
            "size_skew": skew,
            "total_nodes": total_nodes,
            "max_resident": max_resident,
            "workers": workers,
            "rounds": rounds,
            "queries": [text for text, _ in QUERIES],
            "engines": list(engines),
        },
        "strategies": runs,
        "agreement": agreement,
    }


# ------------------------------------------------------------------ pytest
#: Reduced scale so the whole bench suite stays fast; the shape (bounded
#: store, more documents than budget, repeated rounds) is the same.
PYTEST_SCALE = dict(
    num_documents=12,
    base_books=40,
    skew=0.2,
    max_resident=4,
    workers=3,
    rounds=2,
    engines=("polynomial",),
)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_corpus_strategy(benchmark, strategy):
    with tempfile.TemporaryDirectory() as directory:
        corpus = generate_corpus(
            PYTEST_SCALE["num_documents"],
            base=PYTEST_SCALE["base_books"],
            skew=PYTEST_SCALE["skew"],
            seed=SEED,
            decoys_per_book=3,
        )
        write_corpus(directory, corpus)
        outcome = run_single(
            benchmark,
            run_strategy,
            directory,
            strategy,
            max_resident=PYTEST_SCALE["max_resident"],
            workers=PYTEST_SCALE["workers"],
            rounds=PYTEST_SCALE["rounds"],
            engines=PYTEST_SCALE["engines"],
        )
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["num_documents"] = PYTEST_SCALE["num_documents"]
    benchmark.extra_info["rounds"] = PYTEST_SCALE["rounds"]
    benchmark.extra_info["store_loads"] = outcome["store_loads"]
    benchmark.extra_info["results_digest"] = _digest(outcome["answers"])


# -------------------------------------------------------------- standalone
def main() -> int:
    payload = run_scenario()
    path = write_bench_json("corpus", payload)
    by_name = {run["strategy"]: run for run in payload["strategies"]}
    print(f"wrote {path}")
    for name, run in by_name.items():
        rounds = ", ".join(f"{value:.2f}" for value in run["round_seconds"])
        speedup = run.get("speedup_vs_serial")
        extra = f" speedup_vs_serial={speedup:.2f}x" if speedup is not None else ""
        print(f"{name}: wall={run['wall_seconds']:.2f}s rounds=[{rounds}]{extra}")
    print(f"agreement: {payload['agreement']}")
    processes = by_name.get("processes")
    serial = by_name.get("serial")
    ok = (
        payload["agreement"]
        and processes is not None
        and serial is not None
        and processes["wall_seconds"] < serial["wall_seconds"]
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
