"""E8 — Core XPath 1.0 set-based evaluation vs the PPLbin matrix algorithm.

Section 4 recalls that monadic Core XPath 1.0 queries are answerable in
linear time with the set-successor trick, and explains why the trick does not
extend to the ``except`` operator — which forces the cubic matrix algorithm
for PPLbin.  The series compares, on the same complement-free query:

* monadic answering with the linear set-based evaluator, dispatched through
  the ``"corexpath1"`` backend of the engine registry;
* monadic answering by taking a row of the cubic matrix evaluation;
* full binary answering with the matrix evaluator (the price one pays for
  the generality needed by ``except``).

The first series runs through the :mod:`repro.api` facade (the query is
compiled once per document; the Fig. 4 PPLbin form is part of the compiled
query), so the benchmark covers the registry dispatch applications use.  The
complement benchmark stays on the raw evaluator: its query is expressible in
PPLbin concrete syntax only.
"""

from __future__ import annotations

import pytest

from repro.api import Document, get_engine
from repro.trees.generators import random_tree
from repro.pplbin.evaluator import evaluate_matrix
from repro.pplbin.parser import parse_pplbin

from bench_utils import run_once

QUERY = "descendant::a[child::b]/child::*[descendant::c]"
TREE_SIZES = [100, 200, 400, 800]


@pytest.mark.parametrize("size", TREE_SIZES)
def test_corexpath1_monadic_linear(benchmark, size):
    document = Document(random_tree(size, seed=size))
    backend = get_engine("corexpath1")
    query = document.compile(QUERY)

    result = run_once(benchmark, backend.monadic, document, query)
    benchmark.extra_info["tree_size"] = size
    benchmark.extra_info["selected_nodes"] = len(result)
    benchmark.extra_info["evaluator"] = "set-based (Core XPath 1.0, via registry)"


@pytest.mark.parametrize("size", TREE_SIZES)
def test_matrix_monadic(benchmark, size):
    document = Document(random_tree(size, seed=size))
    query = document.compile(QUERY)

    def answer():
        matrix = evaluate_matrix(document.tree, query.pplbin, use_cache=False)
        return matrix[document.tree.root()]

    row = run_once(benchmark, answer)
    benchmark.extra_info["tree_size"] = size
    benchmark.extra_info["selected_nodes"] = int(row.sum())
    benchmark.extra_info["evaluator"] = "matrix (Theorem 2)"


@pytest.mark.parametrize("size", [100, 200, 400])
def test_matrix_binary_with_complement(benchmark, size):
    """The query only PPLbin can express: a complement under composition."""
    tree = random_tree(size, seed=size)
    expression = parse_pplbin("descendant::a/(except (child::b/descendant::c))")

    def answer():
        return evaluate_matrix(tree, expression, use_cache=False)

    matrix = run_once(benchmark, answer)
    benchmark.extra_info["tree_size"] = size
    benchmark.extra_info["result_pairs"] = int(matrix.sum())
    benchmark.extra_info["evaluator"] = "matrix with except"
