"""E15 — fault recovery: supervised shard pools must be cheap to crash.

The scenario is the robustness PR's acceptance bar: the same corpus
workload run twice under the ``processes`` strategy — once fault-free, once
with the deterministic fault harness (:mod:`repro.faults`) injecting worker
crashes — and the recovery machinery (pool respawn, backoff, re-dispatch)
must keep both *correctness* and *throughput*:

* **byte-identical answers** — recovery may cost time, never results;
* **throughput gate** — with a ~1% per-evaluation crash rate plus one
  guaranteed first-incarnation crash, documents-per-second must stay at or
  above ``THROUGHPUT_GATE`` (70%) of the fault-free run;
* **recovery-latency gate** — every supervised recovery (crash detection to
  pool resumed) must complete within ``RECOVERY_GATE_SECONDS`` (2s).

The crash schedule is seeded, so a given scale replays the same firing
pattern every run — a failed gate reproduces deterministically.

Run standalone to produce ``BENCH_faults.json`` in the repository root::

    PYTHONPATH=src python benchmarks/bench_e15_fault_recovery.py

Set ``REPRO_BENCH_SCALE=smoke`` for the reduced CI scale.  The smoke scale
shrinks the corpus and round count but relaxes neither gate.
"""

from __future__ import annotations

import os
import tempfile
import time

from repro import faults
from repro.corpus import CorpusExecutor, DocumentStore
from repro.workloads import generate_corpus, write_corpus
from repro.workloads.bibliography import bibliography_pair_query

from bench_utils import write_bench_json

SMOKE = os.environ.get("REPRO_BENCH_SCALE", "").lower() == "smoke"

#: Smoke keeps the shape but must stay large enough that one pool respawn
#: (a fixed ~10ms cost plus re-evaluating the killed worker's in-flight
#: shard) amortises against the measured run — a sub-100ms baseline would
#: gate on noise, not on the recovery machinery.
NUM_DOCUMENTS = 8 if SMOKE else 24
BASE_BOOKS = 40 if SMOKE else 60
ROUNDS = 20 if SMOKE else 10
WORKERS = 2
SEED = 23
CRASH_RATE = 0.01
#: One guaranteed crash (first incarnation of doc003's worker) on top of
#: the rate, so the recovery-latency gate always has a sample to measure.
SCHEDULE = (
    f"worker_crash,match=doc003,site=worker,epoch=0;"
    f"worker_crash,site=worker,rate={CRASH_RATE},seed={SEED}"
)
THROUGHPUT_GATE = 0.70
RECOVERY_GATE_SECONDS = 2.0

QUERY, VARIABLES = bibliography_pair_query()


def run_pass(directory: str, *, faulted: bool) -> dict:
    """One cold sweep of ROUNDS query rounds; returns timing + answers."""
    if faulted:
        faults.install(SCHEDULE)
    else:
        faults.clear()
    # Answer caching off: with memoised answers the warm rounds cost
    # microseconds and the wall clock measures only fixed overheads, so the
    # throughput ratio would gate on scheduler noise.  Uncached rounds do
    # work proportional to the corpus, which is what crash recovery must
    # amortise against.
    store = DocumentStore.from_directory(directory, cache_answers=False)
    answers: dict = {}
    round_seconds = []
    started = time.perf_counter()
    with CorpusExecutor(
        store,
        strategy="processes",
        max_workers=WORKERS,
        max_worker_restarts=64,
        restart_backoff=0.01,
    ) as executor:
        for _ in range(ROUNDS):
            round_started = time.perf_counter()
            for result in executor.run([(QUERY, VARIABLES)]):
                if result.error is not None:
                    raise AssertionError(
                        f"unexpected error record for {result.doc_name}: "
                        f"{result.error_kind}"
                    )
                answers[(result.doc_name, result.query)] = result.answers
            round_seconds.append(time.perf_counter() - round_started)
        stats = executor.fault_stats()
    wall = time.perf_counter() - started
    faults.clear()
    documents = NUM_DOCUMENTS * ROUNDS
    return {
        "faulted": faulted,
        "wall_seconds": wall,
        "round_seconds": round_seconds,
        "documents_evaluated": documents,
        "throughput_docs_per_second": documents / wall,
        "fault_stats": stats,
        "answers": answers,
    }


def run_scenario() -> dict:
    with tempfile.TemporaryDirectory() as directory:
        corpus = generate_corpus(
            NUM_DOCUMENTS, base=BASE_BOOKS, skew=0.25, seed=SEED, decoys_per_book=2
        )
        write_corpus(directory, corpus)
        baseline = run_pass(directory, faulted=False)
        faulted = run_pass(directory, faulted=True)

    agreement = baseline["answers"] == faulted["answers"]
    throughput_ratio = (
        faulted["throughput_docs_per_second"]
        / baseline["throughput_docs_per_second"]
    )
    recoveries = faulted["fault_stats"]["recoveries"]
    recovery_seconds = [
        entry["resumed"] - entry["detected"] for entry in recoveries
    ]
    worst_recovery = max(recovery_seconds, default=None)

    for single in (baseline, faulted):
        del single["answers"]  # not JSON-serialisable (frozensets), huge

    ok = (
        agreement
        and faulted["fault_stats"]["worker_restarts"] >= 1
        and throughput_ratio >= THROUGHPUT_GATE
        and worst_recovery is not None
        and worst_recovery < RECOVERY_GATE_SECONDS
    )
    return {
        "config": {
            "documents": NUM_DOCUMENTS,
            "base_books": BASE_BOOKS,
            "rounds": ROUNDS,
            "workers": WORKERS,
            "crash_rate": CRASH_RATE,
            "schedule": SCHEDULE,
            "smoke": SMOKE,
            "throughput_gate": THROUGHPUT_GATE,
            "recovery_gate_seconds": RECOVERY_GATE_SECONDS,
        },
        "baseline": baseline,
        "faulted": faulted,
        "agreement": agreement,
        "throughput_ratio": throughput_ratio,
        "recovery_seconds": recovery_seconds,
        "worst_recovery_seconds": worst_recovery,
        "ok": ok,
    }


def main() -> int:
    payload = run_scenario()
    path = write_bench_json("faults", payload)
    print(f"wrote {path}")
    print(
        f"baseline: {payload['baseline']['throughput_docs_per_second']:.1f} docs/s  "
        f"faulted: {payload['faulted']['throughput_docs_per_second']:.1f} docs/s  "
        f"ratio={payload['throughput_ratio'] * 100:.1f}% "
        f"(gate >= {THROUGHPUT_GATE * 100:.0f}%)"
    )
    stats = payload["faulted"]["fault_stats"]
    print(
        f"restarts={stats['worker_restarts']} retries={stats['retries']} "
        f"quarantined={stats['quarantined']} "
        f"worst_recovery={payload['worst_recovery_seconds']:.3f}s "
        f"(gate < {RECOVERY_GATE_SECONDS:.0f}s)"
    )
    print(f"agreement={payload['agreement']} ok={payload['ok']}")
    return 0 if payload["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
