"""Timing helpers shared by the benchmark modules."""

from __future__ import annotations


def run_once(benchmark, function, *args, **kwargs):
    """Benchmark ``function`` with a fixed small number of rounds.

    Several of the measured operations are too slow (or too allocation-heavy)
    for pytest-benchmark's default calibration loop; three single-iteration
    rounds keep total harness time bounded while still averaging a few runs.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=3, iterations=1)


def run_single(benchmark, function, *args, **kwargs):
    """Benchmark ``function`` with exactly one round (for the slowest baselines)."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def attach_report(benchmark, report) -> None:
    """Merge a :class:`repro.api.QueryReport` into the benchmark's extra_info.

    pytest-benchmark serialises ``extra_info`` into its saved JSON, so every
    field of the report (expression/HCL sizes, arity, answer count, engine,
    tree size) becomes machine-readable bench output.
    """
    benchmark.extra_info.update(report.to_dict())
