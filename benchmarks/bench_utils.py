"""Timing helpers shared by the benchmark modules, plus JSON result emission.

Every ``bench_e*.py`` routes its measurements through :func:`run_once` /
:func:`run_single`; both register the pytest-benchmark fixture with this
module, and the session-finish hook in ``benchmarks/conftest.py`` calls
:func:`write_session_results` to dump one ``BENCH_<name>.json`` per bench
module (timing stats plus everything the module attached via
``benchmark.extra_info``).  That makes the bench trajectory machine-readable
without any per-module boilerplate: ``pytest benchmarks/bench_e3_vs_naive.py``
leaves a ``BENCH_e3_vs_naive.json`` behind.

Standalone scenario benchmarks (e.g. the corpus scaling experiment E10)
write their own payloads through :func:`write_bench_json` under a chosen
name — that is where ``BENCH_corpus.json`` comes from.

Output lands in the repository root by default; set ``REPRO_BENCH_DIR`` to
redirect it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

#: Stats fields copied from pytest-benchmark into the JSON records.
_STAT_FIELDS = ("min", "max", "mean", "stddev", "median", "rounds", "iterations")

#: Registered fixtures, keyed by bench name (module stem without ``bench_``).
_SESSION_RESULTS: dict[str, list] = {}


def bench_output_dir() -> Path:
    """Directory receiving ``BENCH_*.json`` (env ``REPRO_BENCH_DIR`` or repo root)."""
    override = os.environ.get("REPRO_BENCH_DIR")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent.parent


def write_bench_json(name: str, payload) -> Path:
    """Write ``payload`` to ``BENCH_<name>.json`` and return the path."""
    path = bench_output_dir() / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8")
    return path


def _bench_name(fullname: str) -> str:
    """Derive the bench name from a pytest node id (module stem, no prefix)."""
    module = fullname.split("::", 1)[0]
    stem = Path(module).stem
    return stem[len("bench_"):] if stem.startswith("bench_") else stem


def _register(benchmark) -> None:
    _SESSION_RESULTS.setdefault(_bench_name(benchmark.fullname), []).append(benchmark)


def write_session_results() -> list[Path]:
    """Dump one ``BENCH_<name>.json`` per bench module measured this session."""
    paths = []
    for name, fixtures in sorted(_SESSION_RESULTS.items()):
        records = []
        for fixture in fixtures:
            record = {
                "test": fixture.name,
                "group": fixture.group,
                "param": fixture.param,
                "extra_info": dict(fixture.extra_info),
            }
            metadata = fixture.stats  # pytest-benchmark Metadata, set after the run
            if metadata is not None:
                stats = metadata.stats
                record["stats"] = {
                    field: getattr(stats, field)
                    for field in _STAT_FIELDS
                    if hasattr(stats, field)
                }
            records.append(record)
        paths.append(write_bench_json(name, {"bench": name, "results": records}))
    _SESSION_RESULTS.clear()
    return paths


def run_once(benchmark, function, *args, rounds=3, **kwargs):
    """Benchmark ``function`` with a fixed small number of rounds.

    Several of the measured operations are too slow (or too allocation-heavy)
    for pytest-benchmark's default calibration loop; a few single-iteration
    rounds keep total harness time bounded while still averaging several
    runs.  Fast, noise-sensitive measurements (the E9 kernel grid) pass a
    larger ``rounds``.
    """
    result = benchmark.pedantic(
        function, args=args, kwargs=kwargs, rounds=rounds, iterations=1
    )
    _register(benchmark)
    return result


def run_single(benchmark, function, *args, **kwargs):
    """Benchmark ``function`` with exactly one round (for the slowest baselines)."""
    result = benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
    _register(benchmark)
    return result


def attach_report(benchmark, report) -> None:
    """Merge a :class:`repro.api.QueryReport` into the benchmark's extra_info.

    pytest-benchmark serialises ``extra_info`` into its saved JSON, so every
    field of the report (expression/HCL sizes, arity, answer count, engine,
    tree size) becomes machine-readable bench output — and through
    :func:`write_session_results` it also lands in ``BENCH_<name>.json``.
    """
    benchmark.extra_info.update(report.to_dict())
