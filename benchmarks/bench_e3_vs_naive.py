"""E3 — polynomial PPL engine vs the naive |t|^n Core XPath 2.0 baseline.

The naive engine enumerates |t|^|Var(P)| assignments; the PPL engine is
output-sensitive.  On a fixed small restaurant document the naive engine's
cost explodes with the tuple width n while the polynomial engine barely
moves — the crossover is already at n = 2.  (The naive series stops at n = 3
to keep the harness runtime bounded; the trend is unambiguous.)

Both series now run through the :mod:`repro.api` facade: one shared
:class:`Document` per engine, the backend resolved through the registry, so
the benchmark exercises exactly the dispatch path applications use.
"""

from __future__ import annotations

import pytest

from repro.api import Document
from repro.workloads.restaurants import generate_restaurants, restaurant_query

from bench_utils import attach_report, run_once

#: One shared small document so the two engines face identical inputs.
DOCUMENT = Document(
    generate_restaurants(2, num_attributes=3, decoys_per_restaurant=0, seed=0)
)

POLY_WIDTHS = [1, 2, 3]
NAIVE_WIDTHS = [1, 2, 3]


def _bench_engine(benchmark, width: int, engine: str) -> None:
    expression, variables = restaurant_query(width)
    query = DOCUMENT.compile(expression, variables)

    answers = run_once(benchmark, DOCUMENT.answer, query, engine=engine)
    attach_report(benchmark, DOCUMENT.report(query, engine=engine))
    benchmark.extra_info["tuple_width"] = width
    benchmark.extra_info["answer_size"] = len(answers)
    benchmark.extra_info["candidate_space"] = DOCUMENT.size ** width


@pytest.mark.parametrize("width", POLY_WIDTHS)
def test_ppl_engine(benchmark, width):
    _bench_engine(benchmark, width, "polynomial")


@pytest.mark.parametrize("width", NAIVE_WIDTHS)
def test_naive_engine(benchmark, width):
    _bench_engine(benchmark, width, "naive")
