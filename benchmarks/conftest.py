"""Shared helpers for the benchmark harness.

Each ``bench_e*.py`` module regenerates one experiment from DESIGN.md
(E1–E9): the measured series is produced by pytest-benchmark's timing table,
and headline quantities (tree size, answer-set size, expansion factors) are
attached to every benchmark through ``benchmark.extra_info`` so they appear
in ``--benchmark-verbose`` output and in saved JSON.

The sizes used here are deliberately moderate so that the whole suite runs in
a few minutes on a laptop; the *shape* of the curves (cubic vs linear vs
exponential, output sensitivity) is what the experiments are about, not
absolute numbers.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Benchmark ``function`` with one warmup-free round per measurement.

    Several of the measured operations are too slow (or too allocation-heavy)
    for pytest-benchmark's default calibration loop; a fixed small number of
    rounds keeps total harness time bounded while still averaging a few runs.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=3, iterations=1)


@pytest.fixture
def fresh_tree_factory():
    """Return a factory building trees with a cold matrix cache every call."""

    def build(builder, *args, **kwargs):
        return builder(*args, **kwargs)

    return build
