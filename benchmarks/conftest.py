"""Shared helpers for the benchmark harness.

Each ``bench_e*.py`` module regenerates one experiment from DESIGN.md
(E1–E10): the measured series is produced by pytest-benchmark's timing
table, and headline quantities (tree size, answer-set size, expansion
factors) are attached to every benchmark through ``benchmark.extra_info`` so
they appear in ``--benchmark-verbose`` output and in saved JSON.

On session finish every module's measurements are additionally dumped to
``BENCH_<name>.json`` through :func:`bench_utils.write_session_results`, so
the bench trajectory is machine-readable without passing pytest-benchmark
storage flags.

The sizes used here are deliberately moderate so that the whole suite runs in
a few minutes on a laptop; the *shape* of the curves (cubic vs linear vs
exponential, output sensitivity) is what the experiments are about, not
absolute numbers.
"""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

import bench_utils  # noqa: E402  (needs the path tweak above)


def pytest_sessionfinish(session, exitstatus):
    """Dump one BENCH_<name>.json per measured bench module."""
    bench_utils.write_session_results()


@pytest.fixture
def fresh_tree_factory():
    """Return a factory building trees with a cold matrix cache every call."""

    def build(builder, *args, **kwargs):
        return builder(*args, **kwargs)

    return build
