"""E5 — tuple width n: the restaurant query with up to 12 attributes.

The paper's introduction motivates arities of 10 and more.  The answer set
has one tuple per fully-described restaurant regardless of n, so Theorem 1
predicts roughly linear growth in n (the ``n |P| |t|^2 |A|`` term, with |P|
also growing linearly in n because the query has one filter per attribute) —
not the |t|^n growth a candidate-enumeration engine would show.
"""

from __future__ import annotations

import pytest

from repro.api import as_document
from repro.workloads.restaurants import generate_restaurants, restaurant_query

from bench_utils import run_once

WIDTHS = [2, 4, 6, 8, 10, 12]
NUM_RESTAURANTS = 15


@pytest.mark.parametrize("width", WIDTHS)
def test_tuple_width_scaling(benchmark, width):
    document = generate_restaurants(
        NUM_RESTAURANTS, num_attributes=width, decoys_per_restaurant=1, seed=width
    )
    query, variables = restaurant_query(width)

    def answer():
        return as_document(document).answer(query, variables)

    answers = run_once(benchmark, answer)
    benchmark.extra_info["tuple_width"] = width
    benchmark.extra_info["tree_size"] = document.size
    benchmark.extra_info["answer_size"] = len(answers)
    benchmark.extra_info["candidate_space"] = document.size ** width
