"""E6 — Proposition 3: variable sharing makes non-emptiness NP-hard.

Three series on the same random 3-CNF instances:

* ``test_naive_nonemptiness``: deciding non-emptiness of the reduction query
  with the naive engine — exponential in the number of propositional
  variables (the query's shared XPath variables).
* ``test_dpll_baseline``: deciding satisfiability of the source CNF directly
  with DPLL — fast, to show the blow-up is in the query evaluation, not in
  the instances.
* ``test_reduction_construction``: building the reduction itself — linear,
  as Proposition 3's "reduction from SAT" requires.
"""

from __future__ import annotations

import pytest

from repro.hardness.dpll import dpll_satisfiable, random_3cnf
from repro.hardness.sat_reduction import reduce_sat_to_xpath
from repro.xpath.naive import naive_nonempty

from bench_utils import run_once, run_single

# Four propositional variables already take ~10 s with the naive engine
# (the document has 13 nodes, so 13^4 assignments); five would take minutes —
# the blow-up is unmistakable with the points below while keeping the harness
# runtime bounded.
VARIABLE_COUNTS = [3, 4]
CLAUSE_FACTOR = 3  # clauses = 3 * variables, near the hard region but small


def _instance(num_variables: int):
    return random_3cnf(num_variables, CLAUSE_FACTOR * num_variables, seed=num_variables)


@pytest.mark.parametrize("num_variables", VARIABLE_COUNTS)
def test_naive_nonemptiness(benchmark, num_variables):
    reduction = reduce_sat_to_xpath(_instance(num_variables))

    result = run_single(benchmark, naive_nonempty, reduction.tree, reduction.query)
    benchmark.extra_info["num_variables"] = num_variables
    benchmark.extra_info["tree_size"] = reduction.tree.size
    benchmark.extra_info["query_size"] = reduction.query.size
    benchmark.extra_info["assignment_space"] = reduction.tree.size ** num_variables
    benchmark.extra_info["satisfiable"] = bool(result)


@pytest.mark.parametrize("num_variables", VARIABLE_COUNTS)
def test_dpll_baseline(benchmark, num_variables):
    formula = _instance(num_variables)

    result = run_once(benchmark, dpll_satisfiable, formula)
    benchmark.extra_info["num_variables"] = num_variables
    benchmark.extra_info["satisfiable"] = result is not None


@pytest.mark.parametrize("num_variables", VARIABLE_COUNTS)
def test_reduction_construction(benchmark, num_variables):
    formula = _instance(num_variables)

    reduction = run_once(benchmark, reduce_sat_to_xpath, formula)
    benchmark.extra_info["num_variables"] = num_variables
    benchmark.extra_info["query_size"] = reduction.query.size
    benchmark.extra_info["tree_size"] = reduction.tree.size
