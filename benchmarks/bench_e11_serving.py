"""E11 — serving: cold vs warm start and throughput vs concurrency.

The scenario is the serving regime :mod:`repro.serve` is built for: a server
process comes up over a corpus, a known workload of many distinct queries
arrives at once, and the quantity that matters is *startup-to-first-answer* —
how long before the first per-document result streams back.

Two workloads are measured:

* **audit** (the headline) — 128 distinct variable-free, complement-free
  reachability queries served under the linear-time ``corexpath1`` engine.
  Evaluation is set-based and cheap, so startup latency is dominated by
  compilation (parse → Definition 1 check → HCL⁻/PPLbin translation), which
  is exactly what :class:`repro.serve.PlanCache` persists: the *cold* run
  compiles and stores every plan, the *warm* run (fresh store + server over
  the same cache directory) hits on all of them and skips compilation.
* **pairs** — author/title pair extraction with output variables under the
  ``polynomial`` engine, submitted one query per submission at several
  ``max_concurrent`` settings: the throughput-vs-concurrency series, and the
  agreement check that the streamed per-document answers are identical to
  :class:`repro.corpus.CorpusExecutor` batch output.

Startup runs use ``max_concurrent=1`` and documents ordered smallest-first,
so "first answer" is deterministic (the full submission is compiled at
admission, then the smallest document's job completes first).  A throwaway
warmup round runs before any measurement so cold and warm both execute with
a hot interpreter; cold-vs-warm then differs only in the plan-cache state.

Run standalone to produce ``BENCH_serving.json`` in the repository root::

    PYTHONPATH=src python benchmarks/bench_e11_serving.py

Under pytest the same scenario runs at reduced scale through
pytest-benchmark, landing in ``BENCH_e11_serving.json`` via the session
hook like every other experiment.
"""

from __future__ import annotations

import asyncio
import hashlib
import tempfile
import time

import pytest

from repro.corpus import CorpusExecutor, DocumentStore
from repro.session import ServingPolicy, Session
from repro.workloads import generate_corpus, write_corpus

from bench_utils import run_single, write_bench_json

#: Full-scale scenario (standalone run).
NUM_DOCUMENTS = 8
BASE_BOOKS = 6
SIZE_SKEW = 0.3
SEED = 11
AUDIT_QUERIES = 160
PAIR_QUERIES = 24
CONCURRENCY_LEVELS = (1, 2, 4, 8)


# ----------------------------------------------------------------- workloads
def audit_query(i: int) -> str:
    """One distinct, satisfiable, variable-free reachability query.

    Every step is a (real-label union decoy-label) hop that returns to the
    book element, so the query is satisfiable on any bibliography document;
    the ``u<i>x<j>`` decoy labels make each of the ``i`` texts distinct.
    Complement-free and variable-free by construction, so the linear
    ``corexpath1`` engine can serve it.
    """
    anchors = ("author", "title")
    width = 5 + (i % 4)
    steps = "/".join(
        f"( child::{anchors[(i + j) % 2]} union child::u{i}x{j} )/parent::book"
        for j in range(width)
    )
    return f"descendant::book/{steps}/child::{anchors[i % 2]}"


def pair_query(i: int) -> tuple[str, tuple[str, ...]]:
    """One distinct author/title pair-extraction query (output variables)."""
    decoys = ("year", "publisher", "price")
    extra = " and ".join(f"child::{decoys[(i + j) % 3]}" for j in range(i % 3))
    extra = (" and " + extra) if extra else ""
    expr = (
        f"descendant::book[ child::author[. is $y] and child::title[. is $z]"
        f" and ( child::author or child::u{i} ){extra} ]"
    )
    return expr, ("y", "z")


def audit_workload(n: int) -> list[tuple[str, tuple[str, ...]]]:
    queries = [(audit_query(i), ()) for i in range(n)]
    assert len({text for text, _ in queries}) == n
    return queries


def pair_workload(n: int) -> list[tuple[str, tuple[str, ...]]]:
    queries = [pair_query(i) for i in range(n)]
    assert len({text for text, _ in queries}) == n
    return queries


def _digest(results: dict) -> str:
    blob = repr(sorted((key, sorted(value)) for key, value in results.items()))
    return hashlib.sha256(blob.encode()).hexdigest()


# ------------------------------------------------------------- startup runs
async def _serve_startup(directory, cache_dir, queries, engine) -> dict:
    """One server start: build everything, submit the workload, stream.

    Driven end-to-end through a :class:`repro.session.Session` (PR 5): the
    session owns the store, the plan cache and the async server, so the
    measured path is the one production callers use.  Returns first-answer
    and total wall seconds measured from the very top (session construction
    included — this *is* the startup), the result map and the plan-cache
    counters.
    """
    started = time.perf_counter()
    first = None
    results = {}
    async with Session(
        engine=engine,
        strategy="threads",
        plan_cache=cache_dir,
        serving=ServingPolicy(max_concurrent=1),
    ) as session:
        session.add_directory(directory)
        docs = sorted(
            session.store.names(), key=lambda name: session.document(name).tree.size
        )
        submission = await session.astream(queries, docs)
        async for result in submission:
            if first is None:
                first = time.perf_counter() - started
            results[(result.doc_name, result.query)] = result.answers
        plan_stats = session.plan_cache.stats.to_dict()
    total = time.perf_counter() - started
    return {
        "first_answer_seconds": first,
        "total_seconds": total,
        "results": results,
        "plan_cache": plan_stats,
    }


def run_startup_pair(directory, queries, engine, repeats: int = 5) -> dict:
    """Cold starts, then warm starts over the last cold run's cache directory.

    Each cold repeat gets a fresh, empty cache directory; each warm repeat
    reuses the populated one.  The headline numbers take the minimum over
    the repeats (the standard noise-robust reduction for wall-clock
    micro-measurements); every repeat is reported alongside.
    """
    with tempfile.TemporaryDirectory() as scratch:
        # Warmup round: hot interpreter for both measured runs; its cache
        # directory is discarded so the cold runs still start empty.
        asyncio.run(_serve_startup(directory, scratch, queries, engine))
    cold_runs, warm_runs = [], []
    with tempfile.TemporaryDirectory() as root:
        for rep in range(repeats):
            cache_dir = f"{root}/rep{rep}"
            cold_runs.append(
                asyncio.run(_serve_startup(directory, cache_dir, queries, engine))
            )
        for _ in range(repeats):
            warm_runs.append(
                asyncio.run(_serve_startup(directory, cache_dir, queries, engine))
            )
    agreement = all(
        run["results"] == cold_runs[0]["results"] for run in cold_runs + warm_runs
    )
    digest = _digest(cold_runs[0]["results"])
    for run in cold_runs + warm_runs:
        run.pop("results")
    cold = min(cold_runs, key=lambda run: run["first_answer_seconds"])
    warm = min(warm_runs, key=lambda run: run["first_answer_seconds"])
    speedup = cold["first_answer_seconds"] / warm["first_answer_seconds"]
    return {
        "engine": engine,
        "num_queries": len(queries),
        "repeats": repeats,
        "cold": cold,
        "warm": warm,
        "cold_runs_first_answer": [r["first_answer_seconds"] for r in cold_runs],
        "warm_runs_first_answer": [r["first_answer_seconds"] for r in warm_runs],
        "warm_speedup_first_answer": speedup,
        "warm_speedup_total": cold["total_seconds"] / warm["total_seconds"],
        "cold_warm_agreement": agreement,
        "results_digest": digest,
    }


# --------------------------------------------------------------- throughput
async def _serve_throughput(directory, cache_dir, queries, concurrency) -> dict:
    """Concurrent clients: one submission per query, drained concurrently."""
    results = {}
    async with Session(
        strategy="threads",
        plan_cache=cache_dir,
        serving=ServingPolicy(max_concurrent=concurrency, max_queue=4096),
    ) as session:
        session.add_directory(directory)

        async def one_client(item):
            submission = await session.astream([item], ordered=False)
            async for result in submission:
                results[(result.doc_name, result.query)] = result.answers

        started = time.perf_counter()
        await asyncio.gather(*(one_client(item) for item in queries))
        wall = time.perf_counter() - started
        stats = session.server().stats
    return {
        "concurrency": concurrency,
        "wall_seconds": wall,
        "results": results,
        "results_per_second": len(results) / wall if wall > 0 else None,
        "p50_latency": stats.p50_latency,
        "p95_latency": stats.p95_latency,
    }


def run_throughput_series(directory, queries, levels) -> dict:
    """Warm-cache throughput at each concurrency level + batch agreement."""
    store = DocumentStore.from_directory(directory)
    with CorpusExecutor(store, strategy="serial") as executor:
        batch = {
            (result.doc_name, result.query): result.answers
            for result in executor.run(queries)
        }
    series = []
    with tempfile.TemporaryDirectory() as cache_dir:
        for concurrency in levels:
            run = asyncio.run(
                _serve_throughput(directory, cache_dir, queries, concurrency)
            )
            run["batch_agreement"] = run.pop("results") == batch
            series.append(run)
    base = series[0]["wall_seconds"]
    for run in series:
        run["speedup_vs_serial"] = base / run["wall_seconds"]
    return {
        "num_queries": len(queries),
        "levels": series,
        "batch_agreement": all(run["batch_agreement"] for run in series),
    }


# ----------------------------------------------------------------- scenario
def run_scenario(
    *,
    num_documents: int = NUM_DOCUMENTS,
    base_books: int = BASE_BOOKS,
    skew: float = SIZE_SKEW,
    audit_queries: int = AUDIT_QUERIES,
    pair_queries: int = PAIR_QUERIES,
    levels: tuple[int, ...] = CONCURRENCY_LEVELS,
) -> dict:
    with tempfile.TemporaryDirectory() as directory:
        corpus = generate_corpus(
            num_documents, base=base_books, skew=skew, seed=SEED, decoys_per_book=1
        )
        write_corpus(directory, corpus)
        startup = run_startup_pair(
            directory, audit_workload(audit_queries), "corexpath1"
        )
        throughput = run_throughput_series(
            directory, pair_workload(pair_queries), levels
        )
        total_nodes = sum(tree.size for tree in corpus.values())
    return {
        "experiment": "e11_serving",
        "scenario": {
            "num_documents": num_documents,
            "base_books": base_books,
            "size_skew": skew,
            "total_nodes": total_nodes,
            "audit_queries": audit_queries,
            "pair_queries": pair_queries,
            "concurrency_levels": list(levels),
        },
        "startup": startup,
        "throughput": throughput,
    }


# ------------------------------------------------------------------ pytest
#: Reduced scale so the bench suite stays fast; same shapes, same checks.
PYTEST_SCALE = dict(
    num_documents=4, base_books=4, skew=0.2, audit_queries=24, pair_queries=8
)


@pytest.fixture()
def small_corpus_dir(tmp_path):
    corpus = generate_corpus(
        PYTEST_SCALE["num_documents"],
        base=PYTEST_SCALE["base_books"],
        skew=PYTEST_SCALE["skew"],
        seed=SEED,
        decoys_per_book=1,
    )
    write_corpus(tmp_path, corpus)
    return str(tmp_path)


def test_cold_vs_warm_startup(benchmark, small_corpus_dir):
    queries = audit_workload(PYTEST_SCALE["audit_queries"])
    outcome = run_single(
        benchmark, run_startup_pair, small_corpus_dir, queries, "corexpath1"
    )
    assert outcome["cold_warm_agreement"]
    assert outcome["warm"]["plan_cache"]["misses"] == 0
    benchmark.extra_info["num_queries"] = outcome["num_queries"]
    benchmark.extra_info["warm_speedup_first_answer"] = outcome[
        "warm_speedup_first_answer"
    ]
    benchmark.extra_info["cold_first_answer"] = outcome["cold"]["first_answer_seconds"]
    benchmark.extra_info["warm_first_answer"] = outcome["warm"]["first_answer_seconds"]


@pytest.mark.parametrize("concurrency", [1, 4])
def test_throughput(benchmark, small_corpus_dir, concurrency):
    queries = pair_workload(PYTEST_SCALE["pair_queries"])
    outcome = run_single(
        benchmark, run_throughput_series, small_corpus_dir, queries, (concurrency,)
    )
    assert outcome["batch_agreement"]
    benchmark.extra_info["concurrency"] = concurrency
    benchmark.extra_info["results_per_second"] = outcome["levels"][0][
        "results_per_second"
    ]


# -------------------------------------------------------------- standalone
def main() -> int:
    payload = run_scenario()
    path = write_bench_json("serving", payload)
    print(f"wrote {path}")
    startup = payload["startup"]
    print(
        "startup (engine=%s, %d queries): cold first-answer=%.1fms "
        "warm first-answer=%.1fms speedup=%.2fx agreement=%s"
        % (
            startup["engine"],
            startup["num_queries"],
            startup["cold"]["first_answer_seconds"] * 1e3,
            startup["warm"]["first_answer_seconds"] * 1e3,
            startup["warm_speedup_first_answer"],
            startup["cold_warm_agreement"],
        )
    )
    for run in payload["throughput"]["levels"]:
        print(
            "throughput: concurrency=%d wall=%.2fs results/s=%.0f "
            "p95=%.1fms agreement=%s"
            % (
                run["concurrency"],
                run["wall_seconds"],
                run["results_per_second"],
                (run["p95_latency"] or 0) * 1e3,
                run["batch_agreement"],
            )
        )
    ok = (
        startup["cold_warm_agreement"]
        and payload["throughput"]["batch_agreement"]
        and startup["warm_speedup_first_answer"] >= 2.0
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
