"""The per-document facade: one object owning all per-document state.

A :class:`Document` wraps a :class:`repro.trees.tree.Tree` together with the
shared :class:`repro.hcl.binding.PPLbinOracle` (whose matrices are cached on
the tree), the Fig. 8 answerer and the query/translation caches.  It replaces
the seed's scattered entry points (``answer()``, ``PPLEngine``,
``CompiledQuery._engines``): every engine answers through the same document,
so per-axis and per-leaf work is paid once per tree, not once per engine
instance.

Batch execution:

* :meth:`Document.answer_many` — many queries against one document, reusing
  the shared oracle;
* :func:`answer_batch` — one compiled query against many documents.

:func:`as_document` adopts a bare tree into a document through a
``weakref.WeakValueDictionary`` registry: repeated calls with the same live
tree return the same document, dead trees do not pin documents in memory, and
a recycled ``id()`` can never alias a different tree (the registry re-checks
identity).  This is the fix for the seed's ``CompiledQuery._engines`` dict,
which was keyed by ``id(tree)`` and grew without bound.
"""

from __future__ import annotations

import os
import time
import weakref
from typing import TYPE_CHECKING, Iterable, Optional, Sequence, Union

from repro._deprecation import suppress_deprecations, warn_deprecated
from repro.trees.tree import Node, Tree
from repro.trees.xml_io import tree_from_xml, tree_from_xml_file
from repro.xpath.ast import PathExpr
from repro.xpath.parser import parse_path
from repro.hcl.answering import HclAnswerer
from repro.hcl.ast import HclExpr
from repro.hcl.binding import PPLbinOracle
from repro.core.ppl import Violation, ppl_violations
from repro.core.engine import QueryReport
from repro.obs import trace as _trace
from repro.api.query import Query, _build_query
from repro.api.registry import DEFAULT_ENGINE, check_capabilities, get_engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.corpus.cache import AnswerCache
    from repro.corpus.store import DocumentStore

#: Sentinel distinguishing "keep the tree's budget" from an explicit None
#: (= unbounded) for ``Document(matrix_cache_bytes=...)`` — the one shared
#: instance from :mod:`repro._config`.
from repro._config import UNSET as _UNSET

#: Anything `Document.answer`/`answer_many` accept as a query.
QueryLike = Union[Query, PathExpr, str]
#: One batch item: a bare expression (arity taken from the query) or an
#: ``(expression, variables)`` pair.
BatchItem = Union[QueryLike, tuple[Union[PathExpr, str], Sequence[str]]]


def iter_batch(queries: Union[BatchItem, Iterable[BatchItem]]) -> list[BatchItem]:
    """Normalise every accepted query-batch shape into a list of items.

    A bare expression/``Query``, a single ``(expression, variables)`` pair
    and an iterable of items are all accepted; the two-element tuple whose
    second element is a sequence of strings is the single-pair case (not a
    batch of two bare expressions).  Shared by every batch entry point —
    :meth:`Document.answer_many`, the corpus executor and the server — so
    they cannot drift on the accepted shapes.
    """
    if isinstance(queries, (str, Query)) or not isinstance(queries, Iterable):
        return [queries]
    if (
        isinstance(queries, tuple)
        and len(queries) == 2
        and isinstance(queries[1], (list, tuple))
        and all(isinstance(variable, str) for variable in queries[1])
    ):
        return [queries]
    return list(queries)


class Document:
    """A queryable document: a tree plus all shared per-document state.

    Parameters
    ----------
    tree:
        The document, as an indexed :class:`Tree` or a :class:`Node` builder
        (which is indexed on the spot).
    cache_answers:
        Memoise complete answer sets per ``(query, engine)``.  Sound because
        documents are immutable and compiled queries compare by value.  Off
        by default for ad-hoc documents (answer sets can dwarf the tree);
        the corpus store and the executor's shard workers turn it on.
    answer_cache:
        An explicit :class:`repro.corpus.cache.AnswerCache` to memoise into
        (implies ``cache_answers``).  A :class:`repro.corpus.DocumentStore`
        passes its *shared*, byte-budgeted cache here so answers survive
        document eviction and the memo footprint is bounded corpus-wide;
        without it, ``cache_answers=True`` creates a private unbounded cache
        that lives and dies with the document.
    cache_owner:
        The key prefix identifying this document inside a shared
        ``answer_cache`` (the store passes a token tied to the registered
        source).  Defaults to the document instance itself.
    kernel:
        Relation kernel for the Theorem 2 matrix evaluator — a name
        (``dense``/``bitset``/``sparse``/``adaptive``), a
        :class:`repro.pplbin.bitmatrix.Kernel` instance, or ``None`` for
        the process default (the CLI's ``--kernel`` knob sets that
        default).
    matrix_cache_bytes:
        When given, rebudget the tree's matrix cache to this many bytes
        (``None`` = unbounded).  Left alone by default — the tree's own
        budget (constructor argument or ``REPRO_MATRIX_CACHE_BYTES``)
        stands.  The Session layer passes its resolved
        ``ExecutionPolicy.matrix_cache_bytes`` through here.
    snapshot_store / source_digest:
        The answer-spill hook: a :class:`repro.snapshot.SnapshotStore`
        plus the content digest of this document's source.  With both set
        (and answer caching on), a memory-cache miss consults the spilled
        ``(digest, plan, engine)``-addressed answer set before evaluating,
        and fresh evaluations spill back — warm starts skip the first
        evaluation, not just the parse.  Wired by
        :class:`repro.corpus.DocumentStore` when it has a ``snapshot_dir``.

    .. deprecated::
        Direct construction is deprecated in favour of
        :class:`repro.session.Session`, which owns the store, caches and
        pools this object participates in.  Existing code keeps working;
        the session builds these internally (without the warning).

    Attributes
    ----------
    tree:
        The underlying indexed tree.
    oracle:
        The shared PPLbin oracle (Theorem 2 matrices, cached on the tree).
    answerer:
        The shared Fig. 8 answerer used by the polynomial backend.
    """

    def __init__(
        self,
        tree: Tree | Node,
        *,
        cache_answers: bool = False,
        answer_cache: Optional["AnswerCache"] = None,
        cache_owner: Optional[object] = None,
        kernel=None,
        matrix_cache_bytes=_UNSET,
        snapshot_store=None,
        source_digest: Optional[str] = None,
    ) -> None:
        warn_deprecated(
            "constructing Document directly",
            "a repro.session.Session (session.add_tree/add_file + "
            "session.query, or session.document for the handle)",
        )
        self.tree = tree if isinstance(tree, Tree) else Tree(tree)
        if matrix_cache_bytes is not _UNSET:
            self.tree.matrix_cache().set_budget(matrix_cache_bytes)
        self.oracle = PPLbinOracle(self.tree, kernel=kernel)
        self.answerer = HclAnswerer(self.tree, self.oracle)
        # Compiled queries keyed by (source AST, output variables); the HCL
        # translations are cached separately so that the same expression
        # compiled with different variable tuples translates once.
        self._queries: dict[tuple[PathExpr, tuple[str, ...]], Query] = {}
        self._translations: dict[PathExpr, HclExpr] = {}
        if answer_cache is None and cache_answers:
            from repro.corpus.cache import AnswerCache

            answer_cache = AnswerCache(max_bytes=None)
        self._answer_cache = answer_cache
        self._cache_owner = cache_owner if cache_owner is not None else self
        self._snapshot_store = snapshot_store if source_digest is not None else None
        self._source_digest = source_digest

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_xml(cls, text: str, *, cache_answers: bool = False) -> "Document":
        """Parse an XML string into a document."""
        return cls(tree_from_xml(text), cache_answers=cache_answers)

    @classmethod
    def from_file(cls, path: str, *, cache_answers: bool = False) -> "Document":
        """Load an XML file into a document."""
        return cls(tree_from_xml_file(path), cache_answers=cache_answers)

    # ----------------------------------------------------------------- basics
    @property
    def size(self) -> int:
        """Number of nodes in the document."""
        return self.tree.size

    @property
    def labels(self) -> list[str]:
        """Node labels, indexed by node identifier."""
        return self.tree.labels

    def __len__(self) -> int:
        return self.tree.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Document(size={self.tree.size}, root_label={self.tree.labels[0]!r})"

    # ------------------------------------------------------------- compilation
    def compile(
        self,
        expression: PathExpr | str,
        variables: Sequence[str] = (),
        *,
        require_ppl: bool = True,
    ) -> Query:
        """Compile an expression once, caching the result on the document.

        Equivalent to :func:`repro.api.compile_query` but the parsed AST,
        violation list and translations are cached here, so repeated
        compilation of the same expression is free.
        """
        parsed = parse_path(expression) if isinstance(expression, str) else expression
        key = (parsed, tuple(variables))
        query = self._queries.get(key)
        if query is None:
            text = expression if isinstance(expression, str) else None
            query = _build_query(
                parsed, tuple(variables), text=text, translations=self._translations
            )
            self._queries[key] = query
        if require_ppl:
            query.require_ppl()
        return query

    def check(self, expression: PathExpr | str) -> tuple[Violation, ...]:
        """Return the Definition 1 violations of ``expression`` (empty = PPL)."""
        return tuple(ppl_violations(expression))

    # --------------------------------------------------------------- answering
    def answer(
        self,
        query: QueryLike,
        variables: Optional[Sequence[str]] = None,
        *,
        engine: str = DEFAULT_ENGINE,
    ) -> frozenset[tuple[int, ...]]:
        """Answer an n-ary query with the named backend.

        Parameters
        ----------
        query:
            A compiled :class:`Query`, or an expression (text or AST) that is
            compiled on the fly with ``variables``.
        variables:
            Output variables when ``query`` is an expression; must be omitted
            when a compiled query is passed.
        engine:
            Registry key of the backend (default ``"polynomial"``).

        Raises
        ------
        UnknownEngineError
            If ``engine`` is not registered.
        EngineCapabilityError
            If the query exceeds the backend's capabilities (raised before
            any evaluation).
        RestrictionViolation
            If the backend requires PPL and the expression is not PPL.
        """
        backend = get_engine(engine)
        compiled = self._as_query(query, variables)
        check_capabilities(backend, compiled)
        with _trace.span("query.answer", engine=backend.name) as root:
            if _trace.enabled():
                root.set(query=compiled.unparse())
            if self._answer_cache is None:
                with _trace.span("engine.answer", engine=backend.name):
                    return backend.answer(self, compiled)
            # Keyed by backend.name (not the requested alias) so "ppl" and
            # "polynomial" share one entry; capability checks stay above the
            # cache so a miss and a hit raise identically.  The owner prefix
            # scopes the entry to this document's *source* inside a shared
            # corpus-wide cache (see repro.corpus.cache).
            key = (self._cache_owner, compiled.source, compiled.variables, backend.name)
            with _trace.span("answer_cache.lookup") as lookup:
                answers = self._answer_cache.get(key)
                lookup.set(hit=answers is not None)
            if answers is None and self._snapshot_store is not None:
                # Spill tier: answers addressed by (source digest, plan, engine)
                # survive process restarts; a disk hit re-seeds the memory memo.
                plan = compiled.unparse()
                with _trace.span("snapshot.answers") as spill:
                    answers = self._snapshot_store.load_answers(
                        self._source_digest, plan, compiled.variables, backend.name
                    )
                    spill.set(hit=answers is not None)
                if answers is not None:
                    self._answer_cache.put(key, answers)
                    return answers
            if answers is None:
                with _trace.span("engine.answer", engine=backend.name):
                    answers = backend.answer(self, compiled)
                self._answer_cache.put(key, answers)
                if self._snapshot_store is not None:
                    plan = compiled.unparse()
                    self._snapshot_store.store_answers(
                        self._source_digest, plan, compiled.variables, backend.name, answers
                    )
            return answers

    def nonempty(self, query: QueryLike, *, engine: str = DEFAULT_ENGINE) -> bool:
        """Decide non-emptiness of the query (Boolean query answering)."""
        backend = get_engine(engine)
        compiled = self._as_query(query, None if isinstance(query, Query) else ())
        check_capabilities(backend, compiled)
        nonempty = getattr(backend, "nonempty", None)
        if nonempty is not None:
            return bool(nonempty(self, compiled))
        return bool(backend.answer(self, compiled))

    def pairs(
        self, query: QueryLike, *, engine: str = DEFAULT_ENGINE
    ) -> frozenset[tuple[int, int]]:
        """Evaluate a *variable-free* expression as the binary query ``q^bin_P``.

        Dispatches to the backend's ``pairs`` method; every built-in backend
        provides one for variable-free queries (what counts as variable free
        is the backend's own call — e.g. ``"naive"`` evaluates for-loops that
        have no Fig. 4 PPLbin form).

        Raises
        ------
        EngineCapabilityError
            If the backend rejects the expression or exposes no binary
            evaluation.
        """
        from repro.errors import EngineCapabilityError

        backend = get_engine(engine)
        compiled = self._as_query(query, None if isinstance(query, Query) else ())
        check_capabilities(backend, compiled)
        pairs = getattr(backend, "pairs", None)
        if pairs is None:
            raise EngineCapabilityError(
                backend.name, "pairs", "the backend has no binary evaluation path"
            )
        return pairs(self, compiled)

    def report(
        self,
        query: QueryLike,
        variables: Optional[Sequence[str]] = None,
        *,
        engine: str = DEFAULT_ENGINE,
        answers: Optional[frozenset[tuple[int, ...]]] = None,
    ) -> QueryReport:
        """Answer the query and return sizing diagnostics along with the count.

        Pass ``answers`` to report on an already-computed answer set without
        re-evaluating (used by the CLI ``bench`` subcommand, whose timing
        loop has the answers in hand).

        When the report evaluates (``answers`` not given), it also collects
        the per-query resource-accounting block on ``QueryReport.cost``:
        evaluation seconds, compose/row-union op counts and matrix bytes
        allocated (deltas of the process-wide kernel counters and this
        tree's matrix cache — best-effort under concurrent evaluation on
        other threads), plus matrix/answer-cache hit/miss deltas and
        snapshot answer hits.
        """
        compiled = self._as_query(query, variables)
        trace_tree = None
        cost = None
        if answers is None:
            if _trace.enabled():
                _trace.take_last_trace()  # don't attribute an older query's trace
            meter = self.cost_meter()
            started = time.perf_counter()
            answers = self.answer(compiled, engine=engine)
            cost = meter.finish(time.perf_counter() - started)
            trace_tree = _trace.take_last_trace()
        if compiled.hcl is not None:
            hcl_size = compiled.hcl.size
            distinct_leaves = len({leaf.query for leaf in compiled.hcl.leaves()})
        else:
            hcl_size = 0
            distinct_leaves = 0
        return QueryReport(
            expression_size=compiled.source.size,
            hcl_size=hcl_size,
            distinct_leaves=distinct_leaves,
            variables=compiled.variables,
            answer_count=len(answers),
            tree_size=self.tree.size,
            engine=engine,
            kernel=self.oracle.kernel.name,
            matrix_cache=self.tree.matrix_cache().stats.to_dict(),
            trace=trace_tree,
            cost=cost,
        )

    def cost_meter(self) -> "_CostMeter":
        """Start a per-query resource-accounting capture on this document.

        Returns a meter snapshotting the process-wide kernel op counters,
        this tree's matrix-cache counters and (when configured) the
        answer-cache/snapshot counters; ``meter.finish(seconds)`` returns
        the cost-block dict of deltas stored on ``QueryReport.cost``.  The
        corpus executor wraps its own timed ``answer`` calls with this so
        every surface reports the same block; deltas are best-effort when
        other threads evaluate concurrently on the same process.
        """
        return _CostMeter(self)

    # -------------------------------------------------------------------- batch
    def answer_many(
        self,
        queries: Union[BatchItem, Iterable[BatchItem]],
        *,
        engine: str = DEFAULT_ENGINE,
    ) -> list[frozenset[tuple[int, ...]]]:
        """Answer a batch of queries, reusing the shared oracle across calls.

        Each item is a compiled :class:`Query`, a bare expression, or an
        ``(expression, variables)`` pair; every batch shape accepted by
        :func:`iter_batch` works, including a single bare item.
        """
        results = []
        for item in iter_batch(queries):
            if isinstance(item, tuple) and not isinstance(item, Query):
                expression, variables = item
                results.append(self.answer(expression, variables, engine=engine))
            else:
                results.append(self.answer(item, engine=engine))
        return results

    # ---------------------------------------------------------------- internals
    def _as_query(
        self, query: QueryLike, variables: Optional[Sequence[str]]
    ) -> Query:
        if isinstance(query, Query):
            if variables is not None and tuple(variables) != query.variables:
                raise ValueError(
                    "variables cannot be overridden on a compiled Query; "
                    "compile with the desired output tuple instead"
                )
            return query
        return self.compile(query, tuple(variables or ()), require_ppl=False)


class _CostMeter:
    """Before-counters for one query's cost block (see ``Document.cost_meter``)."""

    __slots__ = ("_document", "_bitmatrix", "_ops", "_matrix", "_answer", "_snapshot")

    def __init__(self, document: Document) -> None:
        from repro.pplbin import bitmatrix as _bitmatrix

        self._document = document
        self._bitmatrix = _bitmatrix
        self._ops = _bitmatrix.counters()
        self._matrix = document.tree.matrix_cache().stats
        self._answer = (
            document._answer_cache.stats if document._answer_cache is not None else None
        )
        self._snapshot = (
            document._snapshot_store.stats
            if document._snapshot_store is not None
            else None
        )

    def finish(self, seconds: float) -> dict:
        """The cost block: deltas of every counter since the meter started."""
        document = self._document
        ops = self._bitmatrix.counters()
        matrix = document.tree.matrix_cache().stats
        cost = {
            "seconds": seconds,
            "compose_ops": ops["full_compose"] - self._ops["full_compose"],
            "row_union_ops": ops["row_union"] - self._ops["row_union"],
            "relations_built": ops["relations_built"] - self._ops["relations_built"],
            # Net growth of the tree's matrix cache: bytes this query left
            # resident (evictions it triggered subtract, so this is a
            # footprint delta, not a gross-allocation count).
            "matrix_bytes": max(0, matrix.current_bytes - self._matrix.current_bytes),
            "matrix_cache_hits": matrix.hits - self._matrix.hits,
            "matrix_cache_misses": matrix.misses - self._matrix.misses,
        }
        if self._answer is not None:
            answer = document._answer_cache.stats
            cost["answer_cache_hits"] = answer.hits - self._answer.hits
            cost["answer_cache_misses"] = answer.misses - self._answer.misses
        if self._snapshot is not None:
            snapshot = document._snapshot_store.stats
            cost["snapshot_hits"] = snapshot.answer_hits - self._snapshot.answer_hits
        return cost


# --------------------------------------------------------------- tree adoption
_documents: "weakref.WeakValueDictionary[int, Document]" = weakref.WeakValueDictionary()


def as_document(source: Document | Tree | Node) -> Document:
    """Return a :class:`Document` for ``source``, adopting trees via a weak registry.

    Passing a :class:`Document` returns it unchanged.  A :class:`Tree` is
    looked up in a ``WeakValueDictionary`` keyed by ``id(tree)`` with an
    identity re-check, so the same live tree maps to the same document while
    neither dead trees nor documents are kept alive, and a recycled ``id``
    cannot alias a different tree.  (The expensive per-tree state — the
    Theorem 2 matrices — lives in the tree's own cache, so even a re-adopted
    tree keeps its precomputed work.)
    """
    if isinstance(source, Document):
        return source
    tree = source if isinstance(source, Tree) else Tree(source)
    document = _documents.get(id(tree))
    if document is None or document.tree is not tree:
        with suppress_deprecations():
            document = Document(tree)
        _documents[id(tree)] = document
    return document


# ------------------------------------------------------------- module helpers
def answer(
    tree: Document | Tree | Node,
    expression: PathExpr | str,
    variables: Sequence[str] = (),
    *,
    engine: str = DEFAULT_ENGINE,
) -> frozenset[tuple[int, ...]]:
    """Answer one n-ary query on one document (convenience one-liner)."""
    return as_document(tree).answer(expression, variables, engine=engine)


def answer_batch(
    documents: Iterable[Union[Document, Tree, Node, str, "os.PathLike[str]"]],
    query: QueryLike,
    variables: Optional[Sequence[str]] = None,
    *,
    engine: str = DEFAULT_ENGINE,
    store: Optional["DocumentStore"] = None,
) -> list[frozenset[tuple[int, ...]]]:
    """Answer one query against many documents.

    The query is compiled once (queries are document-independent) and run
    against each document's shared oracle.

    Each item may be a :class:`Document`, a bare tree, or a *string/path*:
    strings resolve through ``store`` (a
    :class:`repro.corpus.DocumentStore`) — registered names win, unknown
    strings naming an XML file on disk are adopted into the store so
    repeated batches reuse the parse.  Without ``store`` an ephemeral
    unbounded store backs the call, so path items still share parses within
    one batch.

    .. deprecated::
        Passing bare in-memory trees keeps working (they are adopted through
        the weak document registry) but is a legacy path: trees bypass the
        store, so they get no LRU residency bound, no reuse across batches
        and no access to the parallel strategies of
        :class:`repro.corpus.CorpusExecutor` (whose workers rebuild from
        *sources*, which a bare tree does not have).  New code should
        register documents in a ``DocumentStore`` and pass names; a later
        release will route all batch scheduling through the store.

    .. deprecated::
        Use :meth:`repro.session.Session.query_corpus` — register the
        documents on the session's store and stream the results.
    """
    warn_deprecated("answer_batch(...)", "Session.query_corpus(...)")
    if not isinstance(query, Query):
        from repro.api.query import compile_query

        query = compile_query(query, tuple(variables or ()), require_ppl=False)
    elif variables is not None and tuple(variables) != query.variables:
        raise ValueError(
            "variables cannot be overridden on a compiled Query; "
            "compile with the desired output tuple instead"
        )

    def resolve(item) -> Document:
        nonlocal store
        if isinstance(item, (Document, Tree, Node)):
            return as_document(item)
        if isinstance(item, (str, os.PathLike)):
            if store is None:
                from repro.corpus.store import DocumentStore

                store = DocumentStore()
            return store.resolve(os.fspath(item))
        raise TypeError(
            f"cannot answer on {item!r}: expected a Document, Tree, Node, "
            "store name or XML file path"
        )

    return [resolve(document).answer(query, engine=engine) for document in documents]
