"""Backend-agnostic compiled queries.

A :class:`Query` is the result of compiling a Core XPath 2.0 expression once:
it carries the parsed AST, the Definition 1 check result (the violation list,
empty for PPL expressions), the Fig. 7 HCL⁻(PPLbin) translation (when the
expression is PPL) and the Fig. 4 PPLbin translation (when it is variable
free).  Queries are document-independent values: compile once, answer on many
documents, with any registered engine whose capabilities cover the query.
"""

from __future__ import annotations

import pickle
import sys
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import RestrictionViolation, TranslationError
from repro.xpath.ast import OrTest, PathExpr, PathUnion
from repro.xpath.analysis import is_variable_free
from repro.obs import trace as _trace
from repro.xpath.parser import parse_path
from repro.core.ppl import Violation, ppl_violations
from repro.core.translate import ppl_to_hcl
from repro.pplbin.ast import BinExpr
from repro.pplbin.translate import from_core_xpath
from repro.hcl.ast import HclExpr


@dataclass(frozen=True)
class Query:
    """A compiled, backend-agnostic n-ary query.

    Instances are produced by :func:`compile_query` or
    :meth:`repro.api.document.Document.compile`; construct directly only in
    tests.

    Attributes
    ----------
    source:
        The parsed Core XPath 2.0 expression.
    variables:
        The output variable tuple ``x1 ... xn`` (without ``$`` sigils).
    violations:
        Definition 1 violations; empty exactly when the expression is PPL.
    hcl:
        The Fig. 7 HCL⁻(PPLbin) translation, or ``None`` when not PPL.
    pplbin:
        The Fig. 4 PPLbin translation, or ``None`` when the expression is
        not variable free.
    text:
        The concrete syntax the query was compiled from, when available.
    """

    source: PathExpr
    variables: tuple[str, ...]
    violations: tuple[Violation, ...] = ()
    hcl: Optional[HclExpr] = None
    pplbin: Optional[BinExpr] = None
    text: Optional[str] = field(default=None, compare=False)

    @property
    def arity(self) -> int:
        """The width ``n`` of the answer tuples."""
        return len(self.variables)

    @property
    def is_ppl(self) -> bool:
        """True when the expression satisfies Definition 1."""
        return not self.violations

    @property
    def is_variable_free(self) -> bool:
        """True when the expression satisfies N($x) (has a PPLbin form)."""
        return self.pplbin is not None

    @property
    def free_variables(self) -> frozenset[str]:
        """The free variables of the source expression."""
        return self.source.free_variables

    @property
    def has_union(self) -> bool:
        """True when a ``union`` or ``or`` occurs anywhere in the expression."""
        return any(isinstance(sub, (PathUnion, OrTest)) for sub in self.source.walk())

    def require_ppl(self) -> None:
        """Raise :class:`RestrictionViolation` unless the query is PPL."""
        if self.violations:
            first = self.violations[0]
            raise RestrictionViolation(first.condition, first.message)

    def unparse(self) -> str:
        """Return concrete syntax for the source expression."""
        return self.text if self.text is not None else self.source.unparse()

    @property
    def cache_key(self) -> tuple:
        """The plan-identity key ``(expression, variables)``.

        This is the key under which a :class:`repro.session.Session`
        memoises compiled plans (and the identity the persistent
        :class:`repro.serve.PlanCache` hashes), so the sync and async
        surfaces of a session resolve the same expression to the *same*
        compiled object.  The original text is preferred when the query was
        compiled from a string — the common case — falling back to the
        (hashable, value-compared) source AST.
        """
        return (self.text if self.text is not None else self.source, self.variables)

    def __str__(self) -> str:
        return self.unparse()

    # ------------------------------------------------------------ serialisation
    def plan_size(self) -> int:
        """Total node count across the AST and every materialised translation.

        This is the depth bound used to make pickling stack-safe: the ASTs
        are linked structures whose nesting can reach their size (e.g. a long
        ``/``-chain), and the default pickler recurses once per node.
        Counted through the iterative ``walk()`` — the recursive ``size``
        property would itself overflow on the expressions this exists for.
        """
        count = sum(1 for _ in self.source.walk())
        if self.hcl is not None:
            count += sum(1 for _ in self.hcl.walk())
            count += sum(
                1 for leaf in self.hcl.leaves() for _ in leaf.query.walk()
            )
        if self.pplbin is not None:
            count += sum(1 for _ in self.pplbin.walk())
        return count

    def __reduce__(self):
        # Deep queries (and their HCL⁻/PPLbin translations, whichever were
        # materialised) overflow the interpreter's recursion limit under the
        # default structural pickle, and `copy.deepcopy` fails the same way.
        # Serialising the fields with a nested pickler under raised headroom
        # makes the query a flat bytes payload to any *outer* pickler — so
        # `pickle.dumps(query)`, pickling a container of queries, shipping a
        # query to a worker process and `deepcopy` (which routes through
        # `__reduce__`) all work regardless of nesting depth.
        size = self.plan_size()
        with _recursion_headroom(size):
            payload = pickle.dumps(
                {
                    "source": self.source,
                    "variables": self.variables,
                    "violations": self.violations,
                    "hcl": self.hcl,
                    "pplbin": self.pplbin,
                    "text": self.text,
                },
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        return (_unpickle_query, (payload, size))


#: Guards the process-global recursion limit: concurrent picklers (server
#: submissions compile in worker threads) must not restore the limit while
#: another thread is still inside a deep pickle.
_headroom_lock = threading.Lock()
_headroom_depth = 0
_headroom_baseline = 0


@contextmanager
def _recursion_headroom(node_count: int):
    """Temporarily raise the recursion limit to cover ``node_count`` nesting.

    The pickler spends a handful of frames per nested object; eight per AST
    node is a comfortable over-approximation (nesting depth is at most the
    node count).  The limit is only ever raised while any thread is inside
    (never lowered, so concurrent deep pickles cannot yank each other's
    headroom away) and restored to the outermost entrant's baseline once
    the last thread leaves.
    """
    global _headroom_depth, _headroom_baseline
    target = 1000 + 8 * node_count
    with _headroom_lock:
        if _headroom_depth == 0:
            _headroom_baseline = sys.getrecursionlimit()
        _headroom_depth += 1
        if target > sys.getrecursionlimit():
            sys.setrecursionlimit(target)
    try:
        yield
    finally:
        with _headroom_lock:
            _headroom_depth -= 1
            if _headroom_depth == 0:
                sys.setrecursionlimit(_headroom_baseline)


def _unpickle_query(payload: bytes, size: int) -> "Query":
    """Rebuild a :class:`Query` from its nested-pickle payload."""
    with _recursion_headroom(size):
        fields = pickle.loads(payload)
    return Query(**fields)


def compile_query(
    expression: PathExpr | str,
    variables: Sequence[str] = (),
    *,
    require_ppl: bool = True,
) -> Query:
    """Parse, check and translate a query once, for repeated execution.

    With ``require_ppl`` (the default) a non-PPL expression raises
    immediately, like the seed's ``compile_query``; with
    ``require_ppl=False`` the violations are recorded on the query instead,
    so it can still be dispatched to backends that do not need Definition 1
    (e.g. ``"naive"``).

    Raises
    ------
    ParseError
        If the concrete syntax is invalid.
    RestrictionViolation
        If ``require_ppl`` is true and the expression violates Definition 1.
    """
    text = expression if isinstance(expression, str) else None
    if isinstance(expression, str):
        with _trace.span("parse"):
            parsed = parse_path(expression)
    else:
        parsed = expression
    query = _build_query(parsed, tuple(variables), text=text)
    if require_ppl:
        query.require_ppl()
    return query


def _build_query(
    parsed: PathExpr,
    variables: tuple[str, ...],
    *,
    text: Optional[str] = None,
    translations: Optional[dict[PathExpr, HclExpr]] = None,
) -> Query:
    """Build a :class:`Query`, reusing ``translations`` as an HCL cache."""
    violations = tuple(ppl_violations(parsed))

    hcl: Optional[HclExpr] = None
    if not violations:
        if translations is not None and parsed in translations:
            hcl = translations[parsed]
        else:
            with _trace.span("translate", target="hcl"):
                hcl = ppl_to_hcl(parsed)
            if translations is not None:
                translations[parsed] = hcl

    pplbin: Optional[BinExpr] = None
    if is_variable_free(parsed):
        try:
            with _trace.span("translate", target="pplbin"):
                pplbin = from_core_xpath(parsed)
        except TranslationError:  # pragma: no cover - N($x) already excludes this
            pplbin = None

    return Query(
        source=parsed,
        variables=variables,
        violations=violations,
        hcl=hcl,
        pplbin=pplbin,
        text=text,
    )
