"""repro.api — the unified Document/Query facade and engine registry.

This package is the one public query surface of the library.  Everything the
seed exposed through three overlapping entry points now goes through two
value types and a registry:

* :class:`Document` — wraps a tree and owns all per-document state (the
  shared PPLbin oracle, the Fig. 8 answerer, query/translation caches);
* :class:`Query` — a compiled, document-independent query carrying the
  parsed AST, the Definition 1 check result and the HCL⁻/PPLbin
  translations;
* the engine registry — string-keyed backends (``"polynomial"``,
  ``"naive"``, ``"corexpath1"``, ``"yannakakis"``) with capability flags, so
  dispatch fails with a typed error before evaluation.

Migration from the seed API
---------------------------
===============================================  ===============================================
Old call                                         New call
===============================================  ===============================================
``repro.answer(tree, expr, vars)``               ``Document(tree).answer(expr, vars)``
``PPLEngine(tree).answer(expr, vars)``           ``Document(tree).answer(expr, vars)``
``PPLEngine(tree).nonempty(expr)``               ``Document(tree).nonempty(expr)``
``PPLEngine(tree).pairs(expr)``                  ``Document(tree).pairs(expr)``
``PPLEngine(tree).report(expr, vars)``           ``Document(tree).report(expr, vars)``
``NaiveEngine(tree).answer(expr, vars)``         ``Document(tree).answer(expr, vars, engine="naive")``
``compile_query(expr, vars).run(tree)``          ``Document(tree).answer(compile_query(expr, vars))``
``monadic_answer(tree, pplbin_expr)``            ``get_engine("corexpath1").monadic(doc, doc.compile(expr))``
loop over queries                                ``Document(tree).answer_many(queries)``
loop over documents                              ``answer_batch(docs, query)``
===============================================  ===============================================

The seed-era shims (``repro.answer``, the legacy ``compile_query`` with its
``CompiledQuery.run``, ``PPLEngine`` and the whole ``repro.core.api``
module) were removed in 1.5.0 — the left column above is what old code
looked like, not something that still imports.

Typical usage::

    from repro.api import Document, compile_query, get_engine

    doc = Document.from_file("bib.xml")
    query = compile_query(
        "descendant::book[child::author[. is $y] and child::title[. is $z]]",
        ["y", "z"],
    )
    pairs = doc.answer(query)                      # polynomial engine
    same = doc.answer(query, engine="naive")       # cross-check backend
"""

from repro.api.registry import (
    DEFAULT_ENGINE,
    Engine,
    EngineCapabilities,
    available_engines,
    check_capabilities,
    get_engine,
    register_engine,
)
from repro.api.query import Query, compile_query
from repro.api.document import (
    Document,
    answer,
    answer_batch,
    as_document,
)
from repro.api import engines as _engines  # registers the built-in backends
from repro.api.engines import (
    BUILTIN_ENGINES,
    CoreXPath1Backend,
    NaiveBackend,
    PolynomialEngine,
    YannakakisBackend,
)
from repro.core.engine import QueryReport

__all__ = [
    "DEFAULT_ENGINE",
    "Engine",
    "EngineCapabilities",
    "available_engines",
    "check_capabilities",
    "get_engine",
    "register_engine",
    "Query",
    "QueryReport",
    "compile_query",
    "Document",
    "answer",
    "answer_batch",
    "as_document",
    "BUILTIN_ENGINES",
    "PolynomialEngine",
    "NaiveBackend",
    "CoreXPath1Backend",
    "YannakakisBackend",
]
