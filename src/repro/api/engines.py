"""The built-in query backends, registered under their string keys.

Each backend wraps one answering path of the library behind the
:class:`repro.api.registry.Engine` protocol:

* :class:`PolynomialEngine` (``"polynomial"``, alias ``"ppl"``) — the
  Theorem 1 pipeline: Fig. 7 translation, Theorem 2 matrix oracle, Fig. 8
  answering.  The default for everything.
* :class:`NaiveBackend` (``"naive"``) — assignment enumeration over full
  Core XPath 2.0; exponential, but the only backend accepting non-PPL
  expressions (for-loops included).  The correctness oracle.
* :class:`CoreXPath1Backend` (``"corexpath1"``) — the linear set-based
  evaluator of Section 4 for variable-free, complement-free expressions
  (experiment E8's baseline).
* :class:`YannakakisBackend` (``"yannakakis"``) — translates the union-free
  HCL⁻ form into an acyclic conjunctive query (Proposition 8 direction) and
  answers it with semi-joins (Proposition 7).

Backends are stateless: all per-document state (oracle, caches) lives on the
:class:`repro.api.document.Document` they receive.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import EngineCapabilityError
from repro.xpath.naive import naive_answer, naive_nonempty
from repro.xpath.semantics import evaluate_path
from repro.pplbin.corexpath1 import binary_answer, monadic_answer, successor_set
from repro.hcl.acq import Atom, ConjunctiveQuery, hcl_to_acq, is_acyclic
from repro.hcl.yannakakis import yannakakis_answer
from repro.api.registry import EngineCapabilities, register_engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.document import Document
    from repro.api.query import Query


class PolynomialEngine:
    """The end-to-end polynomial pipeline of Theorem 1 (the default backend)."""

    name = "polynomial"
    capabilities = EngineCapabilities(requires_ppl=True)

    def answer(self, document: "Document", query: "Query") -> frozenset[tuple[int, ...]]:
        assert query.hcl is not None  # guaranteed by requires_ppl
        return document.answerer.answer(query.hcl, list(query.variables))

    def nonempty(self, document: "Document", query: "Query") -> bool:
        assert query.hcl is not None
        return document.answerer.nonempty(query.hcl)

    def pairs(self, document: "Document", query: "Query") -> frozenset[tuple[int, int]]:
        """Binary query of a variable-free expression via the matrix oracle."""
        if query.pplbin is None:
            raise EngineCapabilityError(
                self.name,
                "requires_variable_free",
                "binary evaluation needs a variable-free expression",
            )
        return document.oracle.pairs(query.pplbin)


class NaiveBackend:
    """Assignment enumeration over full Core XPath 2.0 (|t|^|Var(P)|)."""

    name = "naive"
    capabilities = EngineCapabilities()

    def answer(self, document: "Document", query: "Query") -> frozenset[tuple[int, ...]]:
        return naive_answer(document.tree, query.source, list(query.variables))

    def nonempty(self, document: "Document", query: "Query") -> bool:
        return naive_nonempty(document.tree, query.source)

    def pairs(self, document: "Document", query: "Query") -> frozenset[tuple[int, int]]:
        """Binary query of a variable-free expression via the Fig. 2 semantics."""
        if query.free_variables:
            raise EngineCapabilityError(
                self.name,
                "requires_variable_free",
                "binary evaluation needs a variable-free expression",
            )
        return evaluate_path(document.tree, query.source, {})


class CoreXPath1Backend:
    """The linear set-based evaluator for Core XPath 1.0 (Section 4, E8).

    Variable free and complement free only; ``answer`` decides the Boolean
    query, ``pairs``/``monadic`` expose the binary and monadic queries.
    """

    name = "corexpath1"
    capabilities = EngineCapabilities(
        max_arity=0,
        supports_variables=False,
        supports_complement=False,
        requires_variable_free=True,
    )

    def answer(self, document: "Document", query: "Query") -> frozenset[tuple[int, ...]]:
        assert query.pplbin is not None  # guaranteed by requires_variable_free
        targets = successor_set(document.tree, query.pplbin, document.tree.nodes())
        return frozenset({()}) if targets else frozenset()

    def nonempty(self, document: "Document", query: "Query") -> bool:
        assert query.pplbin is not None
        return bool(successor_set(document.tree, query.pplbin, document.tree.nodes()))

    def pairs(self, document: "Document", query: "Query") -> frozenset[tuple[int, int]]:
        """Binary query by running the monadic evaluator from every node."""
        assert query.pplbin is not None
        return binary_answer(document.tree, query.pplbin)

    def monadic(
        self, document: "Document", query: "Query", start: Optional[int] = None
    ) -> frozenset[int]:
        """Nodes reachable from ``start`` (default: root), in linear time."""
        assert query.pplbin is not None
        return monadic_answer(document.tree, query.pplbin, start)


class YannakakisBackend:
    """Semi-join answering of the acyclic conjunctive form (Propositions 7/8).

    The union-free HCL⁻ translation is converted into a conjunctive query
    over PPLbin atoms (:func:`repro.hcl.acq.hcl_to_acq`), equalities are
    eliminated by merging variables, the atom relations are materialised
    through the document's shared oracle, and Yannakakis' output-sensitive
    algorithm enumerates the answers.
    """

    name = "yannakakis"
    capabilities = EngineCapabilities(requires_ppl=True, supports_union=False)

    def answer(self, document: "Document", query: "Query") -> frozenset[tuple[int, ...]]:
        assert query.hcl is not None  # guaranteed by requires_ppl
        conjunctive = hcl_to_acq(query.hcl)
        atoms, representative = _merge_equalities(conjunctive)
        output = tuple(representative.get(name, name) for name in query.variables)
        merged = ConjunctiveQuery(atoms, output)
        if not is_acyclic(merged):
            raise EngineCapabilityError(
                self.name,
                "requires_acyclic",
                "the query's conjunctive form is not acyclic",
            )
        relations = {
            atom.relation: document.oracle.pairs(atom.relation) for atom in atoms
        }
        return yannakakis_answer(merged, relations, list(document.tree.nodes()))


def _merge_equalities(
    query: ConjunctiveQuery,
) -> tuple[tuple[Atom, ...], dict[str, str]]:
    """Eliminate equality atoms by merging variables (union-find).

    Returns the deduplicated atoms over merged variables and the map from
    original variable names to their class representative.  Representatives
    prefer user variables over the fresh ``_pos*`` positions introduced by
    :func:`repro.hcl.acq.hcl_to_acq`, so output tuples keep their names.
    """
    parent: dict[str, str] = {}

    def find(item: str) -> str:
        root = item
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(item, item) != item:
            parent[item], item = root, parent[item]
        return root

    for left, right in query.equalities:
        parent[find(left)] = find(right)

    def preference(name: str) -> tuple[bool, str]:
        # User variables beat fresh positions; ties break lexicographically.
        return (name.startswith("_pos"), name)

    members: dict[str, list[str]] = {}
    for name in query.variables:
        members.setdefault(find(name), []).append(name)
    representative = {
        name: min(group, key=preference)
        for group in members.values()
        for name in group
    }

    atoms: dict[Atom, None] = {}
    for atom in query.atoms:
        atoms.setdefault(
            Atom(atom.relation, representative[atom.source], representative[atom.target])
        )
    return tuple(atoms), representative


#: The backend instances, in registration order.
BUILTIN_ENGINES: tuple = (
    PolynomialEngine(),
    NaiveBackend(),
    CoreXPath1Backend(),
    YannakakisBackend(),
)

register_engine(BUILTIN_ENGINES[0], aliases=("ppl",), replace=True)
for _engine in BUILTIN_ENGINES[1:]:
    register_engine(_engine, replace=True)
