"""The pluggable engine registry: capability flags, protocol, dispatch checks.

Every query backend of the library is an :class:`Engine` — an object with a
``name``, a set of :class:`EngineCapabilities` and an ``answer(document,
query)`` method.  Engines are registered under string keys with
:func:`register_engine` and resolved with :func:`get_engine`; dispatch goes
through :func:`check_capabilities`, which raises a *typed* error
(:class:`repro.errors.UnknownEngineError`,
:class:`repro.errors.EngineCapabilityError` or
:class:`repro.errors.RestrictionViolation`) before any evaluation starts.

The four built-in backends (registered by :mod:`repro.api.engines`):

==============  ==============================================================
``polynomial``  the Theorem 1 pipeline (HCL⁻ + matrix oracle + Fig. 8)
``naive``       assignment enumeration over full Core XPath 2.0
``corexpath1``  the linear set-based evaluator (variable- and complement-free)
``yannakakis``  semi-joins over the acyclic conjunctive form (union-free)
==============  ==============================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Protocol, runtime_checkable

from repro.errors import EngineCapabilityError, UnknownEngineError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.document import Document
    from repro.api.query import Query

#: The registry key used when no engine is named explicitly.
DEFAULT_ENGINE = "polynomial"


@dataclass(frozen=True)
class EngineCapabilities:
    """What a backend can evaluate; checked *before* evaluation by dispatch.

    Parameters
    ----------
    max_arity:
        Largest output-tuple width the backend supports (``None`` = any).
    supports_variables:
        Whether free variables may occur in the expression at all.
    supports_union:
        Whether ``union`` / ``or`` may occur (the Yannakakis path is
        union-free, Proposition 8).
    supports_complement:
        Whether the compiled PPLbin form may contain ``except`` (the
        set-based Core XPath 1.0 evaluator cannot, Section 4).
    requires_ppl:
        Whether the expression must satisfy Definition 1 (so that the HCL⁻
        translation exists).
    requires_variable_free:
        Whether a Fig. 4 PPLbin translation of the whole expression must
        exist (condition N($x)).
    """

    max_arity: Optional[int] = None
    supports_variables: bool = True
    supports_union: bool = True
    supports_complement: bool = True
    requires_ppl: bool = False
    requires_variable_free: bool = False


@runtime_checkable
class Engine(Protocol):
    """Protocol every registered backend implements.

    ``answer`` returns the n-ary answer set ``q_{P,x}(t)`` as a frozenset of
    node tuples; for arity 0 the set is ``{()}`` when the query is non-empty
    and empty otherwise.  Backends may expose extra methods (``pairs``,
    ``monadic``, ``nonempty``) beyond the protocol.
    """

    name: str
    capabilities: EngineCapabilities

    def answer(
        self, document: "Document", query: "Query"
    ) -> frozenset[tuple[int, ...]]:  # pragma: no cover - protocol
        ...


_REGISTRY: dict[str, Engine] = {}
_ALIASES: dict[str, str] = {}


def register_engine(
    engine: Engine,
    *,
    name: Optional[str] = None,
    aliases: tuple[str, ...] = (),
    replace: bool = False,
) -> Engine:
    """Register ``engine`` under ``name`` (default: ``engine.name``).

    Raises
    ------
    TypeError
        If ``engine`` does not implement the :class:`Engine` protocol.
    ValueError
        If the name is already taken and ``replace`` is false.
    """
    if not isinstance(engine, Engine):
        raise TypeError(
            f"{engine!r} does not implement the Engine protocol "
            "(name, capabilities, answer)"
        )
    key = name if name is not None else engine.name
    if not replace and key in _REGISTRY:
        raise ValueError(f"an engine named {key!r} is already registered")
    if key in _ALIASES:
        # Aliases take precedence in get_engine, so an engine registered
        # under an alias name would be unreachable; refuse (or, when
        # replacing, drop the alias so the new engine wins the name).
        if not replace:
            raise ValueError(
                f"{key!r} is already an alias for engine {_ALIASES[key]!r}"
            )
        del _ALIASES[key]
    _REGISTRY[key] = engine
    for alias in aliases:
        if not replace and alias in _ALIASES and _ALIASES[alias] != key:
            raise ValueError(f"engine alias {alias!r} is already registered")
        _ALIASES[alias] = key
    return engine


def get_engine(name: str) -> Engine:
    """Resolve an engine name (or alias) to the registered backend.

    Raises
    ------
    UnknownEngineError
        If no engine is registered under ``name``.
    """
    key = _ALIASES.get(name, name)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise UnknownEngineError(name, available_engines()) from None


def available_engines() -> tuple[str, ...]:
    """Return the registered engine names, sorted."""
    return tuple(sorted(_REGISTRY))


def check_capabilities(engine: Engine, query: "Query") -> None:
    """Validate ``query`` against ``engine.capabilities``; raise before evaluation.

    Raises
    ------
    RestrictionViolation
        When the engine requires PPL membership and the query violates
        Definition 1 (same error the seed engines raised).
    EngineCapabilityError
        For every other capability violation, naming the engine and the
        violated capability.
    """
    caps = engine.capabilities
    if caps.requires_ppl and not query.is_ppl:
        query.require_ppl()
    if not caps.supports_variables and query.free_variables:
        names = ", ".join(sorted(query.free_variables))
        raise EngineCapabilityError(
            engine.name,
            "supports_variables",
            f"the expression uses variables {{{names}}}",
        )
    if caps.max_arity is not None and query.arity > caps.max_arity:
        raise EngineCapabilityError(
            engine.name,
            "max_arity",
            f"output arity {query.arity} exceeds the backend maximum {caps.max_arity}",
        )
    if not caps.supports_union and query.has_union:
        raise EngineCapabilityError(
            engine.name,
            "supports_union",
            "the expression contains a union/or (the backend is union-free)",
        )
    if caps.requires_variable_free and query.pplbin is None:
        raise EngineCapabilityError(
            engine.name,
            "requires_variable_free",
            "the expression has no Fig. 4 PPLbin form (condition N($x))",
        )
    if (
        not caps.supports_complement
        and query.pplbin is not None
        and query.pplbin.uses_complement()
    ):
        raise EngineCapabilityError(
            engine.name,
            "supports_complement",
            "the compiled PPLbin form contains 'except' "
            "(the set-based evaluator is complement-free)",
        )
