"""Deterministic fault injection for chaos testing the execution tier.

The supervised executor (:mod:`repro.corpus.executor`), the snapshot store
and the plan cache all call :func:`trip` at named *fault points*.  With no
plan armed the call is one global check — effectively free — so the hooks
stay compiled into production builds.  A plan arms a schedule of
:class:`FaultSpec` entries, each naming a point and (optionally) filtering
by call-site key and site; decisions that involve probability draw from a
per-spec seeded RNG, so a given schedule replays the same firing pattern
every run.

Fault points
------------
``worker_crash``
    Simulated worker death.  Inside a shard worker process (the harness is
    told via :func:`mark_worker`) the process exits immediately with
    :data:`KILL_EXIT_CODE` — a *real* ``BrokenProcessPool`` for the
    supervisor to handle.  In the parent (serial/threads strategies) it
    raises :class:`repro.errors.WorkerCrashError`, exercising the retry
    path instead.
``slow_query``
    Sleeps ``delay`` seconds at the point, then continues.
``corrupt_read``
    Raises :class:`repro.errors.FaultInjectedError`; the snapshot store and
    plan cache treat it like a corrupt blob (count a miss, fall back).
``pickle_error``
    Raises :class:`repro.errors.FaultInjectedError` after evaluation, where
    result marshalling would fail.
``member_crash``
    Simulated cluster-member death: the process exits immediately with
    :data:`KILL_EXIT_CODE`, wherever it is (members are top-level serving
    processes, not pool workers).  Tripped by the cluster member protocol
    per handled submission with ``key=<member id>`` and
    ``site=member.submit``, so ``REPRO_FAULTS="member_crash,
    match=member-1,times=1"`` kills exactly one member exactly once —
    respawned incarnations are distinguished by ``epoch`` (the supervisor
    marks each incarnation, so a default ``epoch=0``-less spec with
    ``times=1`` still fires once *per incarnation*; add ``epoch=0`` to
    crash only the first).

Schedules
---------
A schedule is specs separated by ``;``, each spec a point name followed by
comma-separated ``field=value`` pairs::

    REPRO_FAULTS="worker_crash,match=doc003,epoch=0;slow_query,rate=0.01,seed=7,delay=0.02"

Fields: ``match`` (fnmatch pattern on the key, default ``*``), ``site``
(fnmatch on the call site: ``worker``, ``serial``, ``threads``,
``degraded``, ``snapshot``, ``plan_cache``, ``compose``; default ``*``),
``times`` (max firings per process, default unlimited), ``rate``
(probability per matching hit, default 1.0), ``seed`` (RNG stream for the
rate decisions), ``delay`` (sleep seconds for ``slow_query``), ``epoch``
(only fire in the N-th incarnation of a shard worker — epoch 0 is the
first spawn; respawned workers get fresh per-process counters, so ``epoch``
is how a schedule says "crash once, then recover").

The plan ships to shard workers explicitly (fresh counters per worker
incarnation) via :func:`payload` / :func:`install_payload`; the parent's
counters never leak into workers and vice versa.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Optional, Sequence, Union

from repro.errors import FaultInjectedError, ReproError, WorkerCrashError

FAULTS_ENV = "REPRO_FAULTS"

#: The recognised fault points.
POINTS = ("worker_crash", "slow_query", "corrupt_read", "pickle_error", "member_crash")

#: Exit status used by an injected worker crash, distinguishable in core
#: dumps / CI logs from a python traceback exit.
KILL_EXIT_CODE = 87


class FaultPlanError(ReproError):
    """Raised for an unparseable ``REPRO_FAULTS`` schedule."""


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: a point plus filters and a firing budget."""

    point: str
    match: str = "*"
    site: str = "*"
    times: Optional[int] = None
    rate: float = 1.0
    seed: int = 0
    delay: float = 0.05
    epoch: Optional[int] = None

    def __post_init__(self) -> None:
        if self.point not in POINTS:
            raise FaultPlanError(
                f"unknown fault point {self.point!r}; expected one of {', '.join(POINTS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise FaultPlanError(f"fault rate must be in [0, 1], got {self.rate}")


_SPEC_FIELDS = {
    "match": str,
    "site": str,
    "times": int,
    "rate": float,
    "seed": int,
    "delay": float,
    "epoch": int,
}


def parse_spec(text: str) -> FaultSpec:
    """Parse one ``point,field=value,...`` spec."""
    head, *rest = [part.strip() for part in text.split(",") if part.strip()]
    fields: dict = {}
    for part in rest:
        name, sep, value = part.partition("=")
        name = name.strip()
        if not sep or name not in _SPEC_FIELDS:
            raise FaultPlanError(
                f"bad fault field {part!r} in {text!r}; "
                f"expected one of {', '.join(_SPEC_FIELDS)}"
            )
        try:
            fields[name] = _SPEC_FIELDS[name](value.strip())
        except ValueError as error:
            raise FaultPlanError(f"bad value for {name!r} in {text!r}") from error
    return FaultSpec(point=head, **fields)


def parse_plan(text: str) -> tuple[FaultSpec, ...]:
    """Parse a ``;``-separated schedule into specs."""
    return tuple(
        parse_spec(part) for part in text.split(";") if part.strip()
    )


class FaultPlan:
    """An armed schedule with per-spec hit/firing counters (thread-safe)."""

    def __init__(self, specs: Sequence[FaultSpec]) -> None:
        self.specs = tuple(specs)
        self._lock = threading.Lock()
        self._fired = [0] * len(self.specs)
        self._rngs = [random.Random(spec.seed) for spec in self.specs]

    def decide(self, point: str, key: str, site: str, epoch: int) -> Optional[FaultSpec]:
        """The first spec that fires for this hit, counting its budget."""
        with self._lock:
            for index, spec in enumerate(self.specs):
                if spec.point != point:
                    continue
                if spec.epoch is not None and spec.epoch != epoch:
                    continue
                if not fnmatchcase(key, spec.match):
                    continue
                if not fnmatchcase(site, spec.site):
                    continue
                if spec.times is not None and self._fired[index] >= spec.times:
                    continue
                if spec.rate < 1.0 and self._rngs[index].random() >= spec.rate:
                    continue
                self._fired[index] += 1
                return spec
        return None

    def stats(self) -> dict:
        with self._lock:
            return {
                "specs": len(self.specs),
                "fired": list(self._fired),
                "total_fired": sum(self._fired),
            }


_UNINITIALISED = object()
#: The module-global plan: ``_UNINITIALISED`` (consult the environment on
#: first use), ``None`` (explicitly disarmed) or a :class:`FaultPlan`.
_PLAN: Union[object, None, FaultPlan] = _UNINITIALISED
_IN_WORKER = False
_EPOCH = 0
_LOCK = threading.Lock()


def install(specs: Union[str, Sequence[FaultSpec]]) -> FaultPlan:
    """Arm a plan for this process (replacing any previous one)."""
    global _PLAN
    plan = FaultPlan(parse_plan(specs) if isinstance(specs, str) else specs)
    with _LOCK:
        _PLAN = plan
    return plan


def install_from_env(environ=os.environ) -> Optional[FaultPlan]:
    """Arm from ``REPRO_FAULTS``; disarm (and return None) when unset."""
    schedule = environ.get(FAULTS_ENV, "").strip()
    if not schedule:
        clear()
        return None
    return install(schedule)


def clear() -> None:
    """Disarm fault injection for this process."""
    global _PLAN
    with _LOCK:
        _PLAN = None


def reset() -> None:
    """Forget everything: the next :func:`trip` re-reads the environment.

    Test hygiene hook — also resets the worker flag and epoch.
    """
    global _PLAN, _IN_WORKER, _EPOCH
    with _LOCK:
        _PLAN = _UNINITIALISED
        _IN_WORKER = False
        _EPOCH = 0


def active() -> bool:
    """Whether a plan with at least one spec is armed."""
    plan = _plan()
    return plan is not None and bool(plan.specs)


def plan_stats() -> Optional[dict]:
    """Firing counters of the armed plan (None when disarmed)."""
    plan = _plan()
    return plan.stats() if plan is not None else None


def mark_worker(epoch: int = 0) -> None:
    """Flag this process as a sacrificial shard worker at ``epoch``."""
    global _IN_WORKER, _EPOCH
    _IN_WORKER = True
    _EPOCH = epoch


def in_worker() -> bool:
    return _IN_WORKER


def payload() -> Optional[tuple[FaultSpec, ...]]:
    """The armed specs in picklable form, for shipping to shard workers."""
    plan = _plan()
    return plan.specs if plan is not None and plan.specs else None


def install_payload(specs: Optional[Sequence[FaultSpec]], *, epoch: int = 0) -> None:
    """Worker-side arming: fresh counters, worker flag and epoch set."""
    mark_worker(epoch)
    if specs:
        install(specs)
    else:
        clear()


def _plan() -> Optional[FaultPlan]:
    global _PLAN
    plan = _PLAN
    if plan is _UNINITIALISED:
        with _LOCK:
            if _PLAN is _UNINITIALISED:
                schedule = os.environ.get(FAULTS_ENV, "").strip()
                _PLAN = FaultPlan(parse_plan(schedule)) if schedule else None
            plan = _PLAN
    return plan  # type: ignore[return-value]


def trip(point: str, key: str = "", site: str = "") -> None:
    """Fire the fault point if the armed plan says so.

    Disarmed: a global load and a comparison — safe on hot paths.
    """
    plan = _PLAN
    if plan is None:
        return
    plan = _plan()
    if plan is None:
        return
    spec = plan.decide(point, key, site, _EPOCH)
    if spec is None:
        return
    if point == "member_crash":
        # A cluster member is a top-level serving process: an injected
        # member kill is always a hard exit, exactly what SIGKILL or an
        # OOM kill looks like to the supervisor and to connected clients.
        os._exit(KILL_EXIT_CODE)
    if point == "worker_crash":
        if _IN_WORKER:
            # A real, unceremonious death: no cleanup handlers, no pickled
            # traceback — exactly what an OOM kill or native segfault looks
            # like to the parent's pool.
            os._exit(KILL_EXIT_CODE)
        raise WorkerCrashError(point, key)
    if point == "slow_query":
        time.sleep(spec.delay)
        return
    raise FaultInjectedError(point, key)
