"""Unranked sibling-ordered labeled trees.

The paper's data model (Section 2) is the standard XPath abstraction: an
unranked tree ``t = a(t1 ... tn)`` with node labels drawn from a finite
alphabet.  Attributes, data values and namespaces are deliberately ignored.

Two classes are provided:

* :class:`Node` — a lightweight mutable builder: a label and a list of child
  nodes.  Convenient for writing documents by hand and for generators.
* :class:`Tree` — the indexed, immutable runtime representation.  Nodes are
  identified by integers ``0 .. size-1`` in *document order* (preorder), which
  is what every evaluator in the library works with.  The constructor
  precomputes parents, child lists, sibling links, depths and preorder /
  postorder intervals so that ancestor/descendant tests are O(1).

All traversals are iterative, so arbitrarily deep documents do not hit
Python's recursion limit.
"""

from __future__ import annotations

import os
import sys
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.errors import TreeError

#: Default byte budget of one tree's matrix cache (axis relations, PPLbin
#: sub-expression relations and demand-driven rows).  Override per tree via
#: the ``matrix_cache_bytes`` constructor argument or process-wide with the
#: ``REPRO_MATRIX_CACHE_BYTES`` environment variable (empty string or ``0``
#: = unbounded, matching the seed's behaviour).
DEFAULT_MATRIX_CACHE_BYTES = 256 * 1024 * 1024

#: Sentinel distinguishing "use the default budget" from an explicit None
#: (= unbounded) in the :class:`Tree` constructor — the one shared instance
#: from :mod:`repro._config`, since :meth:`Tree.from_columns` receives it
#: across module boundaries (the snapshot loader forwards the store's
#: setting verbatim).
from repro._config import UNSET as _UNSET


def _default_cache_budget() -> Optional[int]:
    raw = os.environ.get("REPRO_MATRIX_CACHE_BYTES")
    if raw is None:
        return DEFAULT_MATRIX_CACHE_BYTES
    raw = raw.strip()
    if not raw or raw == "0":
        return None
    return int(raw)


def estimate_value_bytes(value) -> int:
    """Estimated resident bytes of one cached value.

    Numpy arrays and :class:`repro.pplbin.bitmatrix.Relation` objects both
    expose ``nbytes``; anything else (label tuples, small lists) falls back
    to ``sys.getsizeof``.  Shared by the per-tree :class:`MatrixCache` and
    the corpus :class:`repro.corpus.cache.AnswerCache`, so the two byte
    budgets can never diverge in how they charge the same objects.
    """
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        return int(nbytes) + 64
    return sys.getsizeof(value)


@dataclass(frozen=True)
class MatrixCacheStats:
    """Counters and footprint of one tree's matrix cache."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    current_bytes: int = 0
    max_bytes: Optional[int] = None
    entries: int = 0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "current_bytes": self.current_bytes,
            "max_bytes": self.max_bytes,
            "entries": self.entries,
        }


class MatrixCache:
    """A byte-budgeted LRU cache for per-tree matrices, relations and rows.

    Replaces the seed's unbounded plain dict (``tree.py``'s old
    ``matrix_cache``): every axis matrix, PPLbin sub-expression relation and
    demand-driven row lands here, accounted by its estimated footprint and
    evicted least-recently-used when the budget is exceeded.  Evicted
    entries are recomputable, so eviction only costs time.  The dict-style
    interface (``get`` / ``[] =`` / ``in``) is what the evaluators use; an
    entry larger than the whole budget is not stored at all.
    """

    def __init__(self, max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise TreeError("matrix cache budget must be non-negative (or None)")
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[object, tuple[object, int]]" = OrderedDict()
        self._lock = threading.Lock()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._insertions = 0
        self._evictions = 0

    def get(self, key, default=None):
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return entry[0]

    def peek(self, key, default=None):
        """Look up without touching the hit/miss counters or LRU order.

        For *speculative* probes — "is the full relation already there,
        before I take the row path?" — where an absence is the expected
        case, not a cache failure, and counting it would skew the hit-rate
        telemetry surfaced in ``QueryReport``/``ServerStats``.
        """
        with self._lock:
            entry = self._entries.get(key)
            return default if entry is None else entry[0]

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._entries

    def __getitem__(self, key):
        sentinel = object()
        value = self.get(key, sentinel)
        if value is sentinel:
            raise KeyError(key)
        return value

    def __setitem__(self, key, value) -> None:
        cost = estimate_value_bytes(value)
        with self._lock:
            if self.max_bytes is not None and cost > self.max_bytes:
                return
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._bytes -= previous[1]
            self._entries[key] = (value, cost)
            self._bytes += cost
            self._insertions += 1
            while self.max_bytes is not None and self._bytes > self.max_bytes:
                _, (_, evicted_cost) = self._entries.popitem(last=False)
                self._bytes -= evicted_cost
                self._evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def set_budget(self, max_bytes: Optional[int]) -> None:
        """Rebudget the cache in place, evicting LRU entries if it shrank.

        The budget is normally fixed at tree construction (argument or
        ``REPRO_MATRIX_CACHE_BYTES``); this exists so a policy layer (the
        Session's ``ExecutionPolicy.matrix_cache_bytes``) can apply an
        explicit budget to documents whose trees were built elsewhere.
        """
        if max_bytes is not None and max_bytes < 0:
            raise TreeError("matrix cache budget must be non-negative (or None)")
        with self._lock:
            self.max_bytes = max_bytes
            while self.max_bytes is not None and self._bytes > self.max_bytes:
                _, (_, evicted_cost) = self._entries.popitem(last=False)
                self._bytes -= evicted_cost
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    @property
    def stats(self) -> MatrixCacheStats:
        with self._lock:
            return MatrixCacheStats(
                hits=self._hits,
                misses=self._misses,
                insertions=self._insertions,
                evictions=self._evictions,
                current_bytes=self._bytes,
                max_bytes=self.max_bytes,
                entries=len(self._entries),
            )

    def __getstate__(self) -> dict:
        # Locks do not pickle; a cache is recomputable state, so ship empty.
        return {"max_bytes": self.max_bytes}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state.get("max_bytes"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MatrixCache(entries={len(self)}, bytes={self._bytes}, "
            f"max_bytes={self.max_bytes})"
        )


class Node:
    """A tree node used while *building* documents.

    Parameters
    ----------
    label:
        The node label (an element name in XML terms).
    children:
        Child nodes in sibling order.  They may be passed positionally
        (``Node("book", Node("author"), Node("title"))``) or as a single
        iterable.

    Examples
    --------
    >>> doc = Node("bib", Node("book", Node("author"), Node("title")))
    >>> doc.label
    'bib'
    >>> [child.label for child in doc.children]
    ['book']
    """

    __slots__ = ("label", "children")

    def __init__(self, label: str, *children: "Node | Iterable[Node]") -> None:
        self.label = label
        flat: list[Node] = []
        for child in children:
            if isinstance(child, Node):
                flat.append(child)
            else:
                flat.extend(child)
        self.children = flat

    def add(self, child: "Node") -> "Node":
        """Append ``child`` and return it (useful for fluent construction)."""
        self.children.append(child)
        return child

    def count(self) -> int:
        """Return the number of nodes in the subtree rooted here."""
        total = 0
        stack = [self]
        while stack:
            node = stack.pop()
            total += 1
            stack.extend(node.children)
        return total

    def to_tuple(self):
        """Return a nested ``(label, (child_tuples...))`` representation."""
        # Iterative post-order construction to avoid recursion limits.
        result: dict[int, tuple] = {}
        order: list[Node] = []
        stack = [self]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(node.children)
        for node in reversed(order):
            result[id(node)] = (node.label, tuple(result[id(c)] for c in node.children))
        return result[id(self)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.label!r}, {len(self.children)} children)"


def tree_from_tuple(data) -> "Tree":
    """Build a :class:`Tree` from a nested ``(label, children)`` tuple.

    ``data`` may also be a bare string, which denotes a leaf.

    Examples
    --------
    >>> t = tree_from_tuple(("a", (("b", ()), "c")))
    >>> t.size
    3
    """

    def build(item) -> Node:
        if isinstance(item, str):
            return Node(item)
        label, children = item
        root = Node(label)
        stack = [(root, list(children))]
        while stack:
            parent, kids = stack.pop()
            for kid in kids:
                if isinstance(kid, str):
                    parent.children.append(Node(kid))
                else:
                    child_label, grand = kid
                    child = Node(child_label)
                    parent.children.append(child)
                    stack.append((child, list(grand)))
        return root

    return Tree(build(data))


class Tree:
    """An indexed unranked tree.

    Node identifiers are integers assigned in preorder (document order); the
    root is always node ``0``.  The structure is immutable after construction.

    Parameters
    ----------
    root:
        The :class:`Node` to index.

    Notes
    -----
    The following arrays (Python lists) are exposed read-only:

    ``labels[u]``
        label of node ``u``.
    ``parent[u]``
        parent of ``u`` or ``None`` for the root.
    ``children_of[u]``
        tuple of children of ``u`` in sibling order.
    ``next_sibling[u]`` / ``prev_sibling[u]``
        the adjacent sibling or ``None``.
    ``depth[u]``
        number of edges from the root.
    ``pre[u]`` / ``post[u]``
        preorder and postorder numbers, used for O(1) ancestor tests and
        document-order comparisons (``pre[u] == u`` by construction).
    """

    __slots__ = (
        "size",
        "labels",
        "parent",
        "children_of",
        "next_sibling",
        "prev_sibling",
        "depth",
        "post",
        "subtree_end",
        "_label_index",
        "_matrix_cache",
    )

    def __init__(self, root: Node, matrix_cache_bytes=_UNSET) -> None:
        if not isinstance(root, Node):
            raise TreeError(f"Tree root must be a Node, got {type(root).__name__}")
        if matrix_cache_bytes is _UNSET:
            matrix_cache_bytes = _default_cache_budget()
        labels: list[str] = []
        parent: list[Optional[int]] = []
        children_of: list[list[int]] = []
        depth: list[int] = []

        # Iterative preorder numbering.
        stack: list[tuple[Node, Optional[int], int]] = [(root, None, 0)]
        while stack:
            node, par, dep = stack.pop()
            uid = len(labels)
            labels.append(node.label)
            parent.append(par)
            children_of.append([])
            depth.append(dep)
            if par is not None:
                children_of[par].append(uid)
            # Push children in reverse so they are popped left-to-right.
            for child in reversed(node.children):
                stack.append((child, uid, dep + 1))

        size = len(labels)
        next_sibling: list[Optional[int]] = [None] * size
        prev_sibling: list[Optional[int]] = [None] * size
        for kids in children_of:
            for left, right in zip(kids, kids[1:]):
                next_sibling[left] = right
                prev_sibling[right] = left

        # Postorder numbers and subtree extents.  A node's descendants are
        # exactly the preorder ids in (u, subtree_end[u]].
        post: list[int] = [0] * size
        subtree_end: list[int] = [0] * size
        counter = 0
        walk: list[tuple[int, bool]] = [(0, False)]
        while walk:
            node_id, processed = walk.pop()
            if processed:
                post[node_id] = counter
                counter += 1
                if children_of[node_id]:
                    subtree_end[node_id] = subtree_end[children_of[node_id][-1]]
                else:
                    subtree_end[node_id] = node_id
            else:
                walk.append((node_id, True))
                for child in reversed(children_of[node_id]):
                    walk.append((child, False))

        self.size = size
        self.labels = labels
        self.parent = parent
        self.children_of = [tuple(kids) for kids in children_of]
        self.next_sibling = next_sibling
        self.prev_sibling = prev_sibling
        self.depth = depth
        self.post = post
        self.subtree_end = subtree_end
        label_index: dict[str, list[int]] = {}
        for uid, label in enumerate(labels):
            label_index.setdefault(label, []).append(uid)
        self._label_index = {lab: tuple(ids) for lab, ids in label_index.items()}
        self._matrix_cache = MatrixCache(matrix_cache_bytes)

    @classmethod
    def from_columns(
        cls,
        *,
        labels: list[str],
        parent: list[Optional[int]],
        depth: list[int],
        post: list[int],
        subtree_end: list[int],
        matrix_cache_bytes=_UNSET,
    ) -> "Tree":
        """Rebuild a tree directly from its columnar arrays, skipping parsing.

        This is the snapshot fast path (:mod:`repro.snapshot`): the caller
        provides the preorder-indexed columns exactly as the constructor
        would have computed them — ``labels``, ``parent`` (``None`` at the
        root), ``depth``, ``post`` and ``subtree_end`` — and only the
        derived links (child lists, sibling links, label index) are rebuilt
        here in one O(n) pass.  No structural validation happens beyond
        what the derivation needs; snapshot loading validates the columns
        before calling (see :func:`repro.snapshot.codec.decode_snapshot`).
        """
        size = len(labels)
        if size == 0 or parent[0] is not None:
            raise TreeError("columnar tree must have a parentless root at node 0")
        tree = cls.__new__(cls)
        children_of: list[list[int]] = [[] for _ in range(size)]
        next_sibling: list[Optional[int]] = [None] * size
        prev_sibling: list[Optional[int]] = [None] * size
        for uid in range(1, size):
            par = parent[uid]
            kids = children_of[par]
            if kids:
                left = kids[-1]
                next_sibling[left] = uid
                prev_sibling[uid] = left
            kids.append(uid)
        tree.size = size
        tree.labels = labels
        tree.parent = parent
        tree.children_of = [tuple(kids) for kids in children_of]
        tree.next_sibling = next_sibling
        tree.prev_sibling = prev_sibling
        tree.depth = depth
        tree.post = post
        tree.subtree_end = subtree_end
        label_index: dict[str, list[int]] = {}
        for uid, label in enumerate(labels):
            label_index.setdefault(label, []).append(uid)
        tree._label_index = {lab: tuple(ids) for lab, ids in label_index.items()}
        if matrix_cache_bytes is _UNSET:
            matrix_cache_bytes = _default_cache_budget()
        tree._matrix_cache = MatrixCache(matrix_cache_bytes)
        return tree

    # ------------------------------------------------------------------ basic
    def nodes(self) -> range:
        """Return all node identifiers in document order."""
        return range(self.size)

    def label(self, node: int) -> str:
        """Return the label of ``node``."""
        self._check(node)
        return self.labels[node]

    def nodes_with_label(self, label: str) -> tuple[int, ...]:
        """Return all nodes carrying ``label`` in document order."""
        return self._label_index.get(label, ())

    def alphabet(self) -> frozenset[str]:
        """Return the set of labels occurring in the tree."""
        return frozenset(self._label_index)

    def root(self) -> int:
        """Return the root node identifier (always ``0``)."""
        return 0

    def children(self, node: int) -> tuple[int, ...]:
        """Return the children of ``node`` in sibling order."""
        self._check(node)
        return self.children_of[node]

    def is_leaf(self, node: int) -> bool:
        """Return True when ``node`` has no children."""
        self._check(node)
        return not self.children_of[node]

    # ----------------------------------------------------------- order tests
    def is_ancestor(self, ancestor: int, descendant: int) -> bool:
        """Return True when ``ancestor`` is a *strict* ancestor of ``descendant``."""
        self._check(ancestor)
        self._check(descendant)
        return ancestor < descendant <= self.subtree_end[ancestor]

    def is_ancestor_or_self(self, ancestor: int, descendant: int) -> bool:
        """Return True when ``ancestor`` equals or is an ancestor of ``descendant``."""
        self._check(ancestor)
        self._check(descendant)
        return ancestor <= descendant <= self.subtree_end[ancestor]

    def document_order(self, left: int, right: int) -> int:
        """Compare two nodes in document order (-1, 0 or 1)."""
        self._check(left)
        self._check(right)
        if left == right:
            return 0
        return -1 if left < right else 1

    def least_common_ancestor(self, first: int, second: int) -> int:
        """Return the least common ancestor of two nodes."""
        self._check(first)
        self._check(second)
        u, v = first, second
        while not self.is_ancestor_or_self(u, v):
            parent = self.parent[u]
            assert parent is not None, "root is an ancestor of every node"
            u = parent
        return u

    # ------------------------------------------------------------- traversal
    def descendants(self, node: int) -> range:
        """Return the strict descendants of ``node`` (document order)."""
        self._check(node)
        return range(node + 1, self.subtree_end[node] + 1)

    def ancestors(self, node: int) -> Iterator[int]:
        """Yield the strict ancestors of ``node``, nearest first."""
        self._check(node)
        current = self.parent[node]
        while current is not None:
            yield current
            current = self.parent[current]

    def following_siblings(self, node: int) -> Iterator[int]:
        """Yield the following siblings of ``node``, nearest first."""
        self._check(node)
        current = self.next_sibling[node]
        while current is not None:
            yield current
            current = self.next_sibling[current]

    def preceding_siblings(self, node: int) -> Iterator[int]:
        """Yield the preceding siblings of ``node``, nearest first."""
        self._check(node)
        current = self.prev_sibling[node]
        while current is not None:
            yield current
            current = self.prev_sibling[current]

    def subtree(self, node: int) -> "Tree":
        """Return a fresh :class:`Tree` for the subtree rooted at ``node``.

        Node identifiers are renumbered; use :meth:`subtree_node_map` when the
        correspondence to the original identifiers is needed.
        """
        root, _ = self._rebuild(node)
        return Tree(root)

    def subtree_node_map(self, node: int) -> dict[int, int]:
        """Return the map from original ids to ids in :meth:`subtree`."""
        _, mapping = self._rebuild(node)
        return mapping

    def _rebuild(self, node: int) -> tuple[Node, dict[int, int]]:
        self._check(node)
        mapping: dict[int, int] = {}
        builders: dict[int, Node] = {}
        for offset, original in enumerate(range(node, self.subtree_end[node] + 1)):
            mapping[original] = offset
            builders[original] = Node(self.labels[original])
        for original in range(node + 1, self.subtree_end[node] + 1):
            parent = self.parent[original]
            assert parent is not None
            builders[parent].children.append(builders[original])
        return builders[node], mapping

    def to_node(self) -> Node:
        """Return a mutable :class:`Node` copy of the whole tree."""
        root, _ = self._rebuild(0)
        return root

    def to_tuple(self):
        """Return the nested tuple representation of the tree."""
        return self.to_node().to_tuple()

    # --------------------------------------------------------------- helpers
    def matrix_cache(self) -> MatrixCache:
        """Return the per-tree byte-budgeted cache for axis/expression relations."""
        return self._matrix_cache

    def _check(self, node: int) -> None:
        if not isinstance(node, int) or isinstance(node, bool):
            raise TreeError(f"node identifiers are integers, got {node!r}")
        if not 0 <= node < self.size:
            raise TreeError(f"node {node} out of range for tree of size {self.size}")

    def __len__(self) -> int:
        return self.size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tree):
            return NotImplemented
        return (
            self.size == other.size
            and self.labels == other.labels
            and self.parent == other.parent
        )

    def __hash__(self) -> int:
        return hash((self.size, tuple(self.labels), tuple(self.parent)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tree(size={self.size}, root_label={self.labels[0]!r})"


def validate_parent_child_consistency(tree: Tree) -> None:
    """Raise :class:`TreeError` if the internal arrays are inconsistent.

    This is an internal sanity check used by tests; a correctly constructed
    :class:`Tree` always passes.
    """
    for node in tree.nodes():
        for child in tree.children(node):
            if tree.parent[child] != node:
                raise TreeError(f"child {child} does not point back to parent {node}")
        if tree.parent[node] is not None and node not in tree.children(tree.parent[node]):
            raise TreeError(f"node {node} missing from its parent's child list")
