"""Unranked sibling-ordered labeled trees.

The paper's data model (Section 2) is the standard XPath abstraction: an
unranked tree ``t = a(t1 ... tn)`` with node labels drawn from a finite
alphabet.  Attributes, data values and namespaces are deliberately ignored.

Two classes are provided:

* :class:`Node` — a lightweight mutable builder: a label and a list of child
  nodes.  Convenient for writing documents by hand and for generators.
* :class:`Tree` — the indexed, immutable runtime representation.  Nodes are
  identified by integers ``0 .. size-1`` in *document order* (preorder), which
  is what every evaluator in the library works with.  The constructor
  precomputes parents, child lists, sibling links, depths and preorder /
  postorder intervals so that ancestor/descendant tests are O(1).

All traversals are iterative, so arbitrarily deep documents do not hit
Python's recursion limit.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.errors import TreeError


class Node:
    """A tree node used while *building* documents.

    Parameters
    ----------
    label:
        The node label (an element name in XML terms).
    children:
        Child nodes in sibling order.  They may be passed positionally
        (``Node("book", Node("author"), Node("title"))``) or as a single
        iterable.

    Examples
    --------
    >>> doc = Node("bib", Node("book", Node("author"), Node("title")))
    >>> doc.label
    'bib'
    >>> [child.label for child in doc.children]
    ['book']
    """

    __slots__ = ("label", "children")

    def __init__(self, label: str, *children: "Node | Iterable[Node]") -> None:
        self.label = label
        flat: list[Node] = []
        for child in children:
            if isinstance(child, Node):
                flat.append(child)
            else:
                flat.extend(child)
        self.children = flat

    def add(self, child: "Node") -> "Node":
        """Append ``child`` and return it (useful for fluent construction)."""
        self.children.append(child)
        return child

    def count(self) -> int:
        """Return the number of nodes in the subtree rooted here."""
        total = 0
        stack = [self]
        while stack:
            node = stack.pop()
            total += 1
            stack.extend(node.children)
        return total

    def to_tuple(self):
        """Return a nested ``(label, (child_tuples...))`` representation."""
        # Iterative post-order construction to avoid recursion limits.
        result: dict[int, tuple] = {}
        order: list[Node] = []
        stack = [self]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(node.children)
        for node in reversed(order):
            result[id(node)] = (node.label, tuple(result[id(c)] for c in node.children))
        return result[id(self)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.label!r}, {len(self.children)} children)"


def tree_from_tuple(data) -> "Tree":
    """Build a :class:`Tree` from a nested ``(label, children)`` tuple.

    ``data`` may also be a bare string, which denotes a leaf.

    Examples
    --------
    >>> t = tree_from_tuple(("a", (("b", ()), "c")))
    >>> t.size
    3
    """

    def build(item) -> Node:
        if isinstance(item, str):
            return Node(item)
        label, children = item
        root = Node(label)
        stack = [(root, list(children))]
        while stack:
            parent, kids = stack.pop()
            for kid in kids:
                if isinstance(kid, str):
                    parent.children.append(Node(kid))
                else:
                    child_label, grand = kid
                    child = Node(child_label)
                    parent.children.append(child)
                    stack.append((child, list(grand)))
        return root

    return Tree(build(data))


class Tree:
    """An indexed unranked tree.

    Node identifiers are integers assigned in preorder (document order); the
    root is always node ``0``.  The structure is immutable after construction.

    Parameters
    ----------
    root:
        The :class:`Node` to index.

    Notes
    -----
    The following arrays (Python lists) are exposed read-only:

    ``labels[u]``
        label of node ``u``.
    ``parent[u]``
        parent of ``u`` or ``None`` for the root.
    ``children_of[u]``
        tuple of children of ``u`` in sibling order.
    ``next_sibling[u]`` / ``prev_sibling[u]``
        the adjacent sibling or ``None``.
    ``depth[u]``
        number of edges from the root.
    ``pre[u]`` / ``post[u]``
        preorder and postorder numbers, used for O(1) ancestor tests and
        document-order comparisons (``pre[u] == u`` by construction).
    """

    __slots__ = (
        "size",
        "labels",
        "parent",
        "children_of",
        "next_sibling",
        "prev_sibling",
        "depth",
        "post",
        "subtree_end",
        "_label_index",
        "_matrix_cache",
    )

    def __init__(self, root: Node) -> None:
        if not isinstance(root, Node):
            raise TreeError(f"Tree root must be a Node, got {type(root).__name__}")
        labels: list[str] = []
        parent: list[Optional[int]] = []
        children_of: list[list[int]] = []
        depth: list[int] = []

        # Iterative preorder numbering.
        stack: list[tuple[Node, Optional[int], int]] = [(root, None, 0)]
        while stack:
            node, par, dep = stack.pop()
            uid = len(labels)
            labels.append(node.label)
            parent.append(par)
            children_of.append([])
            depth.append(dep)
            if par is not None:
                children_of[par].append(uid)
            # Push children in reverse so they are popped left-to-right.
            for child in reversed(node.children):
                stack.append((child, uid, dep + 1))

        size = len(labels)
        next_sibling: list[Optional[int]] = [None] * size
        prev_sibling: list[Optional[int]] = [None] * size
        for kids in children_of:
            for left, right in zip(kids, kids[1:]):
                next_sibling[left] = right
                prev_sibling[right] = left

        # Postorder numbers and subtree extents.  A node's descendants are
        # exactly the preorder ids in (u, subtree_end[u]].
        post: list[int] = [0] * size
        subtree_end: list[int] = [0] * size
        counter = 0
        walk: list[tuple[int, bool]] = [(0, False)]
        while walk:
            node_id, processed = walk.pop()
            if processed:
                post[node_id] = counter
                counter += 1
                if children_of[node_id]:
                    subtree_end[node_id] = subtree_end[children_of[node_id][-1]]
                else:
                    subtree_end[node_id] = node_id
            else:
                walk.append((node_id, True))
                for child in reversed(children_of[node_id]):
                    walk.append((child, False))

        self.size = size
        self.labels = labels
        self.parent = parent
        self.children_of = [tuple(kids) for kids in children_of]
        self.next_sibling = next_sibling
        self.prev_sibling = prev_sibling
        self.depth = depth
        self.post = post
        self.subtree_end = subtree_end
        label_index: dict[str, list[int]] = {}
        for uid, label in enumerate(labels):
            label_index.setdefault(label, []).append(uid)
        self._label_index = {lab: tuple(ids) for lab, ids in label_index.items()}
        self._matrix_cache: dict = {}

    # ------------------------------------------------------------------ basic
    def nodes(self) -> range:
        """Return all node identifiers in document order."""
        return range(self.size)

    def label(self, node: int) -> str:
        """Return the label of ``node``."""
        self._check(node)
        return self.labels[node]

    def nodes_with_label(self, label: str) -> tuple[int, ...]:
        """Return all nodes carrying ``label`` in document order."""
        return self._label_index.get(label, ())

    def alphabet(self) -> frozenset[str]:
        """Return the set of labels occurring in the tree."""
        return frozenset(self._label_index)

    def root(self) -> int:
        """Return the root node identifier (always ``0``)."""
        return 0

    def children(self, node: int) -> tuple[int, ...]:
        """Return the children of ``node`` in sibling order."""
        self._check(node)
        return self.children_of[node]

    def is_leaf(self, node: int) -> bool:
        """Return True when ``node`` has no children."""
        self._check(node)
        return not self.children_of[node]

    # ----------------------------------------------------------- order tests
    def is_ancestor(self, ancestor: int, descendant: int) -> bool:
        """Return True when ``ancestor`` is a *strict* ancestor of ``descendant``."""
        self._check(ancestor)
        self._check(descendant)
        return ancestor < descendant <= self.subtree_end[ancestor]

    def is_ancestor_or_self(self, ancestor: int, descendant: int) -> bool:
        """Return True when ``ancestor`` equals or is an ancestor of ``descendant``."""
        self._check(ancestor)
        self._check(descendant)
        return ancestor <= descendant <= self.subtree_end[ancestor]

    def document_order(self, left: int, right: int) -> int:
        """Compare two nodes in document order (-1, 0 or 1)."""
        self._check(left)
        self._check(right)
        if left == right:
            return 0
        return -1 if left < right else 1

    def least_common_ancestor(self, first: int, second: int) -> int:
        """Return the least common ancestor of two nodes."""
        self._check(first)
        self._check(second)
        u, v = first, second
        while not self.is_ancestor_or_self(u, v):
            parent = self.parent[u]
            assert parent is not None, "root is an ancestor of every node"
            u = parent
        return u

    # ------------------------------------------------------------- traversal
    def descendants(self, node: int) -> range:
        """Return the strict descendants of ``node`` (document order)."""
        self._check(node)
        return range(node + 1, self.subtree_end[node] + 1)

    def ancestors(self, node: int) -> Iterator[int]:
        """Yield the strict ancestors of ``node``, nearest first."""
        self._check(node)
        current = self.parent[node]
        while current is not None:
            yield current
            current = self.parent[current]

    def following_siblings(self, node: int) -> Iterator[int]:
        """Yield the following siblings of ``node``, nearest first."""
        self._check(node)
        current = self.next_sibling[node]
        while current is not None:
            yield current
            current = self.next_sibling[current]

    def preceding_siblings(self, node: int) -> Iterator[int]:
        """Yield the preceding siblings of ``node``, nearest first."""
        self._check(node)
        current = self.prev_sibling[node]
        while current is not None:
            yield current
            current = self.prev_sibling[current]

    def subtree(self, node: int) -> "Tree":
        """Return a fresh :class:`Tree` for the subtree rooted at ``node``.

        Node identifiers are renumbered; use :meth:`subtree_node_map` when the
        correspondence to the original identifiers is needed.
        """
        root, _ = self._rebuild(node)
        return Tree(root)

    def subtree_node_map(self, node: int) -> dict[int, int]:
        """Return the map from original ids to ids in :meth:`subtree`."""
        _, mapping = self._rebuild(node)
        return mapping

    def _rebuild(self, node: int) -> tuple[Node, dict[int, int]]:
        self._check(node)
        mapping: dict[int, int] = {}
        builders: dict[int, Node] = {}
        for offset, original in enumerate(range(node, self.subtree_end[node] + 1)):
            mapping[original] = offset
            builders[original] = Node(self.labels[original])
        for original in range(node + 1, self.subtree_end[node] + 1):
            parent = self.parent[original]
            assert parent is not None
            builders[parent].children.append(builders[original])
        return builders[node], mapping

    def to_node(self) -> Node:
        """Return a mutable :class:`Node` copy of the whole tree."""
        root, _ = self._rebuild(0)
        return root

    def to_tuple(self):
        """Return the nested tuple representation of the tree."""
        return self.to_node().to_tuple()

    # --------------------------------------------------------------- helpers
    def matrix_cache(self) -> dict:
        """Return the per-tree cache used for axis/expression matrices."""
        return self._matrix_cache

    def _check(self, node: int) -> None:
        if not isinstance(node, int) or isinstance(node, bool):
            raise TreeError(f"node identifiers are integers, got {node!r}")
        if not 0 <= node < self.size:
            raise TreeError(f"node {node} out of range for tree of size {self.size}")

    def __len__(self) -> int:
        return self.size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tree):
            return NotImplemented
        return (
            self.size == other.size
            and self.labels == other.labels
            and self.parent == other.parent
        )

    def __hash__(self) -> int:
        return hash((self.size, tuple(self.labels), tuple(self.parent)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tree(size={self.size}, root_label={self.labels[0]!r})"


def validate_parent_child_consistency(tree: Tree) -> None:
    """Raise :class:`TreeError` if the internal arrays are inconsistent.

    This is an internal sanity check used by tests; a correctly constructed
    :class:`Tree` always passes.
    """
    for node in tree.nodes():
        for child in tree.children(node):
            if tree.parent[child] != node:
                raise TreeError(f"child {child} does not point back to parent {node}")
        if tree.parent[node] is not None and node not in tree.children(tree.parent[node]):
            raise TreeError(f"node {node} missing from its parent's child list")
