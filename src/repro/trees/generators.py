"""Deterministic synthetic tree generators.

These are the structural generators used by the test-suite and the benchmark
harness: random trees of controlled size and shape, and simple parametric
shapes (chains, stars, complete k-ary trees).  Domain-specific document
generators (bibliographies, restaurant listings) live in
:mod:`repro.workloads`.

All generators take an explicit ``seed`` (or a :class:`random.Random`
instance) so benchmark runs are reproducible.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import TreeError
from repro.trees.tree import Node, Tree

#: Default label alphabet for random trees.
DEFAULT_ALPHABET: tuple[str, ...] = ("a", "b", "c", "d")


def chain_tree(length: int, label: str = "a") -> Tree:
    """Return a unary chain of ``length`` nodes (maximum depth shape)."""
    if length < 1:
        raise TreeError("chain_tree requires length >= 1")
    root = Node(label)
    current = root
    for _ in range(length - 1):
        current = current.add(Node(label))
    return Tree(root)


def star_tree(fanout: int, root_label: str = "r", leaf_label: str = "a") -> Tree:
    """Return a root with ``fanout`` leaf children (maximum width shape)."""
    if fanout < 0:
        raise TreeError("star_tree requires fanout >= 0")
    return Tree(Node(root_label, *(Node(leaf_label) for _ in range(fanout))))


def complete_tree(arity: int, depth: int, labels: Sequence[str] = DEFAULT_ALPHABET) -> Tree:
    """Return the complete ``arity``-ary tree of the given ``depth``.

    Node labels cycle through ``labels`` by depth, so label tests select
    whole levels.  Depth 0 is a single root node.
    """
    if arity < 1:
        raise TreeError("complete_tree requires arity >= 1")
    if depth < 0:
        raise TreeError("complete_tree requires depth >= 0")
    root = Node(labels[0])
    frontier = [root]
    for level in range(1, depth + 1):
        label = labels[level % len(labels)]
        next_frontier = []
        for parent in frontier:
            for _ in range(arity):
                next_frontier.append(parent.add(Node(label)))
        frontier = next_frontier
    return Tree(root)


def random_tree(
    size: int,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    seed: int | random.Random = 0,
    max_fanout: int | None = None,
) -> Tree:
    """Return a uniformly grown random tree with exactly ``size`` nodes.

    Each new node picks its parent uniformly among existing nodes (a random
    recursive tree), optionally capped at ``max_fanout`` children per node,
    and a label uniformly from ``alphabet``.

    Parameters
    ----------
    size:
        Number of nodes (must be >= 1).
    alphabet:
        Labels to draw from.
    seed:
        Integer seed or a :class:`random.Random` instance.
    max_fanout:
        When given, parents that already have this many children are not
        eligible; the tree becomes deeper as a result.
    """
    if size < 1:
        raise TreeError("random_tree requires size >= 1")
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    nodes = [Node(rng.choice(list(alphabet)))]
    fanouts = [0]
    for _ in range(size - 1):
        candidates = range(len(nodes))
        if max_fanout is not None:
            candidates = [i for i in candidates if fanouts[i] < max_fanout]
            if not candidates:
                raise TreeError("max_fanout too small to place all nodes")
        parent_index = rng.choice(list(candidates))
        child = Node(rng.choice(list(alphabet)))
        nodes[parent_index].children.append(child)
        fanouts[parent_index] += 1
        nodes.append(child)
        fanouts.append(0)
    return Tree(nodes[0])


def random_shallow_tree(
    size: int,
    depth_limit: int,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    seed: int | random.Random = 0,
) -> Tree:
    """Return a random tree whose depth never exceeds ``depth_limit``.

    Shallow, bushy documents are typical of data-centric XML (bibliographies,
    product catalogs) and are the shape the paper's motivating examples have.
    """
    if size < 1:
        raise TreeError("random_shallow_tree requires size >= 1")
    if depth_limit < 0:
        raise TreeError("depth_limit must be >= 0")
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    root = Node(rng.choice(list(alphabet)))
    nodes = [(root, 0)]
    for _ in range(size - 1):
        eligible = [entry for entry in nodes if entry[1] < depth_limit]
        parent, depth = rng.choice(eligible) if eligible else nodes[0]
        child = Node(rng.choice(list(alphabet)))
        parent.children.append(child)
        nodes.append((child, depth + 1))
    return Tree(root)


def binary_random_tree(size: int, alphabet: Sequence[str] = DEFAULT_ALPHABET,
                       seed: int | random.Random = 0) -> Tree:
    """Return a random tree in which every node has at most two children.

    Used by the Section 8 machinery which works over binary trees.
    """
    return random_tree(size, alphabet=alphabet, seed=seed, max_fanout=2)
