"""XPath axes over unranked trees.

The paper (Fig. 1) uses the axes ``self``, ``child``, ``parent``,
``descendant``, ``ancestor``, ``following_sibling`` and ``preceding_sibling``.
We additionally provide the standard derived axes (``descendant-or-self``,
``ancestor-or-self``, ``following``, ``preceding``) and the primitive steps
``firstchild``, ``nextsibling`` and ``previoussibling`` used by the binary
encoding and by the FO signature of Section 2 (``ch`` and ``ns``).

Three access paths are offered, each backing one of the evaluators:

* :func:`iter_axis` — lazily iterate the nodes reachable from one node.
* :func:`axis_pairs` — the full binary relation as a set of pairs.
* :func:`axis_matrix` — the relation as a ``|t| x |t|`` Boolean numpy matrix
  (used by the PPLbin matrix evaluator of Theorem 2).  Matrices are cached on
  the tree.
"""

from __future__ import annotations

import enum
from typing import Iterator

import numpy as np

from repro.errors import TreeError
from repro.obs import trace as _trace
from repro.trees.tree import Tree


class Axis(str, enum.Enum):
    """Enumeration of the supported navigation axes."""

    SELF = "self"
    CHILD = "child"
    PARENT = "parent"
    DESCENDANT = "descendant"
    ANCESTOR = "ancestor"
    DESCENDANT_OR_SELF = "descendant-or-self"
    ANCESTOR_OR_SELF = "ancestor-or-self"
    FOLLOWING_SIBLING = "following-sibling"
    PRECEDING_SIBLING = "preceding-sibling"
    FOLLOWING = "following"
    PRECEDING = "preceding"
    FIRST_CHILD = "firstchild"
    NEXT_SIBLING = "nextsibling"
    PREVIOUS_SIBLING = "previoussibling"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: All axes, in a stable order (useful for generators and tests).
AXES: tuple[Axis, ...] = tuple(Axis)

#: Axes that appear in the paper's Core XPath 2.0 grammar (Fig. 1).
CORE_AXES: tuple[Axis, ...] = (
    Axis.SELF,
    Axis.CHILD,
    Axis.PARENT,
    Axis.DESCENDANT,
    Axis.ANCESTOR,
    Axis.FOLLOWING_SIBLING,
    Axis.PRECEDING_SIBLING,
)

_ALIASES = {
    "self": Axis.SELF,
    "child": Axis.CHILD,
    "parent": Axis.PARENT,
    "descendant": Axis.DESCENDANT,
    "ancestor": Axis.ANCESTOR,
    "descendant-or-self": Axis.DESCENDANT_OR_SELF,
    "descendant_or_self": Axis.DESCENDANT_OR_SELF,
    "ancestor-or-self": Axis.ANCESTOR_OR_SELF,
    "ancestor_or_self": Axis.ANCESTOR_OR_SELF,
    "following-sibling": Axis.FOLLOWING_SIBLING,
    "following_sibling": Axis.FOLLOWING_SIBLING,
    "preceding-sibling": Axis.PRECEDING_SIBLING,
    "preceding_sibling": Axis.PRECEDING_SIBLING,
    "following": Axis.FOLLOWING,
    "preceding": Axis.PRECEDING,
    "firstchild": Axis.FIRST_CHILD,
    "first-child": Axis.FIRST_CHILD,
    "first_child": Axis.FIRST_CHILD,
    "nextsibling": Axis.NEXT_SIBLING,
    "next-sibling": Axis.NEXT_SIBLING,
    "next_sibling": Axis.NEXT_SIBLING,
    "previoussibling": Axis.PREVIOUS_SIBLING,
    "previous-sibling": Axis.PREVIOUS_SIBLING,
    "previous_sibling": Axis.PREVIOUS_SIBLING,
}

#: The inverse of every axis, used by Proposition 8 (closure under inverse).
INVERSE_AXIS: dict[Axis, Axis] = {
    Axis.SELF: Axis.SELF,
    Axis.CHILD: Axis.PARENT,
    Axis.PARENT: Axis.CHILD,
    Axis.DESCENDANT: Axis.ANCESTOR,
    Axis.ANCESTOR: Axis.DESCENDANT,
    Axis.DESCENDANT_OR_SELF: Axis.ANCESTOR_OR_SELF,
    Axis.ANCESTOR_OR_SELF: Axis.DESCENDANT_OR_SELF,
    Axis.FOLLOWING_SIBLING: Axis.PRECEDING_SIBLING,
    Axis.PRECEDING_SIBLING: Axis.FOLLOWING_SIBLING,
    Axis.FOLLOWING: Axis.PRECEDING,
    Axis.PRECEDING: Axis.FOLLOWING,
    Axis.FIRST_CHILD: Axis.PARENT,  # not a true inverse; parent of a first child
    Axis.NEXT_SIBLING: Axis.PREVIOUS_SIBLING,
    Axis.PREVIOUS_SIBLING: Axis.NEXT_SIBLING,
}


def parse_axis(name: str) -> Axis:
    """Return the :class:`Axis` named ``name``.

    Both hyphenated (``following-sibling``) and underscore (``following_sibling``)
    spellings are accepted, matching the paper's typography and XPath syntax.
    """
    try:
        return _ALIASES[name.strip().lower()]
    except KeyError:
        raise TreeError(f"unknown axis {name!r}") from None


def iter_axis(tree: Tree, axis: Axis, node: int) -> Iterator[int]:
    """Yield the nodes reachable from ``node`` along ``axis``.

    Nodes are produced in the natural order of the axis (document order for
    forward axes, reverse document order for backward axes).
    """
    if axis is Axis.SELF:
        yield node
    elif axis is Axis.CHILD:
        yield from tree.children(node)
    elif axis is Axis.PARENT:
        parent = tree.parent[node]
        if parent is not None:
            yield parent
    elif axis is Axis.DESCENDANT:
        yield from tree.descendants(node)
    elif axis is Axis.ANCESTOR:
        yield from tree.ancestors(node)
    elif axis is Axis.DESCENDANT_OR_SELF:
        yield node
        yield from tree.descendants(node)
    elif axis is Axis.ANCESTOR_OR_SELF:
        yield node
        yield from tree.ancestors(node)
    elif axis is Axis.FOLLOWING_SIBLING:
        yield from tree.following_siblings(node)
    elif axis is Axis.PRECEDING_SIBLING:
        yield from tree.preceding_siblings(node)
    elif axis is Axis.FOLLOWING:
        end = tree.subtree_end[node]
        for candidate in range(end + 1, tree.size):
            if not tree.is_ancestor(candidate, node):
                yield candidate
    elif axis is Axis.PRECEDING:
        for candidate in range(node - 1, -1, -1):
            if not tree.is_ancestor(candidate, node):
                yield candidate
    elif axis is Axis.FIRST_CHILD:
        kids = tree.children(node)
        if kids:
            yield kids[0]
    elif axis is Axis.NEXT_SIBLING:
        sibling = tree.next_sibling[node]
        if sibling is not None:
            yield sibling
    elif axis is Axis.PREVIOUS_SIBLING:
        sibling = tree.prev_sibling[node]
        if sibling is not None:
            yield sibling
    else:  # pragma: no cover - exhaustive enum
        raise TreeError(f"unsupported axis {axis!r}")


def axis_nodes(tree: Tree, axis: Axis, node: int) -> frozenset[int]:
    """Return the set of nodes reachable from ``node`` along ``axis``."""
    return frozenset(iter_axis(tree, axis, node))


def axis_pairs(tree: Tree, axis: Axis) -> frozenset[tuple[int, int]]:
    """Return the full binary relation of ``axis`` on ``tree`` as node pairs."""
    pairs = set()
    for node in tree.nodes():
        for target in iter_axis(tree, axis, node):
            pairs.add((node, target))
    return frozenset(pairs)


def axis_relation(tree: Tree, axis: Axis, kernel=None):
    """Return the axis relation as a :class:`repro.pplbin.bitmatrix.Relation`.

    The relation is built *directly* in the kernel's representation from the
    per-node successor lists — packed word rows for the bitset kernel,
    successor arrays for the sparse one — without a dense intermediate, and
    cached on the tree per ``(axis, kernel)``.

    ``kernel`` is a kernel name, instance or ``None`` (the process default);
    see :mod:`repro.pplbin.bitmatrix`.
    """
    from repro.pplbin import bitmatrix

    resolved = bitmatrix.get_kernel(kernel)
    cache = tree.matrix_cache()
    key = ("axis-rel", axis, resolved.cache_token)
    cached = cache.get(key)
    if cached is not None:
        return cached
    with _trace.span("axis.relation", axis=axis.value, kernel=resolved.name):
        relation = resolved.from_rows(
            tree.size, (list(iter_axis(tree, axis, node)) for node in tree.nodes())
        )
    cache[key] = relation
    return relation


def axis_matrix(tree: Tree, axis: Axis) -> np.ndarray:
    """Return the axis relation as a Boolean matrix ``M[u, v]``.

    ``M[u, v]`` is True iff ``v`` is reachable from ``u`` along ``axis``.
    Backed by :func:`axis_relation` with the dense kernel, so matrices stay
    cached on the tree and repeated calls return the same read-only array.
    """
    return axis_relation(tree, axis, "dense").to_dense()


def label_vector(tree: Tree, label: str | None) -> np.ndarray:
    """Return a Boolean vector selecting nodes with ``label``.

    ``label`` of ``None`` (the ``*`` name test) selects every node.  The
    vector is cached on the tree and returned read-only.
    """
    cache = tree.matrix_cache()
    key = ("label", label)
    cached = cache.get(key)
    if cached is not None:
        return cached
    if label is None:
        vector = np.ones(tree.size, dtype=bool)
    else:
        vector = np.zeros(tree.size, dtype=bool)
        for node in tree.nodes_with_label(label):
            vector[node] = True
    vector.setflags(write=False)
    cache[key] = vector
    return vector


def successors(tree: Tree, axis: Axis, node: int, label: str | None = None) -> list[int]:
    """Return the ``axis::label`` successors of ``node`` as a list.

    This is the ``S_a(N)`` primitive of Core XPath 1.0 evaluation restricted
    to a single source node, with an optional name test applied to targets.
    """
    if label is None:
        return list(iter_axis(tree, axis, node))
    return [target for target in iter_axis(tree, axis, node) if tree.labels[target] == label]
