"""Firstchild/nextsibling binary encoding of unranked trees.

Section 8 of the paper lifts its FO-completeness proof from binary trees to
unranked trees through the classic firstchild-nextsibling encoding: the left
child of an encoded node is the first child of the original node, the right
child is its next sibling.  This module provides the encoding, the decoding,
and helpers mapping nodes back and forth, so translations can be tested for
semantics preservation.

The encoding adds a distinguished leaf label (``#`` by default) for missing
children so that the result is a *full* binary tree, which is what the
decomposition lemma of Section 8 manipulates (every inner node has exactly two
children).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TreeError
from repro.trees.tree import Node, Tree

#: Label used for padding leaves in the full binary encoding.
NIL_LABEL = "#"


class BinaryNode:
    """A node of a binary tree: a label and optional left/right children."""

    __slots__ = ("label", "left", "right")

    def __init__(
        self,
        label: str,
        left: Optional["BinaryNode"] = None,
        right: Optional["BinaryNode"] = None,
    ) -> None:
        self.label = label
        self.left = left
        self.right = right

    def size(self) -> int:
        """Return the number of nodes in this binary tree."""
        total = 0
        stack: list[Optional[BinaryNode]] = [self]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            total += 1
            stack.append(node.left)
            stack.append(node.right)
        return total

    def to_tuple(self):
        """Return a nested ``(label, left, right)`` tuple (``None`` for absent)."""
        memo: dict[int, tuple] = {}
        order: list[BinaryNode] = []
        stack = [self]
        while stack:
            node = stack.pop()
            order.append(node)
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        for node in reversed(order):
            left = memo[id(node.left)] if node.left is not None else None
            right = memo[id(node.right)] if node.right is not None else None
            memo[id(node)] = (node.label, left, right)
        return memo[id(self)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BinaryNode({self.label!r})"


def binary_encode(tree: Tree, pad: bool = False) -> BinaryNode:
    """Encode an unranked :class:`Tree` as a firstchild/nextsibling binary tree.

    Parameters
    ----------
    tree:
        The unranked tree to encode.
    pad:
        When True, missing children are materialised as leaves labeled
        :data:`NIL_LABEL`, producing a full binary tree.

    Notes
    -----
    The root of the encoding corresponds to the root of ``tree``; the root has
    no right child (the root has no siblings).
    """
    nodes: dict[int, BinaryNode] = {
        uid: BinaryNode(tree.labels[uid]) for uid in tree.nodes()
    }
    for uid in tree.nodes():
        kids = tree.children(uid)
        if kids:
            nodes[uid].left = nodes[kids[0]]
        sibling = tree.next_sibling[uid]
        if sibling is not None:
            nodes[uid].right = nodes[sibling]
    root = nodes[tree.root()]
    if pad:
        _pad_full(root)
    return root


def _pad_full(root: BinaryNode) -> None:
    """Replace absent children of inner nodes (and leaves) with NIL leaves."""
    stack = [root]
    while stack:
        node = stack.pop()
        if node.label == NIL_LABEL:
            continue
        if node.left is None:
            node.left = BinaryNode(NIL_LABEL)
        else:
            stack.append(node.left)
        if node.right is None:
            node.right = BinaryNode(NIL_LABEL)
        else:
            stack.append(node.right)


def binary_decode(root: BinaryNode) -> Tree:
    """Decode a firstchild/nextsibling binary tree back to an unranked tree.

    Padding leaves labeled :data:`NIL_LABEL` are ignored, so
    ``binary_decode(binary_encode(t, pad=True)) == t`` holds for every tree.

    Raises
    ------
    TreeError
        If the binary root has a right child (an unranked root cannot have a
        sibling).
    """
    if root.right is not None and root.right.label != NIL_LABEL:
        raise TreeError("binary root must not have a right child (root has no siblings)")

    def is_real(node: Optional[BinaryNode]) -> bool:
        return node is not None and node.label != NIL_LABEL

    result = Node(root.label)
    # Each stack entry maps a binary node to the unranked parent that should
    # receive it and whether it is the head of a sibling chain.
    stack: list[tuple[BinaryNode, Node]] = []
    if is_real(root.left):
        stack.append((root.left, result))  # type: ignore[arg-type]
    while stack:
        binary, parent = stack.pop()
        # Walk the right-spine: these are all children of ``parent``.
        chain: list[BinaryNode] = []
        current: Optional[BinaryNode] = binary
        while is_real(current):
            chain.append(current)  # type: ignore[arg-type]
            current = current.right  # type: ignore[union-attr]
        for element in chain:
            unranked = Node(element.label)
            parent.children.append(unranked)
            if is_real(element.left):
                stack.append((element.left, unranked))  # type: ignore[arg-type]
    return Tree(result)


def binary_to_unranked_tree(root: BinaryNode) -> Tree:
    """Index a binary tree *as is* (left/right children become children 1/2).

    This treats the binary tree as a plain unranked tree with at most two
    children per node, which is how Section 8's FO formulas over the signature
    ``{ch1, ch2, ch*}`` are interpreted by :mod:`repro.fo`.
    """
    def convert(node: BinaryNode) -> Node:
        result = Node(node.label)
        stack = [(node, result)]
        while stack:
            source, target = stack.pop()
            children = [child for child in (source.left, source.right) if child is not None]
            for child in children:
                converted = Node(child.label)
                target.children.append(converted)
                stack.append((child, converted))
        return result

    return Tree(convert(root))
