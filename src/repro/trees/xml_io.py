"""XML import/export for the tree data model.

The paper abstracts away attributes, namespaces and text content; this module
keeps only element structure and element names when reading XML, which is
exactly the Core XPath data model.  Export produces well-formed XML with one
element per node.

``xml.etree.ElementTree`` from the standard library is used purely as a
tokenizer for XML text — every query evaluator in this repository operates on
:class:`repro.trees.Tree` only.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from xml.sax.saxutils import escape

from repro.errors import TreeError
from repro.trees.tree import Node, Tree


def _strip_namespace(tag: str) -> str:
    """Drop a ``{namespace}`` prefix from an ElementTree tag."""
    if tag.startswith("{"):
        return tag.split("}", 1)[1]
    return tag


def tree_from_xml(text: str) -> Tree:
    """Parse an XML document string into a :class:`Tree`.

    Only element structure is kept; attributes, text and comments are
    discarded, matching the paper's data model.

    Raises
    ------
    TreeError
        If the input is not well-formed XML.
    """
    try:
        root_element = ET.fromstring(text)
    except ET.ParseError as exc:
        raise TreeError(f"invalid XML document: {exc}") from exc
    return Tree(_convert(root_element))


def tree_from_xml_file(path: str) -> Tree:
    """Parse the XML document stored at ``path`` into a :class:`Tree`."""
    try:
        root_element = ET.parse(path).getroot()
    except (ET.ParseError, OSError) as exc:
        raise TreeError(f"cannot read XML file {path!r}: {exc}") from exc
    return Tree(_convert(root_element))


def _convert(element: ET.Element) -> Node:
    """Convert an ElementTree element into a builder :class:`Node` iteratively."""
    root = Node(_strip_namespace(element.tag))
    stack = [(element, root)]
    while stack:
        source, target = stack.pop()
        for child in source:
            node = Node(_strip_namespace(child.tag))
            target.children.append(node)
            stack.append((child, node))
    return root


def tree_to_xml(tree: Tree, indent: bool = False) -> str:
    """Serialize ``tree`` back to XML text.

    Parameters
    ----------
    tree:
        The tree to serialize.
    indent:
        When True, pretty-print with two-space indentation (one element per
        line); otherwise produce a compact single-line document.
    """
    parts: list[str] = []

    # Iterative rendering with explicit open/close events.
    stack: list[tuple[int, bool]] = [(tree.root(), False)]
    while stack:
        node, closing = stack.pop()
        label = escape(tree.labels[node])
        pad = "  " * tree.depth[node] if indent else ""
        newline = "\n" if indent else ""
        if closing:
            parts.append(f"{pad}</{label}>{newline}")
            continue
        if tree.is_leaf(node):
            parts.append(f"{pad}<{label}/>{newline}")
            continue
        parts.append(f"{pad}<{label}>{newline}")
        stack.append((node, True))
        for child in reversed(tree.children(node)):
            stack.append((child, False))
    return "".join(parts).rstrip("\n") if indent else "".join(parts)
