"""Unranked sibling-ordered trees: the data model of Core XPath (substrate S1).

This package provides:

* :class:`~repro.trees.tree.Node` / :class:`~repro.trees.tree.Tree` — the
  immutable indexed tree structure used by every evaluator in the library.
* :mod:`~repro.trees.axes` — all XPath axes as iterators, node sets and
  Boolean matrices.
* :mod:`~repro.trees.xml_io` — import/export between XML text and trees.
* :mod:`~repro.trees.binary` — the firstchild/nextsibling binary encoding used
  in Section 8 of the paper.
* :mod:`~repro.trees.generators` — deterministic synthetic document
  generators (random trees, bibliographies, restaurant listings are in
  :mod:`repro.workloads`).
"""

from repro.trees.tree import Node, Tree, tree_from_tuple
from repro.trees.axes import (
    AXES,
    Axis,
    axis_matrix,
    axis_pairs,
    iter_axis,
)
from repro.trees.xml_io import tree_from_xml, tree_to_xml
from repro.trees.binary import BinaryNode, binary_decode, binary_encode

__all__ = [
    "Node",
    "Tree",
    "tree_from_tuple",
    "Axis",
    "AXES",
    "iter_axis",
    "axis_pairs",
    "axis_matrix",
    "tree_from_xml",
    "tree_to_xml",
    "BinaryNode",
    "binary_encode",
    "binary_decode",
]
