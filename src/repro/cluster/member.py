"""The cluster member process: one Session-backed server plus scatter logic.

A member is a full, shared-nothing serving process: its own
:class:`repro.session.Session` (store, executor pools, plan memo) over the
same corpus directory, persistent plan cache and snapshot directory as its
siblings.  What makes it *cluster-aware* is a routing table — the
supervisor's placement, broadcast via the ``cluster.place`` control op —
and a protocol subclass that scatters corpus-wide submissions across
document owners.

Topology (see :mod:`repro.cluster` for the full picture):

- every member accepts **client** connections on the shared public port
  (its own ``SO_REUSEPORT`` socket, or a duplicated single listener in
  fallback mode), so whichever member the kernel hands a connection to
  becomes that submission's *coordinator*;
- every member also listens on a private **internal** port (ephemeral,
  reported to the supervisor through the ready pipe) used for the
  supervisor's control ops and for peer-to-peer relays;
- a coordinator splits a submission by document ownership: its own
  documents evaluate locally, each remote group is relayed to its owner as
  a ``"scope": "local"`` submit (the marker stops the peer from
  re-scattering), and all result lines stream back to the client over the
  one connection, in completion order, tagged with ``"member"``.

Fault model: every member registers the *entire* corpus (placement limits
what it evaluates, not what it holds), so when a relay's peer dies
mid-stream the coordinator re-evaluates the not-yet-delivered remainder
locally — an accepted submission never loses documents to a member crash.
A dying *coordinator* drops its client connections; recovering that is the
client's job (:func:`repro.cluster.client.submit_retry` resubmits and
de-duplicates).  The ``member_crash`` fault point
(``REPRO_FAULTS="member_crash,match=member-1,times=1,epoch=0"``) trips at
the top of submission handling, so chaos runs kill a member exactly where
it hurts.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
from dataclasses import dataclass, field
from typing import Optional

from repro import faults
from repro.cluster.client import result_key
from repro.corpus.store import CorpusError
from repro.obs.http import OBS_PORT_ENV
from repro.serve.server import QUEUE_WAIT_HISTOGRAM
from repro.serve.protocol import (
    READ_LIMIT,
    ProtocolServer,
    _client_of,
    _submit_items,
    request_lines,
)
from repro.session.policy import ServingPolicy
from repro.session.session import Session


@dataclass(frozen=True)
class MemberConfig:
    """Everything a member process needs, in picklable form."""

    member_id: str
    #: Respawn generation, 0 for the first spawn.  Becomes the process's
    #: fault epoch (``repro.faults.mark_worker``), so chaos schedules can
    #: target "the first incarnation only" and let respawns survive.
    incarnation: int
    corpus_dir: str
    pattern: str = "*.xml"
    #: Host of the internal control/relay listener (and of peers).
    internal_host: str = "127.0.0.1"
    serving: ServingPolicy = field(default_factory=ServingPolicy)
    engine: Optional[str] = None
    strategy: Optional[str] = None
    max_workers: Optional[int] = None
    kernel: Optional[str] = None
    plan_cache_dir: Optional[str] = None
    snapshot_dir: Optional[str] = None


class ClusterMember:
    """The member-local cluster state: identity plus the routing table."""

    def __init__(self, config: MemberConfig) -> None:
        self.config = config
        self.member_id = config.member_id
        self.incarnation = config.incarnation
        #: member id -> (host, internal port) of every member, self included.
        self.routing: dict[str, tuple[str, int]] = {}
        #: document -> owning member id.
        self.owner_of: dict[str, str] = {}
        self.placement_version = 0
        #: Relay fallbacks taken, per unreachable peer (telemetry).
        self.fallbacks: dict[str, int] = {}

    def apply_placement(self, placement: dict, version: Optional[int] = None) -> int:
        """Install a supervisor-broadcast routing table; returns owned count.

        ``placement`` maps member id to ``{"addr": [host, port],
        "documents": [...]}``.  Replaced wholesale — the supervisor owns
        the table; the member only reads it.
        """
        routing: dict[str, tuple[str, int]] = {}
        owner_of: dict[str, str] = {}
        for member_id, entry in placement.items():
            addr = entry.get("addr")
            if addr:
                routing[str(member_id)] = (str(addr[0]), int(addr[1]))
            for name in entry.get("documents", ()):
                owner_of[str(name)] = str(member_id)
        self.routing = routing
        self.owner_of = owner_of
        self.placement_version = (
            int(version) if version is not None else self.placement_version + 1
        )
        return sum(1 for owner in owner_of.values() if owner == self.member_id)

    def has_placement(self) -> bool:
        return bool(self.owner_of)

    def owned(self) -> list[str]:
        return sorted(
            name for name, owner in self.owner_of.items() if owner == self.member_id
        )

    def note_fallback(self, peer: str) -> None:
        self.fallbacks[peer] = self.fallbacks.get(peer, 0) + 1


class MemberProtocol(ProtocolServer):
    """The base NDJSON protocol plus scatter-gather and ``cluster.*`` ops."""

    def __init__(self, server, *, session, member: ClusterMember) -> None:
        super().__init__(
            server,
            session=session,
            extensions={
                "cluster.place": self._op_place,
                "cluster.tune": self._op_tune,
                "cluster.describe": self._op_describe,
            },
        )
        self.member = member

    async def handle_connection(self, reader, writer) -> None:
        try:
            await super().handle_connection(reader, writer)
        except asyncio.CancelledError:
            # Loop shutdown (SIGTERM drain) cancels live connection handlers;
            # finishing quietly here keeps asyncio's done-callback from
            # logging every one of them as an unretrieved exception.
            return

    # ----------------------------------------------------------- control ops
    async def _op_place(self, request: dict) -> dict:
        """Install a placement broadcast (and adopt newly-appeared files)."""
        placement = request.get("placement")
        if not isinstance(placement, dict):
            raise ValueError("cluster.place needs a 'placement' object")
        if request.get("rescan"):
            # The supervisor saw new corpus files; register them before the
            # routing table starts pointing submissions at them.
            self.server.store.add_directory(
                self.member.config.corpus_dir, self.member.config.pattern
            )
        owned = self.member.apply_placement(placement, request.get("version"))
        return {
            "ok": True,
            "member_id": self.member.member_id,
            "owned": owned,
            "version": self.member.placement_version,
        }

    async def _op_tune(self, request: dict) -> dict:
        """Apply an autotune decision: resize the evaluation semaphore."""
        if "max_concurrent" not in request:
            raise ValueError("cluster.tune needs 'max_concurrent'")
        old = self.server.set_max_concurrent(int(request["max_concurrent"]))
        return {
            "ok": True,
            "member_id": self.member.member_id,
            "old": old,
            "max_concurrent": self.server.max_concurrent,
        }

    async def _op_describe(self, request: dict) -> dict:
        """The supervisor's scrape: stats, metrics, costs, health, identity.

        Loop-safe and cheap: the metrics payload is the server's own
        ``/metrics`` snapshot — request counters, gauges, latency
        histograms and the registries living in this process; shard-worker
        round-trips are deliberately avoided mid-scrape.
        """
        registry = self.server.metrics_snapshot()
        queue_wait = registry.get(QUEUE_WAIT_HISTOGRAM)
        return {
            "member_id": self.member.member_id,
            "incarnation": self.member.incarnation,
            "pid": os.getpid(),
            "placement_version": self.member.placement_version,
            "owned": len(self.member.owned()),
            "max_concurrent": self.server.max_concurrent,
            "stats": self.server.stats.to_dict(),
            # The *raw* histogram (bounds + bucket counts), not a quantile
            # summary: the supervisor's HistogramWindow diffs consecutive
            # bucket snapshots, so this is the field the autotune feeds on.
            "queue_wait_hist": queue_wait.to_dict() if queue_wait is not None else None,
            "metrics": registry.to_dict(),
            "doc_latencies": self.server.doc_latencies(),
            "health": self.server._health_payload(),
            "fallbacks": dict(self.member.fallbacks),
        }

    # --------------------------------------------------------------- scatter
    async def _handle_submit(
        self, request, request_id, writer, lock, connection
    ) -> None:
        faults.trip(
            "member_crash", key=self.member.member_id, site="member.submit"
        )
        if request.get("scope") == "local" or not self.member.has_placement():
            # A peer relay (never re-scatter), or no placement yet (serve
            # everything locally — a one-member cluster, or the window
            # before the first broadcast).
            await super()._handle_submit(request, request_id, writer, lock, connection)
            return
        await self._handle_scatter(request, request_id, writer, lock, connection)

    async def _handle_scatter(
        self, request, request_id, writer, lock, connection
    ) -> None:
        """Coordinate one corpus-wide submission across document owners."""
        items = _submit_items(request)
        docs = request.get("docs")
        names = list(docs) if docs is not None else sorted(self.server.store.names())
        for name in names:
            if name not in self.server.store:
                raise CorpusError(f"unknown document {name!r}")
        if request_id in connection.tokens:
            raise ValueError(
                f"submission id {request_id!r} is already in use on this "
                "connection; wait for its 'done' line or pick another id"
            )
        quota = self.policy.max_submissions_per_client
        if quota is not None and len(connection.tokens) >= quota:
            from repro.serve.server import ServerOverloadedError

            raise ServerOverloadedError(
                f"per-client submission quota reached "
                f"({len(connection.tokens)} active, limit {quota})"
            )
        groups: dict[str, list[str]] = {}
        for name in names:
            owner = self.member.owner_of.get(name, self.member.member_id)
            if owner not in self.member.routing:
                owner = self.member.member_id  # unknown peer: serve it here
            groups.setdefault(owner, []).append(name)
        local_names = groups.pop(self.member.member_id, [])

        engine = request.get("engine")
        ordered = bool(request.get("ordered", True))
        counters = {"delivered": 0, "fallbacks": 0, "cancelled": False}
        token = self._new_token()
        connection.tokens[request_id] = token
        loop = asyncio.get_running_loop()
        tasks: list[asyncio.Task] = []

        async def run_local(submission) -> None:
            async for result in submission:
                await self._send_result(
                    writer, lock, request_id, self.member.member_id, result
                )
                counters["delivered"] += 1
            if submission.cancelled:
                counters["cancelled"] = True

        try:
            local_submission = None
            if local_names:
                local_submission = await self.server.submit(
                    items,
                    local_names,
                    engine=engine,
                    ordered=ordered,
                    client=_client_of(writer),
                )
                token.on_cancel(local_submission.cancel)
                tasks.append(asyncio.create_task(run_local(local_submission)))
            for owner, owned_names in sorted(groups.items()):
                tasks.append(
                    asyncio.create_task(
                        self._relay(
                            owner,
                            owned_names,
                            request,
                            request_id,
                            writer,
                            lock,
                            counters,
                        )
                    )
                )

            def _cancel_tasks() -> None:
                counters["cancelled"] = True
                for task in tasks:
                    task.cancel()

            token.on_cancel(
                lambda: loop.call_soon_threadsafe(_cancel_tasks)
            )
            outcomes = await asyncio.gather(*tasks, return_exceptions=True)
            for outcome in outcomes:
                if isinstance(outcome, asyncio.CancelledError):
                    counters["cancelled"] = True
                elif isinstance(outcome, BaseException):
                    raise outcome
        except (asyncio.CancelledError, ConnectionError, OSError):
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            raise
        finally:
            connection.tokens.pop(request_id, None)
        await self._send(
            writer,
            lock,
            {
                "id": request_id,
                "type": "done",
                "results": counters["delivered"],
                "cancelled": counters["cancelled"],
                "fallbacks": counters["fallbacks"],
            },
        )

    async def _send_result(
        self, writer, lock, request_id, member_id: str, result
    ) -> None:
        await self._send(
            writer,
            lock,
            {
                "id": request_id,
                "type": "result",
                "doc": result.doc_name,
                "query": result.query,
                "variables": list(result.variables),
                "answers": sorted(list(answer) for answer in result.answers),
                "count": len(result.answers),
                "seconds": result.seconds,
                "member": member_id,
            },
        )

    async def _relay(
        self,
        owner: str,
        names: list[str],
        request: dict,
        request_id,
        writer,
        lock,
        counters: dict,
    ) -> None:
        """Stream one owner's document group from the peer, or fall back.

        De-duplication on fallback: result lines already delivered from the
        peer before it died are remembered by (document, query, variables) —
        the same identity :func:`repro.cluster.client.result_key` uses, so a
        submission carrying one query text under several variable tuples
        keeps every distinct line — and not re-sent; answers are
        deterministic, so the suppressed re-evaluation is byte-identical to
        what the client already has.
        """
        host, port = self.member.routing[owner]
        relay_request: dict = {
            "op": "submit",
            "id": 0,
            "scope": "local",
            "docs": list(names),
        }
        for key in ("query", "vars", "queries", "engine", "ordered"):
            if key in request:
                relay_request[key] = request[key]
        if self.policy.auth_token is not None:
            relay_request["auth"] = self.policy.auth_token
        seen: set[tuple] = set()
        complete = False
        try:
            async for payload in request_lines(host, port, relay_request):
                kind = payload.get("type")
                if kind == "result":
                    seen.add(result_key(payload))
                    forwarded = dict(payload)
                    forwarded["id"] = request_id
                    forwarded["member"] = owner
                    await self._send(writer, lock, forwarded)
                    counters["delivered"] += 1
                elif kind == "done":
                    if payload.get("cancelled"):
                        counters["cancelled"] = True
                    complete = True
        except (ConnectionError, OSError, EOFError, json.JSONDecodeError):
            complete = False
        if complete or counters["cancelled"]:
            return
        # The peer died (or refused) mid-group: evaluate the remainder
        # locally.  Every member holds the full corpus, so an accepted
        # submission never loses documents to a member crash.
        counters["fallbacks"] += 1
        self.member.note_fallback(owner)
        items = _submit_items(request)
        submission = await self.server.submit(
            items,
            names,
            engine=request.get("engine"),
            ordered=bool(request.get("ordered", True)),
            client=_client_of(writer),
        )
        async for result in submission:
            if (result.doc_name, result.query, tuple(result.variables)) in seen:
                continue
            await self._send_result(writer, lock, request_id, self.member.member_id, result)
            counters["delivered"] += 1
        if submission.cancelled:
            counters["cancelled"] = True


# ------------------------------------------------------------- process entry
def member_main(config: MemberConfig, client_sock: socket.socket, ready_conn) -> None:
    """Entry point of one member process (multiprocessing target).

    ``client_sock`` is the shared public listener (this member's
    ``SO_REUSEPORT`` socket, or the duplicated single listener in fallback
    mode); ``ready_conn`` is the supervisor's end of the ready handshake —
    the member sends its internal port and pid once both listeners are up,
    then closes it.
    """
    # The supervisor owns the HTTP observability endpoint; a member must
    # not race its siblings for REPRO_OBS_PORT.
    os.environ.pop(OBS_PORT_ENV, None)
    faults.install_from_env()
    faults.mark_worker(epoch=config.incarnation)
    try:
        asyncio.run(_member_async_main(config, client_sock, ready_conn))
    except KeyboardInterrupt:
        pass


async def _member_async_main(
    config: MemberConfig, client_sock: socket.socket, ready_conn
) -> None:
    session_kwargs: dict = {}
    if config.plan_cache_dir is not None:
        # Omitted otherwise: an explicit None would *disable* the session's
        # REPRO_PLAN_CACHE fallthrough instead of deferring to it.
        session_kwargs["plan_cache"] = config.plan_cache_dir
    session = Session(
        serving=config.serving,
        engine=config.engine,
        kernel=config.kernel,
        strategy=config.strategy,
        max_workers=config.max_workers,
        snapshot_dir=config.snapshot_dir,
        **session_kwargs,
    )
    try:
        session.add_directory(config.corpus_dir, config.pattern)
        server = session.server()
        member = ClusterMember(config)
        protocol = MemberProtocol(server, session=session, member=member)
        limit = config.serving.max_request_bytes or READ_LIMIT
        internal = await asyncio.start_server(
            protocol.handle_connection, config.internal_host, 0, limit=limit
        )
        public = await asyncio.start_server(
            protocol.handle_connection, sock=client_sock, limit=limit
        )
        internal_port = internal.sockets[0].getsockname()[1]
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        ready_conn.send(
            {
                "member_id": config.member_id,
                "incarnation": config.incarnation,
                "pid": os.getpid(),
                "internal_port": internal_port,
            }
        )
        ready_conn.close()
        await stop.wait()
        public.close()
        internal.close()
        await public.wait_closed()
        await internal.wait_closed()
    finally:
        await session.aclose()
