"""At-least-once cluster client: resubmit on coordinator death, de-dupe.

The cluster's internal fault handling makes a *member* crash invisible to
clients (the coordinator falls back to local evaluation), but a crashing
*coordinator* takes its client connections with it — the half of the story
only the client can finish.  :func:`submit_retry` finishes it: it submits,
and when the stream dies before its ``done`` line (connection reset, typed
``overloaded``/``closed`` rejection during a respawn window, or the
connection simply closing), it reconnects — landing on any live member,
that's what the shared port is for — and submits again with exponential
backoff.

At-least-once delivery is turned into exactly-once *results* by keying
every result line on ``(doc, query, variables)``: answers are
deterministic, so lines replayed by a retry overwrite byte-identical
entries instead of duplicating them.  The benchmark's chaos leg and the
member-kill test both count on this accounting to prove "zero lost
accepted queries".
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.errors import ReproError
from repro.serve.protocol import request_lines

#: Error kinds worth retrying: transient by construction.  ``bad-request``
#: and ``unauthorized`` are deterministic and retried never.
RETRYABLE_KINDS = ("overloaded", "closed")


class ClusterClientError(ReproError):
    """Submission failed permanently (non-retryable error or budget spent)."""


def result_key(line: dict) -> tuple:
    """The de-duplication key of one result line."""
    return (
        line.get("doc"),
        line.get("query"),
        tuple(line.get("variables") or ()),
    )


async def submit_retry(
    host: str,
    port: int,
    request: dict,
    *,
    attempts: int = 6,
    backoff: float = 0.2,
) -> dict:
    """Submit with at-least-once retry; returns de-duplicated results.

    ``request`` is a protocol submit request (``op``/``id`` are filled in
    here).  Returns ``{"results": {key: line}, "attempts": n,
    "retries": n-1}`` once some attempt's stream reaches its ``done`` line.
    Result lines accumulate *across* attempts — work a dying coordinator
    already delivered is kept, and replays overwrite identical entries.

    Raises :class:`ClusterClientError` on a non-retryable error line or
    when the attempt budget is spent.
    """
    results: dict[tuple, dict] = {}
    last_error: Optional[str] = None
    for attempt in range(attempts):
        if attempt:
            await asyncio.sleep(backoff * (2 ** (attempt - 1)))
        payload = dict(request)
        payload["op"] = "submit"
        payload["id"] = attempt
        finished = False
        try:
            async for line in request_lines(host, port, payload):
                kind = line.get("type")
                if kind == "result":
                    results[result_key(line)] = line
                elif kind == "done":
                    finished = True
                elif kind == "error":
                    last_error = line.get("error")
                    if line.get("kind") not in RETRYABLE_KINDS:
                        raise ClusterClientError(
                            f"submission refused: {last_error}"
                        )
        except (ConnectionError, OSError, EOFError, json.JSONDecodeError) as error:
            last_error = str(error)
            continue
        if finished:
            return {
                "results": results,
                "attempts": attempt + 1,
                "retries": attempt,
            }
    raise ClusterClientError(
        f"submission failed after {attempts} attempts"
        + (f" (last error: {last_error})" if last_error else "")
    )
