"""Cost-aware shard placement: who owns which document, and when to move.

The cluster's unit of work is the document: every query against a document
is evaluated by exactly one member (its *owner*), so balancing the cluster
means balancing the summed per-document cost across members.  Three pieces:

:class:`CostModel`
    Per-document cost estimates.  Before any traffic, the prior is the
    document's source size in bytes (tree size is roughly proportional,
    and reading a byte count is free — no parse).  Once members report
    measured execution latencies (``CorpusServer.doc_latencies`` via the
    ``cluster.describe`` op), an EWMA of observed mean seconds replaces
    the prior for that document, and the observed seconds-per-byte rate
    re-scales the prior of documents that have not been measured yet —
    so one hot document's measurements improve every cold estimate.

:func:`greedy_partition`
    LPT (longest-processing-time) greedy balanced partitioning: documents
    sorted by descending cost, each assigned to the currently least-loaded
    member.  Classic 4/3-approximation of the optimal makespan — more than
    good enough for costs that are themselves estimates.

:func:`rebalance`
    Incremental re-planning under a *bounded move budget*.  Moving a
    document invalidates the owner's warm caches (resident tree, answer
    cache, matrix cache), so placement churn is itself a cost: orphaned
    documents (new, or owned by a vanished/draining member) are re-homed
    for free, but load-smoothing moves of already-placed documents are
    capped by ``move_budget`` per re-plan.  The supervisor calls this on
    every placement tick; a stable cluster converges to zero moves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

#: Placement strategy names accepted by the supervisor / ServingPolicy.
STRATEGIES = ("cost", "round_robin")

#: Default cap on load-smoothing document moves per re-plan.
DEFAULT_MOVE_BUDGET = 4

#: EWMA weight of a new latency observation against the running estimate.
EWMA_ALPHA = 0.3


class CostModel:
    """Per-document cost estimates blending size priors with measurements."""

    def __init__(self, *, alpha: float = EWMA_ALPHA) -> None:
        self.alpha = alpha
        self._size_bytes: dict[str, float] = {}
        self._observed: dict[str, float] = {}

    # ------------------------------------------------------------------ feeds
    def set_size(self, name: str, size_bytes: float) -> None:
        """Register (or refresh) a document's size prior."""
        self._size_bytes[name] = max(1.0, float(size_bytes))

    def forget(self, name: str) -> None:
        """Drop a discarded document from both tables."""
        self._size_bytes.pop(name, None)
        self._observed.pop(name, None)

    def observe(self, name: str, mean_seconds: float) -> None:
        """Fold one member-reported mean execution latency into the EWMA."""
        if mean_seconds <= 0:
            return
        current = self._observed.get(name)
        if current is None:
            self._observed[name] = float(mean_seconds)
        else:
            self._observed[name] = (
                self.alpha * float(mean_seconds) + (1.0 - self.alpha) * current
            )

    def observe_report(self, latencies: Mapping[str, Mapping]) -> None:
        """Fold a ``CorpusServer.doc_latencies()`` payload (one member's)."""
        for name, entry in latencies.items():
            try:
                self.observe(name, float(entry["mean_seconds"]))
            except (KeyError, TypeError, ValueError):
                continue  # a malformed member payload must never poison placement

    # -------------------------------------------------------------- estimates
    def _seconds_per_byte(self) -> Optional[float]:
        """Median observed seconds-per-byte, for re-scaling cold priors."""
        rates = sorted(
            self._observed[name] / self._size_bytes[name]
            for name in self._observed
            if name in self._size_bytes
        )
        if not rates:
            return None
        return rates[len(rates) // 2]

    def cost(self, name: str) -> float:
        """The current cost estimate of one document (arbitrary units)."""
        observed = self._observed.get(name)
        if observed is not None:
            return observed
        size = self._size_bytes.get(name, 1.0)
        rate = self._seconds_per_byte()
        return size * rate if rate is not None else size

    def costs(self, names: Iterable[str]) -> dict[str, float]:
        return {name: self.cost(name) for name in names}

    def observed_count(self) -> int:
        return len(self._observed)


@dataclass(frozen=True)
class PlacementPlan:
    """One re-plan outcome: the new assignment plus what moved and why."""

    #: member id -> documents it owns (sorted for determinism).
    assignments: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: (document, from member or None, to member) for every relocation.
    moves: tuple[tuple[str, Optional[str], str], ...] = ()
    #: Load-smoothing moves skipped because the budget ran out.
    deferred: int = 0

    def owner_of(self) -> dict[str, str]:
        """The inverse map: document -> owning member."""
        return {
            name: member
            for member, names in self.assignments.items()
            for name in names
        }

    def loads(self, costs: Mapping[str, float]) -> dict[str, float]:
        return {
            member: sum(costs.get(name, 1.0) for name in names)
            for member, names in self.assignments.items()
        }

    def to_dict(self, costs: Optional[Mapping[str, float]] = None) -> dict:
        payload = {
            "assignments": {
                member: list(names) for member, names in self.assignments.items()
            },
            "moves": [list(move) for move in self.moves],
            "deferred": self.deferred,
        }
        if costs is not None:
            payload["loads"] = self.loads(costs)
        return payload


def greedy_partition(
    costs: Mapping[str, float], members: Sequence[str]
) -> PlacementPlan:
    """LPT greedy balanced partitioning of documents over members."""
    if not members:
        raise ValueError("cannot place documents on zero members")
    loads = {member: 0.0 for member in members}
    assignment: dict[str, list[str]] = {member: [] for member in members}
    # Descending cost, name tiebreak: deterministic for equal-cost corpora.
    for name in sorted(costs, key=lambda n: (-costs[n], n)):
        target = min(members, key=lambda m: (loads[m], m))
        assignment[target].append(name)
        loads[target] += costs[name]
    return PlacementPlan(
        assignments={m: tuple(sorted(names)) for m, names in assignment.items()}
    )


def round_robin_partition(
    names: Sequence[str], members: Sequence[str]
) -> PlacementPlan:
    """Cost-blind striping, for comparison and as the explicit fallback."""
    if not members:
        raise ValueError("cannot place documents on zero members")
    assignment: dict[str, list[str]] = {member: [] for member in members}
    for index, name in enumerate(sorted(names)):
        assignment[members[index % len(members)]].append(name)
    return PlacementPlan(
        assignments={m: tuple(sorted(names)) for m, names in assignment.items()}
    )


def rebalance(
    current: Mapping[str, Sequence[str]],
    costs: Mapping[str, float],
    members: Sequence[str],
    *,
    move_budget: int = DEFAULT_MOVE_BUDGET,
    drain: Iterable[str] = (),
) -> PlacementPlan:
    """Re-plan placement incrementally, moving at most ``move_budget`` docs.

    Parameters
    ----------
    current:
        The placement in effect (member -> owned documents).
    costs:
        Cost estimates for every document that should be placed.  Documents
        present here but not in ``current`` are *new* (added to the store);
        documents in ``current`` but absent here were discarded.
    members:
        The live member set.  Documents owned by a member no longer listed
        are orphaned and re-homed for free (the member is gone — there is
        no cache warmth left to preserve).
    move_budget:
        Cap on load-smoothing relocations of already-placed documents.
        Orphan/new-document assignment is never counted against it.
    drain:
        Members to bleed (degraded): their documents are treated as
        half-orphaned — moving them off *does* consume budget (the member
        still serves, just slowly), highest-cost documents first.
    """
    members = list(members)
    if not members:
        raise ValueError("cannot place documents on zero members")
    drain_set = set(drain) & set(members)
    alive = {member: [] for member in members}
    orphaned: list[str] = []
    placed: set[str] = set()
    for member, names in current.items():
        for name in names:
            if name not in costs or name in placed:
                continue  # discarded (or duplicated upstream): drop
            placed.add(name)
            if member in alive:
                alive[member].append(name)
            else:
                orphaned.append(name)
    orphaned.extend(name for name in costs if name not in placed)

    loads = {
        member: sum(costs[name] for name in names)
        for member, names in alive.items()
    }
    moves: list[tuple[str, Optional[str], str]] = []

    def receivers() -> list[str]:
        pool = [m for m in members if m not in drain_set] or members
        return pool

    # 1. Re-home orphans (new documents, vanished members): free.
    for name in sorted(orphaned, key=lambda n: (-costs[n], n)):
        target = min(receivers(), key=lambda m: (loads[m], m))
        alive[target].append(name)
        loads[target] += costs[name]
        moves.append((name, None, target))

    budget = max(0, int(move_budget))
    deferred = 0

    # 2. Bleed draining members, costliest documents first, under budget.
    for member in sorted(drain_set):
        for name in sorted(alive[member], key=lambda n: (-costs[n], n)):
            candidates = [m for m in members if m not in drain_set]
            if not candidates:
                break
            if budget <= 0:
                deferred += 1
                continue
            target = min(candidates, key=lambda m: (loads[m], m))
            alive[member].remove(name)
            alive[target].append(name)
            loads[member] -= costs[name]
            loads[target] += costs[name]
            moves.append((name, member, target))
            budget -= 1

    # 3. Load smoothing: shift documents from the most- to the least-loaded
    #    member while it strictly improves the spread, under budget.
    while budget > 0:
        heavy = max(members, key=lambda m: (loads[m], m))
        light = min(members, key=lambda m: (loads[m], m))
        gap = loads[heavy] - loads[light]
        if gap <= 0 or not alive[heavy]:
            break
        # The largest document that still shrinks the gap when moved
        # (cost < gap); moving anything bigger would just swap roles.
        movable = [name for name in alive[heavy] if costs[name] < gap]
        if not movable:
            break
        name = max(movable, key=lambda n: (costs[n], n))
        alive[heavy].remove(name)
        alive[light].append(name)
        loads[heavy] -= costs[name]
        loads[light] += costs[name]
        moves.append((name, heavy, light))
        budget -= 1

    return PlacementPlan(
        assignments={m: tuple(sorted(names)) for m, names in alive.items()},
        moves=tuple(moves),
        deferred=deferred,
    )
