"""``repro.cluster`` — shared-nothing serving cluster over one corpus.

The paper's answering pipeline is single-process by construction; this
package scales it across processes without sharing any mutable state::

                          clients
                             │  one public host:port
              ┌──────────────┼──────────────┐
              ▼              ▼              ▼        SO_REUSEPORT per
         ┌─────────┐    ┌─────────┐    ┌─────────┐   member (or one
         │member-0 │◀──▶│member-1 │◀──▶│member-2 │   shared listener,
         │ Session │    │ Session │    │ Session │   logged fallback)
         └────▲────┘    └────▲────┘    └────▲────┘
              │  internal ports: control ops + peer relays
              └──────────────┼──────────────┘
                     ┌───────┴────────┐
                     │ ClusterSupervisor │  place / tune / scrape /
                     │  + /cluster.json  │  respawn (sync, threads)
                     └──────────────────┘

Every member owns a full :class:`repro.session.Session` over the same
corpus directory (and shares the persistent plan cache and snapshot
directory, so all members warm-start from one compile/parse).  Documents
are *owned* disjointly under a cost-aware placement
(:mod:`repro.cluster.placement`); whichever member accepts a client
connection coordinates that submission — local documents evaluate
in-process, remote groups relay to their owners, and a dead peer's share
is re-evaluated locally, so an accepted submission survives any single
member crash.  Per-member concurrency is AIMD-autotuned from windowed
queue-wait tails (:mod:`repro.cluster.autotune`).

Enable from :class:`repro.session.ServingPolicy` (``cluster_members``,
``placement``, ``autotune`` — or ``REPRO_CLUSTER_MEMBERS`` /
``REPRO_CLUSTER_PLACEMENT`` / ``REPRO_CLUSTER_AUTOTUNE``), or from the
CLI: ``repro-xpath serve cluster run CORPUS --members 4``.
"""

from repro.cluster.autotune import (
    AIMDController,
    DEFAULT_TARGET_P95,
    HistogramWindow,
    TuneDecision,
    WindowStats,
)
from repro.cluster.client import ClusterClientError, result_key, submit_retry
from repro.cluster.member import ClusterMember, MemberConfig, MemberProtocol, member_main
from repro.cluster.placement import (
    CostModel,
    DEFAULT_MOVE_BUDGET,
    PlacementPlan,
    STRATEGIES,
    greedy_partition,
    rebalance,
    round_robin_partition,
)
from repro.cluster.supervisor import (
    ClusterError,
    ClusterSupervisor,
    MemberHandle,
    UNREACHABLE_METRIC,
    control_request,
    merge_member_metrics,
    queue_wait_histogram,
)

__all__ = [
    "AIMDController",
    "ClusterClientError",
    "ClusterError",
    "ClusterMember",
    "ClusterSupervisor",
    "CostModel",
    "DEFAULT_MOVE_BUDGET",
    "DEFAULT_TARGET_P95",
    "HistogramWindow",
    "MemberConfig",
    "MemberHandle",
    "MemberProtocol",
    "PlacementPlan",
    "STRATEGIES",
    "TuneDecision",
    "UNREACHABLE_METRIC",
    "WindowStats",
    "control_request",
    "greedy_partition",
    "member_main",
    "merge_member_metrics",
    "queue_wait_histogram",
    "rebalance",
    "result_key",
    "round_robin_partition",
    "submit_retry",
]
