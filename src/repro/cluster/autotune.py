"""Per-member concurrency autotune: AIMD on windowed p95 queue wait.

Each member caps in-flight document evaluations with a semaphore of
``max_concurrent`` permits (:meth:`CorpusServer.set_max_concurrent` resizes
it live).  The supervisor tunes that cap per member from two signals it
already scrapes through ``cluster.describe``:

- the **queue-wait histogram** — how long accepted submissions sat waiting
  for a permit.  The *lifetime* histogram is too sluggish a signal (an
  overload burst stays visible in its p95 for the rest of the process
  lifetime), so :class:`HistogramWindow` diffs consecutive bucket-count
  snapshots and computes quantiles over just the observations that landed
  between two scrapes;
- the **queue depth** — how many submissions are waiting right now.

The controller is AIMD, the same shape TCP congestion control uses and for
the same reason: the cost surface is asymmetric.  Raising the cap past the
point of diminishing returns degrades *everyone's* tail latency (more
interleaving, more GIL/page-cache pressure), so we probe upward additively
— +1 when the member is clearly under-loaded (waiters queued, p95 wait
comfortably under target) — and back off multiplicatively (×0.5) the
moment the windowed p95 crosses the target.  Clamped to
``[min_concurrent, max_concurrent]``; windows with too few observations
make no decision at all rather than a noisy one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

#: Default p95 queue-wait target, seconds.  Queue wait is pure overhead —
#: time an accepted query spends not running — so the target is tight.
DEFAULT_TARGET_P95 = 0.050

#: Ignore windows with fewer observations than this: a p95 over three
#: samples is a coin flip, and AIMD reacts badly to coin flips.
MIN_WINDOW_COUNT = 8


class HistogramWindow:
    """Windowed quantiles from consecutive histogram ``to_dict`` snapshots.

    Feed it the serialized histogram each scrape; it returns quantiles over
    only the observations recorded since the previous feed.  Bucket bounds
    come from the payload itself, so the window tracks whatever bounds the
    member was built with.  A counter regression (member restarted — its
    histogram reset to zero) resyncs the baseline instead of producing
    negative bucket counts.
    """

    def __init__(self) -> None:
        self._bounds: Optional[tuple[float, ...]] = None
        self._counts: Optional[list[int]] = None

    def update(self, payload: Mapping) -> Optional["WindowStats"]:
        """Fold one snapshot; return the delta-window stats, or None.

        None means "no usable window": first feed, malformed payload,
        bounds changed (member rebuilt differently), or counter regression.
        """
        try:
            bounds = tuple(float(b) for b in payload["bounds"])
            counts = [int(c) for c in payload["counts"]]
        except (KeyError, TypeError, ValueError):
            return None
        if len(counts) != len(bounds) + 1:
            return None
        previous_bounds, previous_counts = self._bounds, self._counts
        self._bounds, self._counts = bounds, counts
        if previous_bounds != bounds or previous_counts is None:
            return None
        delta = [now - before for now, before in zip(counts, previous_counts)]
        if any(d < 0 for d in delta):
            return None  # restart: this snapshot becomes the new baseline
        return WindowStats(bounds=bounds, counts=tuple(delta))


@dataclass(frozen=True)
class WindowStats:
    """Bucketed observations from one scrape window."""

    bounds: tuple[float, ...]
    counts: tuple[int, ...]

    @property
    def count(self) -> int:
        return sum(self.counts)

    def quantile(self, q: float) -> Optional[float]:
        """Nearest-rank quantile as an upper bucket bound (None if empty).

        The overflow bucket has no upper bound; it reports the largest
        finite bound (an under-estimate, but a monotone one — good enough
        to trip an AIMD threshold).
        """
        total = self.count
        if total == 0:
            return None
        rank = max(1, int(q * total + 0.999999))
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.bounds[-1] if self.bounds else None
        return self.bounds[-1] if self.bounds else None


@dataclass(frozen=True)
class TuneDecision:
    """One controller step: the cap to apply and why."""

    member_id: str
    old_value: int
    new_value: int
    reason: str
    p95: Optional[float] = None

    @property
    def changed(self) -> bool:
        return self.new_value != self.old_value


class AIMDController:
    """Additive-increase / multiplicative-decrease cap controller."""

    def __init__(
        self,
        *,
        target_p95: float = DEFAULT_TARGET_P95,
        min_concurrent: int = 1,
        max_concurrent: int = 64,
        increase: int = 1,
        decrease: float = 0.5,
        min_window: int = MIN_WINDOW_COUNT,
    ) -> None:
        if min_concurrent < 1:
            raise ValueError("min_concurrent must be at least 1")
        if max_concurrent < min_concurrent:
            raise ValueError("max_concurrent must be >= min_concurrent")
        if not 0.0 < decrease < 1.0:
            raise ValueError("decrease must be in (0, 1)")
        self.target_p95 = target_p95
        self.min_concurrent = min_concurrent
        self.max_concurrent = max_concurrent
        self.increase = increase
        self.decrease = decrease
        self.min_window = min_window
        self._windows: dict[str, HistogramWindow] = {}

    def _clamp(self, value: int) -> int:
        return max(self.min_concurrent, min(self.max_concurrent, value))

    def decide(
        self,
        member_id: str,
        *,
        current: int,
        queue_wait: Optional[Mapping],
        queue_depth: int,
    ) -> TuneDecision:
        """One control step for one member.

        ``queue_wait`` is the member's queue-wait histogram ``to_dict``
        payload from this scrape (None if the member was unreachable —
        the controller holds).
        """
        held = TuneDecision(member_id, current, current, "hold")
        if queue_wait is None:
            return held
        window = self._windows.setdefault(member_id, HistogramWindow())
        stats = window.update(queue_wait)
        if stats is None:
            return TuneDecision(member_id, current, current, "no-window")
        if stats.count < self.min_window:
            # Too quiet to judge; drift back toward having headroom only
            # if we are pinned at the floor with work visibly queued.
            if queue_depth > 0 and current < self.max_concurrent:
                return TuneDecision(
                    member_id,
                    current,
                    self._clamp(current + self.increase),
                    "queued-idle",
                )
            return TuneDecision(member_id, current, current, "quiet", stats.quantile(0.95))
        p95 = stats.quantile(0.95)
        if p95 is not None and p95 > self.target_p95:
            return TuneDecision(
                member_id,
                current,
                self._clamp(int(current * self.decrease)),
                "backoff",
                p95,
            )
        if queue_depth > 0:
            return TuneDecision(
                member_id,
                current,
                self._clamp(current + self.increase),
                "probe",
                p95,
            )
        return TuneDecision(member_id, current, current, "steady", p95)

    def forget(self, member_id: str) -> None:
        """Drop a member's window (it died; the respawn starts fresh)."""
        self._windows.pop(member_id, None)


def merge_windows(stats: Sequence[Optional[WindowStats]]) -> Optional[WindowStats]:
    """Sum compatible windows (cluster-wide view); None if none usable."""
    usable = [s for s in stats if s is not None]
    if not usable:
        return None
    bounds = usable[0].bounds
    counts = [0] * (len(bounds) + 1)
    for window in usable:
        if window.bounds != bounds:
            continue  # mixed bounds: skip rather than mis-bucket
        for index, value in enumerate(window.counts):
            counts[index] += value
    return WindowStats(bounds=bounds, counts=tuple(counts))
