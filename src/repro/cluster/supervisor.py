"""The cluster supervisor: spawn, place, tune, scrape, respawn.

:class:`ClusterSupervisor` owns everything that is *cluster-wide*:

- the shared public listener(s) — one ``SO_REUSEPORT`` socket per member
  when the platform supports it, else **one** supervisor-bound listener
  duplicated into every member (logged as a warning, never a raw bind
  error);
- the member processes (:func:`repro.cluster.member.member_main` via
  ``multiprocessing``), respawned with an incremented *incarnation* when
  they die;
- the placement (:mod:`repro.cluster.placement`): file-size priors seed
  the cost model, members' observed per-document latencies refine it, and
  a bounded-move :func:`~repro.cluster.placement.rebalance` re-plans on a
  slow cadence (and immediately after membership events);
- the per-member concurrency autotune
  (:class:`repro.cluster.autotune.AIMDController` over windowed queue-wait
  p95 from scrape-to-scrape histogram diffs);
- the merged observability surface: a control thread scrapes every
  member's ``cluster.describe`` op, folds the payloads tolerantly (a dead
  or half-written member becomes a ``repro_cluster_members_unreachable_total``
  increment, never a crash), and exposes ``/metrics``, ``/healthz`` and
  ``/cluster.json`` over its own :class:`repro.obs.http.ObsHTTPServer`.

The supervisor is deliberately synchronous (threads, plain sockets): it
never sits on a member's event loop, and its failure modes stay separate
from serving's.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import multiprocessing
import os
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.obs.http import OBS_PORT_ENV, ObsHTTPServer
from repro.obs.metrics import MetricsRegistry
from repro.session.policy import ServingPolicy, resolve_cluster_field
from repro.cluster.autotune import AIMDController, DEFAULT_TARGET_P95
from repro.cluster.member import MemberConfig, member_main
from repro.cluster.placement import (
    DEFAULT_MOVE_BUDGET,
    CostModel,
    PlacementPlan,
    STRATEGIES,
    greedy_partition,
    rebalance,
    round_robin_partition,
)

logger = logging.getLogger("repro.cluster")

#: Seconds between control-loop ticks (scrape + autotune).
DEFAULT_CONTROL_INTERVAL = 1.0

#: Re-plan placement every N control ticks (plus immediately on membership
#: events); churn is bounded by the move budget regardless.
REBALANCE_EVERY_TICKS = 5

#: Name of the unreachable-members counter on the merged /metrics surface.
UNREACHABLE_METRIC = "repro_cluster_members_unreachable_total"


class ClusterError(ReproError):
    """Raised for cluster supervision failures (spawn, handshake, config)."""


def control_request(
    host: str, port: int, payload: dict, *, timeout: float = 5.0
) -> dict:
    """One synchronous NDJSON control round-trip (single reply line)."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
        with sock.makefile("rb") as stream:
            line = stream.readline()
    if not line:
        raise ConnectionError(f"no reply from {host}:{port}")
    reply = json.loads(line)
    if reply.get("type") == "error":
        raise ClusterError(
            f"control op {payload.get('op')!r} failed: {reply.get('error')}"
        )
    return reply


def merge_member_metrics(
    payloads: dict[str, Optional[dict]]
) -> tuple[MetricsRegistry, int]:
    """Fold per-member ``cluster.describe`` payloads into one registry.

    Tolerant by design — this runs against processes that can die between
    the connect and the read: a ``None`` payload (unreachable member), a
    payload without a usable ``metrics`` dict, or a metrics dict the
    registry rejects (truncated mid-write, histogram bounds mismatch) all
    count that member as unreachable for this scrape and contribute
    nothing.  Each member merges atomically: the payload is folded into a
    trial registry first, so a family that fails partway through (say the
    second histogram's bounds mismatch, after its counters merged fine)
    cannot leave half a member's series in the result.  Returns the merged
    registry and the unreachable count; never raises for malformed member
    data.
    """
    registry = MetricsRegistry()
    unreachable = 0
    for _member_id, payload in sorted(payloads.items()):
        if not isinstance(payload, dict):
            unreachable += 1
            continue
        metrics = payload.get("metrics")
        if not isinstance(metrics, dict):
            unreachable += 1
            continue
        trial = MetricsRegistry()
        try:
            trial.merge(registry)
            trial.merge(metrics)
        except Exception:  # noqa: BLE001 - any poisoned payload counts, only
            unreachable += 1
            continue
        registry = trial
    return registry, unreachable


def queue_wait_histogram(payload: Optional[dict]) -> Optional[dict]:
    """The raw queue-wait histogram (bounds + counts) of one describe payload.

    This is the autotune's input: :class:`~repro.cluster.autotune.
    HistogramWindow` needs bucket snapshots to diff, not the quantile
    summary ``stats.queue_wait`` carries.  Prefers the member's dedicated
    ``queue_wait_hist`` field, falling back to the
    ``repro_request_queue_wait_seconds`` series inside the ``metrics``
    dict; returns ``None`` when neither is usable (unreachable member, or
    a payload from before the histogram saw traffic).
    """
    if not isinstance(payload, dict):
        return None
    candidates = [payload.get("queue_wait_hist")]
    metrics = payload.get("metrics")
    if isinstance(metrics, dict):
        candidates.append(metrics.get("repro_request_queue_wait_seconds"))
    for hist in candidates:
        if isinstance(hist, dict) and "bounds" in hist and "counts" in hist:
            return hist
    return None


@dataclass
class MemberHandle:
    """Supervisor-side state of one member slot."""

    member_id: str
    sock: socket.socket
    process: Optional[multiprocessing.Process] = None
    incarnation: int = -1
    internal_port: Optional[int] = None
    pid: Optional[int] = None
    max_concurrent: int = 0
    restarts: int = 0
    last_describe: Optional[dict] = field(default=None, repr=False)
    last_seen: Optional[float] = None
    ready_conn: Optional[object] = field(default=None, repr=False)

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class ClusterSupervisor:
    """Spawn and steer a shared-nothing serving cluster over one corpus.

    Parameters follow the documented precedence for the three cluster
    knobs: explicit argument > ``ServingPolicy`` field > ``REPRO_CLUSTER_*``
    environment variable > default (2 members, ``cost`` placement, autotune
    on).  ``reuseport`` forces the listener mode: ``None`` probes the
    platform, ``False`` exercises the single-listener fallback explicitly
    (tests do), ``True`` fails hard if the platform cannot do it.
    """

    def __init__(
        self,
        corpus_dir,
        *,
        pattern: str = "*.xml",
        host: str = "127.0.0.1",
        port: int = 0,
        members: Optional[int] = None,
        placement: Optional[str] = None,
        autotune: Optional[bool] = None,
        move_budget: int = DEFAULT_MOVE_BUDGET,
        serving: Optional[ServingPolicy] = None,
        engine: Optional[str] = None,
        strategy: Optional[str] = None,
        max_workers: Optional[int] = None,
        kernel: Optional[str] = None,
        plan_cache_dir: Optional[str] = None,
        snapshot_dir: Optional[str] = None,
        obs_port: Optional[int] = None,
        control_interval: float = DEFAULT_CONTROL_INTERVAL,
        target_p95: float = DEFAULT_TARGET_P95,
        max_concurrent_ceiling: int = 64,
        reuseport: Optional[bool] = None,
    ) -> None:
        self.corpus_dir = str(corpus_dir)
        self.pattern = pattern
        self.host = host
        self._requested_port = port
        policy = serving if serving is not None else ServingPolicy()
        # The supervisor owns the obs endpoint; members must not inherit it
        # (they also drop REPRO_OBS_PORT from their own environment).
        self.serving = dataclasses.replace(policy, obs_port=None)
        self.member_count = int(
            resolve_cluster_field(policy, "cluster_members", members, default=2).value
        )
        if self.member_count < 1:
            raise ClusterError("cluster_members must be at least 1")
        self.placement_strategy = str(
            resolve_cluster_field(policy, "placement", placement, default="cost").value
        )
        if self.placement_strategy not in STRATEGIES:
            raise ClusterError(
                f"unknown placement strategy {self.placement_strategy!r}; "
                f"expected one of {', '.join(STRATEGIES)}"
            )
        self.autotune_enabled = bool(
            resolve_cluster_field(policy, "autotune", autotune, default=True).value
        )
        self.move_budget = int(move_budget)
        self.engine = engine
        self.strategy = strategy
        self.max_workers = max_workers
        self.kernel = kernel
        self.plan_cache_dir = plan_cache_dir
        self.snapshot_dir = snapshot_dir
        self.control_interval = float(control_interval)
        self.reuseport_requested = reuseport
        self.reuseport_active: Optional[bool] = None
        self.port: Optional[int] = None

        if obs_port is None:
            raw = os.environ.get(OBS_PORT_ENV, "").strip()
            if raw:
                try:
                    obs_port = int(raw)
                except ValueError:
                    obs_port = None
        self._obs_port = obs_port
        self.obs_http: Optional[ObsHTTPServer] = None

        self.cost_model = CostModel()
        self.autotune = AIMDController(
            target_p95=target_p95,
            min_concurrent=1,
            max_concurrent=max_concurrent_ceiling,
        )
        self._members: dict[str, MemberHandle] = {}
        self._plan: Optional[PlacementPlan] = None
        self._plan_version = 0
        self._last_moves: list = []
        self._deferred_moves = 0
        self._known_files: dict[str, float] = {}
        self._unreachable_total = 0
        self._tune_log: list[dict] = []
        self._merged_registry = MetricsRegistry()
        #: Guards everything the obs HTTP thread reads while the control
        #: thread mutates: the plan (+ version/moves), the known-file map,
        #: the cost model, per-member handle fields, the merged registry
        #: and the tune log.  Reentrant so ``status()`` can nest
        #: ``_health_payload()`` under one acquisition.  Never held across
        #: member I/O (spawn, control sockets) — only around state flips.
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._control_thread: Optional[threading.Thread] = None
        self._started = False
        try:
            self._mp = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            self._mp = multiprocessing.get_context()

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Bind listeners, spawn every member, broadcast the first placement.

        All-or-nothing: a member that dies before the ready handshake (or
        an observability port that fails to bind) tears the whole cluster
        back down — already-spawned members are terminated and every
        listener closed — before the error propagates, so a failed
        ``start()`` (hence a failed ``__enter__``) never leaks non-daemon
        processes or a bound port.
        """
        if self._started:
            return
        self._stop.clear()
        names = self._scan_corpus()
        if not names:
            raise ClusterError(
                f"no documents matching {self.pattern!r} in {self.corpus_dir}"
            )
        member_ids = [f"member-{i}" for i in range(self.member_count)]
        sockets = self._bind_member_sockets()
        for member_id, sock in zip(member_ids, sockets):
            self._members[member_id] = MemberHandle(member_id=member_id, sock=sock)
        self._plan = self._initial_plan(member_ids)
        self._plan_version = 1
        try:
            for handle in self._members.values():
                self._spawn(handle)
            self._await_ready()
            self._broadcast_placement()
            if self._obs_port is not None:
                self.obs_http = ObsHTTPServer(
                    self.metrics_text,
                    health=self._health_payload,
                    cluster=self.status,
                    host=self.host,
                    port=self._obs_port,
                )
                self.obs_http.start()
            self._control_thread = threading.Thread(
                target=self._control_loop, name="repro-cluster-control", daemon=True
            )
            self._control_thread.start()
        except BaseException:
            try:
                self.stop()
            except Exception:  # noqa: BLE001 - never mask the startup error
                logger.exception("cleanup after failed cluster start also failed")
            raise
        self._started = True

    def stop(self, *, timeout: float = 10.0) -> None:
        """Stop the control loop, terminate members, close every socket."""
        self._stop.set()
        if self._control_thread is not None:
            self._control_thread.join(timeout=timeout)
            self._control_thread = None
        if self.obs_http is not None:
            self.obs_http.close()
            self.obs_http = None
        for handle in self._members.values():
            if handle.process is not None and handle.process.is_alive():
                handle.process.terminate()
        deadline = time.monotonic() + timeout
        for handle in self._members.values():
            if handle.process is None:
                continue
            handle.process.join(timeout=max(0.1, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=2.0)
        seen: set[int] = set()
        for handle in self._members.values():
            if id(handle.sock) not in seen:  # fallback mode shares one socket
                seen.add(id(handle.sock))
                try:
                    handle.sock.close()
                except OSError:
                    pass
        self._started = False

    def __enter__(self) -> "ClusterSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def request_stop(self) -> None:
        """Ask :meth:`run_forever` to return (signal-handler safe)."""
        self._stop.set()

    def run_forever(self) -> None:
        """Block until :meth:`request_stop`/:meth:`stop` (CLI foreground mode)."""
        while not self._stop.wait(timeout=0.5):
            pass

    # ------------------------------------------------------------ chaos hook
    def kill_member(self, member_id: str) -> bool:
        """Hard-kill one member (chaos/testing); the control loop respawns it."""
        handle = self._members.get(member_id)
        if handle is None or handle.process is None or not handle.process.is_alive():
            return False
        handle.process.kill()
        handle.process.join(timeout=5.0)
        return True

    # --------------------------------------------------------------- sockets
    def _bind_member_sockets(self) -> list[socket.socket]:
        """One listener per member via ``SO_REUSEPORT``, or one shared.

        The fallback is graceful and *logged*: platforms without
        ``SO_REUSEPORT`` get a single supervisor-bound listener duplicated
        into every member (the kernel still load-balances ``accept`` across
        their event loops), never a raw ``OSError`` out of bind.
        """
        want_reuseport = self.reuseport_requested
        if want_reuseport is None:
            want_reuseport = hasattr(socket, "SO_REUSEPORT")
        if want_reuseport:
            try:
                sockets = self._bind_reuseport_sockets()
                self.reuseport_active = True
                return sockets
            except (AttributeError, OSError) as error:
                if self.reuseport_requested is True:
                    raise ClusterError(
                        f"SO_REUSEPORT was requested but is unavailable: {error}"
                    ) from error
                logger.warning(
                    "SO_REUSEPORT unavailable on this platform (%s); "
                    "falling back to a single shared listener handed to all "
                    "%d members",
                    error,
                    self.member_count,
                )
        else:
            logger.warning(
                "SO_REUSEPORT disabled; using a single shared listener "
                "handed to all %d members",
                self.member_count,
            )
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self._requested_port))
        sock.listen(128)
        self.reuseport_active = False
        self.port = sock.getsockname()[1]
        return [sock] * self.member_count

    def _bind_reuseport_sockets(self) -> list[socket.socket]:
        sockets: list[socket.socket] = []
        port = self._requested_port
        try:
            for _ in range(self.member_count):
                sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
                sock.bind((self.host, port))
                sock.listen(128)
                if port == 0:
                    port = sock.getsockname()[1]
                sockets.append(sock)
        except BaseException:
            for sock in sockets:
                sock.close()
            raise
        self.port = port
        return sockets

    # -------------------------------------------------------------- spawning
    def _spawn(self, handle: MemberHandle) -> None:
        with self._lock:
            handle.incarnation += 1
            if handle.incarnation > 0:
                handle.restarts += 1
        config = MemberConfig(
            member_id=handle.member_id,
            incarnation=handle.incarnation,
            corpus_dir=self.corpus_dir,
            pattern=self.pattern,
            internal_host=self.host,
            serving=self.serving,
            engine=self.engine,
            strategy=self.strategy,
            max_workers=self.max_workers,
            kernel=self.kernel,
            plan_cache_dir=self.plan_cache_dir,
            snapshot_dir=self.snapshot_dir,
        )
        parent_conn, child_conn = self._mp.Pipe()
        process = self._mp.Process(
            target=member_main,
            args=(config, handle.sock, child_conn),
            name=f"repro-cluster-{handle.member_id}",
            daemon=False,
        )
        process.start()
        child_conn.close()
        with self._lock:
            handle.process = process
            handle.internal_port = None
            handle.pid = process.pid
            handle.max_concurrent = self.serving.max_concurrent
            handle.last_describe = None
            handle.ready_conn = parent_conn

    def _await_ready(self, *, timeout: float = 60.0) -> None:
        deadline = time.monotonic() + timeout
        for handle in self._members.values():
            if handle.internal_port is not None:
                continue
            conn = handle.ready_conn
            if conn is None:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            if not conn.poll(remaining):
                raise ClusterError(
                    f"{handle.member_id} did not report ready within {timeout}s"
                )
            try:
                message = conn.recv()
            except (EOFError, OSError) as error:
                raise ClusterError(
                    f"{handle.member_id} died during startup"
                ) from error
            finally:
                conn.close()
            with self._lock:
                handle.internal_port = int(message["internal_port"])
                handle.pid = int(message["pid"])
                handle.last_seen = time.monotonic()

    def _respawn(self, handle: MemberHandle) -> bool:
        """Bring one dead member back; returns True when it came up."""
        exitcode = handle.process.exitcode if handle.process is not None else None
        logger.warning(
            "%s died (exit code %s); respawning as incarnation %d",
            handle.member_id,
            exitcode,
            handle.incarnation + 1,
        )
        self.autotune.forget(handle.member_id)
        self._spawn(handle)
        conn = handle.ready_conn
        try:
            if conn is None or not conn.poll(30.0):
                logger.error("%s respawn did not report ready", handle.member_id)
                return False
            message = conn.recv()
        except (EOFError, OSError):
            logger.error("%s respawn died during startup", handle.member_id)
            return False
        finally:
            if conn is not None:
                conn.close()
        with self._lock:
            handle.internal_port = int(message["internal_port"])
            handle.pid = int(message["pid"])
            handle.last_seen = time.monotonic()
        return True

    # ------------------------------------------------------------- placement
    def _scan_corpus(self) -> list[str]:
        """Refresh file-size priors; returns current document names (stems)."""
        files: dict[str, float] = {}
        root = Path(self.corpus_dir)
        for path in sorted(root.glob(self.pattern)):
            try:
                files[path.stem] = float(path.stat().st_size)
            except OSError:
                continue
        with self._lock:
            for name, size in files.items():
                self.cost_model.set_size(name, size)
            for name in set(self._known_files) - set(files):
                self.cost_model.forget(name)
            self._known_files = files
        return sorted(files)

    def _initial_plan(self, member_ids: Sequence[str]) -> PlacementPlan:
        names = sorted(self._known_files)
        if self.placement_strategy == "round_robin":
            return round_robin_partition(names, member_ids)
        return greedy_partition(self.cost_model.costs(names), member_ids)

    def _broadcast_placement(self) -> None:
        """Push the routing table to every reachable member."""
        plan = self._plan
        if plan is None:
            return
        placement = {}
        for member_id, documents in plan.assignments.items():
            handle = self._members.get(member_id)
            if handle is None or handle.internal_port is None:
                continue
            placement[member_id] = {
                "addr": [self.host, handle.internal_port],
                "documents": list(documents),
            }
        request = {
            "op": "cluster.place",
            "id": 0,
            "placement": placement,
            "version": self._plan_version,
            "rescan": True,
        }
        if self.serving.auth_token is not None:
            request["auth"] = self.serving.auth_token
        for member_id in placement:
            handle = self._members[member_id]
            try:
                control_request(self.host, handle.internal_port, request)
            except (OSError, ValueError, ClusterError) as error:
                logger.warning(
                    "placement broadcast to %s failed: %s", member_id, error
                )

    def _replan(self) -> None:
        names = self._scan_corpus()
        if not names or self._plan is None:
            return
        drain = [
            handle.member_id
            for handle in self._members.values()
            if isinstance(handle.last_describe, dict)
            and handle.last_describe.get("health", {}).get("status") == "degraded"
        ]
        if self.placement_strategy == "round_robin":
            plan = round_robin_partition(names, sorted(self._members))
            moves = ()
            deferred = 0
            changed = plan.assignments != self._plan.assignments
        else:
            with self._lock:
                costs = self.cost_model.costs(names)
            plan = rebalance(
                self._plan.assignments,
                costs,
                sorted(self._members),
                move_budget=self.move_budget,
                drain=drain,
            )
            moves = plan.moves
            deferred = plan.deferred
            changed = bool(moves)
        with self._lock:
            self._plan = plan
            self._deferred_moves = deferred
            if changed:
                self._plan_version += 1
                self._last_moves = [list(move) for move in moves][-16:]
        if changed:
            logger.info(
                "placement v%d: %d moves (%d deferred)%s",
                self._plan_version,
                len(moves),
                deferred,
                f", draining {drain}" if drain else "",
            )
            self._broadcast_placement()

    # ----------------------------------------------------------- control loop
    def _control_loop(self) -> None:
        tick = 0
        while not self._stop.wait(timeout=self.control_interval):
            tick += 1
            try:
                self._control_tick(tick)
            except Exception:  # noqa: BLE001 - supervision must survive a tick
                logger.exception("cluster control tick failed")

    def _control_tick(self, tick: int) -> None:
        respawned = False
        for handle in self._members.values():
            if not handle.alive:
                respawned = self._respawn(handle) or respawned
        payloads = self._scrape()
        registry, unreachable = merge_member_metrics(payloads)
        with self._lock:
            self._unreachable_total += unreachable
            self._merged_registry = registry
        for member_id, payload in payloads.items():
            if not isinstance(payload, dict):
                continue
            handle = self._members[member_id]
            with self._lock:
                handle.last_describe = payload
                handle.last_seen = time.monotonic()
                reported = payload.get("max_concurrent")
                if isinstance(reported, int):
                    handle.max_concurrent = reported
                latencies = payload.get("doc_latencies")
                if isinstance(latencies, dict):
                    self.cost_model.observe_report(latencies)
        if self.autotune_enabled:
            self._autotune_tick(payloads)
        if respawned or tick % REBALANCE_EVERY_TICKS == 0:
            self._replan()
        if respawned:
            # Even a zero-move replan must rebroadcast after a respawn: the
            # reborn member has an empty routing table and a new internal
            # port its peers need to learn.
            self._broadcast_placement()

    def _scrape(self) -> dict[str, Optional[dict]]:
        request: dict = {"op": "cluster.describe", "id": 0}
        if self.serving.auth_token is not None:
            request["auth"] = self.serving.auth_token
        payloads: dict[str, Optional[dict]] = {}
        for member_id, handle in self._members.items():
            if handle.internal_port is None or not handle.alive:
                payloads[member_id] = None
                continue
            try:
                payloads[member_id] = control_request(
                    self.host, handle.internal_port, request, timeout=3.0
                )
            except (OSError, ValueError, ClusterError):
                payloads[member_id] = None
        return payloads

    def _autotune_tick(self, payloads: dict[str, Optional[dict]]) -> None:
        for member_id, payload in payloads.items():
            handle = self._members[member_id]
            queue_wait = queue_wait_histogram(payload)
            queue_depth = 0
            if isinstance(payload, dict):
                stats = payload.get("stats")
                if isinstance(stats, dict):
                    queue_depth = int(stats.get("queued") or 0)
            decision = self.autotune.decide(
                member_id,
                current=handle.max_concurrent or self.serving.max_concurrent,
                queue_wait=queue_wait,
                queue_depth=queue_depth,
            )
            if not decision.changed:
                continue
            request: dict = {
                "op": "cluster.tune",
                "id": 0,
                "max_concurrent": decision.new_value,
            }
            if self.serving.auth_token is not None:
                request["auth"] = self.serving.auth_token
            try:
                control_request(self.host, handle.internal_port, request)
            except (OSError, ValueError, ClusterError) as error:
                logger.warning("tune of %s failed: %s", member_id, error)
                continue
            with self._lock:
                handle.max_concurrent = decision.new_value
                self._tune_log.append(
                    {
                        "member": member_id,
                        "old": decision.old_value,
                        "new": decision.new_value,
                        "reason": decision.reason,
                        "p95": decision.p95,
                    }
                )
                del self._tune_log[:-32]
            logger.info(
                "autotune %s: %d -> %d (%s, p95=%s)",
                member_id,
                decision.old_value,
                decision.new_value,
                decision.reason,
                f"{decision.p95:.4f}" if decision.p95 is not None else "n/a",
            )

    # -------------------------------------------------------------- telemetry
    def metrics_text(self) -> str:
        """Merged Prometheus text across members plus supervisor counters."""
        registry = MetricsRegistry()
        with self._lock:
            registry.merge(self._merged_registry)
            unreachable = self._unreachable_total
            alive = sum(1 for handle in self._members.values() if handle.alive)
            restarts = sum(handle.restarts for handle in self._members.values())
        registry.counter(
            UNREACHABLE_METRIC,
            "Member scrapes that failed or returned unusable payloads",
        ).inc(unreachable)
        registry.gauge(
            "repro_cluster_members", "Configured cluster member count"
        ).set(self.member_count)
        registry.gauge(
            "repro_cluster_members_alive", "Members whose process is alive"
        ).set(alive)
        registry.counter(
            "repro_cluster_member_restarts_total", "Member respawns"
        ).inc(restarts)
        return registry.render()

    def _health_payload(self) -> dict:
        with self._lock:
            alive = sum(1 for handle in self._members.values() if handle.alive)
            quarantined: dict[str, dict] = {}
            for member_id, handle in sorted(self._members.items()):
                describe = handle.last_describe
                if not isinstance(describe, dict):
                    continue
                health = describe.get("health")
                if isinstance(health, dict) and health.get("quarantined"):
                    quarantined[member_id] = health["quarantined"]
        payload = {
            "status": "ok" if alive == self.member_count else "degraded",
            "members": self.member_count,
            "members_alive": alive,
            "quarantined": quarantined,
        }
        return payload

    def status(self) -> dict:
        """The ``/cluster.json`` payload (and ``serve cluster status`` body).

        Runs on the obs HTTP thread while the control thread re-plans and
        scrapes, so the whole snapshot is assembled under the supervisor
        lock — assignments, plan version and per-member fields always come
        from one consistent instant.
        """
        with self._lock:
            unreachable = self._unreachable_total
            tune_log = list(self._tune_log[-8:])
            members = {}
            for member_id, handle in sorted(self._members.items()):
                describe = handle.last_describe if isinstance(handle.last_describe, dict) else {}
                stats = describe.get("stats") if isinstance(describe.get("stats"), dict) else {}
                members[member_id] = {
                    "alive": handle.alive,
                    "pid": handle.pid,
                    "incarnation": handle.incarnation,
                    "restarts": handle.restarts,
                    "internal_port": handle.internal_port,
                    "max_concurrent": handle.max_concurrent,
                    "owned": describe.get("owned"),
                    "placement_version": describe.get("placement_version"),
                    "submitted": stats.get("submitted"),
                    "completed": stats.get("completed"),
                    "queue_wait_p95": stats.get("queue_wait_p95"),
                    "fallbacks": describe.get("fallbacks"),
                }
            plan = self._plan
            costs = self.cost_model.costs(sorted(self._known_files))
            return {
                "host": self.host,
                "port": self.port,
                "reuseport": self.reuseport_active,
                "documents": len(self._known_files),
                "members": members,
                "members_unreachable_total": unreachable,
                "placement": {
                    "strategy": self.placement_strategy,
                    "version": self._plan_version,
                    "move_budget": self.move_budget,
                    "deferred_moves": self._deferred_moves,
                    "last_moves": list(self._last_moves),
                    "assignments": (
                        {m: list(names) for m, names in plan.assignments.items()}
                        if plan is not None
                        else {}
                    ),
                    "loads": plan.loads(costs) if plan is not None else {},
                    "observed_documents": self.cost_model.observed_count(),
                },
                "autotune": {
                    "enabled": self.autotune_enabled,
                    "target_p95": self.autotune.target_p95,
                    "recent": tune_log,
                },
                "health": self._health_payload(),
            }
