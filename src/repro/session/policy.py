"""Execution and serving policies: one precedence chain for every knob.

Before PR 5, engine choice, kernel selection, worker strategy and cache
budgets were wired through a different mix of keyword arguments, ``REPRO_*``
environment variables and CLI flags in each of the three front doors
(``Document.answer``, ``CorpusExecutor``, ``CorpusServer``).  This module
replaces the ad-hoc lookups with two frozen dataclasses and one documented
rule:

    **explicit argument  >  policy field  >  environment  >  default**

:class:`ExecutionPolicy` carries everything that shapes *how a query runs*
(engine, kernel, strategy, worker counts, cache byte budgets, timeout);
:class:`ServingPolicy` carries everything that shapes *how a server admits
work* (concurrency, admission queue, stream buffers, auth, per-client
quotas, request size limits).  Both are immutable: a policy handed to a
:class:`repro.session.Session` can never change under it, and tests can
assert on exactly what was resolved — :meth:`ExecutionPolicy.explain`
reports each field's value *and where it came from*.

Unset fields use the :data:`UNSET` sentinel (not ``None``) wherever ``None``
is itself a meaningful value (e.g. ``answer_cache_bytes=None`` means an
unbounded cache, while ``UNSET`` means "fall through to the environment").
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import Any, Optional

#: The "not specified" sentinel used by policy fields where ``None`` is a
#: meaningful explicit value (unbounded budgets, process-default kernel).
#: One shared object across the whole stack — see :mod:`repro._config`.
from repro._config import UNSET

# ------------------------------------------------------------- environment
#: Environment variables of the execution chain, one per policy field.
#: ``REPRO_KERNEL`` and ``REPRO_MATRIX_CACHE_BYTES`` predate this module
#: (they are also read by :mod:`repro.pplbin.bitmatrix` and
#: :mod:`repro.trees.tree` for process-wide defaults); the rest are new
#: with the Session API.
ENGINE_ENV = "REPRO_ENGINE"
KERNEL_ENV = "REPRO_KERNEL"
STRATEGY_ENV = "REPRO_STRATEGY"
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"
MAX_RESIDENT_ENV = "REPRO_MAX_RESIDENT"
ANSWER_CACHE_BYTES_ENV = "REPRO_ANSWER_CACHE_BYTES"
MATRIX_CACHE_BYTES_ENV = "REPRO_MATRIX_CACHE_BYTES"
PLAN_CACHE_DIR_ENV = "REPRO_PLAN_CACHE"
PLAN_CACHE_BYTES_ENV = "REPRO_PLAN_CACHE_BYTES"
SNAPSHOT_DIR_ENV = "REPRO_SNAPSHOT_DIR"
SNAPSHOT_BYTES_ENV = "REPRO_SNAPSHOT_BYTES"
TIMEOUT_ENV = "REPRO_TIMEOUT"
TRACE_ENV = "REPRO_TRACE"
TRACE_SAMPLE_ENV = "REPRO_TRACE_SAMPLE"
SLOW_QUERY_SECONDS_ENV = "REPRO_SLOW_QUERY_SECONDS"
MAX_RETRIES_ENV = "REPRO_MAX_RETRIES"
RETRY_BACKOFF_ENV = "REPRO_RETRY_BACKOFF"
ON_ERROR_ENV = "REPRO_ON_ERROR"
MAX_WORKER_RESTARTS_ENV = "REPRO_MAX_WORKER_RESTARTS"
RESTART_BACKOFF_ENV = "REPRO_RESTART_BACKOFF"

#: Cluster-mode environment fallbacks.  Like ``REPRO_OBS_PORT``, these are
#: deployment configuration rather than admission behaviour, so they are the
#: (only) serving knobs read from the environment — at *supervisor/CLI
#: start*, when the matching :class:`ServingPolicy` field is ``None``,
#: under the usual explicit > policy > env > default precedence (see
#: :func:`resolve_cluster_field`).
CLUSTER_MEMBERS_ENV = "REPRO_CLUSTER_MEMBERS"
CLUSTER_PLACEMENT_ENV = "REPRO_CLUSTER_PLACEMENT"
CLUSTER_AUTOTUNE_ENV = "REPRO_CLUSTER_AUTOTUNE"

_ENV_OF_FIELD = {
    "engine": ENGINE_ENV,
    "kernel": KERNEL_ENV,
    "strategy": STRATEGY_ENV,
    "max_workers": MAX_WORKERS_ENV,
    "max_resident": MAX_RESIDENT_ENV,
    "answer_cache_bytes": ANSWER_CACHE_BYTES_ENV,
    "matrix_cache_bytes": MATRIX_CACHE_BYTES_ENV,
    "plan_cache_dir": PLAN_CACHE_DIR_ENV,
    "plan_cache_bytes": PLAN_CACHE_BYTES_ENV,
    "snapshot_dir": SNAPSHOT_DIR_ENV,
    "snapshot_bytes": SNAPSHOT_BYTES_ENV,
    "timeout": TIMEOUT_ENV,
    "trace": TRACE_ENV,
    "trace_sample": TRACE_SAMPLE_ENV,
    "slow_query_seconds": SLOW_QUERY_SECONDS_ENV,
    "max_retries": MAX_RETRIES_ENV,
    "retry_backoff": RETRY_BACKOFF_ENV,
    "on_error": ON_ERROR_ENV,
    "max_worker_restarts": MAX_WORKER_RESTARTS_ENV,
    "restart_backoff": RESTART_BACKOFF_ENV,
}

_INT_FIELDS = frozenset(
    {
        "max_workers",
        "max_resident",
        "answer_cache_bytes",
        "matrix_cache_bytes",
        "plan_cache_bytes",
        "snapshot_bytes",
        "max_retries",
        "max_worker_restarts",
    }
)
_FLOAT_FIELDS = frozenset(
    {"timeout", "trace_sample", "slow_query_seconds", "retry_backoff", "restart_backoff"}
)
_BOOL_FIELDS = frozenset({"trace"})
#: Integer fields where ``0`` is a real value (no retries / no restarts),
#: not the "unbounded/auto" convention of the byte-budget fields.
_ZERO_MEANS_ZERO = frozenset({"max_retries", "max_worker_restarts"})
_TRUTHY = frozenset({"1", "true", "yes", "on"})


def _coerce_env(field: str, raw: str) -> Any:
    """Parse an environment value for ``field`` (int/float fields numeric).

    For byte-budget and worker-count fields an empty string or ``0`` means
    "unbounded"/"auto" (``None``), matching the pre-existing convention of
    ``REPRO_MATRIX_CACHE_BYTES``; the retry/restart budgets treat ``0`` as
    a literal zero (retries and respawns disabled).  Boolean fields accept
    ``1/true/yes/on`` (case-insensitive); anything else is false.
    """
    raw = raw.strip()
    if field in _BOOL_FIELDS:
        return raw.lower() in _TRUTHY
    if field in _INT_FIELDS:
        if not raw or (raw == "0" and field not in _ZERO_MEANS_ZERO):
            return None
        return int(raw)
    if field in _FLOAT_FIELDS:
        if not raw:
            return None
        return float(raw)
    return raw or None


@dataclass(frozen=True)
class Resolved:
    """One resolved knob: the value plus the precedence layer that won.

    ``source`` is one of ``"explicit"``, ``"policy"``, ``"env"`` or
    ``"default"`` — the regression tests for the precedence chain assert on
    it directly instead of reverse-engineering the winner from behaviour.
    """

    value: Any
    source: str


def _resolve(field: str, explicit: Any, policy_value: Any, default: Any) -> Resolved:
    """Apply the documented chain for one field."""
    if explicit is not UNSET and explicit is not None:
        return Resolved(explicit, "explicit")
    if policy_value is not UNSET:
        return Resolved(policy_value, "policy")
    env_name = _ENV_OF_FIELD.get(field)
    if env_name is not None:
        raw = os.environ.get(env_name)
        if raw is not None:
            return Resolved(_coerce_env(field, raw), "env")
    return Resolved(default, "default")


@dataclass(frozen=True)
class ExecutionPolicy:
    """How queries execute: engine, kernel, workers, budgets, timeout.

    Every field defaults to :data:`UNSET` ("not specified"), in which case
    the matching ``REPRO_*`` environment variable applies, then the built-in
    default.  An explicit per-call argument (e.g. ``engine=`` on
    :meth:`repro.session.Session.query`) always wins over all of these —
    including inside worker subprocesses, which receive the resolved values
    rather than re-reading the environment on spawn.

    Fields
    ------
    engine:
        Registry key of the default backend (default ``"polynomial"``).
    kernel:
        Matrix-kernel name for the Theorem 2 evaluator (``dense`` /
        ``bitset`` / ``sparse`` / ``adaptive``); ``None`` means the process
        default (which itself honours ``REPRO_KERNEL``).
    strategy:
        Corpus execution strategy (``serial`` / ``threads`` / ``processes``,
        default ``serial``).
    max_workers:
        Thread-pool width or process shard count (``None`` = automatic).
    max_resident:
        LRU bound on concurrently materialised documents (``None`` =
        unbounded).
    cache_answers:
        Whether store-managed documents memoise answer sets (default true).
    answer_cache_bytes:
        Byte budget of the corpus-wide answer cache (``None`` = unbounded;
        default 64 MiB, :data:`repro.corpus.store.DEFAULT_ANSWER_CACHE_BYTES`).
    matrix_cache_bytes:
        Per-tree matrix cache budget (``None`` = unbounded; default 256 MiB).
    plan_cache_dir:
        Directory of the persistent compiled-plan cache (``None`` = no
        persistence; compiled plans still memoise in memory per session).
    plan_cache_bytes:
        LRU byte budget of the persistent plan cache.
    snapshot_dir:
        Directory of the on-disk columnar snapshot store (``None`` = no
        snapshots; documents always parse from source).  When set, document
        stores prefer memmap-loadable snapshots over XML parsing and spill
        first-evaluation answer sets alongside.
    snapshot_bytes:
        LRU byte budget of the snapshot directory (``None`` = unbounded).
    timeout:
        Per-query-run wall-clock budget in seconds; an exceeded budget
        cancels outstanding work (async) or raises
        :class:`repro.errors.CorpusTimeoutError` (sync corpus runs).
    trace:
        Enable the :mod:`repro.obs.trace` span tracer (default false).
        Like the kernel default, tracing is process-wide: a session built
        with ``trace=True`` calls :func:`repro.obs.trace.set_tracing`.
    trace_sample:
        Probabilistic head-sampling rate in ``[0, 1]`` for always-on
        tracing (``None``/``0`` = off).  Unlike ``trace=True`` (sample
        everything), only this fraction of query roots is published to the
        bounded in-memory trace ring — but every query's span tree is still
        captured thread-locally, so slow-query-log entries carry a full
        exemplar even for unsampled queries.  Applied process-wide via
        :func:`repro.obs.trace.set_trace_sample`.
    slow_query_seconds:
        Threshold of the slow-query log in seconds (``None`` = disabled).
        Queries at or above it are recorded — with their span breakdown
        when tracing is on — in ``Session.slowlog`` and, on servers, the
        ``slowlog`` protocol op.
    max_retries:
        How many times a transiently failing *document* is retried before
        its failure is final (default 0: first error is final, matching the
        pre-supervision behaviour).  Applies to every strategy; under
        ``processes`` a crash-and-redispatch consumes the supervisor's
        restart budget, not this one.
    retry_backoff:
        Base of the exponential retry delay in seconds (attempt *n* sleeps
        ``retry_backoff * 2**(n-1)``; default 0.05).
    on_error:
        What a *final* per-document failure does to the stream:
        ``"raise"`` (default — propagate, aborting the stream),
        ``"record"`` (yield typed error records with empty answer sets and
        keep streaming: partial-results semantics) or ``"skip"`` (drop the
        document silently, counted in metrics).  Quarantined documents
        always surface as error records, whatever this is set to.
    max_worker_restarts:
        Per-shard budget of worker-pool respawns under the ``processes``
        strategy (default 3).  A shard that exhausts it trips the circuit
        breaker: its documents fall back to in-process serial evaluation
        and health reports ``degraded``.
    restart_backoff:
        Base of the exponential respawn delay in seconds, with jitter
        (default 0.1).
    """

    engine: Any = UNSET
    kernel: Any = UNSET
    strategy: Any = UNSET
    max_workers: Any = UNSET
    max_resident: Any = UNSET
    cache_answers: Any = UNSET
    answer_cache_bytes: Any = UNSET
    matrix_cache_bytes: Any = UNSET
    plan_cache_dir: Any = UNSET
    plan_cache_bytes: Any = UNSET
    snapshot_dir: Any = UNSET
    snapshot_bytes: Any = UNSET
    timeout: Any = UNSET
    trace: Any = UNSET
    trace_sample: Any = UNSET
    slow_query_seconds: Any = UNSET
    max_retries: Any = UNSET
    retry_backoff: Any = UNSET
    on_error: Any = UNSET
    max_worker_restarts: Any = UNSET
    restart_backoff: Any = UNSET

    # ------------------------------------------------------------ composition
    def override(self, **explicit: Any) -> "ExecutionPolicy":
        """Return a policy with the given *specified* fields replaced.

        This is how explicit constructor arguments fold into a policy while
        preserving precedence: only arguments that were actually given
        (not ``None``/:data:`UNSET`) replace the field.  ``cache_answers``
        accepts explicit booleans.
        """
        changes = {
            name: value
            for name, value in explicit.items()
            if value is not None and value is not UNSET
        }
        return dataclasses.replace(self, **changes) if changes else self

    # -------------------------------------------------------------- resolution
    def resolve(self, field: str, explicit: Any = UNSET) -> Resolved:
        """Resolve one field through explicit > policy > env > default."""
        defaults = _EXECUTION_DEFAULTS
        if field not in defaults:
            raise ValueError(f"unknown execution-policy field {field!r}")
        return _resolve(field, explicit, getattr(self, field), defaults[field])

    def resolved(self, field: str, explicit: Any = UNSET) -> Any:
        """Shorthand for ``resolve(...).value``."""
        return self.resolve(field, explicit).value

    def explain(self) -> dict[str, Resolved]:
        """The full resolution table: every field's value and winning layer."""
        return {name: self.resolve(name) for name in _EXECUTION_DEFAULTS}


def _execution_defaults() -> dict[str, Any]:
    # Imported lazily: policy must stay importable without dragging the
    # whole engine stack in (worker subprocesses import it early).
    from repro.api.registry import DEFAULT_ENGINE
    from repro.corpus.store import DEFAULT_ANSWER_CACHE_BYTES
    from repro.trees.tree import DEFAULT_MATRIX_CACHE_BYTES

    return {
        "engine": DEFAULT_ENGINE,
        "kernel": None,
        "strategy": "serial",
        "max_workers": None,
        "max_resident": None,
        "cache_answers": True,
        "answer_cache_bytes": DEFAULT_ANSWER_CACHE_BYTES,
        "matrix_cache_bytes": DEFAULT_MATRIX_CACHE_BYTES,
        "plan_cache_dir": None,
        "plan_cache_bytes": None,
        "snapshot_dir": None,
        "snapshot_bytes": None,
        "timeout": None,
        "trace": False,
        "trace_sample": None,
        "slow_query_seconds": None,
        "max_retries": 0,
        "retry_backoff": 0.05,
        "on_error": "raise",
        "max_worker_restarts": 3,
        "restart_backoff": 0.1,
    }


class _LazyDefaults:
    """Mapping view over :func:`_execution_defaults`, computed on first use."""

    def __init__(self) -> None:
        self._table: Optional[dict[str, Any]] = None

    def _load(self) -> dict[str, Any]:
        if self._table is None:
            self._table = _execution_defaults()
        return self._table

    def __contains__(self, field: str) -> bool:
        return field in self._load()

    def __getitem__(self, field: str) -> Any:
        return self._load()[field]

    def __iter__(self):
        return iter(self._load())


_EXECUTION_DEFAULTS = _LazyDefaults()


@dataclass(frozen=True)
class ServingPolicy:
    """How a server admits and protects work: concurrency, quotas, auth.

    Unlike :class:`ExecutionPolicy`, serving knobs have no environment
    layer — a server's admission behaviour should be explicit in the code
    or config that starts it, never ambient — so fields carry their real
    defaults directly.

    Fields
    ------
    max_concurrent:
        Documents evaluated at once, server-wide (semaphore width).
    max_queue:
        Admitted-but-unfinished document bound; overflowing submissions are
        rejected with a typed ``overloaded`` error while other work pends.
    stream_buffer:
        Per-submission result queue size (per-client backpressure).
    latency_window:
        Retained for compatibility: latency quantiles now come from the
        server's unbounded mergeable histograms (:mod:`repro.obs.metrics`)
        rather than a bounded sliding window.
    abandon_grace:
        Seconds a full, unread stream queue survives during drain before
        being treated as abandoned and cancelled.
    auth_token:
        When set, every NDJSON request must carry ``"auth": <token>``;
        requests without it get a typed ``unauthorized`` error line.
    max_submissions_per_client:
        Per-connection bound on concurrently active submissions (``None`` =
        unbounded); exceeding it is a typed ``overloaded`` rejection.
    max_request_bytes:
        NDJSON request-line size limit (the stream reader's buffer bound).
    obs_port:
        TCP port of the stdlib HTTP observability endpoint
        (``/metrics``, ``/healthz``, ``/slowlog.json``, ``/traces.ndjson``)
        the server starts alongside the NDJSON protocol; ``None`` = no
        endpoint, ``0`` = bind an ephemeral port.  Like the cluster fields
        below, this is a serving knob with an environment fallback —
        ``REPRO_OBS_PORT`` is read at server/CLI start when the field is
        ``None``, because scrape targets are deployment configuration in a
        way admission limits are not.
    cluster_members:
        Member-process count of the shared-nothing serving cluster
        (:class:`repro.cluster.ClusterSupervisor`); ``None`` falls through
        to ``REPRO_CLUSTER_MEMBERS``, then the supervisor's default.
        Cluster topology is deployment configuration (the same argument as
        ``obs_port``), hence the env fallback.
    placement:
        Shard-placement strategy of the cluster supervisor: ``"cost"``
        (greedy balanced partitioning over measured per-document cost,
        the default) or ``"round_robin"``; ``None`` falls through to
        ``REPRO_CLUSTER_PLACEMENT``.
    autotune:
        Whether the supervisor autotunes each member's ``max_concurrent``
        (AIMD on the windowed p95 queue wait); ``None`` falls through to
        ``REPRO_CLUSTER_AUTOTUNE`` (``1/true/yes/on``), then the default
        (on).
    """

    max_concurrent: int = 4
    max_queue: int = 256
    stream_buffer: int = 16
    latency_window: int = 512
    abandon_grace: float = 5.0
    auth_token: Optional[str] = None
    max_submissions_per_client: Optional[int] = None
    max_request_bytes: int = 16 * 1024 * 1024
    obs_port: Optional[int] = None
    cluster_members: Optional[int] = None
    placement: Optional[str] = None
    autotune: Optional[bool] = None

    def override(self, **explicit: Any) -> "ServingPolicy":
        """Return a policy with the given specified fields replaced."""
        changes = {
            name: value for name, value in explicit.items() if value is not None
        }
        return dataclasses.replace(self, **changes) if changes else self


#: Environment variable and coercion of each cluster-mode serving field.
_CLUSTER_ENV_OF_FIELD = {
    "cluster_members": (CLUSTER_MEMBERS_ENV, "int"),
    "placement": (CLUSTER_PLACEMENT_ENV, "str"),
    "autotune": (CLUSTER_AUTOTUNE_ENV, "bool"),
}


def resolve_cluster_field(
    policy: Optional[ServingPolicy],
    field: str,
    explicit: Any = None,
    default: Any = None,
) -> Resolved:
    """Resolve one cluster serving knob: explicit > policy > env > default.

    The cluster fields are the serving knobs with a documented environment
    fallback (``REPRO_CLUSTER_*``) — cluster topology is deployment
    configuration, like ``REPRO_OBS_PORT`` scrape targets.  Resolution
    happens once, at supervisor/CLI start, never ambiently per request.
    """
    if field not in _CLUSTER_ENV_OF_FIELD:
        raise ValueError(f"unknown cluster serving field {field!r}")
    if explicit is not None and explicit is not UNSET:
        return Resolved(explicit, "explicit")
    policy_value = getattr(policy, field, None) if policy is not None else None
    if policy_value is not None:
        return Resolved(policy_value, "policy")
    env_name, kind = _CLUSTER_ENV_OF_FIELD[field]
    raw = os.environ.get(env_name)
    if raw is not None and raw.strip():
        raw = raw.strip()
        if kind == "int":
            try:
                return Resolved(int(raw), "env")
            except ValueError:
                pass  # malformed deployment config: fall through to default
        elif kind == "bool":
            return Resolved(raw.lower() in _TRUTHY, "env")
        else:
            return Resolved(raw, "env")
    return Resolved(default, "default")
