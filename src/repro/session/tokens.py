"""Cancellation tokens: one cancel signal shared across layers.

A :class:`CancellationToken` is a tiny, thread-safe latch connecting a
*canceller* (an NDJSON ``cancel`` op, a timeout watchdog, user code holding
the token) to any number of *cancellables* (an async
:class:`repro.serve.server.Submission`, a pending future).  Callbacks
registered with :meth:`CancellationToken.on_cancel` fire exactly once, even
when registration races the cancel itself — registering on an
already-cancelled token fires the callback immediately.

The protocol server creates one token per streamed submission and indexes it
by the client's submission id; the ``cancel`` op resolves the id and fires
the token, which aborts the stream mid-flight (satellite of the ROADMAP's
protocol-hardening item).  :meth:`repro.session.Session.astream` accepts a
token so in-process callers get the same mechanism.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional


class CancellationToken:
    """A one-shot, thread-safe cancel latch with callbacks.

    Tokens are created by :meth:`repro.session.Session.cancellation_token`
    (or directly); they carry an optional ``reason`` string for diagnostics.
    """

    __slots__ = ("_lock", "_cancelled", "_callbacks", "reason")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cancelled = False
        self._callbacks: list[Callable[[], None]] = []
        self.reason: Optional[str] = None

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has run."""
        with self._lock:
            return self._cancelled

    def cancel(self, reason: Optional[str] = None) -> bool:
        """Fire the token; returns False when it was already cancelled.

        Callbacks run outside the lock (a callback may itself consult the
        token), in registration order, once each.
        """
        with self._lock:
            if self._cancelled:
                return False
            self._cancelled = True
            self.reason = reason
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback()
        return True

    def on_cancel(self, callback: Callable[[], None]) -> None:
        """Register ``callback`` to run on cancel (immediately if already fired)."""
        with self._lock:
            if not self._cancelled:
                self._callbacks.append(callback)
                return
        callback()
