"""The execution context: one object owning stores, pools, caches and plans.

A :class:`Session` is the single front door PR 5 consolidates the stack
behind.  It owns every resource that used to be scattered process-wide —
the document store, the corpus executor's worker pools, the async server,
the persistent plan cache and the in-memory compiled-plan memo — and it is
configured by two frozen policies (:class:`repro.session.ExecutionPolicy`,
:class:`repro.session.ServingPolicy`) under the documented precedence
*explicit argument > policy > environment > default*.

Symmetric sync/async surface::

    with Session(max_resident=32, kernel="bitset") as session:
        session.add_directory("corpus/")
        answers = session.query("doc000", "descendant::a[. is $x]", ["x"])
        for result in session.query_corpus((EXPR, ["y", "z"])):
            ...

    async with Session(store=store, serving=ServingPolicy(max_concurrent=8)) as s:
        results = await s.aquery((EXPR, ["y"]))
        stream = await s.astream((EXPR, ["y"]), token=s.cancellation_token())
        async for result in stream:
            ...

One compiled-plan memo backs *both* surfaces: an expression compiled by the
sync :meth:`Session.query` is the very same :class:`repro.api.Query` object
the async server streams from (and vice versa), and with a persistent plan
cache configured it also survives restarts.

Lifecycle is deterministic: :meth:`Session.close` (or leaving the ``with``
block) tears down worker pools and drops cache handles exactly once; any
later call raises the typed :class:`repro.errors.SessionClosedError`.
``async with`` uses :meth:`Session.aclose`, which additionally cancels
in-flight streams and drains the server first.
"""

from __future__ import annotations

import asyncio
import dataclasses
import os
import queue as queue_module
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Optional, Sequence, Union

from repro.errors import CorpusTimeoutError, SessionClosedError
from repro._deprecation import suppress_deprecations
from repro.obs import trace as _trace
from repro.obs.slowlog import SlowQueryLog
from repro.session.policy import UNSET, ExecutionPolicy, ServingPolicy
from repro.session.tokens import CancellationToken

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.document import Document
    from repro.api.query import Query
    from repro.corpus.executor import CorpusExecutor, CorpusResult
    from repro.corpus.report import CorpusReport
    from repro.corpus.store import DocumentStore
    from repro.core.engine import QueryReport
    from repro.serve.plancache import PlanCache
    from repro.serve.protocol import ProtocolServer
    from repro.serve.server import CorpusServer, Submission
    from repro.trees.tree import Node, Tree


def _stream_with_deadline(results: Iterator, timeout: float) -> Iterator:
    """Enforce a wall-clock deadline on a streaming result iterator.

    The underlying iterator is pulled on a daemon pump thread feeding a
    bounded queue; the consumer side charges every ``get`` against one
    monotonic deadline covering the *whole* stream.  When the deadline
    passes — whether the producer is stuck inside one slow document or the
    corpus is simply too large — the consumer raises
    :class:`repro.errors.CorpusTimeoutError` and signals the pump to stop.
    The pump polls its bounded ``put`` against the stop event, so an
    abandoned producer cannot block forever on a queue nobody drains.
    """
    deadline = time.monotonic() + timeout
    handoff: queue_module.Queue = queue_module.Queue(maxsize=4)
    stop = threading.Event()
    done = object()

    def pump() -> None:
        def offer(item) -> bool:
            while not stop.is_set():
                try:
                    handoff.put(item, timeout=0.05)
                    return True
                except queue_module.Full:
                    continue
            return False

        try:
            for result in results:
                if not offer((None, result)):
                    return
        except BaseException as error:  # noqa: BLE001 - re-raised consumer-side
            offer((error, None))
            return
        offer((done, None))

    thread = threading.Thread(target=pump, name="corpus-timeout-pump", daemon=True)
    thread.start()
    try:
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise CorpusTimeoutError(timeout)
            try:
                marker, payload = handoff.get(timeout=remaining)
            except queue_module.Empty:
                raise CorpusTimeoutError(timeout) from None
            if marker is done:
                return
            if marker is not None:
                raise marker
            yield payload
    finally:
        stop.set()


class Session:
    """One execution context: store + pools + caches + plans, policy-driven.

    Parameters
    ----------
    store:
        An existing :class:`repro.corpus.DocumentStore` to adopt (the
        session does **not** reconfigure it).  Without one, the session
        builds its own store from the resolved execution policy
        (``max_resident``, ``cache_answers``, ``answer_cache_bytes``,
        ``kernel``, ``matrix_cache_bytes``).
    execution / serving:
        The policy objects.  Omitted fields fall through to the matching
        ``REPRO_*`` environment variable, then the built-in default.
    engine, kernel, strategy, max_workers, max_resident, cache_answers,
    answer_cache_bytes, matrix_cache_bytes, timeout:
        Explicit overrides folded *over* ``execution`` (explicit > policy).
    max_retries, retry_backoff, on_error, max_worker_restarts, restart_backoff:
        Fault-tolerance overrides (retry budget and backoff for transient
        per-document failures, error-record/skip policy, and the supervised
        shard-pool restart budget), folded over ``execution`` likewise.
    plan_cache:
        A :class:`repro.serve.PlanCache`, a directory path for one, or
        ``None`` to disable persistence explicitly; unset falls through to
        ``execution.plan_cache_dir`` / ``REPRO_PLAN_CACHE``.  Compiled
        plans always memoise in memory for the session's lifetime.
    snapshot_dir / snapshot_bytes:
        Directory (and LRU byte budget) of the on-disk columnar snapshot
        store; unset falls through to ``execution.snapshot_dir`` /
        ``REPRO_SNAPSHOT_DIR`` (and the ``_BYTES`` variants).  With a
        directory set, the session's store memmaps snapshots instead of
        re-parsing XML and spills answer sets for warm restarts.
    """

    def __init__(
        self,
        store: Optional["DocumentStore"] = None,
        *,
        execution: Optional[ExecutionPolicy] = None,
        serving: Optional[ServingPolicy] = None,
        engine: Optional[str] = None,
        kernel: Any = None,
        strategy: Optional[str] = None,
        max_workers: Optional[int] = None,
        max_resident: Any = UNSET,
        cache_answers: Optional[bool] = None,
        answer_cache_bytes: Any = UNSET,
        matrix_cache_bytes: Any = UNSET,
        timeout: Any = UNSET,
        plan_cache: Any = UNSET,
        plan_cache_bytes: Any = UNSET,
        snapshot_dir: Optional[Union[str, "os.PathLike[str]"]] = None,
        snapshot_bytes: Any = UNSET,
        max_retries: Any = UNSET,
        retry_backoff: Any = UNSET,
        on_error: Optional[str] = None,
        max_worker_restarts: Any = UNSET,
        restart_backoff: Any = UNSET,
    ) -> None:
        explicit: dict[str, Any] = {}
        if engine is not None:
            explicit["engine"] = engine
        if kernel is not None:
            explicit["kernel"] = kernel
        if strategy is not None:
            explicit["strategy"] = strategy
        if max_workers is not None:
            explicit["max_workers"] = max_workers
        if max_resident is not UNSET:
            explicit["max_resident"] = max_resident
        if cache_answers is not None:
            explicit["cache_answers"] = cache_answers
        if answer_cache_bytes is not UNSET:
            explicit["answer_cache_bytes"] = answer_cache_bytes
        if matrix_cache_bytes is not UNSET:
            explicit["matrix_cache_bytes"] = matrix_cache_bytes
        if timeout is not UNSET:
            explicit["timeout"] = timeout
        if plan_cache_bytes is not UNSET:
            explicit["plan_cache_bytes"] = plan_cache_bytes
        if snapshot_dir is not None:
            explicit["snapshot_dir"] = os.fspath(snapshot_dir)
        if snapshot_bytes is not UNSET:
            explicit["snapshot_bytes"] = snapshot_bytes
        if max_retries is not UNSET:
            explicit["max_retries"] = max_retries
        if retry_backoff is not UNSET:
            explicit["retry_backoff"] = retry_backoff
        if on_error is not None:
            explicit["on_error"] = on_error
        if max_worker_restarts is not UNSET:
            explicit["max_worker_restarts"] = max_worker_restarts
        if restart_backoff is not UNSET:
            explicit["restart_backoff"] = restart_backoff
        base = execution if execution is not None else ExecutionPolicy()
        #: The merged execution policy (explicit args folded over ``execution``).
        self.execution: ExecutionPolicy = (
            dataclasses.replace(base, **explicit) if explicit else base
        )
        #: The serving policy governing the async surface.
        self.serving: ServingPolicy = serving if serving is not None else ServingPolicy()

        self._lock = threading.RLock()
        self._closed = False
        self._started_monotonic = time.monotonic()
        #: Slow-query log (threshold from ``slow_query_seconds`` /
        #: ``REPRO_SLOW_QUERY_SECONDS``; ``None`` disables).  Shared with
        #: the session's server so both surfaces land in one log.
        self.slowlog = SlowQueryLog(self.execution.resolved("slow_query_seconds"))
        if self.execution.resolved("trace"):
            # Tracing is process-wide (like the kernel default): enabling it
            # here is deliberate and never un-done on close, so a second
            # session cannot silently disable another's tracing.
            _trace.set_tracing(True)
        sample = self.execution.resolved("trace_sample")
        if sample is not None and sample > 0:
            # Same process-wide contract as ``trace``: sampling set here is
            # never reset on close.
            _trace.set_trace_sample(sample)
        self.store = store if store is not None else self._build_store()
        self._plan_cache = self._build_plan_cache(plan_cache)
        #: In-memory compiled-plan memo shared by the sync and async paths.
        self._plans: dict[tuple[Any, tuple[str, ...]], "Query"] = {}
        self._executor: Optional["CorpusExecutor"] = None
        self._server: Optional["CorpusServer"] = None
        #: Submissions created through :meth:`astream`, for aclose teardown.
        self._active_submissions: list["Submission"] = []

    # ------------------------------------------------------------ construction
    def _build_store(self) -> "DocumentStore":
        from repro.corpus.store import DocumentStore

        resolve = self.execution.resolve
        kwargs: dict[str, Any] = {
            "max_resident": resolve("max_resident").value,
            "cache_answers": bool(resolve("cache_answers").value),
            "answer_cache_bytes": resolve("answer_cache_bytes").value,
        }
        # The kernel and the matrix budget are forwarded only when the
        # session itself pinned them (explicitly or via policy): the tree
        # and kernel layers already honour their own REPRO_* environment
        # defaults, and forwarding an env-resolved value here would freeze
        # it per store instead of per process.
        kernel = resolve("kernel")
        if kernel.source in ("explicit", "policy"):
            kwargs["kernel"] = kernel.value
        matrix_budget = resolve("matrix_cache_bytes")
        if matrix_budget.source in ("explicit", "policy"):
            kwargs["matrix_cache_bytes"] = matrix_budget.value
        # The snapshot directory forwards from *any* layer, environment
        # included: unlike the kernel/matrix knobs there is no lower layer
        # reading REPRO_SNAPSHOT_DIR itself, so the session is the one place
        # the env default can take effect.
        snapshot_dir = resolve("snapshot_dir").value
        if snapshot_dir is not None:
            kwargs["snapshot_dir"] = snapshot_dir
            kwargs["snapshot_bytes"] = resolve("snapshot_bytes").value
        return DocumentStore(**kwargs)

    def _build_plan_cache(self, plan_cache: Any) -> Optional["PlanCache"]:
        from repro.serve.plancache import PlanCache

        if isinstance(plan_cache, PlanCache):
            return plan_cache
        if plan_cache is None:
            return None  # persistence explicitly disabled
        if plan_cache is UNSET:
            directory = self.execution.resolved("plan_cache_dir")
        else:
            directory = plan_cache
        if directory is None:
            return None
        return PlanCache(
            Path(directory), max_bytes=self.execution.resolved("plan_cache_bytes")
        )

    # ---------------------------------------------------------------- lifecycle
    @property
    def closed(self) -> bool:
        """True once :meth:`close` or :meth:`aclose` has completed."""
        return self._closed

    def _ensure_open(self, operation: str) -> None:
        if self._closed:
            raise SessionClosedError(operation)

    def close(self) -> None:
        """Tear down worker pools deterministically (idempotent).

        Safe to call any number of times; the first call shuts the corpus
        executor's dispatch/shard pools down (cancelling queued work) and
        marks the session closed.  If the async surface was used, prefer
        :meth:`aclose`, which also cancels in-flight streams and drains the
        server before the pools go away.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            executor, self._executor = self._executor, None
            server, self._server = self._server, None
        if server is not None:
            # Best-effort sync teardown: stop admission so a still-running
            # loop cannot hand new work to the dying pools.
            server.close_nowait()
        if executor is not None:
            executor.close()

    async def aclose(self) -> None:
        """Cancel in-flight streams, drain the server, then :meth:`close`."""
        if self._closed:
            return
        with self._lock:
            submissions, self._active_submissions = self._active_submissions, []
            server = self._server
        for submission in submissions:
            submission.cancel()
        if server is not None:
            await server.aclose()  # drains, then closes the executor via close()
        self.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    async def __aenter__(self) -> "Session":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------ registration
    def add_xml(self, name: str, text: str) -> str:
        """Register an XML string under ``name`` (delegates to the store)."""
        self._ensure_open("add_xml")
        return self.store.add_xml(name, text)

    def add_file(self, path: Union[str, "os.PathLike[str]"], name: Optional[str] = None) -> str:
        """Register an XML file (delegates to the store)."""
        self._ensure_open("add_file")
        return self.store.add_file(path, name=name)

    def add_tree(self, name: str, tree: Union["Tree", "Node"]) -> str:
        """Register an in-memory tree (delegates to the store)."""
        self._ensure_open("add_tree")
        return self.store.add_tree(name, tree)

    def add_directory(
        self, directory: Union[str, "os.PathLike[str]"], pattern: str = "*.xml"
    ) -> list[str]:
        """Register every matching file of a directory (delegates to the store)."""
        self._ensure_open("add_directory")
        return self.store.add_directory(directory, pattern)

    def document(self, name: str) -> "Document":
        """The materialised document registered under ``name``."""
        self._ensure_open("document")
        return self.store.get(name)

    # ------------------------------------------------------------- compilation
    def compile(self, expression: Any, variables: Sequence[str] = ()) -> "Query":
        """Compile once per session; the same object serves sync and async.

        Strings go through the persistent plan cache when one is
        configured; every compile lands in the in-memory memo, so the plan
        the server streams from *is* the object the sync path answered
        with.
        """
        self._ensure_open("compile")
        from repro.api.query import Query, compile_query

        if isinstance(expression, Query):
            # Adopt an externally compiled plan into the memo under its own
            # identity, so later compiles of the same text hit it.
            with self._lock:
                return self._plans.setdefault(expression.cache_key, expression)
        key = (expression, tuple(variables))
        with self._lock:
            query = self._plans.get(key)
        if query is not None:
            return query
        if isinstance(expression, str) and self._plan_cache is not None:
            query = self._plan_cache.get_or_compile(expression, tuple(variables))
        else:
            query = compile_query(expression, tuple(variables), require_ppl=False)
        with self._lock:
            query = self._plans.setdefault(key, query)
        return query

    def _compile_batch(self, queries: Any) -> list["Query"]:
        from repro.api.document import iter_batch
        from repro.api.query import Query

        compiled: list[Query] = []
        for item in iter_batch(queries):
            if isinstance(item, Query):
                compiled.append(self.compile(item))
            elif isinstance(item, tuple):
                expression, variables = item
                compiled.append(self.compile(expression, tuple(variables)))
            else:
                compiled.append(self.compile(item, ()))
        return compiled

    # ------------------------------------------------------------ sync surface
    def _resolve_document(self, document: Any) -> "Document":
        from repro.api.document import Document, as_document
        from repro.trees.tree import Node, Tree

        if isinstance(document, Document):
            return document
        if isinstance(document, (Tree, Node)):
            with suppress_deprecations():
                return as_document(document)
        if isinstance(document, (str, os.PathLike)):
            return self.store.resolve(os.fspath(document))
        raise TypeError(
            f"cannot query {document!r}: expected a Document, Tree, Node, "
            "registered name or XML file path"
        )

    def query(
        self,
        document: Any,
        expression: Any,
        variables: Sequence[str] = (),
        *,
        engine: Optional[str] = None,
    ) -> frozenset[tuple[int, ...]]:
        """Answer one query on one document (the sync single-document path).

        ``document`` is a registered name, an XML file path, a
        :class:`repro.api.Document`, or a bare tree.  ``engine`` resolves
        through explicit > policy > ``REPRO_ENGINE`` > default.
        """
        self._ensure_open("query")
        resolved = self._resolve_document(document)
        compiled = self.compile(expression, variables)
        started = time.perf_counter()
        answers = resolved.answer(
            compiled, engine=self.execution.resolved("engine", engine)
        )
        elapsed = time.perf_counter() - started
        if self.slowlog.should_log(elapsed):
            self.slowlog.record(
                elapsed,
                query=compiled.text if compiled.text is not None else compiled.unparse(),
                document=document if isinstance(document, str) else None,
                trace=_trace.last_trace() if _trace.enabled() else None,
            )
        return answers

    def report(
        self,
        document: Any,
        expression: Any,
        variables: Sequence[str] = (),
        *,
        engine: Optional[str] = None,
        answers: Optional[frozenset] = None,
    ) -> "QueryReport":
        """Answer and return sizing diagnostics (see ``Document.report``)."""
        self._ensure_open("report")
        resolved = self._resolve_document(document)
        compiled = self.compile(expression, variables)
        return resolved.report(
            compiled,
            engine=self.execution.resolved("engine", engine),
            answers=answers,
        )

    def _executor_instance(self) -> "CorpusExecutor":
        with self._lock:
            self._ensure_open("query_corpus")
            if self._executor is None:
                from repro.corpus.executor import CorpusExecutor

                resolve = self.execution.resolve
                kernel = resolve("kernel")
                self._executor = CorpusExecutor(
                    self.store,
                    strategy=resolve("strategy").value,
                    max_workers=resolve("max_workers").value,
                    engine=resolve("engine").value,
                    kernel=(
                        kernel.value
                        if kernel.source in ("explicit", "policy")
                        else None
                    ),
                    max_retries=resolve("max_retries").value,
                    retry_backoff=resolve("retry_backoff").value,
                    on_error=resolve("on_error").value,
                    max_worker_restarts=resolve("max_worker_restarts").value,
                    restart_backoff=resolve("restart_backoff").value,
                )
            return self._executor

    def query_corpus(
        self,
        queries: Any,
        documents: Optional[Sequence[str]] = None,
        *,
        engine: Optional[str] = None,
        ordered: bool = True,
    ) -> Iterator["CorpusResult"]:
        """Stream :class:`repro.corpus.CorpusResult` values for a batch.

        The executor (strategy, worker pools) comes from the execution
        policy and persists across calls — repeated corpus queries reuse
        shard workers and their caches until the session closes.

        When the execution policy sets a ``timeout``, the whole stream runs
        under one wall-clock deadline: exceeding it raises
        :class:`repro.errors.CorpusTimeoutError` on the consumer, mirroring
        the async surface's submission watchdog.
        """
        self._ensure_open("query_corpus")
        compiled = self._compile_batch(queries)
        results = self._executor_instance().run(
            compiled,
            documents,
            engine=self.execution.resolved("engine", engine),
            ordered=ordered,
        )
        timeout = self.execution.resolved("timeout")
        if timeout is not None:
            return _stream_with_deadline(results, timeout)
        return results

    def corpus_report(
        self,
        queries: Any,
        documents: Optional[Sequence[str]] = None,
        *,
        engine: Optional[str] = None,
        ordered: bool = True,
    ) -> "CorpusReport":
        """Run a corpus batch and aggregate into a :class:`CorpusReport`."""
        self._ensure_open("corpus_report")
        compiled = self._compile_batch(queries)
        return self._executor_instance().run_report(
            compiled,
            documents,
            engine=self.execution.resolved("engine", engine),
            ordered=ordered,
        )

    # ----------------------------------------------------------- async surface
    def server(self) -> "CorpusServer":
        """The session's async server (lazy; shares the sync executor).

        The server multiplexes onto the *same* executor (and therefore the
        same shard pools and caches) the sync surface uses, and compiles
        through the session memo — a plan warmed synchronously is the
        object the server streams from.
        """
        with self._lock:
            self._ensure_open("server")
            if self._server is None:
                from repro.serve.server import CorpusServer

                self._server = CorpusServer(
                    self.store,
                    executor=self._executor_instance(),
                    engine=self.execution.resolved("engine"),
                    plan_cache=self._plan_cache,
                    policy=self.serving,
                    session=self,
                )
            return self._server

    def cancellation_token(self) -> CancellationToken:
        """A fresh :class:`CancellationToken` usable with :meth:`astream`."""
        self._ensure_open("cancellation_token")
        return CancellationToken()

    async def astream(
        self,
        queries: Any,
        documents: Optional[Sequence[str]] = None,
        *,
        engine: Optional[str] = None,
        ordered: bool = True,
        token: Optional[CancellationToken] = None,
    ) -> "Submission":
        """Submit a batch to the async server; returns the result stream.

        ``token`` wires a :class:`CancellationToken` to the submission:
        firing it (from any thread) aborts outstanding document jobs
        mid-stream.  The execution policy's ``timeout`` (seconds), when
        set, cancels the submission once exceeded.
        """
        self._ensure_open("astream")
        server = self.server()
        submission = await server.submit(
            self._compile_batch(queries),
            documents,
            engine=self.execution.resolved("engine", engine),
            ordered=ordered,
        )
        loop = asyncio.get_running_loop()

        def _cancel_threadsafe() -> None:
            try:
                loop.call_soon_threadsafe(submission.cancel)
            except RuntimeError:  # loop already closed: nothing left to cancel
                pass

        if token is not None:
            token.on_cancel(_cancel_threadsafe)
        timeout = self.execution.resolved("timeout")
        if timeout is not None:
            watchdog = loop.call_later(timeout, submission.cancel)
            if submission._task is not None:
                submission._task.add_done_callback(lambda _t: watchdog.cancel())
        with self._lock:
            self._active_submissions = [
                live
                for live in self._active_submissions
                if live._task is not None and not live._task.done()
            ]
            self._active_submissions.append(submission)
        return submission

    async def aquery(
        self,
        queries: Any,
        documents: Optional[Sequence[str]] = None,
        *,
        engine: Optional[str] = None,
        ordered: bool = True,
    ) -> list["CorpusResult"]:
        """Submit and collect in one await (async convenience wrapper)."""
        submission = await self.astream(
            queries, documents, engine=engine, ordered=ordered
        )
        return await submission.results()

    def protocol(self) -> "ProtocolServer":
        """An NDJSON protocol front end bound to this session's server.

        Auth, per-client quotas, request size limits and the ``cancel`` op
        come from :attr:`serving`.
        """
        self._ensure_open("protocol")
        from repro.serve.protocol import ProtocolServer

        return ProtocolServer(self.server(), session=self)

    # ---------------------------------------------------------------- telemetry
    def worker_stats(self):
        """Aggregate shard-worker (loads, hits, evictions) counters.

        Meaningful under the ``processes`` strategy, where documents
        materialise inside the shard workers and the parent store's
        counters stay at zero; returns zeros otherwise (or before the
        first corpus run).  Public counterpart of
        :attr:`DocumentStore.stats` for the worker side — the CLI's
        ``corpus bench`` folds the two together.
        """
        self._ensure_open("worker_stats")
        with self._lock:
            executor = self._executor
        if executor is None:
            from repro.corpus.store import StoreStats

            return StoreStats()
        return executor.worker_stats()

    def stats(self) -> dict:
        """One snapshot across every cache and pool the session owns."""
        self._ensure_open("stats")
        store_stats = self.store.stats
        answer_cache = self.store.answer_cache
        payload: dict[str, Any] = {
            "documents": len(self.store),
            "store": {
                "loads": store_stats.loads,
                "hits": store_stats.hits,
                "evictions": store_stats.evictions,
                "parse_count": store_stats.parse_count,
                "snapshot_hits": store_stats.snapshot_hits,
                "snapshot_misses": store_stats.snapshot_misses,
            },
            "snapshot": self.store.snapshot_stats(),
            "answer_cache": (
                answer_cache.stats.to_dict() if answer_cache is not None else None
            ),
            "matrix_cache": self.store.matrix_cache_stats().to_dict(),
            "plan_cache": (
                self._plan_cache.stats.to_dict() if self._plan_cache is not None else None
            ),
            "plans_in_memory": len(self._plans),
            "uptime_seconds": time.monotonic() - self._started_monotonic,
            "stats_at": time.monotonic(),
            "slow_queries": len(self.slowlog),
            "policy": {
                name: {"value": resolved.value, "source": resolved.source}
                for name, resolved in self.execution.explain().items()
            },
        }
        with self._lock:
            server = self._server
            executor = self._executor
        payload["server"] = server.stats.to_dict() if server is not None else None
        payload["faults"] = (
            executor.fault_stats() if executor is not None else None
        )
        return payload

    def metrics(self):
        """The session's merged :class:`repro.obs.metrics.MetricsRegistry`.

        Folds the corpus executor's evaluation histograms (shard-worker
        histograms included, under the processes strategy — this *blocks*
        on a round-trip per live shard pool, so call it off the event loop)
        and, when the async server exists, its latency histograms.  Render
        with :meth:`repro.obs.metrics.MetricsRegistry.render` for
        Prometheus text.
        """
        self._ensure_open("metrics")
        from repro.obs.metrics import MetricsRegistry

        merged = MetricsRegistry()
        with self._lock:
            executor = self._executor
            server = self._server
        if executor is not None:
            merged.merge(executor.metrics())
        if server is not None:
            merged.merge(server.metrics_registry)
        return merged

    @property
    def plan_cache(self) -> Optional["PlanCache"]:
        """The persistent plan cache, when one is configured."""
        return self._plan_cache

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (
            f"Session({state}, documents={len(self.store)}, "
            f"strategy={self.execution.resolved('strategy')!r}, "
            f"engine={self.execution.resolved('engine')!r})"
        )
