"""repro.session — one execution-context API over the whole stack.

The fifth layer of the stack, and the one callers are meant to hold::

    repro.xpath / repro.core / repro.pplbin    expression pipeline
    repro.api                                  Document / Query facade
    repro.corpus                               DocumentStore + CorpusExecutor
    repro.serve                                asyncio front end + plan cache
    repro.session                              Session + policies  (this layer)

A :class:`Session` owns the resources the earlier layers scattered —
document store, worker pools, plan/answer/matrix caches, the async server —
configured by two frozen policies with one documented precedence chain
(*explicit argument > policy > environment > default*), and exposes a
symmetric sync/async surface (:meth:`Session.query`,
:meth:`Session.query_corpus`, :meth:`Session.aquery`,
:meth:`Session.astream`) with context-manager lifecycle and deterministic
teardown.

Quickstart::

    from repro.session import ExecutionPolicy, Session

    with Session(execution=ExecutionPolicy(strategy="processes")) as session:
        session.add_directory("corpus/")
        for result in session.query_corpus(("descendant::a[. is $x]", ["x"])):
            print(result.doc_name, len(result.answers))

The pre-Session entry points (:class:`repro.api.Document` construction,
:func:`repro.api.answer_batch`, :class:`repro.corpus.CorpusExecutor`,
:class:`repro.serve.CorpusServer`) keep working as deprecation-shimmed
wrappers; see the README's migration table.
"""

from repro.errors import CorpusTimeoutError, SessionClosedError, SessionError
from repro.session.policy import (
    ANSWER_CACHE_BYTES_ENV,
    ENGINE_ENV,
    KERNEL_ENV,
    MATRIX_CACHE_BYTES_ENV,
    MAX_RESIDENT_ENV,
    MAX_WORKERS_ENV,
    PLAN_CACHE_BYTES_ENV,
    PLAN_CACHE_DIR_ENV,
    SLOW_QUERY_SECONDS_ENV,
    SNAPSHOT_BYTES_ENV,
    SNAPSHOT_DIR_ENV,
    STRATEGY_ENV,
    TIMEOUT_ENV,
    TRACE_ENV,
    UNSET,
    ExecutionPolicy,
    Resolved,
    ServingPolicy,
)
from repro.session.tokens import CancellationToken
from repro.session.session import Session

__all__ = [
    "Session",
    "ExecutionPolicy",
    "ServingPolicy",
    "Resolved",
    "UNSET",
    "CancellationToken",
    "SessionError",
    "SessionClosedError",
    "CorpusTimeoutError",
    "ENGINE_ENV",
    "KERNEL_ENV",
    "STRATEGY_ENV",
    "MAX_WORKERS_ENV",
    "MAX_RESIDENT_ENV",
    "ANSWER_CACHE_BYTES_ENV",
    "MATRIX_CACHE_BYTES_ENV",
    "PLAN_CACHE_DIR_ENV",
    "PLAN_CACHE_BYTES_ENV",
    "SNAPSHOT_DIR_ENV",
    "SNAPSHOT_BYTES_ENV",
    "TIMEOUT_ENV",
    "TRACE_ENV",
    "SLOW_QUERY_SECONDS_ENV",
]
