"""PPL — the polynomial-time path language (the paper's core contribution, S7).

This package ties together the substrates:

* :mod:`~repro.core.ppl` — the syntactic restriction checker of Definition 1
  (what makes a Core XPath 2.0 expression a PPL expression).
* :mod:`~repro.core.translate` — the Fig. 7 translation PPL → HCL⁻(PPLbin)
  and its converse (Proposition 5).
* :mod:`~repro.core.engine` — :class:`QueryReport`, the diagnostics block of
  the end-to-end polynomial answering pipeline of Theorem 1 (the pipeline
  itself runs behind the ``"polynomial"`` backend of :mod:`repro.api`).

The seed-era shims that used to live here (``PPLEngine``, the legacy
``compile_query``/``CompiledQuery``, ``repro.answer``) were removed in
1.5.0; use :class:`repro.api.Document`, :func:`repro.api.compile_query` and
:class:`repro.session.Session` — see the README migration table.
"""

from repro.core.ppl import PPL_CONDITIONS, check_ppl, is_ppl, ppl_violations
from repro.core.translate import hcl_to_ppl, ppl_to_hcl
from repro.core.engine import QueryReport

__all__ = [
    "PPL_CONDITIONS",
    "check_ppl",
    "is_ppl",
    "ppl_violations",
    "ppl_to_hcl",
    "hcl_to_ppl",
    "QueryReport",
]
