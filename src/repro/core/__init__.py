"""PPL — the polynomial-time path language (the paper's core contribution, S7).

This package ties together the substrates:

* :mod:`~repro.core.ppl` — the syntactic restriction checker of Definition 1
  (what makes a Core XPath 2.0 expression a PPL expression).
* :mod:`~repro.core.translate` — the Fig. 7 translation PPL → HCL⁻(PPLbin)
  and its converse (Proposition 5).
* :mod:`~repro.core.engine` — :class:`PPLEngine`, the end-to-end polynomial
  n-ary query answering pipeline of Theorem 1 (now a thin shim over the
  ``"polynomial"`` backend of :mod:`repro.api`).
* :mod:`~repro.core.api` — deprecation shims for the seed's convenience
  functions; new code should use :mod:`repro.api` directly.
"""

from repro.core.ppl import PPL_CONDITIONS, check_ppl, is_ppl, ppl_violations
from repro.core.translate import hcl_to_ppl, ppl_to_hcl
from repro.core.engine import PPLEngine
from repro.core.api import CompiledQuery, answer, compile_query

__all__ = [
    "PPL_CONDITIONS",
    "check_ppl",
    "is_ppl",
    "ppl_violations",
    "ppl_to_hcl",
    "hcl_to_ppl",
    "PPLEngine",
    "compile_query",
    "CompiledQuery",
    "answer",
]
