"""The PPL membership check — Definition 1 of the paper.

A Core XPath 2.0 expression belongs to PPL when it satisfies the seven
syntactic conditions:

===============  ==============================================================
``N(for)``       no for-loops (no explicit quantifiers)
``NV(intersect)``no variables in either operand of an ``intersect``
``NV(except)``   no variables in either operand of an ``except``
``NV(not)``      no variables below a ``not`` test
``NVS(/)``       no variable shared between the two sides of a composition
``NVS([])``      no variable shared between a filtered path and its test
``NVS(and)``     no variable shared between the two conjuncts of an ``and``
===============  ==============================================================

Two access paths are offered: :func:`ppl_violations` collects every violated
condition with an explanatory message (useful for error reporting and the
hardness demonstrations), :func:`check_ppl` raises
:class:`repro.errors.RestrictionViolation` on the first violation.

One point the paper leaves implicit: the comparison test ``$x is $y`` between
two *distinct* variables is accepted here — it translates to the HCL formula
``[x/y]`` which involves no variable sharing (two different variables) and is
handled by the Fig. 8 algorithm; see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RestrictionViolation
from repro.xpath.ast import (
    AndTest,
    Filter,
    ForLoop,
    NotTest,
    PathCompose,
    PathExcept,
    PathExpr,
    PathIntersect,
    TestExpr,
)
from repro.xpath.parser import parse_path

#: The names of the seven conditions of Definition 1, in the paper's order.
PPL_CONDITIONS: tuple[str, ...] = (
    "N(for)",
    "NV(intersect)",
    "NV(except)",
    "NV(not)",
    "NVS(/)",
    "NVS([])",
    "NVS(and)",
)


@dataclass(frozen=True)
class Violation:
    """One violated condition together with the offending sub-expression."""

    condition: str
    message: str
    subexpression: object

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.condition}: {self.message}"


def ppl_violations(expression: PathExpr | TestExpr | str) -> list[Violation]:
    """Return every violation of Definition 1 found in ``expression``."""
    parsed = parse_path(expression) if isinstance(expression, str) else expression
    violations: list[Violation] = []

    for sub in parsed.walk():
        if isinstance(sub, ForLoop):
            violations.append(
                Violation(
                    "N(for)",
                    f"for-loop over ${sub.variable} is not allowed in PPL",
                    sub,
                )
            )
        elif isinstance(sub, PathIntersect):
            offending = sub.left.free_variables | sub.right.free_variables
            if offending:
                violations.append(
                    Violation(
                        "NV(intersect)",
                        "variables {"
                        + ", ".join(sorted(offending))
                        + "} occur inside an intersect",
                        sub,
                    )
                )
        elif isinstance(sub, PathExcept):
            offending = sub.left.free_variables | sub.right.free_variables
            if offending:
                violations.append(
                    Violation(
                        "NV(except)",
                        "variables {"
                        + ", ".join(sorted(offending))
                        + "} occur inside an except",
                        sub,
                    )
                )
        elif isinstance(sub, NotTest):
            offending = sub.test.free_variables
            if offending:
                violations.append(
                    Violation(
                        "NV(not)",
                        "variables {"
                        + ", ".join(sorted(offending))
                        + "} occur below a negation",
                        sub,
                    )
                )
        elif isinstance(sub, PathCompose):
            shared = sub.left.free_variables & sub.right.free_variables
            if shared:
                violations.append(
                    Violation(
                        "NVS(/)",
                        "variables {"
                        + ", ".join(sorted(shared))
                        + "} are shared across a composition",
                        sub,
                    )
                )
        elif isinstance(sub, Filter):
            shared = sub.path.free_variables & sub.test.free_variables
            if shared:
                violations.append(
                    Violation(
                        "NVS([])",
                        "variables {"
                        + ", ".join(sorted(shared))
                        + "} are shared between a path and its filter",
                        sub,
                    )
                )
        elif isinstance(sub, AndTest):
            shared = sub.left.free_variables & sub.right.free_variables
            if shared:
                violations.append(
                    Violation(
                        "NVS(and)",
                        "variables {"
                        + ", ".join(sorted(shared))
                        + "} are shared across a conjunction",
                        sub,
                    )
                )
    return violations


def is_ppl(expression: PathExpr | TestExpr | str) -> bool:
    """Return True when the expression satisfies all conditions of Definition 1."""
    return not ppl_violations(expression)


def check_ppl(expression: PathExpr | TestExpr | str) -> None:
    """Raise :class:`RestrictionViolation` if the expression is not in PPL."""
    violations = ppl_violations(expression)
    if violations:
        first = violations[0]
        raise RestrictionViolation(first.condition, first.message)
