"""The Fig. 7 / Proposition 5 translations: PPL ⟷ HCL⁻(PPLbin).

``ppl_to_hcl`` is the workhorse of the polynomial engine: it maps a PPL
expression (checked by :mod:`repro.core.ppl`) into a hybrid composition
formula over PPLbin leaves, following Fig. 7 of the paper:

* axis steps and the context item become PPLbin leaves;
* ``$x`` becomes ``nodes/x`` (jump anywhere, then test the variable);
* compositions, unions and filters translate homomorphically;
* ``intersect`` / ``except`` sub-expressions and negated tests are variable
  free (by NV(intersect) / NV(except) / NV(not)), so the whole sub-expression
  is translated into a single PPLbin leaf through Fig. 4;
* comparison tests become variable formulas: ``[. is $x]`` is the HCL
  variable ``x``; ``[$x is $y]`` becomes ``[x/y]`` (see DESIGN.md).

``hcl_to_ppl`` is the converse direction of Proposition 5 (used for the
language-equality tests): PPLbin leaves embed into Core XPath 2.0, variables
become ``.[. is $x]``, and the images are PPL expressions whenever the input
satisfies NVS(/).

Both translations are linear-time and linear-size; experiment E7 measures
the expansion factors.
"""

from __future__ import annotations

from repro.errors import TranslationError
from repro.xpath import ast as x
from repro.pplbin import translate as pb_translate
from repro.pplbin.ast import BinExpr, BStep, SelfStep, nodes_query
from repro.pplbin.translate import from_core_xpath
from repro.hcl.ast import HclExpr, HCompose, HFilter, HUnion, HVar, Leaf
from repro.core.ppl import check_ppl


def ppl_to_hcl(expression: x.PathExpr) -> HclExpr:
    """Translate a PPL path expression into HCL⁻(PPLbin) (Fig. 7).

    The expression is checked against Definition 1 first; a
    :class:`repro.errors.RestrictionViolation` is raised when it is not PPL.
    """
    check_ppl(expression)
    return _translate_path(expression)


def _translate_path(expression: x.PathExpr) -> HclExpr:
    if isinstance(expression, x.Step):
        return Leaf(BStep(expression.axis, expression.nametest))
    if isinstance(expression, x.ContextItem):
        return Leaf(SelfStep())
    if isinstance(expression, x.VarRef):
        # $x  =  nodes/x : jump to an arbitrary node, require it to be alpha(x).
        return HCompose(Leaf(nodes_query()), HVar(expression.name))
    if isinstance(expression, x.PathCompose):
        return HCompose(_translate_path(expression.left), _translate_path(expression.right))
    if isinstance(expression, x.PathUnion):
        return HUnion(_translate_path(expression.left), _translate_path(expression.right))
    if isinstance(expression, (x.PathIntersect, x.PathExcept)):
        # Variable-free by NV(intersect)/NV(except): one PPLbin leaf via Fig. 4.
        return Leaf(from_core_xpath(expression))
    if isinstance(expression, x.Filter):
        return HCompose(_translate_path(expression.path), _translate_test(expression.test))
    if isinstance(expression, x.ForLoop):  # pragma: no cover - rejected by check_ppl
        raise TranslationError("for-loops cannot occur in PPL expressions")
    raise TranslationError(f"cannot translate {expression!r} into HCL")


def _translate_test(test: x.TestExpr) -> HclExpr:
    """Translate a filter test into a partial-identity HCL formula."""
    if isinstance(test, x.PathTest):
        return HFilter(_translate_path(test.path))
    if isinstance(test, x.CompTest):
        left, right = test.left, test.right
        if left == x.CONTEXT and right == x.CONTEXT:
            return Leaf(SelfStep())
        if left == x.CONTEXT:
            return HVar(right)
        if right == x.CONTEXT:
            return HVar(left)
        if left == right:
            return HVar(left)
        # $x is $y with distinct variables: [x/y] holds at alpha(x) when
        # alpha(x) = alpha(y); no variable sharing since x != y.
        return HFilter(HCompose(HVar(left), HVar(right)))
    if isinstance(test, x.NotTest):
        # Variable-free by NV(not): one PPLbin leaf for the partial identity
        # selecting the nodes satisfying `not T`.
        return Leaf(pb_translate._negate_test(test.test))
    if isinstance(test, x.AndTest):
        return HCompose(_translate_test(test.left), _translate_test(test.right))
    if isinstance(test, x.OrTest):
        return HUnion(_translate_test(test.left), _translate_test(test.right))
    raise TranslationError(f"cannot translate test {test!r} into HCL")


# --------------------------------------------------------------- converse
def hcl_to_ppl(formula: HclExpr) -> x.PathExpr:
    """Translate an HCL⁻(PPLbin) formula back into a PPL expression (Prop. 5).

    PPLbin leaves are embedded through
    :func:`repro.pplbin.translate.to_core_xpath`; the result is a Core XPath
    2.0 expression, and it satisfies Definition 1 whenever the input formula
    contained no variable sharing across compositions.
    """
    if isinstance(formula, Leaf):
        query = formula.query
        if not isinstance(query, BinExpr):
            raise TranslationError(
                "hcl_to_ppl only handles formulas whose leaves are PPLbin expressions"
            )
        return pb_translate.to_core_xpath(query)
    if isinstance(formula, HVar):
        return x.Filter(x.ContextItem(), x.CompTest(x.CONTEXT, formula.name))
    if isinstance(formula, HCompose):
        return x.PathCompose(hcl_to_ppl(formula.left), hcl_to_ppl(formula.right))
    if isinstance(formula, HFilter):
        return x.Filter(x.ContextItem(), x.PathTest(hcl_to_ppl(formula.inner)))
    if isinstance(formula, HUnion):
        return x.PathUnion(hcl_to_ppl(formula.left), hcl_to_ppl(formula.right))
    raise TranslationError(f"cannot translate HCL formula {formula!r}")
