"""The end-to-end polynomial query engine of Theorem 1.

:class:`PPLEngine` answers n-ary PPL queries on a fixed tree in time
``O(|P| |t|^3  +  n |P| |t|^2 |A|)``:

1. parse the Core XPath 2.0 expression (if given as text),
2. check the Definition 1 restrictions,
3. translate into HCL⁻(PPLbin) (Fig. 7, Proposition 5),
4. normalise into a sharing formula with equation system (Lemma 3),
5. evaluate every distinct PPLbin leaf once with the cubic matrix algorithm
   of Theorem 2,
6. run the MC-filtered, memoised answering algorithm of Fig. 8
   (Propositions 10 and 11).

Steps 5 and 6 share a single :class:`repro.hcl.binding.PPLbinOracle`, whose
matrices are cached on the tree, so answering several queries against the
same document reuses the per-axis and per-leaf work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.trees.tree import Tree
from repro.xpath.ast import PathExpr
from repro.xpath.parser import parse_path
from repro.hcl.answering import HclAnswerer
from repro.hcl.ast import HclExpr, Leaf
from repro.hcl.binding import PPLbinOracle
from repro.core.ppl import check_ppl
from repro.core.translate import ppl_to_hcl


@dataclass(frozen=True)
class QueryReport:
    """Diagnostic information about one answered query (used by the CLI/benches)."""

    expression_size: int
    hcl_size: int
    distinct_leaves: int
    variables: tuple[str, ...]
    answer_count: int


class PPLEngine:
    """Answer n-ary PPL queries on a fixed tree in polynomial time."""

    name = "ppl-polynomial"

    def __init__(self, tree: Tree) -> None:
        self.tree = tree
        self.oracle = PPLbinOracle(tree)
        self._answerer = HclAnswerer(tree, self.oracle)
        self._translation_cache: dict[PathExpr, HclExpr] = {}

    # ----------------------------------------------------------- public API
    def answer(
        self, expression: PathExpr | str, variables: Sequence[str]
    ) -> frozenset[tuple[int, ...]]:
        """Return the answer set ``q_{P,x}(t)`` of a PPL query.

        Parameters
        ----------
        expression:
            A PPL expression — Core XPath 2.0 concrete syntax or AST.
        variables:
            The output variable tuple ``x1 ... xn`` (without ``$`` sigils).

        Raises
        ------
        ParseError
            If the concrete syntax cannot be parsed.
        RestrictionViolation
            If the expression violates Definition 1.
        """
        formula = self._translate(expression)
        return self._answerer.answer(formula, list(variables))

    def nonempty(self, expression: PathExpr | str) -> bool:
        """Decide non-emptiness of the query (Boolean query answering)."""
        formula = self._translate(expression)
        return self._answerer.nonempty(formula)

    def pairs(self, expression: PathExpr | str) -> frozenset[tuple[int, int]]:
        """Evaluate a *variable-free* PPL expression as a binary query.

        Convenience wrapper used by examples: the expression is translated
        and its start/end nodes are returned, matching the paper's
        ``q^bin_P`` for PPLbin expressions.
        """
        parsed = parse_path(expression) if isinstance(expression, str) else expression
        from repro.pplbin.translate import from_core_xpath  # local import: optional path

        return self.oracle.pairs(from_core_xpath(parsed))

    def report(self, expression: PathExpr | str, variables: Sequence[str]) -> QueryReport:
        """Answer the query and return sizing diagnostics along with the count."""
        parsed = parse_path(expression) if isinstance(expression, str) else expression
        formula = self._translate(parsed)
        answers = self._answerer.answer(formula, list(variables))
        distinct_leaves = len({leaf.query for leaf in formula.leaves()})
        return QueryReport(
            expression_size=parsed.size,
            hcl_size=formula.size,
            distinct_leaves=distinct_leaves,
            variables=tuple(variables),
            answer_count=len(answers),
        )

    # ------------------------------------------------------------ internals
    def _translate(self, expression: PathExpr | str) -> HclExpr:
        parsed = parse_path(expression) if isinstance(expression, str) else expression
        cached = self._translation_cache.get(parsed)
        if cached is not None:
            return cached
        check_ppl(parsed)
        formula = ppl_to_hcl(parsed)
        self._translation_cache[parsed] = formula
        return formula
