"""The end-to-end polynomial query engine of Theorem 1 (deprecation shim).

.. deprecated::
    :class:`PPLEngine` is kept for backwards compatibility; new code should
    use :class:`repro.api.Document`, which owns the same shared state and
    additionally dispatches to every registered backend.  See the migration
    table in :mod:`repro.api`.

The pipeline (now driven by the ``"polynomial"`` engine of the registry)
answers n-ary PPL queries on a fixed tree in time
``O(|P| |t|^3  +  n |P| |t|^2 |A|)``:

1. parse the Core XPath 2.0 expression (if given as text),
2. check the Definition 1 restrictions,
3. translate into HCL⁻(PPLbin) (Fig. 7, Proposition 5),
4. normalise into a sharing formula with equation system (Lemma 3),
5. evaluate every distinct PPLbin leaf once with the cubic matrix algorithm
   of Theorem 2,
6. run the MC-filtered, memoised answering algorithm of Fig. 8
   (Propositions 10 and 11).

Steps 5 and 6 share a single :class:`repro.hcl.binding.PPLbinOracle`, whose
matrices are cached on the tree, so answering several queries against the
same document reuses the per-axis and per-leaf work.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Optional, Sequence

from repro.trees.tree import Tree
from repro.xpath.ast import PathExpr
from repro.hcl.ast import HclExpr


@dataclass(frozen=True)
class QueryReport:
    """Diagnostic information about one answered query (used by the CLI/benches).

    ``kernel`` names the relation kernel the document's oracle evaluated
    with; ``matrix_cache`` is the snapshot of the tree's byte-budgeted
    matrix-cache counters (hits/misses/evictions/bytes) after answering,
    mirroring the AnswerCache telemetry of the corpus layer.  ``trace`` is
    the per-query span tree (:meth:`repro.obs.trace.Span.to_dict`) when the
    :mod:`repro.obs` tracer was enabled during evaluation, else ``None`` —
    a plain nested dict, so reports pickle unchanged across the processes
    strategy's pool boundary.
    """

    expression_size: int
    hcl_size: int
    distinct_leaves: int
    variables: tuple[str, ...]
    answer_count: int
    tree_size: Optional[int] = None
    engine: Optional[str] = None
    kernel: Optional[str] = None
    matrix_cache: Optional[dict] = None
    trace: Optional[dict] = None

    def to_dict(self) -> dict:
        """Return a plain-dict form (JSON-ready; tuples become lists)."""
        data = asdict(self)
        data["variables"] = list(self.variables)
        data["arity"] = len(self.variables)
        return data

    def to_json(self, **kwargs) -> str:
        """Return the report as a JSON object string."""
        return json.dumps(self.to_dict(), **kwargs)


class PPLEngine:
    """Answer n-ary PPL queries on a fixed tree in polynomial time.

    .. deprecated:: use :class:`repro.api.Document` — this class is now a
        thin wrapper delegating every call to a private document and the
        ``"polynomial"`` registry backend.
    """

    name = "ppl-polynomial"

    def __init__(self, tree: Tree) -> None:
        from repro._deprecation import suppress_deprecations, warn_deprecated
        from repro.api.document import Document

        warn_deprecated("PPLEngine(tree)", "Session.query(...) / Session.document(...)")
        with suppress_deprecations():
            self._document = Document(tree)
        self.tree = tree
        self.oracle = self._document.oracle
        self._answerer = self._document.answerer

    @property
    def _translation_cache(self) -> dict[PathExpr, HclExpr]:
        """The document's HCL translation cache (kept for compatibility)."""
        return self._document._translations

    # ----------------------------------------------------------- public API
    def answer(
        self, expression: PathExpr | str, variables: Sequence[str]
    ) -> frozenset[tuple[int, ...]]:
        """Return the answer set ``q_{P,x}(t)`` of a PPL query.

        Parameters
        ----------
        expression:
            A PPL expression — Core XPath 2.0 concrete syntax or AST.
        variables:
            The output variable tuple ``x1 ... xn`` (without ``$`` sigils).

        Raises
        ------
        ParseError
            If the concrete syntax cannot be parsed.
        RestrictionViolation
            If the expression violates Definition 1.
        """
        return self._document.answer(expression, variables)

    def nonempty(self, expression: PathExpr | str) -> bool:
        """Decide non-emptiness of the query (Boolean query answering)."""
        return self._document.nonempty(expression)

    def pairs(self, expression: PathExpr | str) -> frozenset[tuple[int, int]]:
        """Evaluate a *variable-free* PPL expression as a binary query.

        Dispatches through the engine registry (the ``"polynomial"``
        backend's binary path), matching the paper's ``q^bin_P`` for PPLbin
        expressions.
        """
        return self._document.pairs(expression)

    def report(self, expression: PathExpr | str, variables: Sequence[str]) -> QueryReport:
        """Answer the query and return sizing diagnostics along with the count."""
        return self._document.report(expression, variables)
