"""Query diagnostics for the polynomial engine of Theorem 1.

The pipeline itself (now driven by the ``"polynomial"`` engine of the
registry) answers n-ary PPL queries on a fixed tree in time
``O(|P| |t|^3  +  n |P| |t|^2 |A|)``:

1. parse the Core XPath 2.0 expression (if given as text),
2. check the Definition 1 restrictions,
3. translate into HCL⁻(PPLbin) (Fig. 7, Proposition 5),
4. normalise into a sharing formula with equation system (Lemma 3),
5. evaluate every distinct PPLbin leaf once with the cubic matrix algorithm
   of Theorem 2,
6. run the MC-filtered, memoised answering algorithm of Fig. 8
   (Propositions 10 and 11).

Steps 5 and 6 share a single :class:`repro.hcl.binding.PPLbinOracle`, whose
matrices are cached on the tree, so answering several queries against the
same document reuses the per-axis and per-leaf work.  The entry points live
on :class:`repro.api.Document` and :class:`repro.session.Session`; this
module holds the :class:`QueryReport` those surfaces hand back.  (The
``PPLEngine`` shim that used to live here was removed in 1.5.0 — see the
migration table in the README.)
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Optional


@dataclass(frozen=True)
class QueryReport:
    """Diagnostic information about one answered query (used by the CLI/benches).

    ``kernel`` names the relation kernel the document's oracle evaluated
    with; ``matrix_cache`` is the snapshot of the tree's byte-budgeted
    matrix-cache counters (hits/misses/evictions/bytes) after answering,
    mirroring the AnswerCache telemetry of the corpus layer.  ``trace`` is
    the per-query span tree (:meth:`repro.obs.trace.Span.to_dict`) when the
    :mod:`repro.obs` tracer was recording during evaluation, else ``None``
    — a plain nested dict, so reports pickle unchanged across the processes
    strategy's pool boundary.  ``cost`` is the per-query resource-accounting
    block (evaluation seconds, compose/row-union op counts, matrix bytes
    allocated, matrix/answer-cache hits and misses, snapshot hit) collected
    by :meth:`repro.api.Document.report`; the corpus and serving layers
    aggregate it into labelled metrics and per-client totals.
    """

    expression_size: int
    hcl_size: int
    distinct_leaves: int
    variables: tuple[str, ...]
    answer_count: int
    tree_size: Optional[int] = None
    engine: Optional[str] = None
    kernel: Optional[str] = None
    matrix_cache: Optional[dict] = None
    trace: Optional[dict] = None
    cost: Optional[dict] = None

    def to_dict(self) -> dict:
        """Return a plain-dict form (JSON-ready; tuples become lists)."""
        data = asdict(self)
        data["variables"] = list(self.variables)
        data["arity"] = len(self.variables)
        return data

    def to_json(self, **kwargs) -> str:
        """Return the report as a JSON object string."""
        return json.dumps(self.to_dict(), **kwargs)
