"""High-level convenience API for answering PPL queries (deprecation shims).

.. deprecated::
    New code should use :mod:`repro.api` — :class:`repro.api.Document`,
    :func:`repro.api.compile_query` and the engine registry.  The functions
    here are thin wrappers kept so existing callers keep working.

Most applications only need two calls::

    from repro import Tree, Node, answer

    doc = Tree(Node("bib", Node("book", Node("author"), Node("title"))))
    pairs = answer(doc, "descendant::book[child::author[. is $y] and "
                        "child::title[. is $z]]", ["y", "z"])

:func:`compile_query` performs parsing, the Definition 1 check and the
Fig. 7 translation once, returning a :class:`CompiledQuery` that can be run
against many documents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional, Sequence

from repro.trees.tree import Tree
from repro.xpath.ast import PathExpr
from repro.hcl.ast import HclExpr


@dataclass(frozen=True)
class CompiledQuery:
    """A PPL query compiled down to its HCL⁻(PPLbin) form.

    .. deprecated:: use :class:`repro.api.Query` (returned by
        :func:`repro.api.compile_query`), which additionally carries the
        Definition 1 check result and the PPLbin form and dispatches to any
        registered backend.

    Instances are produced by :func:`compile_query`; calling :meth:`run`
    answers the query on a document with the polynomial engine.  Documents
    are adopted through the weak registry of
    :func:`repro.api.document.as_document`, which replaces the seed's
    ``id(tree)``-keyed engine dict (ids are recycled after garbage
    collection, and that dict grew without bound).
    """

    source: PathExpr
    formula: HclExpr
    variables: tuple[str, ...]
    _query: Optional[object] = field(default=None, compare=False, repr=False)

    @cached_property
    def query(self):
        """The equivalent :class:`repro.api.Query` (built lazily if needed)."""
        if self._query is not None:
            return self._query
        from repro.api.query import compile_query as api_compile_query

        return api_compile_query(self.source, self.variables)

    def run(self, tree: Tree) -> frozenset[tuple[int, ...]]:
        """Answer the compiled query on ``tree``."""
        from repro.api.document import as_document

        return as_document(tree).answer(self.query)

    @property
    def arity(self) -> int:
        """The width ``n`` of the answer tuples."""
        return len(self.variables)


def compile_query(expression: PathExpr | str, variables: Sequence[str]) -> CompiledQuery:
    """Parse, check and translate a PPL query once, for repeated execution.

    Raises
    ------
    ParseError
        If the concrete syntax is invalid.
    RestrictionViolation
        If the expression violates Definition 1 (it is not a PPL expression).
    """
    from repro._deprecation import warn_deprecated
    from repro.api.query import compile_query as api_compile_query

    warn_deprecated(
        "repro.compile_query(...) (the legacy CompiledQuery form)",
        "Session.compile(...) (or repro.api.compile_query for a bare Query)",
    )
    query = api_compile_query(expression, variables)
    return CompiledQuery(query.source, query.hcl, query.variables, query)


def answer(
    tree: Tree, expression: PathExpr | str, variables: Sequence[str]
) -> frozenset[tuple[int, ...]]:
    """Answer one n-ary PPL query on one document with the polynomial engine.

    .. deprecated:: use :meth:`repro.session.Session.query`.
    """
    from repro._deprecation import suppress_deprecations, warn_deprecated
    from repro.api.document import answer as api_answer

    warn_deprecated("repro.answer(tree, ...)", "Session.query(...)")
    with suppress_deprecations():
        return api_answer(tree, expression, variables)
