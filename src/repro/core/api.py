"""High-level convenience API for answering PPL queries.

Most applications only need two calls::

    from repro import Tree, Node, answer

    doc = Tree(Node("bib", Node("book", Node("author"), Node("title"))))
    pairs = answer(doc, "descendant::book[child::author[. is $y] and "
                        "child::title[. is $z]]", ["y", "z"])

:func:`compile_query` performs parsing, the Definition 1 check and the
Fig. 7 translation once, returning a :class:`CompiledQuery` that can be run
against many documents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.trees.tree import Tree
from repro.xpath.ast import PathExpr
from repro.xpath.parser import parse_path
from repro.hcl.answering import HclAnswerer
from repro.hcl.ast import HclExpr
from repro.hcl.binding import PPLbinOracle
from repro.core.ppl import check_ppl
from repro.core.translate import ppl_to_hcl
from repro.core.engine import PPLEngine


@dataclass(frozen=True)
class CompiledQuery:
    """A PPL query compiled down to its HCL⁻(PPLbin) form.

    Instances are produced by :func:`compile_query`; calling
    :meth:`run` answers the query on a document with the polynomial engine.
    """

    source: PathExpr
    formula: HclExpr
    variables: tuple[str, ...]
    _engines: dict = field(default_factory=dict, compare=False, repr=False)

    def run(self, tree: Tree) -> frozenset[tuple[int, ...]]:
        """Answer the compiled query on ``tree``."""
        key = id(tree)
        answerer = self._engines.get(key)
        if answerer is None:
            answerer = HclAnswerer(tree, PPLbinOracle(tree))
            self._engines[key] = answerer
        return answerer.answer(self.formula, list(self.variables))

    @property
    def arity(self) -> int:
        """The width ``n`` of the answer tuples."""
        return len(self.variables)


def compile_query(expression: PathExpr | str, variables: Sequence[str]) -> CompiledQuery:
    """Parse, check and translate a PPL query once, for repeated execution.

    Raises
    ------
    ParseError
        If the concrete syntax is invalid.
    RestrictionViolation
        If the expression violates Definition 1 (it is not a PPL expression).
    """
    parsed = parse_path(expression) if isinstance(expression, str) else expression
    check_ppl(parsed)
    formula = ppl_to_hcl(parsed)
    return CompiledQuery(parsed, formula, tuple(variables))


def answer(
    tree: Tree, expression: PathExpr | str, variables: Sequence[str]
) -> frozenset[tuple[int, ...]]:
    """Answer one n-ary PPL query on one document with the polynomial engine."""
    return PPLEngine(tree).answer(expression, variables)
