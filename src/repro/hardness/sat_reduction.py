"""The Proposition 3 reduction: SAT ≤ query non-emptiness with variable sharing.

Proposition 3 states that query non-emptiness for Core XPath 2.0 *without*
for-loops and *without* variables below negation is already NP-complete, and
that the proof "relies on using variable sharing between different branches
of compositions".  This module makes that reduction concrete:

* the **document** has one element per propositional variable, each with a
  ``pos`` and a ``neg`` child::

      formula( v1(pos, neg), v2(pos, neg), ... )

* the **query** constrains one XPath variable ``$xi`` per propositional
  variable and conjoins (by composing root filters, hence *sharing*
  variables across compositions) one disjunctive test per clause: the clause
  ``(l1 or l2 or l3)`` becomes the test ::

      descendant::v_i/child::pos[. is $xi]   (for the positive literal on v_i)
      descendant::v_j/child::neg[. is $xj]   (for a negative literal)

  joined with ``or``.  The query is non-empty iff the CNF is satisfiable:
  the only freedom lies in where the ``$xi`` point, and each clause requires
  the witness of one of its literals.

The resulting expression violates exactly the NVS(/) (and NVS(and)) clauses
of Definition 1 — :func:`repro.core.ppl.ppl_violations` reports precisely
those — which is the paper's justification for forbidding variable sharing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trees.axes import Axis
from repro.trees.tree import Node, Tree
from repro.xpath.ast import (
    CONTEXT,
    CompTest,
    ContextItem,
    Filter,
    OrTest,
    PathCompose,
    PathExpr,
    PathTest,
    Step,
    TestExpr,
)
from repro.xpath.naive import naive_nonempty
from repro.hardness.dpll import CNF, dpll_satisfiable


@dataclass(frozen=True)
class SatReduction:
    """The result of reducing a CNF formula: a document and a query."""

    formula: CNF
    tree: Tree
    query: PathExpr
    variables: tuple[str, ...]

    def nonempty_naive(self) -> bool:
        """Decide non-emptiness with the naive engine (exponential in #variables)."""
        return naive_nonempty(self.tree, self.query)

    def satisfiable_dpll(self) -> bool:
        """Decide satisfiability of the source CNF directly with DPLL."""
        return dpll_satisfiable(self.formula) is not None


def _variable_label(index: int) -> str:
    return f"v{index}"


def build_sat_document(formula: CNF) -> Tree:
    """Return the document encoding the propositional variables of ``formula``."""
    root = Node("formula")
    for variable in sorted(formula.variables()):
        root.children.append(Node(_variable_label(variable), Node("pos"), Node("neg")))
    return Tree(root)


def _literal_test(literal: int) -> PathExpr:
    """The path testing that ``$x|literal|`` witnesses the literal."""
    variable = abs(literal)
    polarity = "pos" if literal > 0 else "neg"
    return PathCompose(
        Step(Axis.DESCENDANT, _variable_label(variable)),
        Filter(Step(Axis.CHILD, polarity), CompTest(CONTEXT, f"x{variable}")),
    )


def _clause_test(clause) -> TestExpr:
    """The disjunctive test of one clause."""
    tests: list[TestExpr] = [PathTest(_literal_test(literal)) for literal in clause.literals]
    result = tests[0]
    for test in tests[1:]:
        result = OrTest(result, test)
    return result


def reduce_sat_to_xpath(formula: CNF) -> SatReduction:
    """Reduce a CNF formula to a (document, query) non-emptiness instance.

    The query is a composition of one root filter per clause; all clause
    filters over the same propositional variable share the corresponding
    XPath variable, which is what breaks the NVS conditions of Definition 1.
    The reduction is linear-time: the document has ``3·#vars + 1`` nodes and
    the query ``O(#literals)`` operators.
    """
    query: PathExpr = ContextItem()
    for clause in formula.clauses:
        query = PathCompose(query, Filter(ContextItem(), _clause_test(clause)))
    variables = tuple(f"x{v}" for v in sorted(formula.variables()))
    return SatReduction(formula, build_sat_document(formula), query, variables)
