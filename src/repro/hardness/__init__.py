"""Hardness constructions (substrate S8).

The paper motivates each PPL restriction with a hardness result:

* Proposition 3 — without the no-variable-sharing conditions, query
  non-emptiness for for-loop-free Core XPath 2.0 is NP-complete, by a
  reduction from SAT (:mod:`~repro.hardness.sat_reduction`, with the DPLL
  solver of :mod:`~repro.hardness.dpll` as the ground truth).
* Corollary 1 — with for-loops (quantifier alternation), model checking is
  PSPACE-complete; :mod:`~repro.hardness.alternation` generates the
  quantifier-alternation families used to exhibit the blow-up empirically.
"""

from repro.hardness.dpll import CNF, Clause, dpll_satisfiable, random_3cnf
from repro.hardness.sat_reduction import SatReduction, reduce_sat_to_xpath
from repro.hardness.alternation import alternation_formula, alternation_query

__all__ = [
    "CNF",
    "Clause",
    "dpll_satisfiable",
    "random_3cnf",
    "SatReduction",
    "reduce_sat_to_xpath",
    "alternation_formula",
    "alternation_query",
]
