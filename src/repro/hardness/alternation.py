"""Quantifier-alternation families (Corollary 1: PSPACE-hardness witnesses).

Model checking full Core XPath 2.0 is PSPACE-complete because for-loops give
arbitrary quantifier alternation (Proposition 1 + classical FO model-checking
hardness).  This module generates a parametric family of FO sentences with
``k`` alternating quantifiers and their Lemma 1 translations into Core XPath
2.0, so the benchmark harness (experiment E6) can show the naive engine's
cost growing with the alternation depth while the PPL checker rejects the
expressions outright (they violate N(for)).

The sentence family talks about label alternation along descendant chains::

    Q1 x1. Q2 x2. ... ( ch*(x1, x2) and ch*(x2, x3) and ... and lab_a(x_k) )

with quantifiers alternating between exists and forall (guarded so that the
formulas are neither trivially true nor trivially false on the generated
documents).
"""

from __future__ import annotations

from repro.fo.ast import And, ChStar, Exists, Forall, Formula, Lab, Not, Or
from repro.fo.translate import fo_to_core_xpath
from repro.trees.generators import complete_tree
from repro.trees.tree import Tree
from repro.xpath.ast import PathExpr


def alternation_formula(depth: int, label: str = "a") -> Formula:
    """Return an FO sentence with ``depth`` alternating quantifiers.

    The innermost matrix requires the chain ``x1 ch* x2 ch* ... ch* x_depth``
    to end in a ``label``-labeled node; universally quantified levels are
    guarded by ``not ch*(x_{i-1}, x_i) or ...`` so the sentence is non-trivial.
    """
    if depth < 1:
        raise ValueError("alternation depth must be at least 1")
    variables = [f"x{i}" for i in range(1, depth + 1)]
    matrix: Formula = Lab(label, variables[-1])
    formula = matrix
    for index in range(depth - 1, 0, -1):
        chain = ChStar(variables[index - 1], variables[index])
        existential = index % 2 == 1
        if existential:
            formula = Exists(variables[index], And(chain, formula))
        else:
            formula = Forall(variables[index], Or(Not(chain), formula))
    return Exists(variables[0], formula)


def alternation_query(depth: int, label: str = "a") -> PathExpr:
    """Return the Core XPath 2.0 translation (with for-loops) of the sentence."""
    return fo_to_core_xpath(alternation_formula(depth, label))


def alternation_document(levels: int) -> Tree:
    """Return a small complete binary document suited to the sentence family."""
    return complete_tree(2, levels)
