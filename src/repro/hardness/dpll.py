"""Propositional CNF formulas and a DPLL satisfiability solver.

Used as the ground truth for the Proposition 3 reduction: the reduction maps
a CNF formula to a Core XPath 2.0 query whose non-emptiness must coincide
with satisfiability, and the test-suite checks that coincidence against this
solver on random instances.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Optional

#: A literal is a non-zero integer: +i for variable i, -i for its negation.
Literal = int


@dataclass(frozen=True)
class Clause:
    """A disjunction of literals."""

    literals: tuple[Literal, ...]

    def __post_init__(self) -> None:
        if any(literal == 0 for literal in self.literals):
            raise ValueError("0 is not a valid literal")

    def variables(self) -> frozenset[int]:
        """Return the variables (positive indices) mentioned by the clause."""
        return frozenset(abs(literal) for literal in self.literals)

    def is_satisfied(self, assignment: dict[int, bool]) -> bool:
        """Return True when some literal is true under a total assignment."""
        return any(
            assignment.get(abs(literal), False) == (literal > 0)
            for literal in self.literals
        )


@dataclass(frozen=True)
class CNF:
    """A conjunction of clauses."""

    clauses: tuple[Clause, ...]

    @staticmethod
    def from_lists(clauses: Iterable[Iterable[Literal]]) -> "CNF":
        """Build a CNF from nested literal lists, e.g. ``[[1, -2], [2, 3]]``."""
        return CNF(tuple(Clause(tuple(clause)) for clause in clauses))

    def variables(self) -> frozenset[int]:
        """Return all variables occurring in the formula."""
        result: set[int] = set()
        for clause in self.clauses:
            result.update(clause.variables())
        return frozenset(result)

    def is_satisfied(self, assignment: dict[int, bool]) -> bool:
        """Return True when every clause is satisfied by a total assignment."""
        return all(clause.is_satisfied(assignment) for clause in self.clauses)

    @property
    def num_variables(self) -> int:
        return len(self.variables())

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)


def dpll_satisfiable(formula: CNF) -> Optional[dict[int, bool]]:
    """Return a satisfying assignment, or ``None`` when the formula is unsatisfiable.

    Classic DPLL: unit propagation, pure-literal elimination and splitting on
    the first unassigned variable.
    """
    clauses = [list(clause.literals) for clause in formula.clauses]
    assignment: dict[int, bool] = {}

    def solve(active: list[list[Literal]], partial: dict[int, bool]) -> Optional[dict[int, bool]]:
        active = [list(clause) for clause in active]
        partial = dict(partial)
        changed = True
        while changed:
            changed = False
            simplified: list[list[Literal]] = []
            for clause in active:
                satisfied = False
                remaining: list[Literal] = []
                for literal in clause:
                    variable, wanted = abs(literal), literal > 0
                    if variable in partial:
                        if partial[variable] == wanted:
                            satisfied = True
                            break
                    else:
                        remaining.append(literal)
                if satisfied:
                    continue
                if not remaining:
                    return None
                simplified.append(remaining)
            active = simplified
            # Unit propagation.
            for clause in active:
                if len(clause) == 1:
                    literal = clause[0]
                    partial[abs(literal)] = literal > 0
                    changed = True
                    break
            if changed:
                continue
            # Pure literal elimination.
            polarity: dict[int, set[bool]] = {}
            for clause in active:
                for literal in clause:
                    polarity.setdefault(abs(literal), set()).add(literal > 0)
            for variable, signs in polarity.items():
                if len(signs) == 1:
                    partial[variable] = next(iter(signs))
                    changed = True
                    break
        if not active:
            return partial
        variable = abs(active[0][0])
        for choice in (True, False):
            extended = dict(partial)
            extended[variable] = choice
            result = solve(active, extended)
            if result is not None:
                return result
        return None

    solution = solve(clauses, assignment)
    if solution is None:
        return None
    # Complete the assignment on variables eliminated along the way.
    for variable in formula.variables():
        solution.setdefault(variable, False)
    return solution


def random_3cnf(num_variables: int, num_clauses: int, seed: int = 0) -> CNF:
    """Return a random 3-CNF with the given number of variables and clauses."""
    if num_variables < 3:
        raise ValueError("random_3cnf requires at least 3 variables")
    rng = random.Random(seed)
    clauses = []
    for _ in range(num_clauses):
        chosen = rng.sample(range(1, num_variables + 1), 3)
        literals = tuple(v if rng.random() < 0.5 else -v for v in chosen)
        clauses.append(Clause(literals))
    return CNF(tuple(clauses))
