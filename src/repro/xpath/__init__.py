"""Core XPath 2.0 (substrate S2): syntax, semantics and the naive engine.

This package implements the language of Fig. 1 and the denotational semantics
of Fig. 2 of the paper, plus:

* a concrete-syntax parser (:mod:`repro.xpath.parser`),
* the naive n-ary query answering engine used as correctness oracle and as
  the exponential baseline (:mod:`repro.xpath.naive`),
* structural analysis helpers (:mod:`repro.xpath.analysis`).
"""

from repro.xpath.ast import (
    AndTest,
    CompTest,
    ContextItem,
    Filter,
    ForLoop,
    NotTest,
    OrTest,
    PathCompose,
    PathExcept,
    PathExpr,
    PathIntersect,
    PathTest,
    PathUnion,
    Step,
    TestExpr,
    VarRef,
    nodes_expression,
)
from repro.xpath.parser import parse_path, parse_test
from repro.xpath.semantics import evaluate_path, evaluate_test
from repro.xpath.naive import NaiveEngine, naive_answer, naive_nonempty

__all__ = [
    "PathExpr",
    "TestExpr",
    "Step",
    "ContextItem",
    "VarRef",
    "PathCompose",
    "PathUnion",
    "PathIntersect",
    "PathExcept",
    "Filter",
    "ForLoop",
    "PathTest",
    "CompTest",
    "NotTest",
    "AndTest",
    "OrTest",
    "nodes_expression",
    "parse_path",
    "parse_test",
    "evaluate_path",
    "evaluate_test",
    "naive_answer",
    "naive_nonempty",
    "NaiveEngine",
]
