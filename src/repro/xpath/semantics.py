"""Denotational semantics of Core XPath 2.0 (Fig. 2 of the paper).

Path expressions denote sets of node pairs ``[[P]]^{t,alpha}``; test
expressions denote node sets ``[[T]]^{t,alpha}_test``.  The implementation is
a direct transcription of Fig. 2: it is *not* meant to be fast (the naive
engine built on top of it is the exponential baseline) but to be obviously
correct, since every polynomial algorithm in the library is tested against it.

Variable assignments are plain dictionaries mapping variable names (without
the ``$`` sigil) to node identifiers.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import EvaluationError, UnboundVariableError
from repro.trees.axes import iter_axis
from repro.trees.tree import Tree
from repro.xpath.ast import (
    CONTEXT,
    AndTest,
    CompTest,
    ContextItem,
    Filter,
    ForLoop,
    NotTest,
    OrTest,
    PathCompose,
    PathExcept,
    PathExpr,
    PathIntersect,
    PathTest,
    PathUnion,
    Step,
    TestExpr,
    VarRef,
)

Assignment = Mapping[str, int]

#: An empty assignment, for closed expressions.
EMPTY_ASSIGNMENT: dict[str, int] = {}


def _lookup(assignment: Assignment, variable: str) -> int:
    try:
        return assignment[variable]
    except KeyError:
        raise UnboundVariableError(variable) from None


def evaluate_path(
    tree: Tree, expression: PathExpr, assignment: Assignment = EMPTY_ASSIGNMENT
) -> frozenset[tuple[int, int]]:
    """Return ``[[P]]^{t,alpha}`` — the set of node pairs denoted by ``expression``.

    Raises
    ------
    UnboundVariableError
        If the expression contains a free variable missing from ``assignment``.
    """
    if isinstance(expression, Step):
        pairs = set()
        for node in tree.nodes():
            for target in iter_axis(tree, expression.axis, node):
                if expression.nametest is None or tree.labels[target] == expression.nametest:
                    pairs.add((node, target))
        return frozenset(pairs)

    if isinstance(expression, ContextItem):
        return frozenset((node, node) for node in tree.nodes())

    if isinstance(expression, VarRef):
        target = _lookup(assignment, expression.name)
        return frozenset((node, target) for node in tree.nodes())

    if isinstance(expression, PathCompose):
        left = evaluate_path(tree, expression.left, assignment)
        right = evaluate_path(tree, expression.right, assignment)
        by_source: dict[int, set[int]] = {}
        for source, target in right:
            by_source.setdefault(source, set()).add(target)
        pairs = set()
        for source, middle in left:
            for target in by_source.get(middle, ()):
                pairs.add((source, target))
        return frozenset(pairs)

    if isinstance(expression, PathUnion):
        return evaluate_path(tree, expression.left, assignment) | evaluate_path(
            tree, expression.right, assignment
        )

    if isinstance(expression, PathIntersect):
        return evaluate_path(tree, expression.left, assignment) & evaluate_path(
            tree, expression.right, assignment
        )

    if isinstance(expression, PathExcept):
        return evaluate_path(tree, expression.left, assignment) - evaluate_path(
            tree, expression.right, assignment
        )

    if isinstance(expression, Filter):
        pairs = evaluate_path(tree, expression.path, assignment)
        satisfying = evaluate_test(tree, expression.test, assignment)
        return frozenset(pair for pair in pairs if pair[1] in satisfying)

    if isinstance(expression, ForLoop):
        source_pairs = evaluate_path(tree, expression.source, assignment)
        starts_by_witness: dict[int, set[int]] = {}
        for start, witness in source_pairs:
            starts_by_witness.setdefault(witness, set()).add(start)
        result: set[tuple[int, int]] = set()
        for witness, starts in starts_by_witness.items():
            extended = dict(assignment)
            extended[expression.variable] = witness
            for start, target in evaluate_path(tree, expression.body, extended):
                if start in starts:
                    result.add((start, target))
        return frozenset(result)

    raise EvaluationError(f"unknown path expression {expression!r}")


def evaluate_test(
    tree: Tree, test: TestExpr, assignment: Assignment = EMPTY_ASSIGNMENT
) -> frozenset[int]:
    """Return ``[[T]]^{t,alpha}_test`` — the node set denoted by the test."""
    if isinstance(test, PathTest):
        return frozenset(
            source for source, _ in evaluate_path(tree, test.path, assignment)
        )

    if isinstance(test, CompTest):
        left, right = test.left, test.right
        if left == CONTEXT and right == CONTEXT:
            return frozenset(tree.nodes())
        if left == CONTEXT:
            return frozenset({_lookup(assignment, right)})
        if right == CONTEXT:
            return frozenset({_lookup(assignment, left)})
        left_node = _lookup(assignment, left)
        right_node = _lookup(assignment, right)
        if left_node == right_node:
            return frozenset({left_node})
        return frozenset()

    if isinstance(test, NotTest):
        return frozenset(tree.nodes()) - evaluate_test(tree, test.test, assignment)

    if isinstance(test, AndTest):
        return evaluate_test(tree, test.left, assignment) & evaluate_test(
            tree, test.right, assignment
        )

    if isinstance(test, OrTest):
        return evaluate_test(tree, test.left, assignment) | evaluate_test(
            tree, test.right, assignment
        )

    raise EvaluationError(f"unknown test expression {test!r}")


def path_nonempty(
    tree: Tree, expression: PathExpr, assignment: Assignment = EMPTY_ASSIGNMENT
) -> bool:
    """Return True when ``[[P]]^{t,alpha}`` is non-empty."""
    return bool(evaluate_path(tree, expression, assignment))
