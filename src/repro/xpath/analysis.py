"""Structural analysis of Core XPath 2.0 expressions.

Small reusable helpers over the AST: sub-expression enumeration, feature
detection (for-loops, variables below negation, variable sharing), and the
expression-size measure used by the translation-size experiment E7.  The
actual PPL restriction checker (Definition 1) lives in
:mod:`repro.core.ppl` and is built on these helpers.
"""

from __future__ import annotations

from typing import Iterator

from repro.xpath.ast import (
    AndTest,
    CompTest,
    Filter,
    ForLoop,
    NotTest,
    PathCompose,
    PathExcept,
    PathIntersect,
    VarRef,
    _Expr,
)

Expression = _Expr


def subexpressions(expression: Expression) -> Iterator[Expression]:
    """Yield every sub-expression (including the expression itself), preorder."""
    yield from expression.walk()


def expression_size(expression: Expression) -> int:
    """Return the paper's size measure ``|P|`` (number of AST nodes)."""
    return expression.size


def contains_for_loop(expression: Expression) -> bool:
    """Return True when a ``for $x in ... return ...`` occurs anywhere."""
    return any(isinstance(sub, ForLoop) for sub in expression.walk())


def contains_variables(expression: Expression) -> bool:
    """Return True when any variable occurs (free or bound) in the expression."""
    return any(
        isinstance(sub, (VarRef, ForLoop))
        or (isinstance(sub, CompTest) and sub.free_variables)
        for sub in expression.walk()
    )


def variables_below_negation(expression: Expression) -> frozenset[str]:
    """Return all variables occurring below a ``not`` test or an ``except``.

    The paper's conditions NV(not) and NV(except) require this set to be
    empty for PPL membership.
    """
    found: set[str] = set()
    for sub in expression.walk():
        if isinstance(sub, NotTest):
            found.update(sub.test.free_variables)
        elif isinstance(sub, PathExcept):
            found.update(sub.left.free_variables)
            found.update(sub.right.free_variables)
    return frozenset(found)


def variables_below_intersection(expression: Expression) -> frozenset[str]:
    """Return all variables occurring inside an ``intersect`` operand (NV(intersect))."""
    found: set[str] = set()
    for sub in expression.walk():
        if isinstance(sub, PathIntersect):
            found.update(sub.left.free_variables)
            found.update(sub.right.free_variables)
    return frozenset(found)


def shared_variables_in_compositions(expression: Expression) -> frozenset[str]:
    """Return variables shared across ``/``, filters or ``and`` (NVS conditions).

    A variable is reported when it occurs free on both sides of a path
    composition ``P1/P2``, both sides of a conjunction ``T1 and T2``, or in
    both the path and the test of a filter ``P[T]``.
    """
    shared: set[str] = set()
    for sub in expression.walk():
        if isinstance(sub, PathCompose):
            shared.update(sub.left.free_variables & sub.right.free_variables)
        elif isinstance(sub, AndTest):
            shared.update(sub.left.free_variables & sub.right.free_variables)
        elif isinstance(sub, Filter):
            shared.update(sub.path.free_variables & sub.test.free_variables)
    return frozenset(shared)


def count_operators(expression: Expression) -> dict[str, int]:
    """Return a histogram of AST node class names (used by query generators)."""
    histogram: dict[str, int] = {}
    for sub in expression.walk():
        name = type(sub).__name__
        histogram[name] = histogram.get(name, 0) + 1
    return histogram


def is_variable_free(expression: Expression) -> bool:
    """Return True for the paper's condition N($x): no variables at all."""
    return not contains_variables(expression)
