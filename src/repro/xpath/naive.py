"""Naive n-ary query answering for full Core XPath 2.0.

The paper defines the n-ary query of a path expression ``P`` and a variable
sequence ``x = x1 ... xn`` as

    q_{P,x}(t) = { (alpha(x1), ..., alpha(xn)) | [[P]]^{t,alpha} != {} }.

The naive engine enumerates all assignments of the free variables of ``P`` to
tree nodes — ``|t|^{|Var(P)|}`` candidates — evaluating the Fig. 2 semantics
for each.  This is exponential in the number of variables: it is exactly the
baseline the paper's polynomial fragment is designed to beat (experiment E3)
and the correctness oracle for every other engine in the library.

Output variables that do not occur in ``P`` may bind to arbitrary nodes, as in
the paper's definition; they are extended over all nodes at the end.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from repro.trees.tree import Tree
from repro.xpath.ast import PathExpr
from repro.xpath.parser import parse_path
from repro.xpath.semantics import evaluate_path


def naive_nonempty(tree: Tree, expression: PathExpr | str) -> bool:
    """Decide query non-emptiness: does some assignment make ``P`` non-empty?

    This is the Boolean-query (model-checking) problem of the paper; for the
    unrestricted language it is PSPACE-complete, and NP-complete already
    without for-loops (Proposition 3) — the enumeration below is accordingly
    exponential in ``|Var(P)|``.
    """
    path = parse_path(expression) if isinstance(expression, str) else expression
    variables = sorted(path.free_variables)
    nodes = list(tree.nodes())
    for values in itertools.product(nodes, repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if evaluate_path(tree, path, assignment):
            return True
    return False


def naive_answer(
    tree: Tree, expression: PathExpr | str, variables: Sequence[str]
) -> frozenset[tuple[int, ...]]:
    """Compute the full answer set ``q_{P,x}(t)`` by assignment enumeration.

    Parameters
    ----------
    tree:
        The document.
    expression:
        A Core XPath 2.0 path expression (AST or concrete syntax).
    variables:
        The output tuple ``x1 ... xn``.  Variables not occurring in the
        expression range over all nodes.
    """
    path = parse_path(expression) if isinstance(expression, str) else expression
    inner_variables = sorted(path.free_variables)
    nodes = list(tree.nodes())

    witnesses: set[tuple[int, ...]] = set()
    for values in itertools.product(nodes, repeat=len(inner_variables)):
        assignment = dict(zip(inner_variables, values))
        if evaluate_path(tree, path, assignment):
            witnesses.add(tuple(assignment.get(name, -1) for name in variables))

    if not witnesses:
        return frozenset()

    # Positions holding -1 correspond to output variables absent from the
    # expression: they may take any node value.
    free_positions = [
        index for index, name in enumerate(variables) if name not in path.free_variables
    ]
    if not free_positions:
        return frozenset(witnesses)

    answers: set[tuple[int, ...]] = set()
    for witness in witnesses:
        for values in itertools.product(nodes, repeat=len(free_positions)):
            completed = list(witness)
            for position, value in zip(free_positions, values):
                completed[position] = value
            answers.add(tuple(completed))
    return frozenset(answers)


class NaiveEngine:
    """Object-style facade over the naive evaluation functions.

    Mirrors the answering interface of :class:`repro.api.Document` so that
    the exponential and polynomial paths can be swapped in benchmarks and
    tests.
    """

    name = "naive-core-xpath-2.0"

    def __init__(self, tree: Tree) -> None:
        self.tree = tree

    def answer(
        self, expression: PathExpr | str, variables: Sequence[str]
    ) -> frozenset[tuple[int, ...]]:
        """Answer the n-ary query ``q_{P,x}`` on the engine's tree."""
        return naive_answer(self.tree, expression, variables)

    def nonempty(self, expression: PathExpr | str) -> bool:
        """Decide non-emptiness of the query on the engine's tree."""
        return naive_nonempty(self.tree, expression)

    def answer_many(
        self, queries: Iterable[tuple[PathExpr | str, Sequence[str]]]
    ) -> list[frozenset[tuple[int, ...]]]:
        """Answer a batch of queries (convenience for benchmark loops)."""
        return [self.answer(expression, variables) for expression, variables in queries]
