"""Concrete-syntax parser for Core XPath 2.0 (Fig. 1).

The grammar follows the paper's Fig. 1 with the usual XPath precedences:

* ``for $x in P return P`` binds weakest,
* then ``union``,
* then ``intersect`` / ``except``,
* then path composition ``/``,
* then postfix filters ``[T]``,
* primaries are steps ``axis::nametest``, the context item ``.``, variables
  ``$x`` and parenthesised expressions.

Test expressions use ``or`` < ``and`` < ``not`` < atoms, where an atom is a
node comparison ``NodeRef is NodeRef``, a parenthesised test, or a path
expression.  Both ``not T`` and ``not(T)`` spellings are accepted.

Abbreviated XPath syntax (``//``, leading ``/``, bare name tests) is *not*
part of Core XPath and is not accepted; the paper's explicit axis syntax must
be used.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.errors import ParseError
from repro.trees.axes import parse_axis
from repro.trees.tree import Tree  # noqa: F401  (re-exported for convenience in docs)
from repro.xpath.ast import (
    CONTEXT,
    AndTest,
    CompTest,
    ContextItem,
    Filter,
    ForLoop,
    NotTest,
    OrTest,
    PathCompose,
    PathExcept,
    PathExpr,
    PathIntersect,
    PathTest,
    PathUnion,
    Step,
    TestExpr,
    VarRef,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<axis_sep>::)
  | (?P<variable>\$[A-Za-z_][\w\-.]*)
  | (?P<name>[A-Za-z_][\w\-.]*)
  | (?P<star>\*)
  | (?P<dot>\.)
  | (?P<slash>/)
  | (?P<lbracket>\[)
  | (?P<rbracket>\])
  | (?P<lparen>\()
  | (?P<rparen>\))
    """,
    re.VERBOSE,
)

_KEYWORDS = frozenset(
    {"union", "intersect", "except", "for", "in", "return", "and", "or", "not", "is"}
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r}", position)
        kind = match.lastgroup
        assert kind is not None
        value = match.group()
        if kind != "ws":
            if kind == "name" and value in _KEYWORDS:
                kind = value
            tokens.append(_Token(kind, value, position))
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # ------------------------------------------------------------- utilities
    def peek(self, offset: int = 0) -> Optional[_Token]:
        index = self.index + offset
        if index < len(self.tokens):
            return self.tokens[index]
        return None

    def at(self, kind: str, offset: int = 0) -> bool:
        token = self.peek(offset)
        return token is not None and token.kind == kind

    def advance(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input", len(self.text))
        self.index += 1
        return token

    def expect(self, kind: str) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError(f"expected {kind!r} but reached end of input", len(self.text))
        if token.kind != kind:
            raise ParseError(
                f"expected {kind!r} but found {token.text!r}", token.position
            )
        return self.advance()

    def error(self, message: str) -> ParseError:
        token = self.peek()
        position = token.position if token is not None else len(self.text)
        return ParseError(message, position)

    # ------------------------------------------------------------------ path
    def parse_path(self) -> PathExpr:
        return self.parse_for()

    def parse_for(self) -> PathExpr:
        if self.at("for"):
            self.advance()
            variable_token = self.expect("variable")
            self.expect("in")
            source = self.parse_for()
            self.expect("return")
            body = self.parse_for()
            return ForLoop(variable_token.text[1:], source, body)
        return self.parse_union()

    def parse_union(self) -> PathExpr:
        left = self.parse_intersect_except()
        while self.at("union"):
            self.advance()
            right = self.parse_intersect_except()
            left = PathUnion(left, right)
        return left

    def parse_intersect_except(self) -> PathExpr:
        left = self.parse_composition()
        while self.at("intersect") or self.at("except"):
            operator = self.advance().kind
            right = self.parse_composition()
            if operator == "intersect":
                left = PathIntersect(left, right)
            else:
                left = PathExcept(left, right)
        return left

    def parse_composition(self) -> PathExpr:
        left = self.parse_filtered()
        while self.at("slash"):
            self.advance()
            right = self.parse_filtered()
            left = PathCompose(left, right)
        return left

    def parse_filtered(self) -> PathExpr:
        expression = self.parse_primary()
        while self.at("lbracket"):
            self.advance()
            test = self.parse_test()
            self.expect("rbracket")
            expression = Filter(expression, test)
        return expression

    def parse_primary(self) -> PathExpr:
        token = self.peek()
        if token is None:
            raise self.error("expected a path expression")
        if token.kind == "dot":
            self.advance()
            return ContextItem()
        if token.kind == "variable":
            self.advance()
            return VarRef(token.text[1:])
        if token.kind == "lparen":
            self.advance()
            inner = self.parse_path()
            self.expect("rparen")
            return inner
        if token.kind in ("name", "self"):
            return self.parse_step()
        raise self.error(f"unexpected token {token.text!r} in path expression")

    def parse_step(self) -> PathExpr:
        axis_token = self.advance()
        if not self.at("axis_sep"):
            raise ParseError(
                f"expected '::' after axis name {axis_token.text!r} "
                "(Core XPath requires explicit axes)",
                axis_token.position,
            )
        self.advance()
        try:
            axis = parse_axis(axis_token.text)
        except Exception as exc:  # noqa: BLE001 - re-raise as ParseError
            raise ParseError(str(exc), axis_token.position) from exc
        if self.at("star"):
            self.advance()
            return Step(axis, None)
        name_token = self.expect("name")
        return Step(axis, name_token.text)

    # ----------------------------------------------------------------- tests
    def parse_test(self) -> TestExpr:
        return self.parse_or_test()

    def parse_or_test(self) -> TestExpr:
        left = self.parse_and_test()
        while self.at("or"):
            self.advance()
            right = self.parse_and_test()
            left = OrTest(left, right)
        return left

    def parse_and_test(self) -> TestExpr:
        left = self.parse_not_test()
        while self.at("and"):
            self.advance()
            right = self.parse_not_test()
            left = AndTest(left, right)
        return left

    def parse_not_test(self) -> TestExpr:
        if self.at("not"):
            self.advance()
            if self.at("lparen"):
                # Accept both `not(T)` and `not T`; the parenthesised form is
                # parsed as a test atom, which handles either a pure test or a
                # path expression inside the parentheses.
                inner = self.parse_test_atom()
                return NotTest(inner)
            return NotTest(self.parse_not_test())
        return self.parse_test_atom()

    def parse_test_atom(self) -> TestExpr:
        # Node comparison: NodeRef is NodeRef.
        if self._at_noderef() and self.at("is", self._noderef_length()):
            left = self._parse_noderef()
            self.expect("is")
            right = self._parse_noderef()
            return CompTest(left, right)
        if self.at("lparen"):
            # Could be a parenthesised test (containing and/or/not/is) or a
            # parenthesised path expression; try the path route first because
            # it may continue with '/' after the closing parenthesis, and
            # fall back to a test on failure.
            saved = self.index
            try:
                return PathTest(self.parse_path_no_boolean())
            except ParseError:
                self.index = saved
            self.advance()  # consume '('
            inner = self.parse_or_test()
            self.expect("rparen")
            return inner
        return PathTest(self.parse_path_no_boolean())

    def parse_path_no_boolean(self) -> PathExpr:
        """Parse a path expression for use inside a test.

        Inside a test, ``and`` / ``or`` belong to the test grammar, so path
        parsing must stop before them; this is exactly what the normal path
        parser does because those keywords cannot continue a path.
        """
        return self.parse_path()

    def _at_noderef(self) -> bool:
        return self.at("dot") or self.at("variable")

    def _noderef_length(self) -> int:
        return 1

    def _parse_noderef(self) -> str:
        token = self.advance()
        if token.kind == "dot":
            return CONTEXT
        if token.kind == "variable":
            return token.text[1:]
        raise ParseError(f"expected '.' or a variable, found {token.text!r}", token.position)

    # ------------------------------------------------------------- finishers
    def finish(self) -> None:
        token = self.peek()
        if token is not None:
            raise ParseError(f"unexpected trailing input {token.text!r}", token.position)


def parse_path(text: str) -> PathExpr:
    """Parse a Core XPath 2.0 path expression from concrete syntax.

    Examples
    --------
    >>> expr = parse_path("descendant::book[child::author[. is $y]]")
    >>> sorted(expr.free_variables)
    ['y']
    """
    parser = _Parser(text)
    expression = parser.parse_path()
    parser.finish()
    return expression


def parse_test(text: str) -> TestExpr:
    """Parse a Core XPath 2.0 test expression from concrete syntax."""
    parser = _Parser(text)
    expression = parser.parse_test()
    parser.finish()
    return expression
