"""Abstract syntax of Core XPath 2.0 (Fig. 1 of the paper).

Path expressions denote binary relations over tree nodes, test expressions
denote node sets (Fig. 2).  Every AST class is an immutable value object with
structural equality, a ``size`` (number of AST nodes, the paper's ``|P|``),
a ``free_variables`` set and an ``unparse`` method producing concrete syntax
accepted back by :func:`repro.xpath.parser.parse_path`.

Node references (the ``NodeRef`` production) are represented as follows: the
context item ``.`` is the string constant :data:`CONTEXT`, a variable ``$x``
is its bare name ``"x"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterator, Optional, Union

from repro.pickling import strip_cached_properties
from repro.trees.axes import Axis

#: Sentinel used in comparison tests for the context item ``.``.
CONTEXT = "."


class _Expr:
    """Shared helpers for path and test expressions."""

    def __getstate__(self) -> dict:
        return strip_cached_properties(self)

    @cached_property
    def size(self) -> int:
        """Number of AST nodes — the paper's term size ``|P|``."""
        return 1 + sum(child.size for child in self.children())

    @cached_property
    def free_variables(self) -> frozenset[str]:
        """The set ``Var(P)`` of variables occurring free in the expression."""
        names = set(self._own_variables())
        for child in self.children():
            names.update(child.free_variables)
        names.difference_update(self._bound_variables())
        return frozenset(names)

    def children(self) -> tuple["_Expr", ...]:
        """Direct sub-expressions."""
        return ()

    def _own_variables(self) -> tuple[str, ...]:
        return ()

    def _bound_variables(self) -> tuple[str, ...]:
        return ()

    def walk(self) -> Iterator["_Expr"]:
        """Yield this expression and every sub-expression (preorder)."""
        stack: list[_Expr] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    def unparse(self) -> str:
        """Return concrete syntax for the expression."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.unparse()


class PathExpr(_Expr):
    """Base class of path expressions (binary relations over nodes)."""


class TestExpr(_Expr):
    """Base class of test expressions (node sets)."""


# --------------------------------------------------------------------- paths
@dataclass(frozen=True)
class Step(PathExpr):
    """An axis step ``Axis::NameTest``; ``nametest`` of ``None`` means ``*``."""

    axis: Axis
    nametest: Optional[str] = None

    def unparse(self) -> str:
        test = self.nametest if self.nametest is not None else "*"
        return f"{self.axis.value}::{test}"


@dataclass(frozen=True)
class ContextItem(PathExpr):
    """The context item ``.`` — the identity relation on nodes."""

    def unparse(self) -> str:
        return "."


@dataclass(frozen=True)
class VarRef(PathExpr):
    """A variable reference ``$x`` — jump from any node to the node bound to x."""

    name: str

    def _own_variables(self) -> tuple[str, ...]:
        return (self.name,)

    def unparse(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class PathCompose(PathExpr):
    """Path composition ``P1/P2`` (relational composition)."""

    left: PathExpr
    right: PathExpr

    def children(self) -> tuple[_Expr, ...]:
        return (self.left, self.right)

    def unparse(self) -> str:
        return f"{_wrap(self.left)}/{_wrap(self.right)}"


@dataclass(frozen=True)
class PathUnion(PathExpr):
    """Path union ``P1 union P2``."""

    left: PathExpr
    right: PathExpr

    def children(self) -> tuple[_Expr, ...]:
        return (self.left, self.right)

    def unparse(self) -> str:
        return f"({self.left.unparse()} union {self.right.unparse()})"


@dataclass(frozen=True)
class PathIntersect(PathExpr):
    """Path intersection ``P1 intersect P2``."""

    left: PathExpr
    right: PathExpr

    def children(self) -> tuple[_Expr, ...]:
        return (self.left, self.right)

    def unparse(self) -> str:
        return f"({self.left.unparse()} intersect {self.right.unparse()})"


@dataclass(frozen=True)
class PathExcept(PathExpr):
    """Path difference ``P1 except P2``."""

    left: PathExpr
    right: PathExpr

    def children(self) -> tuple[_Expr, ...]:
        return (self.left, self.right)

    def unparse(self) -> str:
        return f"({self.left.unparse()} except {self.right.unparse()})"


@dataclass(frozen=True)
class Filter(PathExpr):
    """A filtered path ``P[T]``: keep pairs whose target satisfies the test."""

    path: PathExpr
    test: TestExpr

    def children(self) -> tuple[_Expr, ...]:
        return (self.path, self.test)

    def unparse(self) -> str:
        return f"{_wrap(self.path)}[{self.test.unparse()}]"


@dataclass(frozen=True)
class ForLoop(PathExpr):
    """The quantifier ``for $x in P1 return P2``.

    The variable is bound in ``P2`` only (as in the paper's semantics, the
    source expression ``P1`` is evaluated under the outer assignment).
    """

    variable: str
    source: PathExpr
    body: PathExpr

    def children(self) -> tuple[_Expr, ...]:
        return (self.source, self.body)

    @cached_property
    def free_variables(self) -> frozenset[str]:
        return frozenset(
            self.source.free_variables | (self.body.free_variables - {self.variable})
        )

    def unparse(self) -> str:
        return (
            f"(for ${self.variable} in {self.source.unparse()} "
            f"return {self.body.unparse()})"
        )


# --------------------------------------------------------------------- tests
@dataclass(frozen=True)
class PathTest(TestExpr):
    """A path expression used as a test: satisfied where the path can start."""

    path: PathExpr

    def children(self) -> tuple[_Expr, ...]:
        return (self.path,)

    def unparse(self) -> str:
        return self.path.unparse()


@dataclass(frozen=True)
class CompTest(TestExpr):
    """A node comparison ``NodeRef is NodeRef``.

    Each side is either :data:`CONTEXT` (the string ``"."``) or a variable
    name (without the ``$`` sigil).
    """

    left: str
    right: str

    def _own_variables(self) -> tuple[str, ...]:
        return tuple(side for side in (self.left, self.right) if side != CONTEXT)

    def unparse(self) -> str:
        left = "." if self.left == CONTEXT else f"${self.left}"
        right = "." if self.right == CONTEXT else f"${self.right}"
        return f"{left} is {right}"


@dataclass(frozen=True)
class NotTest(TestExpr):
    """Negated test ``not T``."""

    test: TestExpr

    def children(self) -> tuple[_Expr, ...]:
        return (self.test,)

    def unparse(self) -> str:
        return f"not({self.test.unparse()})"


@dataclass(frozen=True)
class AndTest(TestExpr):
    """Conjunction of tests ``T1 and T2``."""

    left: TestExpr
    right: TestExpr

    def children(self) -> tuple[_Expr, ...]:
        return (self.left, self.right)

    def unparse(self) -> str:
        return f"({self.left.unparse()} and {self.right.unparse()})"


@dataclass(frozen=True)
class OrTest(TestExpr):
    """Disjunction of tests ``T1 or T2``."""

    left: TestExpr
    right: TestExpr

    def children(self) -> tuple[_Expr, ...]:
        return (self.left, self.right)

    def unparse(self) -> str:
        return f"({self.left.unparse()} or {self.right.unparse()})"


NodeExpr = Union[PathExpr, TestExpr]


def _wrap(expression: PathExpr) -> str:
    """Parenthesise sub-expressions that bind less tightly than ``/``."""
    if isinstance(expression, (PathUnion, PathIntersect, PathExcept, ForLoop)):
        return expression.unparse()  # these already parenthesise themselves
    return expression.unparse()


# ------------------------------------------------------------------ builders
def steps(*parts: PathExpr) -> PathExpr:
    """Compose path expressions left to right with ``/``."""
    if not parts:
        raise ValueError("steps() requires at least one path expression")
    result = parts[0]
    for part in parts[1:]:
        result = PathCompose(result, part)
    return result


def union_all(*parts: PathExpr) -> PathExpr:
    """Union of one or more path expressions."""
    if not parts:
        raise ValueError("union_all() requires at least one path expression")
    result = parts[0]
    for part in parts[1:]:
        result = PathUnion(result, part)
    return result


def nodes_expression() -> PathExpr:
    """The paper's ``nodes`` expression reaching every node of the tree.

    ``(ancestor::* union .)/(descendant::* union .)`` — from any start node,
    the relation contains every pair of nodes.
    """
    up = PathUnion(Step(Axis.ANCESTOR, None), ContextItem())
    down = PathUnion(Step(Axis.DESCENDANT, None), ContextItem())
    return PathCompose(up, down)


def root_anchor(variable: str | None = None) -> PathExpr:
    """The paper's root-anchoring prefix ``.[. is $x and not(parent::*)]``.

    When ``variable`` is ``None`` the variable test is dropped and the prefix
    merely constrains the start of navigation to the root.
    """
    no_parent = NotTest(PathTest(Step(Axis.PARENT, None)))
    if variable is None:
        return Filter(ContextItem(), no_parent)
    return Filter(ContextItem(), AndTest(CompTest(CONTEXT, variable), no_parent))
