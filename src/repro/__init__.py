"""repro — Polynomial time fragments of XPath with variables (PODS 2007).

A complete implementation of the paper's languages and algorithms:

* the tree data model and all XPath axes (:mod:`repro.trees`),
* Core XPath 2.0 with its naive exponential engine (:mod:`repro.xpath`),
* FO logic over trees and the Lemma 1 translation (:mod:`repro.fo`),
* PPLbin and the cubic matrix evaluation of Theorem 2 (:mod:`repro.pplbin`),
* the hybrid composition language, Lemma 3 sharing, the Fig. 8 answering
  algorithm, ACQs and Yannakakis (:mod:`repro.hcl`),
* PPL — Definition 1, the Fig. 7 translation and the polynomial engine of
  Theorem 1 (:mod:`repro.core`),
* hardness constructions (Proposition 3, Corollary 1) (:mod:`repro.hardness`),
* synthetic workloads (:mod:`repro.workloads`).

Typical usage — the :mod:`repro.api` facade::

    from repro import Document

    doc = Document.from_xml("<bib><book><author/><title/></book></bib>")
    pairs = doc.answer(
        "descendant::book[child::author[. is $y] and child::title[. is $z]]",
        ["y", "z"],
    )
    same = doc.answer(
        "descendant::book[child::author[. is $y] and child::title[. is $z]]",
        ["y", "z"],
        engine="naive",
    )

The seed-era entry points (``answer``, ``compile_query``, ``PPLEngine``)
were removed in 1.5.0, two minor releases after their 1.2 deprecation —
see the migration table in the README for the replacements.
"""

from repro.errors import (
    DocumentQuarantinedError,
    EngineCapabilityError,
    EngineError,
    EvaluationError,
    FaultInjectedError,
    NotAcyclicError,
    ObsPortInUseError,
    ParseError,
    ReproError,
    RestrictionViolation,
    TranslationError,
    TreeError,
    UnboundVariableError,
    UnknownEngineError,
    WorkerCrashError,
)
from repro.trees import Node, Tree, tree_from_xml, tree_to_xml
from repro.xpath import parse_path, NaiveEngine
from repro.core import is_ppl, check_ppl
from repro.api import (
    Document,
    Query,
    QueryReport,
    answer_batch,
    available_engines,
    get_engine,
    register_engine,
)
from repro.session import (
    CancellationToken,
    CorpusTimeoutError,
    ExecutionPolicy,
    ServingPolicy,
    Session,
    SessionClosedError,
    SessionError,
)

__version__ = "1.6.0"

__all__ = [
    "__version__",
    "Session",
    "ExecutionPolicy",
    "ServingPolicy",
    "CancellationToken",
    "SessionError",
    "SessionClosedError",
    "CorpusTimeoutError",
    "Node",
    "Tree",
    "tree_from_xml",
    "tree_to_xml",
    "parse_path",
    "NaiveEngine",
    "is_ppl",
    "check_ppl",
    "Document",
    "Query",
    "QueryReport",
    "answer_batch",
    "available_engines",
    "get_engine",
    "register_engine",
    "ReproError",
    "ParseError",
    "TreeError",
    "EvaluationError",
    "UnboundVariableError",
    "RestrictionViolation",
    "TranslationError",
    "NotAcyclicError",
    "EngineError",
    "UnknownEngineError",
    "EngineCapabilityError",
    "DocumentQuarantinedError",
    "FaultInjectedError",
    "WorkerCrashError",
    "ObsPortInUseError",
]
