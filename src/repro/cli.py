r"""Command-line front end, driven entirely by the :mod:`repro.api` facade.

Subcommands
-----------
``answer``
    Answer an n-ary query against an XML document, with any registered
    engine::

        repro-xpath answer --xml bib.xml \
            --query "descendant::book[child::author[. is \$y] and child::title[. is \$z]]" \
            --vars y,z --engine polynomial

``check``
    Report whether an expression belongs to PPL (Definition 1) without
    evaluating it::

        repro-xpath check --query "for \$x in child::a return \$x"

``translate``
    Print the Fig. 7 HCL⁻(PPLbin) translation (and, for variable-free
    expressions, the Fig. 4 PPLbin form)::

        repro-xpath translate --query "descendant::a[. is \$x]"

``bench``
    Time one query on one document across engines and emit machine-readable
    JSON (a :class:`repro.api.QueryReport` per engine plus timings)::

        repro-xpath bench --xml bib.xml --query "..." --vars y,z \
            --engines polynomial,naive --repeat 3

``engines``
    List the registered backends and their capability flags.

``corpus``
    Multi-document commands backed by :mod:`repro.corpus` — a subcommand
    group of its own:

    ``corpus load``
        Register every XML file of a directory in a
        :class:`repro.corpus.DocumentStore` and print a JSON inventory
        (names, sizes, store stats)::

            repro-xpath corpus load --dir corpus/ --max-resident 32

    ``corpus answer``
        Answer one query on every document (or ``--docs`` a subset), with
        any strategy of the :class:`repro.corpus.CorpusExecutor`; prints one
        ``name<TAB>count`` line per document as results stream in, or the
        full :class:`repro.corpus.CorpusReport` with ``--json``::

            repro-xpath corpus answer --dir corpus/ \
                --query "descendant::book[child::author[. is \$y] and child::title[. is \$z]]" \
                --vars y,z --strategy processes --workers 4

    ``corpus bench``
        Time the same corpus run under several strategies, check that they
        all return identical answers, and write a JSON comparison::

            repro-xpath corpus bench --dir corpus/ --query "..." --vars y,z \
                --strategies serial,threads,processes --out BENCH_corpus.json

``serve``
    Async serving commands backed by :mod:`repro.serve`:

    ``serve run``
        Serve a corpus directory over the newline-delimited-JSON TCP
        protocol, optionally with a persistent compiled-plan cache::

            repro-xpath serve run --dir corpus/ --port 8723 \
                --strategy threads --plan-cache /var/cache/repro-plans

    ``serve query`` / ``serve stats``
        Thin NDJSON clients: submit one query (streaming one
        ``name<TAB>count`` line per document) or fetch the
        :class:`repro.serve.ServerStats` snapshot of a running server.

    ``serve warm``
        Compile queries into a plan cache ahead of time, so the first
        ``serve run`` over that cache starts warm::

            repro-xpath serve warm --plan-cache /var/cache/repro-plans \
                --query "descendant::book[child::author[. is \$y]]" --vars y

The seed's flat invocation (``repro-xpath --xml ... --query ...``) keeps
working and is routed through the same facade; ``--engine ppl`` is accepted
as an alias of ``polynomial``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.api import (
    DEFAULT_ENGINE,
    available_engines,
    check_capabilities,
    get_engine,
)
from repro.session import ExecutionPolicy, ServingPolicy, Session

SUBCOMMANDS = (
    "answer",
    "check",
    "translate",
    "bench",
    "engines",
    "corpus",
    "serve",
    "obs",
)


# ---------------------------------------------------------------- new parser
def build_parser() -> argparse.ArgumentParser:
    """Return the subcommand argument parser for the ``repro-xpath`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-xpath",
        description="Answer n-ary PPL (Core XPath 2.0) queries on XML documents "
        "through the pluggable engine registry of Filiot et al., PODS 2007.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_kernel_option(subparser: argparse.ArgumentParser) -> None:
        from repro.pplbin.bitmatrix import KERNEL_NAMES

        subparser.add_argument(
            "--kernel",
            default=None,
            choices=KERNEL_NAMES,
            help="Boolean matrix kernel for the Theorem 2 evaluator "
            "(default: adaptive, or the REPRO_KERNEL environment variable)",
        )

    answer = subparsers.add_parser(
        "answer", help="answer a query on an XML document with a registered engine"
    )
    answer.add_argument("--xml", required=True, help="path to the XML document to query")
    answer.add_argument("--query", required=True, help="the Core XPath 2.0 expression")
    answer.add_argument(
        "--vars",
        default="",
        help="comma-separated output variables (without $), e.g. 'y,z'",
    )
    answer.add_argument(
        "--engine",
        default=DEFAULT_ENGINE,
        help="registry name of the engine (see `repro-xpath engines`); "
        f"default: {DEFAULT_ENGINE}",
    )
    answer.add_argument(
        "--labels",
        action="store_true",
        help="print node labels next to node identifiers in the answer tuples",
    )
    answer.add_argument(
        "--stats",
        action="store_true",
        help="print expression/translation statistics (human line + JSON) to stderr",
    )

    check = subparsers.add_parser(
        "check", help="report whether the expression satisfies Definition 1 (PPL)"
    )
    check.add_argument("--query", required=True, help="the Core XPath 2.0 expression")

    translate = subparsers.add_parser(
        "translate", help="print the HCL⁻(PPLbin) (and PPLbin) translations"
    )
    translate.add_argument("--query", required=True, help="the Core XPath 2.0 expression")

    bench = subparsers.add_parser(
        "bench", help="time one query across engines, emitting JSON reports"
    )
    bench.add_argument("--xml", required=True, help="path to the XML document to query")
    bench.add_argument("--query", required=True, help="the Core XPath 2.0 expression")
    bench.add_argument("--vars", default="", help="comma-separated output variables")
    bench.add_argument(
        "--engines",
        default=DEFAULT_ENGINE,
        help="comma-separated registry names to time (default: polynomial)",
    )
    bench.add_argument(
        "--repeat", type=int, default=3, help="timing rounds per engine (best is kept)"
    )
    add_kernel_option(bench)

    subparsers.add_parser("engines", help="list registered engines and capabilities")

    corpus = subparsers.add_parser(
        "corpus", help="multi-document commands (load / answer / bench)"
    )
    corpus_sub = corpus.add_subparsers(dest="corpus_command", required=True)

    def add_store_options(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--dir", required=True, help="directory holding the corpus XML files"
        )
        subparser.add_argument(
            "--pattern", default="*.xml", help="glob selecting corpus files (default *.xml)"
        )
        subparser.add_argument(
            "--max-resident",
            type=int,
            default=None,
            help="LRU bound on concurrently materialised documents (default unbounded)",
        )
        subparser.add_argument(
            "--snapshot-dir",
            default=None,
            help="directory of the on-disk columnar snapshot store "
            "(default: REPRO_SNAPSHOT_DIR, else no snapshots)",
        )
        subparser.add_argument(
            "--snapshot-bytes",
            type=int,
            default=None,
            help="LRU byte budget of the snapshot directory (default unbounded)",
        )

    corpus_load = corpus_sub.add_parser(
        "load", help="register a directory and print a JSON inventory"
    )
    add_store_options(corpus_load)

    corpus_answer = corpus_sub.add_parser(
        "answer", help="answer one query on every document of a corpus"
    )
    add_store_options(corpus_answer)
    corpus_answer.add_argument("--query", required=True, help="the Core XPath 2.0 expression")
    corpus_answer.add_argument("--vars", default="", help="comma-separated output variables")
    corpus_answer.add_argument(
        "--engine", default=DEFAULT_ENGINE, help=f"registry engine (default {DEFAULT_ENGINE})"
    )
    corpus_answer.add_argument(
        "--strategy",
        default="serial",
        choices=("serial", "threads", "processes"),
        help="execution strategy (default serial)",
    )
    corpus_answer.add_argument(
        "--workers", type=int, default=None, help="thread-pool width / process shard count"
    )
    corpus_answer.add_argument(
        "--docs", default="", help="comma-separated document names (default: all)"
    )
    corpus_answer.add_argument(
        "--unordered",
        action="store_true",
        help="stream results in completion order instead of store order",
    )
    corpus_answer.add_argument(
        "--json", action="store_true", help="print the aggregate CorpusReport as JSON"
    )

    corpus_bench = corpus_sub.add_parser(
        "bench", help="compare strategies on one corpus, verifying agreement"
    )
    add_store_options(corpus_bench)
    corpus_bench.add_argument("--query", required=True, help="the Core XPath 2.0 expression")
    corpus_bench.add_argument("--vars", default="", help="comma-separated output variables")
    corpus_bench.add_argument(
        "--engine", default=DEFAULT_ENGINE, help=f"registry engine (default {DEFAULT_ENGINE})"
    )
    corpus_bench.add_argument(
        "--strategies",
        default="serial,threads,processes",
        help="comma-separated strategies to time (default all three)",
    )
    corpus_bench.add_argument(
        "--rounds", type=int, default=1, help="query batches per strategy (default 1)"
    )
    corpus_bench.add_argument(
        "--workers", type=int, default=None, help="thread-pool width / process shard count"
    )
    corpus_bench.add_argument(
        "--out", default=None, help="write the JSON comparison to this path as well"
    )

    corpus_snapshot = corpus_sub.add_parser(
        "snapshot", help="manage the on-disk columnar snapshot store"
    )
    snapshot_sub = corpus_snapshot.add_subparsers(
        dest="snapshot_command", required=True
    )

    snapshot_build = snapshot_sub.add_parser(
        "build", help="materialise every corpus document into the snapshot store"
    )
    add_store_options(snapshot_build)

    snapshot_stats = snapshot_sub.add_parser(
        "stats", help="print a snapshot directory's sizes and file counts"
    )
    snapshot_stats.add_argument(
        "--snapshot-dir", required=True, help="the snapshot directory to inspect"
    )

    snapshot_gc = snapshot_sub.add_parser(
        "gc", help="evict least-recently-used snapshot files down to a byte budget"
    )
    snapshot_gc.add_argument(
        "--snapshot-dir", required=True, help="the snapshot directory to collect"
    )
    snapshot_gc.add_argument(
        "--max-bytes",
        type=int,
        required=True,
        help="target byte budget; least-recently-used files go first",
    )

    serve = subparsers.add_parser(
        "serve", help="async serving commands (run / query / stats / warm)"
    )
    serve_sub = serve.add_subparsers(dest="serve_command", required=True)

    serve_run = serve_sub.add_parser(
        "run", help="serve a corpus over the newline-delimited-JSON TCP protocol"
    )
    add_store_options(serve_run)
    serve_run.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_run.add_argument(
        "--port", type=int, default=8723, help="TCP port (0 = kernel-assigned)"
    )
    serve_run.add_argument(
        "--strategy",
        default="threads",
        choices=("serial", "threads", "processes"),
        help="executor strategy behind the server (default threads)",
    )
    serve_run.add_argument(
        "--workers", type=int, default=None, help="thread-pool width / process shard count"
    )
    serve_run.add_argument(
        "--engine", default=DEFAULT_ENGINE, help=f"registry engine (default {DEFAULT_ENGINE})"
    )
    serve_run.add_argument(
        "--plan-cache", default=None, help="directory of the persistent compiled-plan cache"
    )
    serve_run.add_argument(
        "--plan-cache-bytes", type=int, default=None, help="plan-cache LRU byte budget"
    )
    serve_run.add_argument(
        "--answer-cache-bytes",
        type=int,
        default=None,
        help="corpus-wide answer-memo byte budget (default 64 MiB)",
    )
    serve_run.add_argument(
        "--max-concurrent", type=int, default=4, help="documents evaluated at once"
    )
    serve_run.add_argument(
        "--max-queue", type=int, default=256, help="admission bound on pending documents"
    )
    serve_run.add_argument(
        "--auth-token",
        default=None,
        help="require this token in the 'auth' field of every NDJSON request",
    )
    serve_run.add_argument(
        "--client-quota",
        type=int,
        default=None,
        help="max concurrently streaming submissions per connection",
    )
    serve_run.add_argument(
        "--obs-port",
        type=int,
        default=None,
        help="also serve the HTTP observability endpoint "
        "(/metrics /healthz /slowlog.json /traces.ndjson) on this port "
        "(0 = kernel-assigned; default: REPRO_OBS_PORT, else off)",
    )
    add_kernel_option(serve_run)

    serve_query = serve_sub.add_parser(
        "query", help="submit one query to a running server, streaming results"
    )
    serve_query.add_argument("--host", default="127.0.0.1", help="server address")
    serve_query.add_argument("--port", type=int, required=True, help="server port")
    serve_query.add_argument("--query", required=True, help="the Core XPath 2.0 expression")
    serve_query.add_argument("--vars", default="", help="comma-separated output variables")
    serve_query.add_argument(
        "--docs", default="", help="comma-separated document names (default: all)"
    )
    serve_query.add_argument("--engine", default=None, help="registry engine override")
    serve_query.add_argument(
        "--unordered",
        action="store_true",
        help="stream results in completion order instead of store order",
    )
    serve_query.add_argument(
        "--json", action="store_true", help="print the raw NDJSON response lines"
    )
    serve_query.add_argument(
        "--auth", default=None, help="auth token expected by the server"
    )

    serve_stats = serve_sub.add_parser(
        "stats", help="print a running server's telemetry snapshot"
    )
    serve_stats.add_argument("--host", default="127.0.0.1", help="server address")
    serve_stats.add_argument("--port", type=int, required=True, help="server port")
    serve_stats.add_argument(
        "--auth", default=None, help="auth token expected by the server"
    )

    serve_cluster = serve_sub.add_parser(
        "cluster",
        help="shared-nothing serving cluster (run / status) over one public port",
    )
    serve_cluster_sub = serve_cluster.add_subparsers(
        dest="serve_cluster_command", required=True
    )

    cluster_run = serve_cluster_sub.add_parser(
        "run",
        help="supervise N member processes with cost-aware placement and "
        "concurrency autotune",
    )
    cluster_run.add_argument(
        "--dir", required=True, help="directory holding the corpus XML files"
    )
    cluster_run.add_argument(
        "--pattern", default="*.xml", help="glob selecting corpus files (default *.xml)"
    )
    cluster_run.add_argument("--host", default="127.0.0.1", help="bind address")
    cluster_run.add_argument(
        "--port", type=int, default=8723, help="shared public TCP port (0 = kernel-assigned)"
    )
    cluster_run.add_argument(
        "--members",
        type=int,
        default=None,
        help="member process count (default: ServingPolicy.cluster_members, "
        "then REPRO_CLUSTER_MEMBERS, then 2)",
    )
    cluster_run.add_argument(
        "--placement",
        default=None,
        choices=("cost", "round_robin"),
        help="shard placement strategy (default: REPRO_CLUSTER_PLACEMENT, then cost)",
    )
    autotune_group = cluster_run.add_mutually_exclusive_group()
    autotune_group.add_argument(
        "--autotune",
        action="store_true",
        default=None,
        help="force per-member concurrency autotune on",
    )
    autotune_group.add_argument(
        "--no-autotune",
        dest="autotune",
        action="store_false",
        help="force per-member concurrency autotune off "
        "(default: REPRO_CLUSTER_AUTOTUNE, then on)",
    )
    cluster_run.add_argument(
        "--move-budget",
        type=int,
        default=4,
        help="max load-smoothing document moves per placement re-plan (default 4)",
    )
    cluster_run.add_argument(
        "--strategy",
        default=None,
        choices=("serial", "threads", "processes"),
        help="executor strategy inside each member (default threads)",
    )
    cluster_run.add_argument(
        "--workers", type=int, default=None, help="per-member worker-pool width"
    )
    cluster_run.add_argument(
        "--engine", default=None, help=f"registry engine (default {DEFAULT_ENGINE})"
    )
    cluster_run.add_argument(
        "--plan-cache",
        default=None,
        help="shared persistent compiled-plan cache directory",
    )
    cluster_run.add_argument(
        "--snapshot-dir",
        default=None,
        help="shared on-disk snapshot directory for warm member starts",
    )
    cluster_run.add_argument(
        "--max-concurrent",
        type=int,
        default=None,
        help="initial per-member evaluation concurrency (autotune adjusts it)",
    )
    cluster_run.add_argument(
        "--max-queue", type=int, default=None, help="per-member admission bound"
    )
    cluster_run.add_argument(
        "--auth-token",
        default=None,
        help="require this token in the 'auth' field of every NDJSON request",
    )
    cluster_run.add_argument(
        "--target-p95",
        type=float,
        default=0.050,
        help="autotune's p95 queue-wait target in seconds (default 0.050)",
    )
    cluster_run.add_argument(
        "--control-interval",
        type=float,
        default=1.0,
        help="seconds between supervisor scrape/tune ticks (default 1.0)",
    )
    cluster_run.add_argument(
        "--obs-port",
        type=int,
        default=None,
        help="serve the merged HTTP observability endpoint "
        "(/metrics /healthz /cluster.json) on this port "
        "(0 = kernel-assigned; default: REPRO_OBS_PORT, else off)",
    )
    add_kernel_option(cluster_run)

    cluster_status = serve_cluster_sub.add_parser(
        "status", help="print a running cluster's /cluster.json status"
    )
    cluster_status.add_argument(
        "--host", default="127.0.0.1", help="supervisor observability address"
    )
    cluster_status.add_argument(
        "--port",
        type=int,
        required=True,
        help="supervisor observability port (serve cluster run --obs-port)",
    )

    serve_warm = serve_sub.add_parser(
        "warm", help="compile queries into a plan cache ahead of serving"
    )
    serve_warm.add_argument(
        "--plan-cache", required=True, help="directory of the plan cache to fill"
    )
    serve_warm.add_argument(
        "--query",
        action="append",
        required=True,
        help="expression to compile (repeatable)",
    )
    serve_warm.add_argument(
        "--vars",
        action="append",
        default=None,
        help="comma-separated output variables, one per --query (default: none)",
    )

    obs = subparsers.add_parser(
        "obs", help="observability commands (metrics / trace / slowlog / calibrate)"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    obs_metrics = obs_sub.add_parser(
        "metrics",
        help="scrape a running server's metrics in Prometheus text format",
    )
    obs_metrics.add_argument("--host", default="127.0.0.1", help="server address")
    obs_metrics.add_argument("--port", type=int, required=True, help="server port")
    obs_metrics.add_argument(
        "--auth", default=None, help="auth token expected by the server"
    )

    obs_trace = obs_sub.add_parser(
        "trace",
        help="answer one query with tracing enabled and print its span tree",
    )
    obs_trace.add_argument("--xml", required=True, help="path to the XML document")
    obs_trace.add_argument("--query", required=True, help="the Core XPath 2.0 expression")
    obs_trace.add_argument("--vars", default="", help="comma-separated output variables")
    obs_trace.add_argument("--engine", default=None, help="registry engine override")
    add_kernel_option(obs_trace)
    obs_trace.add_argument(
        "--ndjson",
        action="store_true",
        help="emit flat NDJSON trace events instead of the indented tree",
    )

    obs_slowlog = obs_sub.add_parser(
        "slowlog", help="print a running server's slow-query log"
    )
    obs_slowlog.add_argument("--host", default="127.0.0.1", help="server address")
    obs_slowlog.add_argument("--port", type=int, required=True, help="server port")
    obs_slowlog.add_argument(
        "--auth", default=None, help="auth token expected by the server"
    )
    obs_slowlog.add_argument(
        "--limit", type=int, default=None, help="most recent entries to print"
    )

    obs_calibrate = obs_sub.add_parser(
        "calibrate",
        help="fit the kernel cost model from traced compose spans and "
        "write a calibration profile",
    )
    obs_calibrate.add_argument(
        "--out",
        default=None,
        help="write the fitted profile JSON here (loadable via "
        "REPRO_COST_PROFILE); default: print only",
    )
    obs_calibrate.add_argument(
        "--sizes",
        default="96,192,320",
        help="comma-separated matrix sizes of the controlled workload",
    )
    obs_calibrate.add_argument(
        "--densities",
        default="2,8,32,128",
        help="comma-separated successors-per-node densities",
    )
    obs_calibrate.add_argument(
        "--repeats", type=int, default=3, help="composes per cell (default 3)"
    )
    obs_calibrate.add_argument(
        "--seed", type=int, default=0, help="seed of the random relations"
    )

    return parser


# ------------------------------------------------------------- legacy parser
def build_legacy_parser() -> argparse.ArgumentParser:
    """The seed's flat parser, kept so existing invocations stay valid."""
    parser = argparse.ArgumentParser(
        prog="repro-xpath",
        description="Answer n-ary PPL (Core XPath 2.0) queries on XML documents "
        "with the polynomial-time engine of Filiot et al., PODS 2007.",
    )
    parser.add_argument("--xml", help="path to the XML document to query")
    parser.add_argument("--query", required=True, help="the Core XPath 2.0 / PPL expression")
    parser.add_argument(
        "--vars",
        default="",
        help="comma-separated output variables (without $), e.g. 'y,z'",
    )
    parser.add_argument(
        "--engine",
        default="ppl",
        help="query engine: a registry name, or the legacy aliases ppl/naive",
    )
    parser.add_argument(
        "--check-only",
        action="store_true",
        help="only report whether the expression satisfies Definition 1 (PPL)",
    )
    parser.add_argument(
        "--stats", action="store_true", help="print expression/translation statistics"
    )
    parser.add_argument(
        "--labels",
        action="store_true",
        help="print node labels next to node identifiers in the answer tuples",
    )
    return parser


def _split_vars(text: str) -> list[str]:
    return [name.strip() for name in text.split(",") if name.strip()]


def _apply_kernel(name: Optional[str]) -> None:
    """Make ``--kernel`` the process-wide default kernel as well.

    The Session already pins the kernel for its own store *and* ships the
    resolved name to worker subprocesses (the precedence fix), so this is
    not what makes workers agree any more.  It is kept because a CLI
    invocation is one process serving one command: anything materialised
    outside the session's store (ad-hoc documents, legacy paths) should
    follow the flag too, and ``REPRO_KERNEL`` is exported for tools the
    command execs in turn.
    """
    if name is None:
        return
    import os

    from repro.pplbin import bitmatrix

    bitmatrix.set_default_kernel(name)
    os.environ[bitmatrix.KERNEL_ENV] = name


# ------------------------------------------------------------------ handlers
def _run_check(query_text: str) -> int:
    from repro.core.ppl import ppl_violations

    violations = ppl_violations(query_text)
    if not violations:
        print("PPL: the expression satisfies all conditions of Definition 1")
        return 0
    print("NOT PPL: the expression violates Definition 1:")
    for violation in violations:
        print(f"  - {violation.condition}: {violation.message}")
    return 1


def _run_answer(
    xml: str,
    query_text: str,
    variables: Sequence[str],
    engine: str,
    labels: bool,
    stats: bool,
) -> int:
    with Session() as session:
        name = session.add_file(xml)
        document = session.document(name)
        answers = session.query(name, query_text, variables, engine=engine)
        if stats:
            report = session.report(
                name, query_text, variables, engine=engine, answers=answers
            )
            print(
                f"# |P|={report.expression_size} |C|={report.hcl_size} "
                f"leaves={report.distinct_leaves} |t|={document.size} "
                f"n={len(variables)} |A|={report.answer_count}",
                file=sys.stderr,
            )
            print(report.to_json(), file=sys.stderr)

        header = "\t".join(f"${name}" for name in variables) if variables else "(boolean)"
        print(header)
        if not variables:
            print("non-empty" if answers else "empty")
            return 0
        for answer_tuple in sorted(answers):
            if labels:
                rendered = [f"{node}:{document.labels[node]}" for node in answer_tuple]
            else:
                rendered = [str(node) for node in answer_tuple]
            print("\t".join(rendered))
    return 0


def _run_translate(query_text: str) -> int:
    from repro.api import compile_query

    query = compile_query(query_text, require_ppl=False)
    if not query.is_ppl:
        print("NOT PPL: no HCL⁻ translation exists; violations:")
        for violation in query.violations:
            print(f"  - {violation.condition}: {violation.message}")
        return 1
    print("expression:", query.source.unparse())
    print("hcl:", query.hcl.unparse())
    if query.pplbin is not None:
        print("pplbin:", query.pplbin.unparse())
    return 0


def _run_bench(
    xml: str,
    query_text: str,
    variables: Sequence[str],
    engine_names: Sequence[str],
    repeat: int,
    kernel: Optional[str] = None,
) -> int:
    # The explicit --kernel pins the session's kernel (beating REPRO_KERNEL,
    # per the documented precedence); timing calls the backend directly so
    # the answer memo cannot turn rounds 2..n into cache hits.
    _apply_kernel(kernel)
    with Session(kernel=kernel, cache_answers=False) as session:
        doc_name = session.add_file(xml)
        document = session.document(doc_name)
        results = []
        for name in engine_names:
            entry: dict = {"engine": name}
            try:
                backend = get_engine(name)
                compiled = session.compile(query_text, variables)
                check_capabilities(backend, compiled)
                best = None
                for _ in range(max(1, repeat)):
                    started = time.perf_counter()
                    answers = backend.answer(document, compiled)
                    elapsed = time.perf_counter() - started
                    best = elapsed if best is None else min(best, elapsed)
                report = session.report(
                    doc_name, query_text, variables, engine=name, answers=answers
                )
                entry.update(report.to_dict())
                entry["seconds"] = best
            except ReproError as error:
                entry["error"] = str(error)
            results.append(entry)
    print(json.dumps(results, indent=2))
    return 0 if all("error" not in entry for entry in results) else 1


def _corpus_session(args, **session_kwargs) -> Session:
    """Build a Session over the corpus directory named on the command line."""
    snapshot_bytes = getattr(args, "snapshot_bytes", None)
    if snapshot_bytes is not None:
        session_kwargs.setdefault("snapshot_bytes", snapshot_bytes)
    session = Session(
        max_resident=args.max_resident,
        strategy=getattr(args, "strategy", None),
        max_workers=getattr(args, "workers", None),
        engine=getattr(args, "engine", None),
        snapshot_dir=getattr(args, "snapshot_dir", None),
        **session_kwargs,
    )
    try:
        session.add_directory(args.dir, args.pattern)
    except ReproError:
        session.close()
        raise
    if not len(session.store):
        session.close()
        raise ReproError(f"no files matching {args.pattern!r} under {args.dir!r}")
    return session


def _run_corpus_load(args) -> int:
    with _corpus_session(args) as session:
        store = session.store
        documents = []
        for name in store.names():
            document = session.document(name)
            documents.append({"name": name, "nodes": document.size})
        stats = store.stats
        print(
            json.dumps(
                {
                    "directory": args.dir,
                    "documents": documents,
                    "count": len(documents),
                    "total_nodes": sum(entry["nodes"] for entry in documents),
                    "max_resident": store.max_resident,
                    "stats": {
                        "loads": stats.loads,
                        "hits": stats.hits,
                        "evictions": stats.evictions,
                    },
                },
                indent=2,
            )
        )
    return 0


def _run_corpus_answer(args) -> int:
    names = _split_vars(args.docs) or None
    variables = _split_vars(args.vars)
    with _corpus_session(args) as session:
        if args.json:
            report = session.corpus_report(
                (args.query, variables), names, ordered=not args.unordered
            )
            print(report.to_json(indent=2))
            return 0
        collected = []
        for result in session.query_corpus(
            (args.query, variables), names, ordered=not args.unordered
        ):
            print(f"{result.doc_name}\t{result.report.answer_count}")
            collected.append(result)
    total = sum(result.report.answer_count for result in collected)
    print(f"# documents={len(collected)} total_answers={total}", file=sys.stderr)
    return 0


def _run_corpus_snapshot_build(args) -> int:
    """Materialise every corpus document once, writing its snapshot."""
    snapshot_dir = args.snapshot_dir or os.environ.get("REPRO_SNAPSHOT_DIR")
    if snapshot_dir is None:
        print("error: corpus snapshot build requires --snapshot-dir", file=sys.stderr)
        return 1
    args.snapshot_dir = snapshot_dir
    with _corpus_session(args) as session:
        documents = []
        for name in session.store.names():
            document = session.document(name)
            documents.append({"name": name, "nodes": document.size})
        payload = {
            "directory": args.dir,
            "snapshot_dir": args.snapshot_dir,
            "documents": len(documents),
            "total_nodes": sum(entry["nodes"] for entry in documents),
            "snapshot": session.store.snapshot_stats(),
        }
    print(json.dumps(payload, indent=2))
    return 0


def _run_corpus_snapshot_stats(args) -> int:
    from repro.snapshot import SnapshotStore

    store = SnapshotStore(args.snapshot_dir)
    print(
        json.dumps(
            {
                "snapshot_dir": args.snapshot_dir,
                "total_bytes": store.total_bytes(),
                "files": store.file_counts(),
            },
            indent=2,
        )
    )
    return 0


def _run_corpus_snapshot_gc(args) -> int:
    from repro.snapshot import SnapshotStore

    store = SnapshotStore(args.snapshot_dir)
    before = store.total_bytes()
    removed = store.gc(args.max_bytes)
    print(
        json.dumps(
            {
                "snapshot_dir": args.snapshot_dir,
                "max_bytes": args.max_bytes,
                "removed_files": removed,
                "bytes_before": before,
                "bytes_after": store.total_bytes(),
                "files": store.file_counts(),
            },
            indent=2,
        )
    )
    return 0


def _run_corpus_bench(args) -> int:
    variables = _split_vars(args.vars)
    strategies = _split_vars(args.strategies)
    rounds = max(1, args.rounds)
    runs = []
    answer_maps = []
    for strategy in strategies:
        # A fresh session (and store) per strategy: every strategy starts
        # cold and pays its own parse/oracle work, so the wall-clocks are
        # comparable.
        answers: dict[str, frozenset] = {}
        started = time.perf_counter()
        with _corpus_session(
            args, execution=ExecutionPolicy(strategy=strategy)
        ) as session:
            round_seconds = []
            for _ in range(rounds):
                round_started = time.perf_counter()
                for result in session.query_corpus((args.query, variables)):
                    answers[result.doc_name] = result.answers
                round_seconds.append(time.perf_counter() - round_started)
            # The process strategy loads documents inside the shard workers;
            # fold their counters in so the strategies stay comparable.
            worker_stats = session.worker_stats()
            stats = session.store.stats
        wall = time.perf_counter() - started
        runs.append(
            {
                "strategy": strategy,
                "wall_seconds": wall,
                "round_seconds": round_seconds,
                "loads": stats.loads + worker_stats.loads,
                "evictions": stats.evictions + worker_stats.evictions,
            }
        )
        answer_maps.append(answers)
    agreement = all(candidate == answer_maps[0] for candidate in answer_maps[1:])
    serial_wall = next(
        (run["wall_seconds"] for run in runs if run["strategy"] == "serial"), None
    )
    payload = {
        "directory": args.dir,
        "query": args.query,
        "variables": variables,
        "engine": args.engine,
        "rounds": rounds,
        "strategies": runs,
        "agreement": agreement,
        "speedups_vs_serial": {
            run["strategy"]: serial_wall / run["wall_seconds"]
            for run in runs
            if serial_wall is not None and run["wall_seconds"] > 0
        },
    }
    text = json.dumps(payload, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return 0 if agreement else 1


def _run_serve_run(args) -> int:
    import asyncio

    serving = ServingPolicy().override(
        max_concurrent=args.max_concurrent,
        max_queue=args.max_queue,
        auth_token=args.auth_token,
        max_submissions_per_client=args.client_quota,
        obs_port=args.obs_port,
    )
    _apply_kernel(args.kernel)
    session_kwargs: dict = {
        "kernel": args.kernel,
        "plan_cache": args.plan_cache if args.plan_cache else None,
        "serving": serving,
    }
    if args.answer_cache_bytes is not None:
        session_kwargs["answer_cache_bytes"] = args.answer_cache_bytes
    if args.plan_cache_bytes is not None:
        session_kwargs["plan_cache_bytes"] = args.plan_cache_bytes
    session = _corpus_session(args, **session_kwargs)

    async def main() -> int:
        import signal

        async with session:
            tcp = await session.protocol().serve_tcp(args.host, args.port)
            port = tcp.sockets[0].getsockname()[1]
            from repro.pplbin.bitmatrix import get_default_kernel

            # Graceful drain on SIGTERM/SIGINT: stop accepting connections,
            # let in-flight submissions finish (session.aclose drains the
            # server), and log the drain outcome.  Installed before the
            # "serving ..." banner so a supervisor reacting to the banner
            # cannot outrace the handlers.  Platforms without
            # add_signal_handler (Windows loops) keep the KeyboardInterrupt
            # fallback below.
            stop = asyncio.Event()
            received: list[str] = []
            loop = asyncio.get_running_loop()

            def _request_stop(name: str) -> None:
                received.append(name)
                stop.set()

            installed: list[int] = []
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(
                        signum, _request_stop, signal.Signals(signum).name
                    )
                    installed.append(signum)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass
            kernel_name = session.execution.resolved("kernel")
            if kernel_name is None:
                kernel_name = get_default_kernel().name
            elif not isinstance(kernel_name, str):
                kernel_name = kernel_name.name
            print(
                f"serving {len(session.store)} documents on {args.host}:{port} "
                f"(strategy={args.strategy}, engine={args.engine}, "
                f"kernel={kernel_name})",
                file=sys.stderr,
                flush=True,
            )
            obs_http = getattr(session.server(), "obs_http", None)
            if obs_http is not None:
                print(
                    f"observability endpoint on http://{obs_http.host}:{obs_http.port} "
                    "(/metrics /healthz /slowlog.json /traces.ndjson)",
                    file=sys.stderr,
                    flush=True,
                )
            try:
                async with tcp:
                    if installed:
                        # serve_tcp is already accepting; wait for a signal.
                        await stop.wait()
                    else:
                        await tcp.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                for signum in installed:
                    try:
                        loop.remove_signal_handler(signum)
                    except (NotImplementedError, RuntimeError, ValueError):
                        pass
            if received:
                server = session.server()
                in_flight = server.stats.in_flight + server.stats.queued
                drain_started = time.perf_counter()
                await session.aclose()
                drained_stats = server.stats
                print(
                    f"received {received[0]}: drained {in_flight} in-flight "
                    f"document(s) in {time.perf_counter() - drain_started:.3f}s "
                    f"({drained_stats.completed} completed, "
                    f"{drained_stats.failed} failed); shutting down",
                    file=sys.stderr,
                    flush=True,
                )
        return 0

    try:
        return asyncio.run(main())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
        session.close()
        return 0


def _run_serve_cluster_run(args) -> int:
    import signal

    from repro.cluster import ClusterSupervisor

    serving = ServingPolicy().override(
        max_concurrent=args.max_concurrent,
        max_queue=args.max_queue,
        auth_token=args.auth_token,
    )
    _apply_kernel(args.kernel)
    supervisor = ClusterSupervisor(
        args.dir,
        pattern=args.pattern,
        host=args.host,
        port=args.port,
        members=args.members,
        placement=args.placement,
        autotune=args.autotune,
        move_budget=args.move_budget,
        serving=serving,
        engine=args.engine,
        strategy=args.strategy,
        max_workers=args.workers,
        kernel=args.kernel,
        plan_cache_dir=args.plan_cache,
        snapshot_dir=args.snapshot_dir,
        obs_port=args.obs_port,
        control_interval=args.control_interval,
        target_p95=args.target_p95,
    )
    previous = {
        signum: signal.signal(signum, lambda *_: supervisor.request_stop())
        for signum in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        supervisor.start()
        status = supervisor.status()
        print(
            f"cluster of {supervisor.member_count} member(s) serving "
            f"{status['documents']} documents on "
            f"{supervisor.host}:{supervisor.port} "
            f"(placement={supervisor.placement_strategy}, "
            f"autotune={'on' if supervisor.autotune_enabled else 'off'}, "
            f"reuseport={'yes' if supervisor.reuseport_active else 'shared-listener'})",
            file=sys.stderr,
            flush=True,
        )
        if supervisor.obs_http is not None:
            print(
                f"observability endpoint on "
                f"http://{supervisor.obs_http.host}:{supervisor.obs_http.port} "
                "(/metrics /healthz /cluster.json)",
                file=sys.stderr,
                flush=True,
            )
        supervisor.run_forever()
    except KeyboardInterrupt:
        pass
    finally:
        print("shutting down cluster", file=sys.stderr, flush=True)
        supervisor.stop()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    return 0


def _run_serve_cluster_status(args) -> int:
    import urllib.request

    url = f"http://{args.host}:{args.port}/cluster.json"
    try:
        with urllib.request.urlopen(url, timeout=5.0) as response:
            payload = json.load(response)
    except OSError as error:
        print(f"cannot reach {url}: {error}", file=sys.stderr)
        return 1
    try:
        print(json.dumps(payload, indent=2))
    except BrokenPipeError:
        pass  # piped into head & co: the truncated view is the point
    return 0


def _run_serve_query(args) -> int:
    import asyncio

    from repro.serve import request_lines

    variables = _split_vars(args.vars)
    request = {
        "op": "submit",
        "id": 1,
        "query": args.query,
        "vars": variables,
        "ordered": not args.unordered,
    }
    docs = _split_vars(args.docs)
    if docs:
        request["docs"] = docs
    if args.engine:
        request["engine"] = args.engine
    if args.auth:
        request["auth"] = args.auth

    async def main() -> int:
        total = 0
        async for line in request_lines(args.host, args.port, request):
            if args.json:
                print(json.dumps(line))
            if line["type"] == "error":
                if not args.json:
                    print(f"error: {line['error']}", file=sys.stderr)
                return 1
            if line["type"] == "result":
                if not args.json:
                    print(f"{line['doc']}\t{line['count']}")
                total += line["count"]
            elif line["type"] == "done":
                if not args.json:
                    print(
                        f"# documents={line['results']} total_answers={total}",
                        file=sys.stderr,
                    )
                return 0
        print("error: connection closed before the stream finished", file=sys.stderr)
        return 1

    return asyncio.run(main())


def _run_serve_stats(args) -> int:
    import asyncio

    from repro.serve import request_lines

    request = {"op": "stats", "id": 1}
    if args.auth:
        request["auth"] = args.auth

    async def main() -> int:
        async for line in request_lines(args.host, args.port, request):
            if line.get("type") == "stats":
                print(json.dumps(line["stats"], indent=2))
                return 0
            if line.get("type") == "error":
                print(f"error: {line['error']}", file=sys.stderr)
                return 1
        print("error: no stats response", file=sys.stderr)
        return 1

    return asyncio.run(main())


def _run_serve_warm(args) -> int:
    # Plans are stored under the shared engine-independent label — compiled
    # Query values carry every translation, and it is the label the server
    # looks plans up with, so one warmed entry serves every --engine.
    from repro.api import compile_query
    from repro.serve import ANY_ENGINE, PlanCache

    cache = PlanCache(args.plan_cache)
    variable_lists = args.vars if args.vars is not None else []
    if len(variable_lists) not in (0, len(args.query)):
        raise ReproError("--vars must be given once per --query (or not at all)")
    entries = []
    for index, text in enumerate(args.query):
        variables = _split_vars(variable_lists[index]) if variable_lists else []
        already = cache.load(text, variables) is not None
        if not already:
            cache.store(compile_query(text, tuple(variables), require_ppl=False),
                        expression=text)
        entries.append(
            {
                "query": text,
                "variables": variables,
                "key": cache.key(text, variables),
                "cached": already,
            }
        )
    print(
        json.dumps(
            {
                "plan_cache": args.plan_cache,
                "engine": ANY_ENGINE,
                "plans": entries,
                "total_bytes": cache.total_bytes(),
            },
            indent=2,
        )
    )
    return 0


def _run_obs_metrics(args) -> int:
    import asyncio

    from repro.serve import request_lines

    request = {"op": "metrics", "id": 1}
    if args.auth:
        request["auth"] = args.auth

    async def main() -> int:
        async for line in request_lines(args.host, args.port, request):
            if line.get("type") == "metrics":
                sys.stdout.write(line["body"])
                return 0
            if line.get("type") == "error":
                print(f"error: {line['error']}", file=sys.stderr)
                return 1
        print("error: no metrics response", file=sys.stderr)
        return 1

    return asyncio.run(main())


def _run_obs_slowlog(args) -> int:
    import asyncio

    from repro.serve import request_lines

    request = {"op": "slowlog", "id": 1}
    if args.limit is not None:
        request["limit"] = args.limit
    if args.auth:
        request["auth"] = args.auth

    async def main() -> int:
        async for line in request_lines(args.host, args.port, request):
            if line.get("type") == "slowlog":
                print(
                    json.dumps(
                        {"threshold": line.get("threshold"),
                         "entries": line.get("entries", [])},
                        indent=2,
                    )
                )
                return 0
            if line.get("type") == "error":
                print(f"error: {line['error']}", file=sys.stderr)
                return 1
        print("error: no slowlog response", file=sys.stderr)
        return 1

    return asyncio.run(main())


def _run_obs_trace(args) -> int:
    from repro.obs import trace as obs_trace
    from repro.session import Session

    previous = obs_trace.set_tracing(True)
    try:
        with Session(engine=args.engine, kernel=args.kernel) as session:
            name = session.add_file(args.xml)
            report = session.report(name, args.query, _split_vars(args.vars))
        tree = report.trace
        if tree is None:
            print("error: the query produced no trace", file=sys.stderr)
            return 1
        if args.ndjson:
            sys.stdout.write(obs_trace.render_events([tree]))
        else:
            print(obs_trace.format_tree(tree))
        print(f"# answers={report.answer_count}", file=sys.stderr)
        return 0
    finally:
        obs_trace.set_tracing(previous)


def _run_obs_calibrate(args) -> int:
    from repro.obs import calibrate as obs_calibrate

    sizes = [int(text) for text in _split_vars(args.sizes)]
    densities = [float(text) for text in _split_vars(args.densities)]
    profile = obs_calibrate.calibrate(
        sizes=sizes,
        per_node_densities=densities,
        repeats=args.repeats,
        seed=args.seed,
    )
    if args.out:
        obs_calibrate.save_profile(args.out, profile)
        profile["path"] = args.out
    print(json.dumps(profile, indent=2, sort_keys=True))
    if not profile["constants"]:
        print(
            "error: no representation collected enough points to fit",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_engines() -> int:
    from dataclasses import asdict

    from repro.pplbin.bitmatrix import get_default_kernel, kernel_descriptions

    print("engines:")
    for name in available_engines():
        backend = get_engine(name)
        flags = ", ".join(
            f"{key}={value}" for key, value in asdict(backend.capabilities).items()
        )
        print(f"{name}: {flags}")
    # The kernels come from the same registry the Session resolves
    # `ExecutionPolicy.kernel` against (repro.pplbin.bitmatrix.KERNELS), so
    # this listing cannot drift from what --kernel / REPRO_KERNEL accept.
    default_kernel = get_default_kernel().name
    print("\nkernels (matrix backend of the Theorem 2 evaluator):")
    for name, description in kernel_descriptions().items():
        marker = " [default]" if name == default_kernel else ""
        print(f"{name}{marker}:")
        print(f"  storage:  {description['storage']}")
        print(f"  compose:  {description['compose']}")
        print(f"  best for: {description['best_for']}")
    return 0


# ---------------------------------------------------------------- entry point
def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    # The subcommand interface is the primary one: bare invocations and
    # top-level --help must surface it.  Only invocations that *start* with a
    # legacy flag (and are not help requests) take the compatibility path.
    if not arguments or arguments[0] in SUBCOMMANDS or arguments[0] in ("-h", "--help"):
        return _main_subcommands(arguments)
    return _main_legacy(arguments)


def _main_subcommands(arguments: list[str]) -> int:
    parser = build_parser()
    args = parser.parse_args(arguments)
    try:
        if args.command == "check":
            return _run_check(args.query)
        if args.command == "translate":
            return _run_translate(args.query)
        if args.command == "engines":
            return _run_engines()
        if args.command == "corpus":
            if args.corpus_command == "load":
                return _run_corpus_load(args)
            if args.corpus_command == "bench":
                return _run_corpus_bench(args)
            if args.corpus_command == "snapshot":
                if args.snapshot_command == "build":
                    return _run_corpus_snapshot_build(args)
                if args.snapshot_command == "stats":
                    return _run_corpus_snapshot_stats(args)
                return _run_corpus_snapshot_gc(args)
            return _run_corpus_answer(args)
        if args.command == "serve":
            if args.serve_command == "run":
                return _run_serve_run(args)
            if args.serve_command == "query":
                return _run_serve_query(args)
            if args.serve_command == "stats":
                return _run_serve_stats(args)
            if args.serve_command == "cluster":
                if args.serve_cluster_command == "run":
                    return _run_serve_cluster_run(args)
                return _run_serve_cluster_status(args)
            return _run_serve_warm(args)
        if args.command == "obs":
            if args.obs_command == "metrics":
                return _run_obs_metrics(args)
            if args.obs_command == "slowlog":
                return _run_obs_slowlog(args)
            if args.obs_command == "calibrate":
                return _run_obs_calibrate(args)
            return _run_obs_trace(args)
        if args.command == "bench":
            return _run_bench(
                args.xml,
                args.query,
                _split_vars(args.vars),
                _split_vars(args.engines),
                args.repeat,
                kernel=args.kernel,
            )
        return _run_answer(
            args.xml,
            args.query,
            _split_vars(args.vars),
            args.engine,
            args.labels,
            args.stats,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _main_legacy(arguments: list[str]) -> int:
    parser = build_legacy_parser()
    args = parser.parse_args(arguments)

    if args.check_only:
        return _run_check(args.query)

    if not args.xml:
        parser.error("--xml is required unless --check-only is given")

    try:
        return _run_answer(
            args.xml,
            args.query,
            _split_vars(args.vars),
            args.engine,  # "ppl" resolves through the registry alias
            args.labels,
            args.stats,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
