r"""Command-line front end: answer PPL queries against XML documents.

Examples
--------
Answer the paper's author/title query against a file::

    repro-xpath --xml bib.xml \
        --query "descendant::book[child::author[. is \$y] and child::title[. is \$z]]" \
        --vars y,z

Check whether an expression belongs to PPL without evaluating it::

    repro-xpath --check-only --query "for \$x in child::a return \$x"

Use ``--engine naive`` to answer with the exponential Core XPath 2.0 baseline
(small documents only) and ``--stats`` to print sizing diagnostics.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.errors import ReproError
from repro.trees.xml_io import tree_from_xml_file
from repro.xpath.naive import NaiveEngine
from repro.core.engine import PPLEngine
from repro.core.ppl import ppl_violations


def build_parser() -> argparse.ArgumentParser:
    """Return the argument parser for the ``repro-xpath`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-xpath",
        description="Answer n-ary PPL (Core XPath 2.0) queries on XML documents "
        "with the polynomial-time engine of Filiot et al., PODS 2007.",
    )
    parser.add_argument("--xml", help="path to the XML document to query")
    parser.add_argument("--query", required=True, help="the Core XPath 2.0 / PPL expression")
    parser.add_argument(
        "--vars",
        default="",
        help="comma-separated output variables (without $), e.g. 'y,z'",
    )
    parser.add_argument(
        "--engine",
        choices=("ppl", "naive"),
        default="ppl",
        help="query engine: the polynomial PPL engine (default) or the naive baseline",
    )
    parser.add_argument(
        "--check-only",
        action="store_true",
        help="only report whether the expression satisfies Definition 1 (PPL)",
    )
    parser.add_argument(
        "--stats", action="store_true", help="print expression/translation statistics"
    )
    parser.add_argument(
        "--labels",
        action="store_true",
        help="print node labels next to node identifiers in the answer tuples",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.check_only:
        violations = ppl_violations(args.query)
        if not violations:
            print("PPL: the expression satisfies all conditions of Definition 1")
            return 0
        print("NOT PPL: the expression violates Definition 1:")
        for violation in violations:
            print(f"  - {violation.condition}: {violation.message}")
        return 1

    if not args.xml:
        parser.error("--xml is required unless --check-only is given")

    variables = [name.strip() for name in args.vars.split(",") if name.strip()]
    try:
        tree = tree_from_xml_file(args.xml)
        if args.engine == "ppl":
            engine = PPLEngine(tree)
            answers = engine.answer(args.query, variables)
            if args.stats:
                report = engine.report(args.query, variables)
                print(
                    f"# |P|={report.expression_size} |C|={report.hcl_size} "
                    f"leaves={report.distinct_leaves} |t|={tree.size} "
                    f"n={len(variables)} |A|={report.answer_count}",
                    file=sys.stderr,
                )
        else:
            answers = NaiveEngine(tree).answer(args.query, variables)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    header = "\t".join(f"${name}" for name in variables) if variables else "(boolean)"
    print(header)
    if not variables:
        print("non-empty" if answers else "empty")
        return 0
    for answer_tuple in sorted(answers):
        if args.labels:
            rendered = [f"{node}:{tree.labels[node]}" for node in answer_tuple]
        else:
            rendered = [str(node) for node in answer_tuple]
        print("\t".join(rendered))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
