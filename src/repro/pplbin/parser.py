"""Concrete-syntax parser for PPLbin (Fig. 3).

Grammar (lowest to highest precedence)::

    union_expr   := except_expr ( ('union' | 'intersect' | 'except') except_expr )*
    except_expr  := 'except' except_expr | composition
    composition  := filtered ( '/' filtered )*
    filtered     := primary ( '[' union_expr ']' )*
    primary      := 'self' | '.' | Axis '::' NameTest | '(' union_expr ')'
                  | '[' union_expr ']'

Binary ``intersect`` and binary ``except`` are accepted as syntactic sugar
and expanded through the derived forms of Section 2 / Fig. 4, so the parsed
AST only ever contains the Fig. 3 operators.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.errors import ParseError
from repro.trees.axes import parse_axis
from repro.pplbin.ast import (
    BCompose,
    BExcept,
    BFilter,
    BinExpr,
    BStep,
    BUnion,
    SelfStep,
    binary_except,
    binary_intersect,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<axis_sep>::)
  | (?P<name>[A-Za-z_][\w\-.]*)
  | (?P<star>\*)
  | (?P<dot>\.)
  | (?P<slash>/)
  | (?P<lbracket>\[)
  | (?P<rbracket>\])
  | (?P<lparen>\()
  | (?P<rparen>\))
    """,
    re.VERBOSE,
)

_KEYWORDS = frozenset({"union", "intersect", "except", "self"})


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r}", position)
        kind = match.lastgroup
        assert kind is not None
        value = match.group()
        if kind != "ws":
            if kind == "name" and value in _KEYWORDS:
                kind = value
            tokens.append(_Token(kind, value, position))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    def peek(self, offset: int = 0) -> Optional[_Token]:
        index = self.index + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def at(self, kind: str, offset: int = 0) -> bool:
        token = self.peek(offset)
        return token is not None and token.kind == kind

    def advance(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input", len(self.text))
        self.index += 1
        return token

    def expect(self, kind: str) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError(f"expected {kind!r} but reached end of input", len(self.text))
        if token.kind != kind:
            raise ParseError(f"expected {kind!r} but found {token.text!r}", token.position)
        return self.advance()

    # -------------------------------------------------------------- grammar
    def parse_union(self) -> BinExpr:
        left = self.parse_prefix()
        while self.at("union") or self.at("intersect") or self.at("except"):
            operator = self.advance().kind
            right = self.parse_prefix()
            if operator == "union":
                left = BUnion(left, right)
            elif operator == "intersect":
                left = binary_intersect(left, right)
            else:
                left = binary_except(left, right)
        return left

    def parse_prefix(self) -> BinExpr:
        if self.at("except"):
            self.advance()
            return BExcept(self.parse_prefix())
        return self.parse_composition()

    def parse_composition(self) -> BinExpr:
        left = self.parse_filtered()
        while self.at("slash"):
            self.advance()
            left = BCompose(left, self.parse_filtered())
        return left

    def parse_filtered(self) -> BinExpr:
        expression = self.parse_primary()
        while self.at("lbracket"):
            self.advance()
            inner = self.parse_union()
            self.expect("rbracket")
            expression = BCompose(expression, BFilter(inner))
        return expression

    def parse_primary(self) -> BinExpr:
        token = self.peek()
        if token is None:
            raise ParseError("expected a PPLbin expression", len(self.text))
        if token.kind == "self" and self.at("axis_sep", 1):
            return self.parse_step()
        if token.kind in ("self", "dot"):
            self.advance()
            return SelfStep()
        if token.kind == "lparen":
            self.advance()
            inner = self.parse_union()
            self.expect("rparen")
            return inner
        if token.kind == "lbracket":
            self.advance()
            inner = self.parse_union()
            self.expect("rbracket")
            return BFilter(inner)
        if token.kind == "name":
            return self.parse_step()
        raise ParseError(f"unexpected token {token.text!r}", token.position)

    def parse_step(self) -> BinExpr:
        axis_token = self.advance()
        if not self.at("axis_sep"):
            raise ParseError(
                f"expected '::' after axis name {axis_token.text!r}", axis_token.position
            )
        self.advance()
        try:
            axis = parse_axis(axis_token.text)
        except Exception as exc:  # noqa: BLE001 - re-raise as ParseError
            raise ParseError(str(exc), axis_token.position) from exc
        if self.at("star"):
            self.advance()
            return BStep(axis, None)
        name_token = self.expect("name")
        return BStep(axis, name_token.text)

    def finish(self) -> None:
        token = self.peek()
        if token is not None:
            raise ParseError(f"unexpected trailing input {token.text!r}", token.position)


def parse_pplbin(text: str) -> BinExpr:
    """Parse a PPLbin expression from concrete syntax.

    Examples
    --------
    >>> expr = parse_pplbin("descendant::book/child::author")
    >>> expr.size
    3
    """
    parser = _Parser(text)
    expression = parser.parse_union()
    parser.finish()
    return expression
