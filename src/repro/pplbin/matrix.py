"""Boolean matrix algebra over node-pair relations.

Section 4 of the paper evaluates PPLbin by representing each binary query as
a ``|t| x |t|`` Boolean matrix and interpreting the operators as matrix
operations over the Boolean semiring:

* composition ``P1/P2``  ->  Boolean matrix product,
* ``union``              ->  element-wise or,
* ``except`` (complement)->  element-wise negation,
* ``[P]``                ->  the diagonal matrix of rows with at least one 1.

Two product implementations are provided: a vectorised numpy product (the
default) and a pure-Python triple loop used by the ablation experiment E9 to
show how much the matrix product dominates the cubic bound of Theorem 2.
"""

from __future__ import annotations

import numpy as np

BoolMatrix = np.ndarray


def identity_matrix(size: int) -> BoolMatrix:
    """Return the identity relation on ``size`` nodes."""
    return np.eye(size, dtype=bool)


def empty_matrix(size: int) -> BoolMatrix:
    """Return the empty relation on ``size`` nodes."""
    return np.zeros((size, size), dtype=bool)


def full_matrix(size: int) -> BoolMatrix:
    """Return the universal relation on ``size`` nodes."""
    return np.ones((size, size), dtype=bool)


def bool_matmul(left: BoolMatrix, right: BoolMatrix) -> BoolMatrix:
    """Boolean matrix product using numpy (O(n^3) bit operations, vectorised).

    The inner dimension is processed in chunks of at most 255: a uint8
    matmul accumulates modulo 256, so on a relation with ≥ 256 common
    successors an unchunked product silently wraps a positive count to zero
    (an all-ones 256x256 product came back all-False).  ORing the per-chunk
    "any hit" results is exact, since each chunk's counts stay below 256.
    """
    size_mid = left.shape[1]
    a = left.astype(np.uint8)
    b = right.astype(np.uint8)
    if size_mid < 256:
        return (a @ b).astype(bool)
    result = np.zeros((left.shape[0], right.shape[1]), dtype=bool)
    for start in range(0, size_mid, 255):
        stop = start + 255
        result |= (a[:, start:stop] @ b[start:stop, :]).astype(bool)
    return result


def bool_matmul_sparse(left: BoolMatrix, right: BoolMatrix) -> BoolMatrix:
    """Boolean matrix product via per-row successor-set unions.

    Cost is proportional to the number of 1-entries touched, so on the sparse
    relations typical of axis steps it can beat the dense vectorised product;
    on dense relations (anything under ``except``) it degrades to O(n^3) with
    Python-level constants.  Used by the E9 ablation as the middle ground
    between the numpy product and the naive triple loop.
    """
    size_left, size_right = left.shape[0], right.shape[1]
    result = np.zeros((size_left, size_right), dtype=bool)
    if not left.any() or not right.any():
        # Early exit: a zero operand makes the product zero without touching
        # a single successor set.
        return result
    # Successor sets of `right` are built lazily, only for the columns some
    # left row actually reaches — the seed precomputed all |t| of them even
    # when `left` was empty or nearly so.
    right_rows: dict[int, set[int]] = {}
    for i in range(size_left):
        row_targets: set[int] = set()
        for k in np.flatnonzero(left[i]).tolist():
            targets = right_rows.get(k)
            if targets is None:
                targets = set(np.flatnonzero(right[k]).tolist())
                right_rows[k] = targets
            row_targets |= targets
        for j in row_targets:
            result[i, j] = True
    return result


def bool_matmul_python(left: BoolMatrix, right: BoolMatrix) -> BoolMatrix:
    """Boolean matrix product as the naive triple loop (ablation baseline).

    This is the textbook O(n^3) implementation the paper's complexity
    analysis counts; it exists only so experiment E9 can quantify the
    constant-factor gap to the vectorised and sparse products.
    """
    size_left, size_mid = left.shape
    _, size_right = right.shape
    result = np.zeros((size_left, size_right), dtype=bool)
    left_rows = left.tolist()
    right_cols = right.T.tolist()
    for i in range(size_left):
        row = left_rows[i]
        for j in range(size_right):
            column = right_cols[j]
            result[i, j] = any(row[k] and column[k] for k in range(size_mid))
    return result


def bool_union(left: BoolMatrix, right: BoolMatrix) -> BoolMatrix:
    """Element-wise union of two relations."""
    return left | right


def bool_intersection(left: BoolMatrix, right: BoolMatrix) -> BoolMatrix:
    """Element-wise intersection of two relations."""
    return left & right


def bool_complement(matrix: BoolMatrix) -> BoolMatrix:
    """Complement of a relation (the unary ``except`` operator)."""
    return ~matrix


def bool_difference(left: BoolMatrix, right: BoolMatrix) -> BoolMatrix:
    """Set difference of two relations (binary ``except``)."""
    return left & ~right


def filter_diagonal(matrix: BoolMatrix) -> BoolMatrix:
    """The paper's ``[M]`` operator.

    ``[M][u, u'] = 1`` iff ``u = u'`` and row ``u`` of ``M`` contains a 1.
    """
    has_successor = matrix.any(axis=1)
    result = np.zeros_like(matrix)
    np.fill_diagonal(result, has_successor)
    return result


def pairs_from_matrix(matrix: BoolMatrix) -> frozenset[tuple[int, int]]:
    """Return the relation encoded by ``matrix`` as a set of node pairs."""
    rows, cols = np.nonzero(matrix)
    return frozenset(zip(rows.tolist(), cols.tolist()))


def matrix_from_pairs(size: int, pairs) -> BoolMatrix:
    """Return the matrix encoding of an explicit set of node pairs."""
    matrix = np.zeros((size, size), dtype=bool)
    for source, target in pairs:
        matrix[source, target] = True
    return matrix
