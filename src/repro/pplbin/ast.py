"""Abstract syntax of PPLbin (Fig. 3 of the paper).

The grammar is::

    PathExpr := Axis::NameTest
              | PathExpr / PathExpr
              | PathExpr union PathExpr
              | except PathExpr
              | [ PathExpr ]

plus the ``self`` expression used by the Fig. 4 translation (equivalent to
``self::*``).  The ``except`` operator is the *unary* complement of the
paper: ``except P = nodes except P``.  Binary ``except`` and ``intersect``
are provided as derived builders (:func:`binary_except`,
:func:`binary_intersect`) following the equivalences in Section 2.

Every expression is an immutable value object with ``size`` (the paper's
``|P|``), structural equality and an ``unparse`` method producing text that
:func:`repro.pplbin.parser.parse_pplbin` parses back.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterator, Optional

from repro.pickling import strip_cached_properties
from repro.trees.axes import Axis


class BinExpr:
    """Base class of PPLbin expressions (binary queries over nodes)."""

    def __getstate__(self) -> dict:
        return strip_cached_properties(self)

    @cached_property
    def size(self) -> int:
        """Number of AST nodes — the paper's expression size ``|P|``."""
        return 1 + sum(child.size for child in self.children())

    def children(self) -> tuple["BinExpr", ...]:
        """Direct sub-expressions."""
        return ()

    def walk(self) -> Iterator["BinExpr"]:
        """Yield this expression and all sub-expressions (preorder)."""
        stack: list[BinExpr] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    def uses_complement(self) -> bool:
        """Return True when an ``except`` occurs anywhere in the expression.

        The complement-free fragment is exactly Core XPath 1.0 and admits the
        linear-time set-based evaluation of :mod:`repro.pplbin.corexpath1`.
        """
        return any(isinstance(sub, BExcept) for sub in self.walk())

    def unparse(self) -> str:
        """Return concrete syntax for this expression."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.unparse()


@dataclass(frozen=True)
class BStep(BinExpr):
    """An axis step ``Axis::NameTest``; ``nametest`` of ``None`` means ``*``."""

    axis: Axis
    nametest: Optional[str] = None

    def unparse(self) -> str:
        test = self.nametest if self.nametest is not None else "*"
        return f"{self.axis.value}::{test}"


@dataclass(frozen=True)
class SelfStep(BinExpr):
    """The identity relation ``self`` (the Fig. 4 image of the context item)."""

    def unparse(self) -> str:
        return "self"


@dataclass(frozen=True)
class BCompose(BinExpr):
    """Relational composition ``P1/P2``."""

    left: BinExpr
    right: BinExpr

    def children(self) -> tuple[BinExpr, ...]:
        return (self.left, self.right)

    def unparse(self) -> str:
        return f"{self.left.unparse()}/{self.right.unparse()}"


@dataclass(frozen=True)
class BUnion(BinExpr):
    """Union ``P1 union P2``."""

    left: BinExpr
    right: BinExpr

    def children(self) -> tuple[BinExpr, ...]:
        return (self.left, self.right)

    def unparse(self) -> str:
        return f"({self.left.unparse()} union {self.right.unparse()})"


@dataclass(frozen=True)
class BExcept(BinExpr):
    """The unary complement ``except P`` (all node pairs not related by P)."""

    operand: BinExpr

    def children(self) -> tuple[BinExpr, ...]:
        return (self.operand,)

    def unparse(self) -> str:
        return f"(except {self.operand.unparse()})"


@dataclass(frozen=True)
class BFilter(BinExpr):
    """The test ``[P]`` — the partial identity on nodes where ``P`` can start."""

    operand: BinExpr

    def children(self) -> tuple[BinExpr, ...]:
        return (self.operand,)

    def unparse(self) -> str:
        return f"[{self.operand.unparse()}]"


# ----------------------------------------------------------------- builders
def binary_compose(*parts: BinExpr) -> BinExpr:
    """Compose PPLbin expressions left to right with ``/``."""
    if not parts:
        raise ValueError("binary_compose() requires at least one expression")
    result = parts[0]
    for part in parts[1:]:
        result = BCompose(result, part)
    return result


def binary_union(*parts: BinExpr) -> BinExpr:
    """Union of one or more PPLbin expressions."""
    if not parts:
        raise ValueError("binary_union() requires at least one expression")
    result = parts[0]
    for part in parts[1:]:
        result = BUnion(result, part)
    return result


def binary_intersect(left: BinExpr, right: BinExpr) -> BinExpr:
    """Binary intersection, derived as in Section 2 of the paper.

    ``P1 intersect P2 = except (except P1 union except P2)``.
    """
    return BExcept(BUnion(BExcept(left), BExcept(right)))


def binary_except(left: BinExpr, right: BinExpr) -> BinExpr:
    """Binary difference, derived as in Fig. 4 of the paper.

    ``P1 except P2 = except (except P1 union P2)``.
    """
    return BExcept(BUnion(BExcept(left), right))


def complement_filter(operand: BinExpr) -> BinExpr:
    """The partial identity on nodes where ``operand`` can NOT start.

    This is the correct PPLbin encoding of the test ``not P``: the complement
    of the filter ``[P]`` *restricted to the diagonal*, i.e.
    ``self except [P]``.  (Fig. 4 of the paper abbreviates this as
    ``[except P]``, which under the Fig. 2 semantics of ``[.]`` would instead
    select nodes having *some* non-successor; we implement the intended
    semantics and exercise the difference in the test-suite.)
    """
    return binary_except(SelfStep(), BFilter(operand))


def nodes_query() -> BinExpr:
    """The universal binary query ``nodes`` relating every pair of nodes.

    ``(ancestor::* union self)/(descendant::* union self)`` — used to encode
    goto-variables (``$x = nodes/x``) when translating PPL into HCL.
    """
    up = BUnion(BStep(Axis.ANCESTOR, None), SelfStep())
    down = BUnion(BStep(Axis.DESCENDANT, None), SelfStep())
    return BCompose(up, down)
