"""Linear-time set-based evaluation for Core XPath 1.0 (the except-free fragment).

Section 4 of the paper recalls the main evaluation trick of Gottlob, Koch and
Pichler: the set of successors ``S_a(N) = {u' | exists u in N, a(u, u')}`` of
a node set ``N`` along a standard axis ``a`` is computable in time O(|t|).
Extending this to whole expressions gives linear-time monadic query answering
for Core XPath 1.0 and a quadratic binary algorithm — but the trick does not
extend to the complement operator, which is why PPLbin needs the cubic matrix
algorithm of Theorem 2.  This module implements the set-based evaluator as
the baseline for experiment E8.

Only complement-free PPLbin expressions are accepted
(:class:`repro.errors.EvaluationError` otherwise).
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import EvaluationError
from repro.trees.axes import Axis
from repro.trees.tree import Tree
from repro.pplbin.ast import (
    BCompose,
    BExcept,
    BFilter,
    BinExpr,
    BStep,
    BUnion,
    SelfStep,
)
from repro.pplbin.parser import parse_pplbin

NodeSet = frozenset


def axis_successor_set(tree: Tree, axis: Axis, sources: Iterable[int]) -> frozenset[int]:
    """Return ``S_axis(N)`` in time O(|t|) using one structural pass per axis."""
    source_set = set(sources)
    if axis is Axis.SELF:
        return frozenset(source_set)
    if axis is Axis.CHILD:
        result = set()
        for node in source_set:
            result.update(tree.children(node))
        return frozenset(result)
    if axis is Axis.PARENT:
        return frozenset(
            tree.parent[node] for node in source_set if tree.parent[node] is not None
        )
    if axis is Axis.FIRST_CHILD:
        return frozenset(
            tree.children(node)[0] for node in source_set if tree.children(node)
        )
    if axis is Axis.NEXT_SIBLING:
        return frozenset(
            tree.next_sibling[node]
            for node in source_set
            if tree.next_sibling[node] is not None
        )
    if axis is Axis.PREVIOUS_SIBLING:
        return frozenset(
            tree.prev_sibling[node]
            for node in source_set
            if tree.prev_sibling[node] is not None
        )
    if axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
        # One preorder pass carrying the "has an ancestor in N" flag.
        result = set()
        flags = [False] * tree.size
        for node in tree.nodes():
            parent = tree.parent[node]
            ancestor_marked = parent is not None and (flags[parent] or parent in source_set)
            flags[node] = ancestor_marked
            if ancestor_marked or (axis is Axis.DESCENDANT_OR_SELF and node in source_set):
                result.add(node)
        return frozenset(result)
    if axis in (Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF):
        # One reverse-preorder pass carrying the "has a descendant in N" flag.
        result = set()
        flags = [False] * tree.size
        for node in reversed(range(tree.size)):
            marked = any(
                flags[child] or child in source_set for child in tree.children(node)
            )
            flags[node] = marked
            if marked or (axis is Axis.ANCESTOR_OR_SELF and node in source_set):
                result.add(node)
        return frozenset(result)
    if axis in (Axis.FOLLOWING_SIBLING, Axis.PRECEDING_SIBLING):
        # One left-to-right (or right-to-left) sweep per sibling group.
        result = set()
        for parent in tree.nodes():
            siblings = tree.children(parent)
            if not siblings:
                continue
            ordered = siblings if axis is Axis.FOLLOWING_SIBLING else tuple(reversed(siblings))
            seen = False
            for sibling in ordered:
                if seen:
                    result.add(sibling)
                if sibling in source_set:
                    seen = True
        return frozenset(result)
    if axis is Axis.FOLLOWING:
        # following(N) = descendant-or-self(following-sibling(ancestor-or-self(N)))
        step1 = axis_successor_set(tree, Axis.ANCESTOR_OR_SELF, source_set)
        step2 = axis_successor_set(tree, Axis.FOLLOWING_SIBLING, step1)
        return axis_successor_set(tree, Axis.DESCENDANT_OR_SELF, step2)
    if axis is Axis.PRECEDING:
        step1 = axis_successor_set(tree, Axis.ANCESTOR_OR_SELF, source_set)
        step2 = axis_successor_set(tree, Axis.PRECEDING_SIBLING, step1)
        return axis_successor_set(tree, Axis.DESCENDANT_OR_SELF, step2)
    raise EvaluationError(f"unsupported axis {axis!r}")  # pragma: no cover


def successor_set(tree: Tree, expression: BinExpr | str, sources: Iterable[int]) -> frozenset[int]:
    """Return ``S_P(N)`` for a complement-free PPLbin expression ``P``.

    Raises
    ------
    EvaluationError
        If the expression contains the ``except`` operator, for which the
        set-based trick is unsound (``S_{except P}(N) != S_P(N)`` in general,
        as Section 4 points out).
    """
    parsed = parse_pplbin(expression) if isinstance(expression, str) else expression
    return _successors(tree, parsed, frozenset(sources))


def _successors(tree: Tree, expression: BinExpr, sources: frozenset[int]) -> frozenset[int]:
    if isinstance(expression, BExcept):
        raise EvaluationError(
            "the set-based Core XPath 1.0 evaluator does not support 'except'"
        )
    if isinstance(expression, BStep):
        targets = axis_successor_set(tree, expression.axis, sources)
        if expression.nametest is None:
            return targets
        return frozenset(t for t in targets if tree.labels[t] == expression.nametest)
    if isinstance(expression, SelfStep):
        return sources
    if isinstance(expression, BCompose):
        return _successors(tree, expression.right, _successors(tree, expression.left, sources))
    if isinstance(expression, BUnion):
        return _successors(tree, expression.left, sources) | _successors(
            tree, expression.right, sources
        )
    if isinstance(expression, BFilter):
        return sources & satisfying_nodes(tree, expression.operand)
    raise EvaluationError(f"unknown PPLbin expression {expression!r}")


def satisfying_nodes(tree: Tree, expression: BinExpr | str) -> frozenset[int]:
    """Return the nodes from which ``expression`` can reach some node.

    Computed by evaluating the *inverted* expression from all nodes, which
    keeps the whole computation inside the set-based (linear per operator)
    regime.
    """
    parsed = parse_pplbin(expression) if isinstance(expression, str) else expression
    inverted = invert(parsed)
    return _successors(tree, inverted, frozenset(tree.nodes()))


_INVERSE = {
    Axis.SELF: Axis.SELF,
    Axis.CHILD: Axis.PARENT,
    Axis.PARENT: Axis.CHILD,
    Axis.DESCENDANT: Axis.ANCESTOR,
    Axis.ANCESTOR: Axis.DESCENDANT,
    Axis.DESCENDANT_OR_SELF: Axis.ANCESTOR_OR_SELF,
    Axis.ANCESTOR_OR_SELF: Axis.DESCENDANT_OR_SELF,
    Axis.FOLLOWING_SIBLING: Axis.PRECEDING_SIBLING,
    Axis.PRECEDING_SIBLING: Axis.FOLLOWING_SIBLING,
    Axis.FOLLOWING: Axis.PRECEDING,
    Axis.PRECEDING: Axis.FOLLOWING,
    Axis.FIRST_CHILD: Axis.PARENT,
    Axis.NEXT_SIBLING: Axis.PREVIOUS_SIBLING,
    Axis.PREVIOUS_SIBLING: Axis.NEXT_SIBLING,
}


def invert(expression: BinExpr) -> BinExpr:
    """Return an expression denoting the inverse relation (complement-free only).

    Name tests move to a filter on the source side when inverting a step,
    because the original step tests its *target* label.
    """
    if isinstance(expression, BStep):
        if expression.axis is Axis.FIRST_CHILD:
            raise EvaluationError(
                "the firstchild axis cannot be inverted without negation; "
                "use the matrix evaluator for expressions filtering on it"
            )
        if expression.axis is Axis.SELF:
            # self::N is its own inverse (source equals target).
            return expression
        inverse_step = BStep(_INVERSE[expression.axis], None)
        if expression.nametest is None:
            return inverse_step
        label_filter = BFilter(BStep(Axis.SELF, expression.nametest))
        return BCompose(label_filter, inverse_step)
    if isinstance(expression, SelfStep):
        return expression
    if isinstance(expression, BCompose):
        return BCompose(invert(expression.right), invert(expression.left))
    if isinstance(expression, BUnion):
        return BUnion(invert(expression.left), invert(expression.right))
    if isinstance(expression, BFilter):
        return expression
    if isinstance(expression, BExcept):
        raise EvaluationError("cannot invert an expression containing 'except'")
    raise EvaluationError(f"unknown PPLbin expression {expression!r}")


def monadic_answer(tree: Tree, expression: BinExpr | str, start: int | None = None) -> frozenset[int]:
    """Answer the monadic query of ``expression`` from ``start`` (default: root).

    This is Core XPath 1.0's standard use: select the nodes reachable from
    the document root, in combined linear time.
    """
    origin = tree.root() if start is None else start
    return successor_set(tree, expression, [origin])


def binary_relation(tree: Tree, expression: BinExpr | str):
    """The binary query as a :class:`repro.pplbin.bitmatrix.SparseRelation`.

    Runs the monadic evaluator from every node (quadratic in |t|, the
    Section 4 bound) and assembles the rows into the sparse successor-set
    representation — the set-based baseline thereby produces the same
    normalised relation values as the matrix kernels, so E8/E9 compare and
    cross-check them directly.
    """
    from repro.pplbin import bitmatrix

    parsed = parse_pplbin(expression) if isinstance(expression, str) else expression
    return bitmatrix.relation_from_rows(
        tree.size,
        (_successors(tree, parsed, frozenset([node])) for node in tree.nodes()),
    )


def binary_answer(tree: Tree, expression: BinExpr | str) -> frozenset[tuple[int, int]]:
    """Answer the binary query by running the monadic evaluator from every node.

    Quadratic in |t| (the bound quoted in Section 4 for Core XPath 1.0).
    """
    return binary_relation(tree, expression).pairs()
