"""PPLbin — the variable-free polynomial-time path language (substrate S4).

PPLbin (Fig. 3 of the paper) is Core XPath 1.0 extended with the complement
operator ``except P``.  It defines binary queries and is the binary query
language plugged into the hybrid composition language to obtain PPL.

Modules:

* :mod:`~repro.pplbin.ast` — the Fig. 3 abstract syntax.
* :mod:`~repro.pplbin.parser` — concrete syntax parser.
* :mod:`~repro.pplbin.matrix` — dense Boolean matrix algebra over node pairs
  (the legacy/ablation products).
* :mod:`~repro.pplbin.bitmatrix` — the packed-bitset / sparse / adaptive
  relation kernel behind the evaluator.
* :mod:`~repro.pplbin.evaluator` — the O(|P| |t|^3) evaluator of Theorem 2.
* :mod:`~repro.pplbin.translate` — Fig. 4: variable-free Core XPath 2.0 to
  PPLbin, and the inverse embedding used as a correctness oracle.
* :mod:`~repro.pplbin.corexpath1` — the linear-time set-based evaluator for
  the except-free fragment (Core XPath 1.0), the Gottlob/Koch/Pichler
  baseline discussed in Section 4.
"""

from repro.pplbin.ast import (
    BExcept,
    BFilter,
    BCompose,
    BStep,
    BUnion,
    BinExpr,
    SelfStep,
    binary_compose,
    binary_except,
    binary_intersect,
    nodes_query,
)
from repro.pplbin.parser import parse_pplbin
from repro.pplbin.bitmatrix import (
    KERNEL_NAMES,
    Relation,
    get_default_kernel,
    get_kernel,
    set_default_kernel,
)
from repro.pplbin.evaluator import (
    PPLbinEvaluator,
    evaluate_matrix,
    evaluate_pairs,
    evaluate_relation,
    evaluate_successors,
)
from repro.pplbin.translate import from_core_xpath, to_core_xpath

__all__ = [
    "KERNEL_NAMES",
    "Relation",
    "get_default_kernel",
    "get_kernel",
    "set_default_kernel",
    "evaluate_relation",
    "evaluate_successors",
    "BinExpr",
    "BStep",
    "SelfStep",
    "BCompose",
    "BUnion",
    "BExcept",
    "BFilter",
    "binary_compose",
    "binary_except",
    "binary_intersect",
    "nodes_query",
    "parse_pplbin",
    "evaluate_matrix",
    "evaluate_pairs",
    "PPLbinEvaluator",
    "from_core_xpath",
    "to_core_xpath",
]
