"""The PPLbin query-answering algorithm of Theorem 2.

A PPLbin expression ``P`` over a tree ``t`` is evaluated to the Boolean
matrix ``M^t_P`` of its binary query by structural recursion:

    M_{P1/P2}       = M_{P1} . M_{P2}
    M_{P1 union P2} = M_{P1} + M_{P2}
    M_{except P}    = not M_P
    M_{[P]}         = [M_P]

giving the O(|P| |t|^3) bound of Theorem 2 (the cubic factor being the
Boolean matrix product).  The matrix algebra runs on the pluggable
representations of :mod:`repro.pplbin.bitmatrix` — dense bool, packed
uint64 bitset, sparse successor sets, or the adaptive kernel that picks per
sub-expression — and relations for sub-expressions are cached per tree (in
the byte-budgeted matrix cache) so a query containing the same
sub-expression several times pays for it only once.

Two access paths are provided:

* :func:`evaluate_relation` / :func:`evaluate_matrix` — the full ``|t| x
  |t|`` relation of Theorem 2.
* :func:`evaluate_successors` — the *demand-driven row* evaluation used by
  Proposition 10's oracle: the successor set ``S_{u,P}`` of one node is
  computed by structural recursion on rows (single-row products via
  :func:`repro.pplbin.bitmatrix.union_rows`), touching only the rows the
  recursion reaches and never materialising a full matrix.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from repro.errors import EvaluationError
from repro.obs import trace as _trace
from repro.trees.axes import axis_relation, iter_axis, label_vector
from repro.trees.tree import Tree
from repro.pplbin import bitmatrix as bx
from repro.pplbin import matrix as bm
from repro.pplbin.ast import (
    BCompose,
    BExcept,
    BFilter,
    BinExpr,
    BStep,
    BUnion,
    SelfStep,
)
from repro.pplbin.parser import parse_pplbin

MatmulFn = Callable[[np.ndarray, np.ndarray], np.ndarray]

#: After this many demand-driven row queries on one expression the evaluator
#: materialises the full relation: answering for a large fraction of the
#: nodes row-by-row costs more than one vectorised evaluation (this is the
#: amortisation Proposition 10's precompilation assumes).
ROW_MATERIALIZE_THRESHOLD = 16

#: Row probes before :meth:`PPLbinEvaluator.nonempty` falls back to the full
#: relation (an empty query would otherwise probe every node the slow way).
_NONEMPTY_PROBES = 32


class MatmulKernel(bx.DenseKernel):
    """A dense kernel whose composition is a caller-supplied matmul function.

    Wraps the legacy ``matmul=`` argument of :func:`evaluate_matrix` (the E9
    ablation's pure-Python and successor-set products).  The cache token is
    the function object itself, so two different custom products can never
    share cache entries — the seed keyed the cache on ``matmul is
    bool_matmul``, which collapsed *all* non-default products onto one key.
    """

    def __init__(self, matmul: MatmulFn) -> None:
        self.matmul = matmul
        self.name = f"matmul:{getattr(matmul, '__name__', repr(matmul))}"

    @property
    def cache_token(self):
        return self.matmul

    def compose(self, left: bx.Relation, right: bx.Relation) -> bx.Relation:
        bx._count("full_compose")
        product = self.matmul(left.to_dense(), right.to_dense())
        return bx.DenseRelation(left.size, np.asarray(product, dtype=bool))


def _resolve_kernel(
    matmul: Optional[MatmulFn], kernel: Union[str, bx.Kernel, None]
) -> bx.Kernel:
    """Map the legacy ``matmul`` argument and the ``kernel`` knob to a kernel."""
    if kernel is not None:
        return bx.get_kernel(kernel)
    if matmul is not None and matmul is not bm.bool_matmul:
        return MatmulKernel(matmul)
    return bx.get_default_kernel()


def evaluate_relation(
    tree: Tree,
    expression: BinExpr | str,
    kernel: Union[str, bx.Kernel, None] = None,
    use_cache: bool = True,
) -> bx.Relation:
    """Return the relation ``M^t_P`` of a PPLbin expression.

    Parameters
    ----------
    tree:
        The document.
    expression:
        A PPLbin AST or concrete syntax.
    kernel:
        Kernel name (``dense``/``bitset``/``sparse``/``adaptive``), a
        :class:`repro.pplbin.bitmatrix.Kernel` instance, or ``None`` for the
        process default.
    use_cache:
        Cache sub-expression relations on the tree (recommended; disable
        only for benchmarking cold evaluation).
    """
    parsed = parse_pplbin(expression) if isinstance(expression, str) else expression
    resolved = bx.get_kernel(kernel)
    cache = tree.matrix_cache() if use_cache else {}
    token = resolved.cache_token

    def recurse(node: BinExpr) -> bx.Relation:
        key = ("pplbin-rel", node, token)
        cached = cache.get(key)
        if cached is not None:
            return cached
        result = _evaluate(tree, node, recurse, resolved)
        cache[key] = result
        return result

    return recurse(parsed)


def evaluate_matrix(
    tree: Tree,
    expression: BinExpr | str,
    matmul: MatmulFn = bm.bool_matmul,
    use_cache: bool = True,
    kernel: Union[str, bx.Kernel, None] = None,
) -> np.ndarray:
    """Return the Boolean matrix ``M^t_P`` of a PPLbin expression.

    The dense entry point kept for compatibility (and the ablations): the
    evaluation itself runs on :func:`evaluate_relation` with the kernel
    implied by the arguments — ``kernel`` when given, a
    :class:`MatmulKernel` when a non-default ``matmul`` is passed, the
    process default otherwise.  The returned matrix is read-only and cached,
    so repeated calls return the same array object.
    """
    resolved = _resolve_kernel(matmul, kernel)
    return evaluate_relation(tree, expression, kernel=resolved, use_cache=use_cache).to_dense()


def _evaluate(
    tree: Tree,
    node: BinExpr,
    recurse: Callable[[BinExpr], bx.Relation],
    kernel: bx.Kernel,
) -> bx.Relation:
    if isinstance(node, BStep):
        relation = axis_relation(tree, node.axis, kernel)
        if node.nametest is None:
            return relation
        # The mask keeps the axis relation's representation; re-coerce so the
        # adaptive kernel can rebalance a now-much-sparser step relation.
        return kernel.coerce(
            kernel.mask_columns(relation, label_vector(tree, node.nametest))
        )
    if isinstance(node, SelfStep):
        return kernel.identity(tree.size)
    if isinstance(node, BCompose):
        left = recurse(node.left)
        right = recurse(node.right)
        # Operands evaluate before the span opens so nested compositions
        # don't inflate the parent's compose timing.
        if not _trace.enabled():
            with _trace.span("kernel.compose", kernel=kernel.name):
                return kernel.compose(left, right)
        # Tracing/sampling active: attribute the span with the cost model's
        # own predictors so repro.obs.calibrate can regress observed
        # durations against them.  The attrs are computed only on this
        # branch — span kwargs evaluate eagerly, and nnz() on a cold
        # operand is not free.
        with _trace.span(
            "kernel.compose",
            kernel=kernel.name,
            representation=kernel._compose_algorithm(left, right),
            n=left.size,
            left_nnz=left.nnz(),
            right_nnz=right.nnz(),
        ):
            return kernel.compose(left, right)
    if isinstance(node, BUnion):
        return kernel.union(recurse(node.left), recurse(node.right))
    if isinstance(node, BExcept):
        return kernel.complement(recurse(node.operand))
    if isinstance(node, BFilter):
        return kernel.filter_diagonal(recurse(node.operand))
    raise EvaluationError(f"unknown PPLbin expression {node!r}")


# ------------------------------------------------------- demand-driven rows
def evaluate_successors(
    tree: Tree,
    expression: BinExpr | str,
    node: int,
    kernel: Union[str, bx.Kernel, None] = None,
    use_cache: bool = True,
) -> np.ndarray:
    """Return the sorted successor ids of ``node`` under ``expression``.

    Structural recursion on *rows*: a step reads the axis successors of one
    node straight off the tree, a composition unions the right operand's
    rows over the left row's targets, ``except`` complements within the node
    universe, ``[P]`` probes one row for emptiness.  No full ``|t| x |t|``
    relation is ever materialised (cached full relations are reused when a
    previous full evaluation left them behind); computed rows are memoised
    in the tree's byte-budgeted matrix cache.
    """
    parsed = parse_pplbin(expression) if isinstance(expression, str) else expression
    resolved = bx.get_kernel(kernel)
    cache = tree.matrix_cache() if use_cache else {}
    # Speculative full-relation probes are expected to miss on the demand-
    # driven path; keep them out of the hit/miss telemetry.
    peek = getattr(cache, "peek", cache.get)
    token = resolved.cache_token
    universe = np.arange(tree.size, dtype=np.int64)

    def row(expr: BinExpr, source: int) -> np.ndarray:
        full = peek(("pplbin-rel", expr, token))
        if full is not None:
            return full.row_indices(source)
        key = ("pplbin-row", expr, token, source)
        cached = cache.get(key)
        if cached is not None:
            return cached
        result = _evaluate_row(expr, source)
        cache[key] = result
        return result

    def _evaluate_row(expr: BinExpr, source: int) -> np.ndarray:
        if isinstance(expr, BStep):
            if expr.nametest is None:
                targets = list(iter_axis(tree, expr.axis, source))
            else:
                labels = tree.labels
                targets = [
                    target
                    for target in iter_axis(tree, expr.axis, source)
                    if labels[target] == expr.nametest
                ]
            if not targets:
                return bx._EMPTY_ROW
            return np.array(sorted(targets), dtype=np.int64)
        if isinstance(expr, SelfStep):
            return universe[source : source + 1]
        if isinstance(expr, BCompose):
            sources = row(expr.left, source)
            full = peek(("pplbin-rel", expr.right, token))
            if full is not None:
                return bx.union_rows(full, sources)
            parts = [row(expr.right, mid) for mid in sources.tolist()]
            parts = [part for part in parts if part.size]
            if not parts:
                return bx._EMPTY_ROW
            if len(parts) == 1:
                return parts[0]
            return np.unique(np.concatenate(parts))
        if isinstance(expr, BUnion):
            return np.union1d(row(expr.left, source), row(expr.right, source))
        if isinstance(expr, BExcept):
            return np.setdiff1d(universe, row(expr.operand, source), assume_unique=True)
        if isinstance(expr, BFilter):
            if row(expr.operand, source).size:
                return universe[source : source + 1]
            return bx._EMPTY_ROW
        raise EvaluationError(f"unknown PPLbin expression {expr!r}")

    return row(parsed, node)


def evaluate_pairs(tree: Tree, expression: BinExpr | str) -> frozenset[tuple[int, int]]:
    """Return the binary query ``q^bin_P(t)`` as an explicit set of node pairs."""
    return evaluate_relation(tree, expression).pairs()


def successors(tree: Tree, expression: BinExpr | str, node: int) -> list[int]:
    """Return the successors of ``node`` under the binary query of ``expression``.

    This is the per-node access path used by the HCL answering algorithm
    (the data structure of Proposition 10 that returns ``S_{u,b}`` in time
    proportional to its size); computed demand-driven, without materialising
    the full matrix.
    """
    return evaluate_successors(tree, expression, node).tolist()


class PPLbinEvaluator:
    """Evaluator facade bound to one tree, with per-expression memoisation.

    This class is also the ``L`` oracle handed to the hybrid composition
    language: it exposes exactly the two operations Proposition 10 requires —
    full evaluation of a leaf expression (``matrix``/``relation``/``pairs``)
    and constant-time-per-successor access (``successors``).  Row queries
    start demand-driven; once an expression has been probed more than
    :data:`ROW_MATERIALIZE_THRESHOLD` times the full relation is
    materialised and subsequent rows are served from it (the precompilation
    trade-off of Proposition 10).
    """

    name = "pplbin-matrix"

    def __init__(
        self,
        tree: Tree,
        matmul: Optional[MatmulFn] = None,
        kernel: Union[str, bx.Kernel, None] = None,
    ) -> None:
        self.tree = tree
        self.kernel = _resolve_kernel(matmul, kernel)
        self._row_queries: dict[BinExpr, int] = {}

    def _parse(self, expression: BinExpr | str) -> BinExpr:
        return parse_pplbin(expression) if isinstance(expression, str) else expression

    def relation(self, expression: BinExpr | str) -> bx.Relation:
        """Return (and cache) the relation of ``expression`` on the bound tree."""
        return evaluate_relation(self.tree, expression, kernel=self.kernel)

    def matrix(self, expression: BinExpr | str) -> np.ndarray:
        """Return the Boolean matrix of ``expression`` on the bound tree."""
        return self.relation(expression).to_dense()

    def pairs(self, expression: BinExpr | str) -> frozenset[tuple[int, int]]:
        """Return the explicit pair set of ``expression`` on the bound tree."""
        return self.relation(expression).pairs()

    def _cached_relation(self, parsed: BinExpr) -> Optional[bx.Relation]:
        # A speculative probe (absence is the normal demand-driven case):
        # keep it out of the cache's hit/miss telemetry.
        return self.tree.matrix_cache().peek(
            ("pplbin-rel", parsed, self.kernel.cache_token)
        )

    def _row(self, parsed: BinExpr, node: int) -> np.ndarray:
        relation = self._cached_relation(parsed)
        if relation is not None:
            return relation.row_indices(node)
        queries = self._row_queries.get(parsed, 0) + 1
        self._row_queries[parsed] = queries
        if queries > ROW_MATERIALIZE_THRESHOLD:
            return self.relation(parsed).row_indices(node)
        return evaluate_successors(self.tree, parsed, node, kernel=self.kernel)

    def successors(self, expression: BinExpr | str, node: int) -> list[int]:
        """Return all ``v`` with ``(node, v)`` in the query of ``expression``."""
        return self._row(self._parse(expression), node).tolist()

    def has_successor(self, expression: BinExpr | str, node: int) -> bool:
        """Return True when ``node`` has at least one successor."""
        return bool(self._row(self._parse(expression), node).size)

    def nonempty(self, expression: BinExpr | str) -> bool:
        """Return True when the binary query is non-empty on the bound tree.

        Probes rows demand-driven with early exit; an expression that looks
        empty after :data:`_NONEMPTY_PROBES` probes is settled with one full
        evaluation instead of probing every node the slow way.
        """
        parsed = self._parse(expression)
        relation = self._cached_relation(parsed)
        if relation is not None:
            return relation.any()
        for node in range(min(self.tree.size, _NONEMPTY_PROBES)):
            if evaluate_successors(self.tree, parsed, node, kernel=self.kernel).size:
                return True
        if self.tree.size <= _NONEMPTY_PROBES:
            return False
        return self.relation(parsed).any()
