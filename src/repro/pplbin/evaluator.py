"""The PPLbin query-answering algorithm of Theorem 2.

A PPLbin expression ``P`` over a tree ``t`` is evaluated to the Boolean
matrix ``M^t_P`` of its binary query by structural recursion, using the
matrix operations of :mod:`repro.pplbin.matrix`:

    M_{P1/P2}       = M_{P1} . M_{P2}
    M_{P1 union P2} = M_{P1} + M_{P2}
    M_{except P}    = not M_P
    M_{[P]}         = [M_P]

giving the O(|P| |t|^3) bound of Theorem 2 (the cubic factor being the
Boolean matrix product).  Matrices for sub-expressions are cached per tree so
that a query containing the same sub-expression several times — which the
translations of Fig. 4 and Fig. 7 routinely produce — pays for it only once.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import EvaluationError
from repro.trees.axes import axis_matrix, label_vector
from repro.trees.tree import Tree
from repro.pplbin import matrix as bm
from repro.pplbin.ast import (
    BCompose,
    BExcept,
    BFilter,
    BinExpr,
    BStep,
    BUnion,
    SelfStep,
)
from repro.pplbin.parser import parse_pplbin

MatmulFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def evaluate_matrix(
    tree: Tree,
    expression: BinExpr | str,
    matmul: MatmulFn = bm.bool_matmul,
    use_cache: bool = True,
) -> np.ndarray:
    """Return the Boolean matrix ``M^t_P`` of a PPLbin expression.

    Parameters
    ----------
    tree:
        The document.
    expression:
        A PPLbin AST or concrete syntax.
    matmul:
        The Boolean matrix product to use; the default is the vectorised
        numpy product, the pure-Python product is available for ablations.
    use_cache:
        Cache sub-expression matrices on the tree (recommended; disable only
        for benchmarking cold evaluation).
    """
    parsed = parse_pplbin(expression) if isinstance(expression, str) else expression
    cache = tree.matrix_cache() if use_cache else {}

    def recurse(node: BinExpr) -> np.ndarray:
        key = ("pplbin", node, matmul is bm.bool_matmul)
        if use_cache and key in cache:
            return cache[key]
        result = _evaluate(tree, node, recurse, matmul)
        if use_cache:
            result.setflags(write=False)
            cache[key] = result
        return result

    return recurse(parsed)


def _evaluate(
    tree: Tree, node: BinExpr, recurse: Callable[[BinExpr], np.ndarray], matmul: MatmulFn
) -> np.ndarray:
    if isinstance(node, BStep):
        axis = axis_matrix(tree, node.axis)
        labels = label_vector(tree, node.nametest)
        return axis & labels[np.newaxis, :]
    if isinstance(node, SelfStep):
        return bm.identity_matrix(tree.size)
    if isinstance(node, BCompose):
        return matmul(recurse(node.left), recurse(node.right))
    if isinstance(node, BUnion):
        return bm.bool_union(recurse(node.left), recurse(node.right))
    if isinstance(node, BExcept):
        return bm.bool_complement(recurse(node.operand))
    if isinstance(node, BFilter):
        return bm.filter_diagonal(recurse(node.operand))
    raise EvaluationError(f"unknown PPLbin expression {node!r}")


def evaluate_pairs(tree: Tree, expression: BinExpr | str) -> frozenset[tuple[int, int]]:
    """Return the binary query ``q^bin_P(t)`` as an explicit set of node pairs."""
    return bm.pairs_from_matrix(evaluate_matrix(tree, expression))


def successors(tree: Tree, expression: BinExpr | str, node: int) -> list[int]:
    """Return the successors of ``node`` under the binary query of ``expression``.

    This is the per-node access path used by the HCL answering algorithm
    (the data structure of Proposition 10 that returns ``S_{u,b}`` in time
    proportional to its size).
    """
    matrix = evaluate_matrix(tree, expression)
    return np.flatnonzero(matrix[node]).tolist()


class PPLbinEvaluator:
    """Evaluator facade bound to one tree, with per-expression memoisation.

    This class is also the ``L`` oracle handed to the hybrid composition
    language: it exposes exactly the two operations Proposition 10 requires —
    full evaluation of a leaf expression (``matrix``/``pairs``) and
    constant-time-per-successor access (``successors``).
    """

    name = "pplbin-matrix"

    def __init__(self, tree: Tree, matmul: MatmulFn = bm.bool_matmul) -> None:
        self.tree = tree
        self._matmul = matmul

    def matrix(self, expression: BinExpr | str) -> np.ndarray:
        """Return the Boolean matrix of ``expression`` on the bound tree."""
        return evaluate_matrix(self.tree, expression, matmul=self._matmul)

    def pairs(self, expression: BinExpr | str) -> frozenset[tuple[int, int]]:
        """Return the explicit pair set of ``expression`` on the bound tree."""
        return bm.pairs_from_matrix(self.matrix(expression))

    def successors(self, expression: BinExpr | str, node: int) -> list[int]:
        """Return all ``v`` with ``(node, v)`` in the query of ``expression``."""
        return np.flatnonzero(self.matrix(expression)[node]).tolist()

    def has_successor(self, expression: BinExpr | str, node: int) -> bool:
        """Return True when ``node`` has at least one successor."""
        return bool(self.matrix(expression)[node].any())

    def nonempty(self, expression: BinExpr | str) -> bool:
        """Return True when the binary query is non-empty on the bound tree."""
        return bool(self.matrix(expression).any())
