"""Translations between variable-free Core XPath 2.0 and PPLbin.

Two directions are provided:

* :func:`from_core_xpath` — the linear-time translation of Fig. 4, mapping
  ``Core XPath 2.0 ∩ N($x)`` (no variables, no for-loops, no node
  comparisons other than ``. is .``) into PPLbin.  This is one half of
  Proposition 4.
* :func:`to_core_xpath` — the converse syntactic embedding of PPLbin back
  into Core XPath 2.0 (the other, "obvious" half of Proposition 4).  It is
  used as the correctness oracle for the matrix evaluator: the matrix of a
  PPLbin expression must equal the Fig. 2 semantics of its embedding.

Deviation from the paper (documented in DESIGN.md): Fig. 4 writes the
negative test case as ``[not P]_test = [except P]``.  Under the Fig. 2
semantics of the ``[.]`` operator that expression selects nodes having *some
non*-successor, not nodes having *no* successor.  We implement the intended
semantics ``self except [P]`` (expressed with the unary complement), and the
test-suite contains a regression test demonstrating the difference.
"""

from __future__ import annotations

from repro.errors import TranslationError
from repro.trees.axes import Axis
from repro.xpath import ast as x
from repro.pplbin.ast import (
    BCompose,
    BExcept,
    BFilter,
    BinExpr,
    BStep,
    BUnion,
    SelfStep,
    binary_except,
    binary_intersect,
    complement_filter,
    nodes_query,
)


def from_core_xpath(expression: x.PathExpr) -> BinExpr:
    """Translate a variable-free Core XPath 2.0 path expression into PPLbin.

    Implements Fig. 4 of the paper.  The input must satisfy N($x): no
    variables, no for-loops and no comparisons other than ``. is .``.

    Raises
    ------
    TranslationError
        If the expression uses variables, for-loops or node comparisons
        involving variables.
    """
    if isinstance(expression, x.Step):
        return BStep(expression.axis, expression.nametest)
    if isinstance(expression, x.ContextItem):
        return SelfStep()
    if isinstance(expression, x.VarRef):
        raise TranslationError(
            f"variable ${expression.name} is not allowed in PPLbin (condition N($x))"
        )
    if isinstance(expression, x.ForLoop):
        raise TranslationError("for-loops are not allowed in PPLbin (condition N($x))")
    if isinstance(expression, x.PathCompose):
        return BCompose(from_core_xpath(expression.left), from_core_xpath(expression.right))
    if isinstance(expression, x.PathUnion):
        return BUnion(from_core_xpath(expression.left), from_core_xpath(expression.right))
    if isinstance(expression, x.PathIntersect):
        return binary_intersect(
            from_core_xpath(expression.left), from_core_xpath(expression.right)
        )
    if isinstance(expression, x.PathExcept):
        return binary_except(
            from_core_xpath(expression.left), from_core_xpath(expression.right)
        )
    if isinstance(expression, x.Filter):
        return BCompose(
            from_core_xpath(expression.path), test_to_pplbin(expression.test)
        )
    raise TranslationError(f"cannot translate {expression!r} into PPLbin")


def test_to_pplbin(test: x.TestExpr) -> BinExpr:
    """Translate a variable-free test expression into a PPLbin partial identity.

    The result relates ``(v, v)`` exactly for the nodes ``v`` satisfying the
    test, so composing it on the right of a path implements the filter
    ``P[T]`` (Fig. 4's ``[T]_test`` translation).
    """
    if isinstance(test, x.PathTest):
        return BFilter(from_core_xpath(test.path))
    if isinstance(test, x.CompTest):
        if test.left == x.CONTEXT and test.right == x.CONTEXT:
            return SelfStep()
        raise TranslationError(
            "node comparisons involving variables are not allowed in PPLbin"
        )
    if isinstance(test, x.AndTest):
        return BCompose(test_to_pplbin(test.left), test_to_pplbin(test.right))
    if isinstance(test, x.OrTest):
        return BUnion(test_to_pplbin(test.left), test_to_pplbin(test.right))
    if isinstance(test, x.NotTest):
        return _negate_test(test.test)
    raise TranslationError(f"cannot translate test {test!r} into PPLbin")


def _negate_test(test: x.TestExpr) -> BinExpr:
    """Translate ``not T`` by pushing the negation through the test structure."""
    if isinstance(test, x.PathTest):
        return complement_filter(from_core_xpath(test.path))
    if isinstance(test, x.CompTest):
        if test.left == x.CONTEXT and test.right == x.CONTEXT:
            # not(. is .) holds nowhere.
            return binary_except(SelfStep(), SelfStep())
        raise TranslationError(
            "node comparisons involving variables are not allowed in PPLbin"
        )
    if isinstance(test, x.AndTest):
        # de Morgan: not(T1 and T2) = not T1 or not T2.
        return BUnion(_negate_test(test.left), _negate_test(test.right))
    if isinstance(test, x.OrTest):
        # de Morgan: not(T1 or T2) = not T1 and not T2.
        return BCompose(_negate_test(test.left), _negate_test(test.right))
    if isinstance(test, x.NotTest):
        return test_to_pplbin(test.test)
    raise TranslationError(f"cannot translate negated test {test!r} into PPLbin")


def to_core_xpath(expression: BinExpr) -> x.PathExpr:
    """Embed a PPLbin expression back into Core XPath 2.0.

    The embedding interprets the unary complement ``except P`` as
    ``nodes except P`` where ``nodes`` is the universal relation expression
    of Section 2, and the filter ``[P]`` as ``.[P]``.
    """
    if isinstance(expression, BStep):
        return x.Step(expression.axis, expression.nametest)
    if isinstance(expression, SelfStep):
        return x.ContextItem()
    if isinstance(expression, BCompose):
        return x.PathCompose(to_core_xpath(expression.left), to_core_xpath(expression.right))
    if isinstance(expression, BUnion):
        return x.PathUnion(to_core_xpath(expression.left), to_core_xpath(expression.right))
    if isinstance(expression, BExcept):
        return x.PathExcept(x.nodes_expression(), to_core_xpath(expression.operand))
    if isinstance(expression, BFilter):
        return x.Filter(x.ContextItem(), x.PathTest(to_core_xpath(expression.operand)))
    raise TranslationError(f"cannot embed {expression!r} into Core XPath 2.0")


#: Re-export of the universal PPLbin query, named as in the paper.
NODES: BinExpr = nodes_query()

#: The root test as a PPLbin partial identity: nodes with no parent.
ROOT: BinExpr = binary_except(SelfStep(), BFilter(BStep(Axis.PARENT, None)))
